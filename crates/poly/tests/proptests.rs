//! Property-based tests for the polynomial machinery: algebra laws that the
//! functional mechanism's coefficient bookkeeping silently relies on.

use fm_linalg::vecops;
use fm_poly::taylor::{identity_component, log1p_exp, logistic_log1pexp_component};
use fm_poly::{monomial, Monomial, Polynomial};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -5.0..5.0
}

fn omega(d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0..2.0f64, d)
}

/// A random polynomial of degree ≤ 2 over `d` variables.
fn quadratic_poly(d: usize) -> impl Strategy<Value = Polynomial> {
    let n_terms = monomial::monomials_up_to_degree(d, 2).len();
    proptest::collection::vec(small_f64(), n_terms).prop_map(move |coeffs| {
        let mut p = Polynomial::zero(d);
        for (m, c) in monomial::monomials_up_to_degree(d, 2)
            .into_iter()
            .zip(coeffs)
        {
            if c != 0.0 {
                p.add_term(m, c);
            }
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monomial_eval_is_multiplicative(
        e1 in proptest::collection::vec(0u32..3, 3),
        e2 in proptest::collection::vec(0u32..3, 3),
        w in omega(3),
    ) {
        // φ₁(ω)·φ₂(ω) = (φ₁·φ₂)(ω) where the product adds exponents.
        let m1 = Monomial::new(e1.clone());
        let m2 = Monomial::new(e2.clone());
        let prod = Monomial::new(e1.iter().zip(&e2).map(|(a, b)| a + b).collect());
        let lhs = m1.eval(&w) * m2.eval(&w);
        let rhs = prod.eval(&w);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn monomial_degree_is_exponent_sum(e in proptest::collection::vec(0u32..4, 5)) {
        let m = Monomial::new(e.clone());
        prop_assert_eq!(m.degree(), e.iter().sum::<u32>());
    }

    #[test]
    fn partial_derivative_matches_finite_difference(
        e in proptest::collection::vec(0u32..3, 3),
        w in proptest::collection::vec(0.1..2.0f64, 3),
        var in 0usize..3,
    ) {
        let m = Monomial::new(e);
        let h = 1e-7;
        let mut up = w.clone();
        up[var] += h;
        let mut dn = w.clone();
        dn[var] -= h;
        let fd = (m.eval(&up) - m.eval(&dn)) / (2.0 * h);
        let analytic = m
            .partial_derivative(var)
            .map(|(c, dm)| c * dm.eval(&w))
            .unwrap_or(0.0);
        prop_assert!((fd - analytic).abs() <= 1e-4 * (1.0 + analytic.abs()), "{fd} vs {analytic}");
    }

    #[test]
    fn polynomial_addition_is_pointwise(
        (p, q, w) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), quadratic_poly(d), omega(d)))
    ) {
        let mut sum = p.clone();
        sum.add_assign(&q);
        let lhs = sum.eval(&w);
        let rhs = p.eval(&w) + q.eval(&w);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn polynomial_scaling_is_pointwise(
        (p, w) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), omega(d))),
        a in small_f64(),
    ) {
        let mut scaled = p.clone();
        scaled.scale(a);
        let lhs = scaled.eval(&w);
        let rhs = a * p.eval(&w);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn quadratic_form_roundtrip_is_exact(
        (p, w) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), omega(d)))
    ) {
        let q = p.to_quadratic_form().expect("degree ≤ 2 by construction");
        // M always comes out symmetric…
        prop_assert!(q.m().is_symmetric(1e-12));
        // …and evaluation is preserved both ways.
        prop_assert!((q.eval(&w) - p.eval(&w)).abs() <= 1e-9 * (1.0 + p.eval(&w).abs()));
        let back = q.to_polynomial();
        prop_assert!((back.eval(&w) - p.eval(&w)).abs() <= 1e-9 * (1.0 + p.eval(&w).abs()));
    }

    #[test]
    fn quadratic_gradient_matches_finite_difference(
        (p, w) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), omega(d)))
    ) {
        let q = p.to_quadratic_form().expect("degree ≤ 2");
        let g = q.gradient(&w);
        let h = 1e-6;
        for i in 0..w.len() {
            let mut up = w.clone();
            up[i] += h;
            let mut dn = w.clone();
            dn[i] -= h;
            let fd = (q.eval(&up) - q.eval(&dn)) / (2.0 * h);
            prop_assert!((g[i] - fd).abs() <= 1e-4 * (1.0 + fd.abs()), "var {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn coefficient_l1_norm_is_subadditive(
        (p, q) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), quadratic_poly(d)))
    ) {
        let mut sum = p.clone();
        sum.add_assign(&q);
        prop_assert!(
            sum.coefficient_l1_norm() <= p.coefficient_l1_norm() + q.coefficient_l1_norm() + 1e-9
        );
    }

    #[test]
    fn taylor_contribution_evaluates_to_truncated_scalar(
        c in proptest::collection::vec(-1.0..1.0f64, 3),
        w in omega(3),
    ) {
        // The quadratic contribution of a component at coefficient vector c
        // must equal f̂(cᵀω) for every ω — for both logistic components.
        for comp in [logistic_log1pexp_component(), identity_component()] {
            let q = comp.quadratic_contribution(&c);
            let z = vecops::dot(&c, &w);
            let expected = comp.eval_truncated(z);
            prop_assert!((q.eval(&w) - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
        }
    }

    #[test]
    fn logistic_truncation_error_within_lemma4_bound(z in -1.0..1.0f64) {
        // |f̂₁(z) − f₁(z)| ≤ max|f₁'''|/6 · |z|³ ≤ the paper's constant,
        // for any z in the unit interval the paper's domain guarantees.
        let comp = logistic_log1pexp_component();
        let err = (comp.eval_truncated(z) - log1p_exp(z)).abs();
        prop_assert!(err <= fm_poly::taylor::paper_logistic_error_constant() + 1e-12);
    }

    #[test]
    fn quadratic_regularization_shifts_eval_by_lambda_norm_sq(
        (p, w) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), omega(d))),
        lambda in 0.0..5.0f64,
    ) {
        // (M + λI) adds exactly λ‖ω‖² to the objective.
        let q = p.to_quadratic_form().expect("degree ≤ 2");
        let mut reg = q.clone();
        reg.regularize(lambda);
        let lhs = reg.eval(&w);
        let rhs = q.eval(&w) + lambda * vecops::dot(&w, &w);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn phi_j_enumeration_counts(d in 1usize..6, j in 0u32..4) {
        let set = monomial::monomials_of_degree(d, j);
        prop_assert_eq!(set.len(), monomial::count_monomials_of_degree(d, j));
        prop_assert!(set.iter().all(|m| m.degree() == j && m.num_vars() == d));
    }

    #[test]
    fn quadratic_add_assign_is_pointwise(
        (p, q, w) in (1usize..4).prop_flat_map(|d| (quadratic_poly(d), quadratic_poly(d), omega(d)))
    ) {
        let qa = p.to_quadratic_form().expect("deg 2");
        let qb = q.to_quadratic_form().expect("deg 2");
        let mut sum = qa.clone();
        sum.add_assign(&qb);
        let lhs = sum.eval(&w);
        let rhs = qa.eval(&w) + qb.eval(&w);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn chebyshev_recovers_arbitrary_quadratics_exactly(
        a0 in small_f64(),
        a1 in small_f64(),
        a2 in small_f64(),
        half_width in 0.1..5.0f64,
    ) {
        // Fitting a degree-2 polynomial with the degree-2 Chebyshev
        // projection is exact for every interval width.
        let cheb = fm_poly::ChebyshevQuadratic::fit(|z| a0 + a1 * z + a2 * z * z, half_width);
        let [b0, b1, b2] = cheb.coefficients();
        let scale = 1.0 + a0.abs() + a1.abs() + a2.abs();
        prop_assert!((b0 - a0).abs() <= 1e-9 * scale, "{b0} vs {a0}");
        prop_assert!((b1 - a1).abs() <= 1e-9 * scale, "{b1} vs {a1}");
        prop_assert!((b2 - a2).abs() <= 1e-9 * scale, "{b2} vs {a2}");
        prop_assert!(cheb.max_error() <= 1e-9 * scale);
    }

    #[test]
    fn chebyshev_error_bound_holds_pointwise(
        half_width in 0.2..4.0f64,
        t in -1.0..=1.0f64,
    ) {
        // The reported max_error must dominate the actual error at every
        // point of the interval (here sampled via t·R).
        let cheb = fm_poly::chebyshev::logistic_chebyshev(half_width);
        let z = t * half_width;
        let err = (cheb.eval(z) - log1p_exp(z)).abs();
        // Grid-estimated sup can undershoot between grid points by O(h²);
        // allow a 1e-6 absolute slack.
        prop_assert!(err <= cheb.max_error() + 1e-6, "err {err} > sup {}", cheb.max_error());
    }

    #[test]
    fn chebyshev_component_roundtrip(
        half_width in 0.2..4.0f64,
        c in proptest::collection::vec(-1.0..1.0f64, 2),
        w in omega(2),
    ) {
        // as_component() must reproduce the fitted polynomial through the
        // TaylorComponent accumulation path.
        let cheb = fm_poly::chebyshev::logistic_chebyshev(half_width);
        let q = cheb.as_component().quadratic_contribution(&c);
        let z = vecops::dot(&c, &w);
        let expected = cheb.eval(z);
        prop_assert!((q.eval(&w) - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
    }
}
