//! Monomials `φ(ω) = ω₁^{c₁} · ω₂^{c₂} ⋯ ω_d^{c_d}` and the degree sets
//! `Φ_j` of Equation 2 in the paper.

use std::fmt;

/// A monomial over `d` model-parameter variables, stored as its exponent
/// vector. `Monomial { exponents: vec![2, 0, 1] }` is `ω₁²·ω₃`.
///
/// Ordering is degree-then-lexicographic so that collections of monomials
/// sort into the paper's `Φ₀, Φ₁, Φ₂, …` grouping naturally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Monomial {
    degree: u32,
    exponents: Vec<u32>,
}

impl Monomial {
    /// Creates a monomial from its exponent vector.
    #[must_use]
    pub fn new(exponents: Vec<u32>) -> Self {
        let degree = exponents.iter().sum();
        Monomial { degree, exponents }
    }

    /// The constant monomial `1` over `d` variables (the sole member of Φ₀).
    #[must_use]
    pub fn constant(d: usize) -> Self {
        Monomial::new(vec![0; d])
    }

    /// The degree-1 monomial `ω_i` over `d` variables.
    ///
    /// # Panics
    /// If `i >= d` (an index bug in the caller, not a data error).
    #[must_use]
    pub fn linear(d: usize, i: usize) -> Self {
        assert!(i < d, "variable index {i} out of range for d={d}");
        let mut e = vec![0; d];
        e[i] = 1;
        Monomial::new(e)
    }

    /// The degree-2 monomial `ω_i·ω_j` (or `ω_i²` when `i == j`).
    ///
    /// # Panics
    /// If `i >= d` or `j >= d`.
    #[must_use]
    pub fn quadratic(d: usize, i: usize, j: usize) -> Self {
        assert!(i < d && j < d, "variable index out of range for d={d}");
        let mut e = vec![0; d];
        e[i] += 1;
        e[j] += 1;
        Monomial::new(e)
    }

    /// Total degree `Σ c_l`.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of variables `d`.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.exponents.len()
    }

    /// Borrow of the exponent vector.
    #[must_use]
    pub fn exponents(&self) -> &[u32] {
        &self.exponents
    }

    /// Evaluates `φ(ω)`.
    ///
    /// # Panics
    /// Debug-asserts `ω.len() == d`; in release the shorter length wins.
    #[must_use]
    pub fn eval(&self, omega: &[f64]) -> f64 {
        debug_assert_eq!(omega.len(), self.exponents.len(), "monomial eval arity");
        self.exponents
            .iter()
            .zip(omega)
            .map(|(&c, &w)| w.powi(c as i32))
            .product()
    }

    /// The partial derivative `∂φ/∂ω_i` as a `(coefficient, monomial)` pair,
    /// or `None` when the variable does not appear.
    #[must_use]
    pub fn partial_derivative(&self, i: usize) -> Option<(f64, Monomial)> {
        let c = *self.exponents.get(i)?;
        if c == 0 {
            return None;
        }
        let mut e = self.exponents.clone();
        e[i] -= 1;
        Some((f64::from(c), Monomial::new(e)))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.degree == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for (i, &c) in self.exponents.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, "·")?;
            }
            first = false;
            write!(f, "ω{}", i + 1)?;
            if c > 1 {
                write!(f, "^{c}")?;
            }
        }
        Ok(())
    }
}

/// Enumerates `Φ_j`: every monomial of total degree exactly `j` over `d`
/// variables (Equation 2 of the paper), in lexicographic exponent order.
///
/// `|Φ_j| = C(d + j − 1, j)`; for the paper's cases only `j ≤ 2` is ever
/// materialised, but the enumeration is fully general.
#[must_use]
pub fn monomials_of_degree(d: usize, j: u32) -> Vec<Monomial> {
    let mut out = Vec::new();
    let mut exponents = vec![0u32; d];
    enumerate_rec(d, j, 0, &mut exponents, &mut out);
    out
}

fn enumerate_rec(
    d: usize,
    remaining: u32,
    var: usize,
    exponents: &mut Vec<u32>,
    out: &mut Vec<Monomial>,
) {
    if var == d {
        if remaining == 0 {
            out.push(Monomial::new(exponents.clone()));
        }
        return;
    }
    if var == d - 1 {
        // Last variable absorbs whatever degree remains: one leaf, no loop.
        exponents[var] = remaining;
        out.push(Monomial::new(exponents.clone()));
        exponents[var] = 0;
        return;
    }
    for c in 0..=remaining {
        exponents[var] = c;
        enumerate_rec(d, remaining - c, var + 1, exponents, out);
        exponents[var] = 0;
    }
}

/// Enumerates `Φ₀ ∪ Φ₁ ∪ … ∪ Φ_J` in degree-major order.
#[must_use]
pub fn monomials_up_to_degree(d: usize, j_max: u32) -> Vec<Monomial> {
    (0..=j_max)
        .flat_map(|j| monomials_of_degree(d, j))
        .collect()
}

/// `|Φ_j| = C(d + j − 1, j)` without materialising the set.
#[must_use]
pub fn count_monomials_of_degree(d: usize, j: u32) -> usize {
    // Multiset coefficient computed multiplicatively to avoid overflow for
    // the small d, j used here.
    if d == 0 {
        return usize::from(j == 0);
    }
    let mut num = 1.0_f64;
    for i in 0..j as usize {
        num *= (d + i) as f64 / (i + 1) as f64;
    }
    num.round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_monomial() {
        let one = Monomial::constant(3);
        assert_eq!(one.degree(), 0);
        assert_eq!(one.eval(&[5.0, 6.0, 7.0]), 1.0);
        assert_eq!(one.to_string(), "1");
    }

    #[test]
    fn linear_and_quadratic_constructors() {
        let w2 = Monomial::linear(3, 1);
        assert_eq!(w2.eval(&[9.0, 4.0, 2.0]), 4.0);
        assert_eq!(w2.to_string(), "ω2");

        let w1w3 = Monomial::quadratic(3, 0, 2);
        assert_eq!(w1w3.eval(&[2.0, 0.0, 5.0]), 10.0);
        assert_eq!(w1w3.to_string(), "ω1·ω3");

        let w1sq = Monomial::quadratic(3, 0, 0);
        assert_eq!(w1sq.eval(&[3.0, 1.0, 1.0]), 9.0);
        assert_eq!(w1sq.to_string(), "ω1^2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn linear_index_checked() {
        let _ = Monomial::linear(2, 2);
    }

    #[test]
    fn eval_general() {
        // ω1²·ω3 at (2, 100, 3) = 4·3 = 12
        let m = Monomial::new(vec![2, 0, 1]);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.eval(&[2.0, 100.0, 3.0]), 12.0);
    }

    #[test]
    fn partial_derivatives() {
        // ∂(ω1²ω2)/∂ω1 = 2·ω1ω2
        let m = Monomial::new(vec![2, 1]);
        let (c, dm) = m.partial_derivative(0).unwrap();
        assert_eq!(c, 2.0);
        assert_eq!(dm, Monomial::new(vec![1, 1]));
        // ∂/∂ω2 = ω1²
        let (c2, dm2) = m.partial_derivative(1).unwrap();
        assert_eq!(c2, 1.0);
        assert_eq!(dm2, Monomial::new(vec![2, 0]));
        // Missing variable → None.
        assert!(Monomial::new(vec![0, 1]).partial_derivative(0).is_none());
        assert!(m.partial_derivative(5).is_none());
    }

    #[test]
    fn phi_0_is_the_constant() {
        let phi0 = monomials_of_degree(3, 0);
        assert_eq!(phi0, vec![Monomial::constant(3)]);
    }

    #[test]
    fn phi_1_is_the_variables() {
        let phi1 = monomials_of_degree(3, 1);
        assert_eq!(phi1.len(), 3);
        for (i, m) in phi1.iter().enumerate() {
            // Lexicographic order puts ω3 first (exponent vector [0,0,1]).
            assert_eq!(m.degree(), 1);
            let mut omega = vec![0.0; 3];
            omega[2 - i] = 7.0;
            assert_eq!(m.eval(&omega), 7.0);
        }
    }

    #[test]
    fn phi_2_count_matches_formula() {
        // |Φ₂| over d vars = d(d+1)/2.
        for d in 1..6 {
            let phi2 = monomials_of_degree(d, 2);
            assert_eq!(phi2.len(), d * (d + 1) / 2);
            assert_eq!(phi2.len(), count_monomials_of_degree(d, 2));
            assert!(phi2.iter().all(|m| m.degree() == 2));
        }
    }

    #[test]
    fn counts_match_enumeration_generally() {
        for d in 1..5 {
            for j in 0..5 {
                assert_eq!(
                    monomials_of_degree(d, j).len(),
                    count_monomials_of_degree(d, j),
                    "d={d}, j={j}"
                );
            }
        }
    }

    #[test]
    fn up_to_degree_is_union() {
        let all = monomials_up_to_degree(2, 2);
        // 1 + 2 + 3 = 6 monomials: {1, ω2, ω1, ω2², ω1ω2, ω1²}
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].degree(), 0);
        assert!(all.windows(2).all(|w| w[0].degree() <= w[1].degree()));
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for m in monomials_up_to_degree(4, 3) {
            assert!(seen.insert(m.clone()), "duplicate monomial {m}");
        }
    }

    #[test]
    fn ordering_is_degree_major() {
        let a = Monomial::new(vec![0, 1]); // degree 1
        let b = Monomial::new(vec![2, 0]); // degree 2
        assert!(a < b);
    }

    #[test]
    fn degenerate_zero_variables() {
        assert_eq!(count_monomials_of_degree(0, 0), 1);
        assert_eq!(count_monomials_of_degree(0, 3), 0);
    }
}
