//! Multivariate polynomial machinery for objective-function perturbation.
//!
//! Section 4 of *Functional Mechanism* (Zhang et al., VLDB 2012) rests on
//! the polynomial representation of objective functions: by the
//! Stone–Weierstrass theorem any continuous differentiable cost
//! `f(t_i, ω)` can be written as `Σ_j Σ_{φ∈Φ_j} λ_{φ t_i} · φ(ω)` where
//! `Φ_j` is the set of degree-`j` monomials over `ω₁…ω_d` (Equation 3).
//! The mechanism then perturbs the *coefficients* `λ_φ`.
//!
//! This crate provides:
//!
//! * [`monomial::Monomial`] and [`monomial::monomials_of_degree`] — the
//!   `φ` and `Φ_j` of Equation 2, with exact enumeration.
//! * [`polynomial::Polynomial`] — a sparse multivariate polynomial keyed by
//!   monomials; evaluation, gradient, arithmetic.
//! * [`quadratic::QuadraticForm`] — the dense degree-≤2 specialisation
//!   `ωᵀMω + αᵀω + β` in which both of the paper's case studies live after
//!   (exact or Taylor-truncated) expansion; this is the structure Algorithm 1
//!   actually perturbs and Section 6 post-processes.
//! * [`taylor`] — Section 5's approximation: decompositions
//!   `f(t,ω) = Σ_l f_l(g_l(t,ω))` with `g_l` linear in ω, degree-2 Taylor
//!   truncation, and the Lemma-4 remainder bounds (including the paper's
//!   closed-form `(e²−e)/6(1+e)³ ≈ 0.015` constant for logistic loss).
//! * [`chebyshev`] — the §8-future-work alternative: degree-2 Chebyshev
//!   truncation over a configurable interval, with measured sup-error;
//!   strictly better worst-case approximation than Taylor on the same
//!   interval, and a width knob trading centre accuracy for tail accuracy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chebyshev;
pub mod monomial;
pub mod polynomial;
pub mod quadratic;
pub mod taylor;

pub use chebyshev::ChebyshevQuadratic;
pub use monomial::Monomial;
pub use polynomial::Polynomial;
pub use quadratic::QuadraticForm;

/// The sparse Equation-3 representation under the name the general-degree
/// estimator stack uses for it ([`Polynomial`] is keyed by monomials and
/// stores only non-zero coefficients — "sparse" in contrast to the dense
/// [`QuadraticForm`] the degree-2 pipeline perturbs).
pub type SparsePolynomial = Polynomial;
