//! Dense degree-2 objective functions `f(ω) = ωᵀMω + αᵀω + β`.
//!
//! After expansion (linear regression, §4.2) or Taylor truncation (logistic
//! regression, §5.2), both of the paper's case studies produce objective
//! functions of exactly this shape. Algorithm 1 perturbs the entries of
//! `(M, α, β)`; Section 6 post-processes `M`. Keeping the quadratic in
//! dense matrix form (rather than as a sparse [`crate::Polynomial`]) is what
//! makes the solve and the spectral analysis direct.

use fm_linalg::{vecops, Matrix};

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;

/// A quadratic function `ωᵀMω + αᵀω + β` over `d` variables.
///
/// `M` is kept symmetric by every constructor and mutation helper in this
/// workspace; [`QuadraticForm::symmetrize`] exists for callers that edit
/// `M` directly through [`QuadraticForm::m_mut`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticForm {
    m: Matrix,
    alpha: Vec<f64>,
    beta: f64,
}

impl QuadraticForm {
    /// The zero quadratic over `d` variables.
    #[must_use]
    pub fn zero(d: usize) -> Self {
        QuadraticForm {
            m: Matrix::zeros(d, d),
            alpha: vec![0.0; d],
            beta: 0.0,
        }
    }

    /// Builds from parts.
    ///
    /// # Panics
    /// If shapes disagree (`M` must be `d×d`, `α` length `d`) — construction
    /// sites are all internal, so this is an invariant, not input validation.
    #[must_use]
    pub fn new(m: Matrix, alpha: Vec<f64>, beta: f64) -> Self {
        assert!(m.is_square(), "M must be square");
        assert_eq!(m.rows(), alpha.len(), "α length must match M dimension");
        QuadraticForm { m, alpha, beta }
    }

    /// Number of variables `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.alpha.len()
    }

    /// The quadratic coefficient matrix `M`.
    #[must_use]
    pub fn m(&self) -> &Matrix {
        &self.m
    }

    /// Mutable access to `M` (callers that break symmetry must
    /// [`QuadraticForm::symmetrize`] afterwards).
    pub fn m_mut(&mut self) -> &mut Matrix {
        &mut self.m
    }

    /// The linear coefficient vector `α`.
    #[must_use]
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Mutable access to `α`.
    pub fn alpha_mut(&mut self) -> &mut [f64] {
        &mut self.alpha
    }

    /// The constant term `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mutable access to `β`.
    pub fn beta_mut(&mut self) -> &mut f64 {
        &mut self.beta
    }

    /// Simultaneous mutable access to `(β, α, M)` — the split borrow fused
    /// accumulation kernels need to update the linear coefficients from
    /// inside a panel tap on `M` (see `Matrix::syrk_acc_visit` in
    /// `fm-linalg`).
    pub fn parts_mut(&mut self) -> (&mut f64, &mut [f64], &mut Matrix) {
        (&mut self.beta, &mut self.alpha, &mut self.m)
    }

    /// Evaluates `ωᵀMω + αᵀω + β`.
    ///
    /// # Panics
    /// Debug-asserts the arity; release builds truncate (`zip` semantics).
    #[must_use]
    pub fn eval(&self, omega: &[f64]) -> f64 {
        debug_assert_eq!(omega.len(), self.dim(), "quadratic eval arity");
        let quad = self
            .m
            .quadratic_form(omega)
            .expect("dimension checked by constructor");
        quad + vecops::dot(&self.alpha, omega) + self.beta
    }

    /// The gradient `∇f(ω) = (M + Mᵀ)ω + α`; for symmetric `M` this is
    /// `2Mω + α`.
    #[must_use]
    pub fn gradient(&self, omega: &[f64]) -> Vec<f64> {
        let m_omega = self.m.matvec(omega).expect("dimension checked");
        let mt_omega = self.m.matvec_transposed(omega).expect("dimension checked");
        let mut g = vecops::add(&m_omega, &mt_omega);
        vecops::axpy(1.0, &self.alpha, &mut g);
        g
    }

    /// The (constant) Hessian `M + Mᵀ`; `2M` for symmetric `M`.
    #[must_use]
    pub fn hessian(&self) -> Matrix {
        self.m.add(&self.m.transpose()).expect("square")
    }

    /// Adds another quadratic form coefficient-wise (in place, no
    /// allocation).
    ///
    /// # Panics
    /// On dimension mismatch (internal invariant).
    pub fn add_assign(&mut self, other: &QuadraticForm) {
        assert_eq!(self.dim(), other.dim(), "quadratic dimension mismatch");
        self.m.add_assign(&other.m).expect("same shape");
        vecops::axpy(1.0, &other.alpha, &mut self.alpha);
        self.beta += other.beta;
    }

    /// Merges a partial objective into this one: coefficient-wise sum,
    /// consuming `other`. This is the reduction step of batched/parallel
    /// coefficient assembly — per-chunk partial `QuadraticForm`s are merged
    /// pairwise in a fixed order, so the reduced result is identical
    /// regardless of how many workers produced the partials.
    ///
    /// # Panics
    /// On dimension mismatch (internal invariant).
    pub fn merge(&mut self, other: QuadraticForm) {
        self.add_assign(&other);
    }

    /// Scales all coefficients by `a`.
    pub fn scale(&mut self, a: f64) {
        self.m.scale_in_place(a);
        vecops::scale(a, &mut self.alpha);
        self.beta *= a;
    }

    /// Forces `M ← (M + Mᵀ)/2`.
    pub fn symmetrize(&mut self) {
        self.m.symmetrize().expect("square by construction");
    }

    /// Adds `λ` to the diagonal of `M` — the §6.1 ridge regularizer.
    pub fn regularize(&mut self, lambda: f64) {
        self.m.add_diagonal(lambda);
    }

    /// `Σ |coefficients|` over degree ≥ 1 terms (`M` entries and `α`)
    /// only. The mechanism perturbs and releases β as well, so a Lemma-1
    /// sensitivity contract needs β's data-dependent share on top of this
    /// — see [`QuadraticForm::coefficient_l1_norm_with_constant`].
    #[must_use]
    pub fn coefficient_l1_norm(&self) -> f64 {
        vecops::norm1(self.m.as_slice()) + vecops::norm1(&self.alpha)
    }

    /// `Σ |coefficients|` over **all** released terms — β, `α` and `M` —
    /// the per-tuple quantity whose doubled maximum is a valid Lemma-1
    /// sensitivity for the full Algorithm-1 release.
    #[must_use]
    pub fn coefficient_l1_norm_with_constant(&self) -> f64 {
        self.beta.abs() + vecops::norm1(self.m.as_slice()) + vecops::norm1(&self.alpha)
    }

    /// Total number of scalar coefficients subject to perturbation
    /// (`d² + d + 1`).
    #[must_use]
    pub fn num_coefficients(&self) -> usize {
        let d = self.dim();
        d * d + d + 1
    }

    /// Converts to the sparse polynomial representation (exact).
    #[must_use]
    pub fn to_polynomial(&self) -> Polynomial {
        let d = self.dim();
        let mut p = Polynomial::zero(d);
        if self.beta != 0.0 {
            p.add_term(Monomial::constant(d), self.beta);
        }
        for (i, &a) in self.alpha.iter().enumerate() {
            if a != 0.0 {
                p.add_term(Monomial::linear(d, i), a);
            }
        }
        for i in 0..d {
            for j in 0..d {
                let v = self.m[(i, j)];
                if v != 0.0 {
                    p.add_term(Monomial::quadratic(d, i, j), v);
                }
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(ω) = 2ω1² + 3ω2² + ω1ω2 − ω1 + 4ω2 + 7, M symmetric.
    fn sample() -> QuadraticForm {
        let m = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 3.0]]).unwrap();
        QuadraticForm::new(m, vec![-1.0, 4.0], 7.0)
    }

    #[test]
    fn eval_known_value() {
        let q = sample();
        // At (1, −1): 2 + 3 − 1 + (−1) + (−4) + 7 = 6.
        assert_eq!(q.eval(&[1.0, -1.0]), 6.0);
        // At origin: β.
        assert_eq!(q.eval(&[0.0, 0.0]), 7.0);
    }

    #[test]
    fn gradient_symmetric_case() {
        let q = sample();
        // ∇f = 2Mω + α = (4ω1 + ω2 − 1, ω1 + 6ω2 + 4).
        assert_eq!(q.gradient(&[1.0, -1.0]), vec![2.0, -1.0]);
        assert_eq!(q.gradient(&[0.0, 0.0]), vec![-1.0, 4.0]);
    }

    #[test]
    fn gradient_asymmetric_m_uses_m_plus_mt() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let q = QuadraticForm::new(m, vec![0.0, 0.0], 0.0);
        // (M + Mᵀ)ω with ω = (1, 1) → [[2,2],[2,2]]·(1,1) = (4, 4).
        assert_eq!(q.gradient(&[1.0, 1.0]), vec![4.0, 4.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let q = sample();
        let omega = [0.4, -0.9];
        let g = q.gradient(&omega);
        let h = 1e-6;
        for i in 0..2 {
            let mut up = omega;
            up[i] += h;
            let mut dn = omega;
            dn[i] -= h;
            let fd = (q.eval(&up) - q.eval(&dn)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-5);
        }
    }

    #[test]
    fn hessian_is_twice_m_for_symmetric() {
        let q = sample();
        let h = q.hessian();
        assert!(h.approx_eq(&q.m().scaled(2.0), 1e-15));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut q = sample();
        q.add_assign(&sample());
        assert_eq!(q.eval(&[1.0, -1.0]), 12.0);
        q.scale(0.25);
        assert_eq!(q.eval(&[1.0, -1.0]), 3.0);
    }

    #[test]
    fn merge_is_coefficientwise_sum() {
        let mut q = sample();
        q.merge(sample());
        let mut expected = sample();
        expected.add_assign(&sample());
        assert_eq!(q, expected);
        assert_eq!(q.eval(&[1.0, -1.0]), 12.0);
    }

    #[test]
    fn merge_order_fixed_reduction_is_deterministic() {
        // Pairwise in-order reduction of the same partials must be
        // bit-identical however many times it is repeated.
        let partials: Vec<QuadraticForm> = (0..5)
            .map(|i| {
                let mut p = sample();
                p.scale(1.0 / (i as f64 + 1.7));
                p
            })
            .collect();
        let reduce = || {
            let mut parts = partials.clone();
            while parts.len() > 1 {
                let mut next = Vec::with_capacity(parts.len().div_ceil(2));
                let mut it = parts.into_iter();
                while let Some(mut left) = it.next() {
                    if let Some(right) = it.next() {
                        left.merge(right);
                    }
                    next.push(left);
                }
                parts = next;
            }
            parts.pop().expect("nonempty")
        };
        let a = reduce();
        let b = reduce();
        assert_eq!(a, b);
    }

    #[test]
    fn regularize_shifts_diagonal_only() {
        let mut q = sample();
        q.regularize(10.0);
        assert_eq!(q.m()[(0, 0)], 12.0);
        assert_eq!(q.m()[(1, 1)], 13.0);
        assert_eq!(q.m()[(0, 1)], 0.5);
    }

    #[test]
    fn l1_norm_and_coefficient_count() {
        let q = sample();
        // |M| entries: 2 + 0.5 + 0.5 + 3 = 6; |α|: 1 + 4 = 5; |β| = 7.
        assert_eq!(q.coefficient_l1_norm(), 11.0);
        assert_eq!(q.coefficient_l1_norm_with_constant(), 18.0);
        assert_eq!(q.num_coefficients(), 4 + 2 + 1);
    }

    #[test]
    fn polynomial_roundtrip() {
        let q = sample();
        let p = q.to_polynomial();
        let q2 = p.to_quadratic_form().expect("degree 2");
        for omega in [[0.0, 0.0], [1.0, 2.0], [-0.3, 0.7]] {
            assert!((q.eval(&omega) - q2.eval(&omega)).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetrize_after_manual_edit() {
        let mut q = sample();
        q.m_mut()[(0, 1)] = 5.0; // break symmetry
        assert!(!q.m().is_symmetric(1e-9));
        q.symmetrize();
        assert!(q.m().is_symmetric(0.0));
        assert_eq!(q.m()[(0, 1)], 2.75);
    }

    #[test]
    #[should_panic(expected = "α length")]
    fn shape_invariant_enforced() {
        let _ = QuadraticForm::new(Matrix::zeros(2, 2), vec![0.0; 3], 0.0);
    }
}
