//! Chebyshev degree-2 approximation of scalar objective components — the
//! alternative "analytical tool" the paper's future-work section (§8) asks
//! about.
//!
//! Section 5 approximates `f_l(z)` by its degree-2 **Taylor** polynomial at
//! `z_l = 0`, which is optimal *at the centre* but degrades like `|z|³`
//! towards the edge of the working interval. A degree-2 **Chebyshev**
//! truncation over `z ∈ [−R, R]` instead spreads the error evenly across
//! the interval (it is within a small factor of the true minimax
//! polynomial), so:
//!
//! * for the same interval (`R = 1`, the paper's Lemma-4 window) the
//!   worst-case approximation error is strictly smaller than Taylor's; and
//! * `R` becomes a tuning knob: a larger `R` keeps the approximation honest
//!   for models with larger `|xᵀω|`, in exchange for more error near 0 and
//!   a (slightly) different coefficient sensitivity.
//!
//! The fitted polynomial is returned in monomial form `a₀ + a₁z + a₂z²`
//! and can be re-packaged as a [`TaylorComponent`]
//! so the whole Algorithm-2 pipeline (per-tuple accumulation, perturbation,
//! §6 post-processing) is reused unchanged; only the sensitivity constant
//! changes (see `fm-core::logreg`'s Chebyshev objective).

use crate::taylor::TaylorComponent;

/// Number of Chebyshev–Gauss quadrature nodes used to project onto
/// `T₀, T₁, T₂`. The integrand (logistic loss and friends) is analytic, so
/// coefficients converge geometrically; 64 nodes leave the projection error
/// at machine precision.
const QUADRATURE_NODES: usize = 64;

/// Grid resolution for the numerical sup-error scan.
const ERROR_SCAN_POINTS: usize = 2_001;

/// A degree-2 Chebyshev truncation `p(z) = a₀ + a₁z + a₂z²` of a scalar
/// function over `[−R, R]`, with its measured sup-error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChebyshevQuadratic {
    half_width: f64,
    /// Monomial coefficients `[a₀, a₁, a₂]`.
    coeffs: [f64; 3],
    /// `sup_{|z| ≤ R} |f(z) − p(z)|`, estimated on a dense grid.
    max_error: f64,
}

impl ChebyshevQuadratic {
    /// Fits the degree-2 Chebyshev truncation of `f` on `[−half_width,
    /// half_width]`.
    ///
    /// The first three Chebyshev coefficients are computed with
    /// Chebyshev–Gauss quadrature
    /// (`c_k = (2/N) Σ_j f(R·cos θ_j)·cos(k θ_j)`), then converted to
    /// monomial form via `T₀ = 1`, `T₁ = u`, `T₂ = 2u² − 1` with `u = z/R`.
    ///
    /// # Panics
    /// Panics if `half_width` is not a finite positive number, or if `f`
    /// returns a non-finite value on the interval — both indicate programmer
    /// error (the interval and component functions are compile-time choices,
    /// not data).
    #[must_use]
    pub fn fit(f: impl Fn(f64) -> f64, half_width: f64) -> Self {
        assert!(
            half_width.is_finite() && half_width > 0.0,
            "half_width must be finite and positive, got {half_width}"
        );
        let r = half_width;
        let n = QUADRATURE_NODES;
        let mut c = [0.0f64; 3];
        for j in 0..n {
            let theta = std::f64::consts::PI * (j as f64 + 0.5) / n as f64;
            let fz = f(r * theta.cos());
            assert!(
                fz.is_finite(),
                "component function non-finite at z = {}",
                r * theta.cos()
            );
            for (k, ck) in c.iter_mut().enumerate() {
                *ck += fz * (k as f64 * theta).cos();
            }
        }
        for ck in &mut c {
            *ck *= 2.0 / n as f64;
        }

        // p(z) = c₀/2 + c₁·(z/R) + c₂·(2(z/R)² − 1).
        let a0 = 0.5 * c[0] - c[2];
        let a1 = c[1] / r;
        let a2 = 2.0 * c[2] / (r * r);

        // Sup-error over a dense grid (the truncation error of an analytic
        // function is smooth, so a 2001-point scan is accurate to ~1e-6·R³).
        let mut max_error = 0.0f64;
        for i in 0..ERROR_SCAN_POINTS {
            let z = r * (2.0 * i as f64 / (ERROR_SCAN_POINTS - 1) as f64 - 1.0);
            let p = a0 + a1 * z + a2 * z * z;
            max_error = max_error.max((f(z) - p).abs());
        }

        ChebyshevQuadratic {
            half_width,
            coeffs: [a0, a1, a2],
            max_error,
        }
    }

    /// The approximation interval's half-width `R`.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Monomial coefficients `[a₀, a₁, a₂]` of `p(z) = a₀ + a₁z + a₂z²`.
    #[must_use]
    pub fn coefficients(&self) -> [f64; 3] {
        self.coeffs
    }

    /// Evaluates the fitted polynomial.
    #[must_use]
    pub fn eval(&self, z: f64) -> f64 {
        let [a0, a1, a2] = self.coeffs;
        a0 + a1 * z + a2 * z * z
    }

    /// `sup_{|z| ≤ R} |f(z) − p(z)|`, estimated numerically at fit time.
    #[must_use]
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// The Lemma-3 style bound on the *averaged* optimality gap when this
    /// approximation replaces the exact component: `L − S ≤ 2·max_error`
    /// per tuple (both the max and the min of `f − p` lie in
    /// `[−max_error, max_error]`).
    #[must_use]
    pub fn lemma3_gap_bound(&self) -> f64 {
        2.0 * self.max_error
    }

    /// Repackages the polynomial as a [`TaylorComponent`] (centre 0, derivs
    /// `[a₀, a₁, 2a₂]`) so the Algorithm-2 accumulation machinery is reused
    /// verbatim.
    ///
    /// The component's `third_deriv_range` is zeroed: the Chebyshev error is
    /// *not* a Taylor remainder, so Lemma-4 bookkeeping does not apply —
    /// callers should use [`ChebyshevQuadratic::max_error`] /
    /// [`ChebyshevQuadratic::lemma3_gap_bound`] instead.
    #[must_use]
    pub fn as_component(&self) -> TaylorComponent {
        let [a0, a1, a2] = self.coeffs;
        TaylorComponent {
            center: 0.0,
            derivs: [a0, a1, 2.0 * a2],
            third_deriv_range: (0.0, 0.0),
        }
    }
}

/// The Chebyshev counterpart of
/// [`logistic_log1pexp_component`](crate::taylor::logistic_log1pexp_component):
/// degree-2 Chebyshev truncation of `f₁(z) = log(1 + eᶻ)` over `[−R, R]`.
///
/// Because `log(1+eᶻ) − z/2` is even, the fitted `a₁` equals `½` exactly
/// (up to quadrature rounding) for every `R` — only the curvature `a₂` and
/// the constant `a₀` move. As `R → 0` the fit converges to the paper's
/// Taylor constants `(log 2, ½, ⅛)`.
#[must_use]
pub fn logistic_chebyshev(half_width: f64) -> ChebyshevQuadratic {
    ChebyshevQuadratic::fit(crate::taylor::log1p_exp, half_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taylor::{log1p_exp, logistic_log1pexp_component};

    #[test]
    fn recovers_exact_quadratic() {
        // Fitting a degree-2 polynomial must reproduce it exactly.
        let f = |z: f64| 1.5 - 0.7 * z + 0.3 * z * z;
        let cheb = ChebyshevQuadratic::fit(f, 2.0);
        let [a0, a1, a2] = cheb.coefficients();
        assert!((a0 - 1.5).abs() < 1e-12);
        assert!((a1 + 0.7).abs() < 1e-12);
        assert!((a2 - 0.3).abs() < 1e-12);
        assert!(cheb.max_error() < 1e-12);
        assert!(cheb.lemma3_gap_bound() < 1e-11);
    }

    #[test]
    fn logistic_linear_coefficient_is_half() {
        // log(1+eᶻ) − z/2 is even ⇒ a₁ = ½ exactly, for every R.
        for &r in &[0.5, 1.0, 2.0, 4.0] {
            let cheb = logistic_chebyshev(r);
            assert!(
                (cheb.coefficients()[1] - 0.5).abs() < 1e-12,
                "a₁ = {} at R = {r}",
                cheb.coefficients()[1]
            );
        }
    }

    #[test]
    fn logistic_converges_to_taylor_as_r_shrinks() {
        let cheb = logistic_chebyshev(1e-3);
        let [a0, a1, a2] = cheb.coefficients();
        assert!((a0 - std::f64::consts::LN_2).abs() < 1e-7);
        assert!((a1 - 0.5).abs() < 1e-7);
        assert!((a2 - 0.125).abs() < 1e-4, "a₂ = {a2}");
    }

    #[test]
    fn logistic_beats_taylor_sup_error_on_same_interval() {
        // On [−1, 1] the Chebyshev fit's worst error must be strictly below
        // the Taylor truncation's worst error (≈ 0.0152·? — measure both).
        let cheb = logistic_chebyshev(1.0);
        let taylor = logistic_log1pexp_component();
        let mut taylor_sup = 0.0f64;
        for i in 0..=2_000 {
            let z = -1.0 + 2.0 * i as f64 / 2_000.0;
            taylor_sup = taylor_sup.max((taylor.eval_truncated(z) - log1p_exp(z)).abs());
        }
        assert!(
            cheb.max_error() < taylor_sup,
            "chebyshev {} should beat taylor {}",
            cheb.max_error(),
            taylor_sup
        );
        // And by a real margin (minimax spreads error: typically several-fold lower
        // for cubic-dominated remainders).
        assert!(cheb.max_error() < 0.6 * taylor_sup);
    }

    #[test]
    fn error_grows_with_interval() {
        let e1 = logistic_chebyshev(1.0).max_error();
        let e2 = logistic_chebyshev(2.0).max_error();
        let e4 = logistic_chebyshev(4.0).max_error();
        assert!(e1 < e2 && e2 < e4, "{e1} {e2} {e4}");
    }

    #[test]
    fn curvature_shrinks_with_interval() {
        // Wider fits flatten the parabola (the paper-relevant effect: lower
        // a₂ ⇒ lower degree-2 sensitivity contribution).
        let a2_1 = logistic_chebyshev(1.0).coefficients()[2];
        let a2_4 = logistic_chebyshev(4.0).coefficients()[2];
        assert!(a2_1 > a2_4 && a2_4 > 0.0, "{a2_1} vs {a2_4}");
    }

    #[test]
    fn as_component_accumulates_identically() {
        use crate::QuadraticForm;
        let cheb = logistic_chebyshev(1.0);
        let comp = cheb.as_component();
        let c = [0.6, -0.3];
        let mut q = QuadraticForm::zero(2);
        comp.accumulate_into(&c, &mut q);
        for omega in [[0.0, 0.0], [0.5, 1.0], [-1.0, 0.4]] {
            let z = c[0] * omega[0] + c[1] * omega[1];
            assert!(
                (q.eval(&omega) - cheb.eval(z)).abs() < 1e-12,
                "mismatch at {omega:?}"
            );
        }
    }

    #[test]
    fn eval_matches_coefficients() {
        let cheb = logistic_chebyshev(2.0);
        let [a0, a1, a2] = cheb.coefficients();
        for &z in &[-2.0, -0.5, 0.0, 1.0, 2.0] {
            assert!((cheb.eval(z) - (a0 + a1 * z + a2 * z * z)).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "half_width must be finite and positive")]
    fn rejects_bad_interval() {
        let _ = ChebyshevQuadratic::fit(|z| z, 0.0);
    }

    #[test]
    fn near_equioscillation_of_the_error() {
        // A Chebyshev truncation of an analytic function is near-minimax:
        // the error should touch ≈ ±max_error several times rather than
        // being one-sided. Check the error attains both signs at ≥ 60% of
        // the sup magnitude.
        let cheb = logistic_chebyshev(1.0);
        let mut min_err = f64::INFINITY;
        let mut max_err = f64::NEG_INFINITY;
        for i in 0..=2_000 {
            let z = -1.0 + 2.0 * i as f64 / 2_000.0;
            let err = log1p_exp(z) - cheb.eval(z);
            min_err = min_err.min(err);
            max_err = max_err.max(err);
        }
        assert!(max_err > 0.6 * cheb.max_error(), "{max_err}");
        assert!(min_err < -0.6 * cheb.max_error(), "{min_err}");
    }
}
