//! Section 5 of the paper: degree-2 Taylor truncation of non-polynomial
//! objective functions.
//!
//! The paper assumes the cost decomposes as
//! `f(t_i, ω) = Σ_{l=1}^{m} f_l(g_l(t_i, ω))` where each `g_l` is linear in
//! ω, i.e. `g_l(t_i, ω) = c_l(t_i)ᵀ ω` for some per-tuple coefficient
//! vector `c_l(t_i)` (Equation 6; both case studies have this shape). Each
//! scalar `f_l` is Taylor-expanded around a centre `z_l` and truncated at
//! degree 2 (Equation 10), yielding a per-tuple [`QuadraticForm`]
//! contribution:
//!
//! ```text
//! f_l(cᵀω) ≈ f_l(z) + f_l'(z)(cᵀω − z) + ½f_l''(z)(cᵀω − z)²
//!          = [f−f'z+½f''z²] + [(f'−f''z)·c]ᵀω + ωᵀ[½f''·ccᵀ]ω
//! ```
//!
//! [`TaylorComponent`] packages `(z_l, f_l(z_l), f_l'(z_l), f_l''(z_l))`
//! together with a bound on the third derivative over `[z_l−1, z_l+1]`,
//! from which Lemmas 3–4's approximation-error interval follows.
//!
//! For logistic regression the two components are
//! [`logistic_log1pexp_component`] (`f₁(z) = log(1+eᶻ)`, centred at 0, with
//! `f₁(0)=log 2`, `f₁'(0)=½`, `f₁''(0)=¼`) and [`identity_component`]
//! (`f₂(z) = z`, exact at degree 1).

use fm_linalg::vecops;

use crate::quadratic::QuadraticForm;

/// One scalar component `f_l` of a decomposed objective, carrying the data
/// needed for degree-2 truncation and for the Lemma-4 remainder bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaylorComponent {
    /// Expansion centre `z_l`.
    pub center: f64,
    /// `[f_l(z_l), f_l'(z_l), f_l''(z_l)]`.
    pub derivs: [f64; 3],
    /// `(min, max)` of `f_l'''` over `[z_l − 1, z_l + 1]`; both zero for
    /// polynomials of degree ≤ 2 (exact truncation).
    pub third_deriv_range: (f64, f64),
}

impl TaylorComponent {
    /// Evaluates the truncated scalar `f̂_l(z)` (degree-2 Taylor polynomial
    /// around the centre).
    #[must_use]
    pub fn eval_truncated(&self, z: f64) -> f64 {
        let dz = z - self.center;
        self.derivs[0] + self.derivs[1] * dz + 0.5 * self.derivs[2] * dz * dz
    }

    /// Accumulates this component's per-tuple quadratic contribution for the
    /// linear form `g(ω) = cᵀω` into `q`.
    ///
    /// # Panics
    /// Debug-asserts that `c.len() == q.dim()`.
    pub fn accumulate_into(&self, c: &[f64], q: &mut QuadraticForm) {
        debug_assert_eq!(c.len(), q.dim(), "coefficient arity");
        let z = self.center;
        let [f0, f1, f2] = self.derivs;
        // Constant: f − f'z + ½f''z².
        *q.beta_mut() += f0 - f1 * z + 0.5 * f2 * z * z;
        // Linear: (f' − f''z)·c.
        let lin = f1 - f2 * z;
        vecops::axpy(lin, c, q.alpha_mut());
        // Quadratic: ½f'' · ccᵀ (symmetric by construction).
        if f2 != 0.0 {
            q.m_mut()
                .rank1_update(0.5 * f2, c)
                .expect("arity checked above");
        }
    }

    /// Accumulates this component's contribution for a whole row-major
    /// block of linear forms `g_i(ω) = c_iᵀω` at once (`rows.len() = k·d`,
    /// `k` tuples of dimension `d = q.dim()`): the batched counterpart of
    /// calling [`TaylorComponent::accumulate_into`] per tuple, expressed as
    /// three Gram kernels —
    ///
    /// ```text
    /// β += k·(f − f'z + ½f''z²)      (constant, closed form)
    /// α += (f' − f''z)·Σᵢ cᵢ         (column sums)
    /// M += ½f''·CᵀC                  (blocked syrk)
    /// ```
    ///
    /// # Panics
    /// Debug-asserts that `rows.len()` is a multiple of `q.dim()`.
    pub fn accumulate_batch_into(&self, rows: &[f64], q: &mut QuadraticForm) {
        let d = q.dim();
        debug_assert_eq!(rows.len() % d.max(1), 0, "batch arity");
        let k = rows.len().checked_div(d).unwrap_or(0);
        if k == 0 {
            return;
        }
        let z = self.center;
        let [f0, f1, f2] = self.derivs;
        *q.beta_mut() += k as f64 * (f0 - f1 * z + 0.5 * f2 * z * z);
        let lin = f1 - f2 * z;
        match (f2 != 0.0, lin != 0.0) {
            (true, true) => {
                // Single-pass fusion: the syrk kernel packs each panel of
                // tuples column-major anyway, so the `Σx` column sums read
                // the pack instead of re-streaming the row-major block.
                // `sum_blocked_acc` groups rows four at a time exactly as
                // `col_sums_acc` does and panels break on multiples of
                // eight, so the fused path is bit-identical to the
                // two-pass one (pinned by this module's tests and the
                // facade's `tests/batched_assembly.rs`).
                let (_, alpha, m) = q.parts_mut();
                m.syrk_acc_visit(0.5 * f2, rows, d, &mut |panel, pk| {
                    for (j, out) in alpha.iter_mut().enumerate() {
                        vecops::sum_blocked_acc(lin, &panel[j * pk..(j + 1) * pk], out);
                    }
                })
                .expect("arity checked above");
            }
            (true, false) => {
                q.m_mut()
                    .syrk_acc(0.5 * f2, rows, d)
                    .expect("arity checked above");
            }
            (false, true) => vecops::col_sums_acc(lin, rows, d, q.alpha_mut()),
            (false, false) => {}
        }
    }

    /// Column-major counterpart of [`TaylorComponent::accumulate_batch_into`]:
    /// accumulates the contribution of tuples `[lo, hi)` read from `ct`, the
    /// `d × n` **transpose** of the coefficient block (feature columns
    /// contiguous — e.g. a cached `Dataset::columnar()` view). The kernels
    /// group floating-point sums exactly as the row-major path does, so the
    /// two layouts produce bit-identical coefficients.
    ///
    /// # Panics
    /// Debug-asserts `ct.rows() == q.dim()` and `lo ≤ hi ≤ ct.cols()`.
    pub fn accumulate_cols_into(
        &self,
        ct: &fm_linalg::Matrix,
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        let d = q.dim();
        debug_assert_eq!(ct.rows(), d, "columnar arity");
        debug_assert!(lo <= hi && hi <= ct.cols(), "columnar range");
        let k = hi - lo;
        if k == 0 {
            return;
        }
        let z = self.center;
        let [f0, f1, f2] = self.derivs;
        *q.beta_mut() += k as f64 * (f0 - f1 * z + 0.5 * f2 * z * z);
        let lin = f1 - f2 * z;
        if lin != 0.0 {
            for (j, out) in q.alpha_mut().iter_mut().enumerate() {
                vecops::sum_blocked_acc(lin, &ct.row(j)[lo..hi], out);
            }
        }
        if f2 != 0.0 {
            q.m_mut()
                .syrk_cols_acc(0.5 * f2, ct, lo, hi)
                .expect("arity checked above");
        }
    }

    /// This component's per-tuple quadratic contribution as a fresh form.
    #[must_use]
    pub fn quadratic_contribution(&self, c: &[f64]) -> QuadraticForm {
        let mut q = QuadraticForm::zero(c.len());
        self.accumulate_into(c, &mut q);
        q
    }

    /// Width of the Lemma-4 remainder interval for this component:
    /// `(max f''' − min f''')/6` with `(z − z_l)³ ∈ [−1, 1]`.
    ///
    /// Summed over components this bounds `f̃_D(ω̂) − f̃_D(ω̃)` *per tuple*
    /// (Lemma 3's `L − S` divided by `n`).
    #[must_use]
    pub fn remainder_width(&self) -> f64 {
        let (lo, hi) = self.third_deriv_range;
        (hi - lo) / 6.0
    }
}

/// The `f₁(z) = log(1 + eᶻ)` component of logistic loss, expanded at
/// `z₁ = 0` with the paper's constants `f₁(0)=log 2, f₁'(0)=½, f₁''(0)=¼`
/// (Section 5.1).
///
/// The third derivative is `f₁'''(z) = (eᶻ − e²ᶻ)/(1+eᶻ)³`; over `[−1, 1]`
/// its extrema are `±(e² − e)/(1+e)³` (Section 5.2).
#[must_use]
pub fn logistic_log1pexp_component() -> TaylorComponent {
    let e = std::f64::consts::E;
    let extreme = (e * e - e) / (1.0 + e).powi(3);
    TaylorComponent {
        center: 0.0,
        derivs: [std::f64::consts::LN_2, 0.5, 0.25],
        third_deriv_range: (-extreme, extreme),
    }
}

/// The `f₂(z) = z` component of logistic loss: exact at degree 1, zero
/// remainder.
#[must_use]
pub fn identity_component() -> TaylorComponent {
    TaylorComponent {
        center: 0.0,
        derivs: [0.0, 1.0, 0.0],
        third_deriv_range: (0.0, 0.0),
    }
}

/// The `f₁(z) = eᶻ` component of **Poisson** loss
/// `f(t, ω) = exp(xᵀω) − y·xᵀω`, expanded at `z₁ = 0`
/// (`f₁(0) = f₁'(0) = f₁''(0) = 1`) — the §8-future-work extension of
/// Algorithm 2 to count regression.
///
/// The third derivative is `eᶻ` itself; over `[−1, 1]` its range is
/// `[1/e, e]`, so the Lemma-4 remainder width is `(e − 1/e)/6 ≈ 0.392` —
/// larger than the logistic constant but still data-independent.
#[must_use]
pub fn poisson_exp_component() -> TaylorComponent {
    let e = std::f64::consts::E;
    TaylorComponent {
        center: 0.0,
        derivs: [1.0, 1.0, 1.0],
        third_deriv_range: (1.0 / e, e),
    }
}

/// Value and first two derivatives of the **pseudo-Huber** (smoothed
/// absolute) loss `h(u) = √(u² + γ²) − γ` at `u` — the §5-style smoothing
/// of the median-regression check loss `|u|` (Chen et al. 2020, "Median
/// regression with differential privacy", smooth the non-differentiable
/// pinball loss before Taylor truncation):
///
/// ```text
/// h'(u)  = u / √(u² + γ²)            ∈ (−1, 1)
/// h''(u) = γ² / (u² + γ²)^{3/2}      ∈ (0, 1/γ]
/// ```
///
/// The `− γ` shift makes `h(0) = 0` without touching the minimiser or any
/// degree-≥1 coefficient. As `γ → 0` the loss approaches `|u|`; the
/// curvature bound `1/γ` (hence the sensitivity and the truncation
/// remainder, see [`pseudo_huber_third_derivative_bound`]) grows in
/// exchange.
///
/// # Panics
/// Debug-asserts `γ > 0`.
#[must_use]
pub fn pseudo_huber_derivs(u: f64, gamma: f64) -> [f64; 3] {
    debug_assert!(gamma > 0.0, "pseudo_huber_derivs: γ must be positive");
    let s = (u * u + gamma * gamma).sqrt();
    [s - gamma, u / s, gamma * gamma / (s * s * s)]
}

/// Upper bound on `|h'''|` of the pseudo-Huber loss over all of ℝ:
/// `h'''(u) = −3γ²u/(u² + γ²)^{5/2}` peaks at `|u| = γ/2` with magnitude
/// `(3/2)(4/5)^{5/2}/γ²` — the Lemma-4-style remainder constant of the
/// smoothed median objective (data-independent, `O(1/γ²)`).
#[must_use]
pub fn pseudo_huber_third_derivative_bound(gamma: f64) -> f64 {
    1.5 * 0.8_f64.powf(2.5) / (gamma * gamma)
}

/// Value and first two derivatives of the **smoothed pinball** (quantile)
/// loss at residual `u` for quantile level `τ ∈ (0, 1)` and smoothing
/// half-width `γ > 0`:
///
/// ```text
/// ρ_τγ(u) = (2τ − 1)·u + √(u² + γ²) − γ
/// ```
///
/// This is twice the γ-smoothed pinball loss `u·(τ − 1[u<0])`: as
/// `γ → 0`, `ρ_τγ(u) → 2τ·u` for `u > 0` and `2(τ−1)·u` for `u < 0` —
/// the asymmetric check loss of quantile regression, scaled by the
/// constant 2 so that **τ = ½ coincides bitwise with the pseudo-Huber
/// median loss** ([`pseudo_huber_derivs`]): the `(2τ−1)` slope term
/// vanishes identically and the remaining term *is* `√(u²+γ²) − γ`.
///
/// Derivatives (the added term is linear, so only `ρ'` changes):
///
/// ```text
/// ρ'(u)  = (2τ − 1) + u/√(u² + γ²)   ∈ ((2τ−1) − 1, (2τ−1) + 1)
/// ρ''(u) = γ²/(u² + γ²)^{3/2}        ∈ (0, 1/γ]   (τ-independent)
/// ```
///
/// The slope bound is **asymmetric** in τ — on the label range `|u| ≤ 1`,
/// `max |ρ'| = |2τ−1| + 1/√(1+γ²)` — which is exactly the `c₁` the
/// quantile objective's Lemma-1 sensitivity consumes.
///
/// # Panics
/// Debug-asserts `γ > 0` and `τ ∈ (0, 1)`.
#[must_use]
pub fn smoothed_pinball_derivs(u: f64, tau: f64, gamma: f64) -> [f64; 3] {
    debug_assert!(
        tau > 0.0 && tau < 1.0,
        "smoothed_pinball_derivs: τ must be in (0, 1)"
    );
    let [h0, h1, h2] = pseudo_huber_derivs(u, gamma);
    let slope = 2.0 * tau - 1.0;
    [slope * u + h0, slope + h1, h2]
}

/// Value and first two derivatives of the **Huber** loss at `u` with
/// threshold `δ`:
///
/// ```text
/// H(u)  = u²/2              if |u| ≤ δ,   δ(|u| − δ/2) otherwise
/// H'(u) = clamp(u, −δ, δ)
/// H''(u)= 1 if |u| < δ, else 0   (taken as 1 at |u| = δ)
/// ```
///
/// `H` is `C¹` with piecewise-constant curvature: tuples inside the
/// quadratic region contribute full least-squares curvature, tuples in the
/// linear tails contribute a bounded-slope linear pull only — the
/// bounded-influence property that makes the surrogate robust to label
/// outliers.
///
/// # Panics
/// Debug-asserts `δ > 0`.
#[must_use]
pub fn huber_derivs(u: f64, delta: f64) -> [f64; 3] {
    debug_assert!(delta > 0.0, "huber_derivs: δ must be positive");
    if u.abs() <= delta {
        [0.5 * u * u, u, 1.0]
    } else {
        [delta * (u.abs() - 0.5 * delta), delta * u.signum(), 0.0]
    }
}

/// The paper's headline truncation-error constant for logistic regression,
/// `(e² − e) / (6(1 + e)³) ≈ 0.015` (end of Section 5.2).
///
/// Note: the paper's displayed derivation `L/n − S/n` actually evaluates to
/// twice this value (`≈ 0.030`, see [`logistic_truncation_error_bound`]);
/// the `≈ 0.015` constant printed in the paper matches the single-sided
/// magnitude. Both are exposed so the experiment harness can report either.
#[must_use]
pub fn paper_logistic_error_constant() -> f64 {
    let e = std::f64::consts::E;
    (e * e - e) / (6.0 * (1.0 + e).powi(3))
}

/// The full Lemma-3 bound `(L − S)/n` on the averaged optimality gap
/// `(f̃_D(ω̂) − f̃_D(ω̃))/n` for logistic regression: the remainder-interval
/// width of the `log(1+eᶻ)` component (`≈ 0.030`).
#[must_use]
pub fn logistic_truncation_error_bound() -> f64 {
    logistic_log1pexp_component().remainder_width()
}

/// True logistic scalar loss `log(1 + eᶻ)`, computed stably for large `|z|`.
///
/// Exposed here so both the exact (NoPrivacy) and truncated objectives share
/// one numerically careful implementation.
#[must_use]
pub fn log1p_exp(z: f64) -> f64 {
    if z > 0.0 {
        // log(1+e^z) = z + log(1+e^{−z}) avoids overflow.
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulation_matches_per_tuple() {
        for component in [
            logistic_log1pexp_component(),
            identity_component(),
            poisson_exp_component(),
        ] {
            for k in [0usize, 1, 3, 4, 5, 9] {
                let d = 3;
                let rows: Vec<f64> = (0..k * d)
                    .map(|i| ((i * 13) % 11) as f64 / 11.0 - 0.45)
                    .collect();
                let mut batched = QuadraticForm::zero(d);
                component.accumulate_batch_into(&rows, &mut batched);
                let mut tupled = QuadraticForm::zero(d);
                for row in rows.chunks_exact(d) {
                    component.accumulate_into(row, &mut tupled);
                }
                assert!((batched.beta() - tupled.beta()).abs() < 1e-12, "β k={k}");
                assert!(
                    vecops::approx_eq(batched.alpha(), tupled.alpha(), 1e-12),
                    "α k={k}"
                );
                assert!(batched.m().approx_eq(tupled.m(), 1e-12), "M k={k}");
            }
        }
    }

    #[test]
    fn logistic_constants_match_paper() {
        let c = logistic_log1pexp_component();
        assert!((c.derivs[0] - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(c.derivs[1], 0.5);
        assert_eq!(c.derivs[2], 0.25);
        assert_eq!(c.center, 0.0);
    }

    #[test]
    fn paper_error_constant_is_0_015() {
        let v = paper_logistic_error_constant();
        assert!((v - 0.015).abs() < 2e-3, "constant {v} should be ≈ 0.015");
    }

    #[test]
    fn full_bound_is_twice_paper_constant() {
        let full = logistic_truncation_error_bound();
        assert!((full - 2.0 * paper_logistic_error_constant()).abs() < 1e-15);
        assert!(
            (full - 0.0303).abs() < 1e-3,
            "bound {full} should be ≈ 0.030"
        );
    }

    #[test]
    fn third_derivative_extrema_verified_numerically() {
        // f'''(z) = (e^z − e^{2z})/(1+e^z)³ scanned over [−1, 1].
        let f3 = |z: f64| -> f64 {
            let ez: f64 = z.exp();
            (ez - ez * ez) / (1.0 + ez).powi(3)
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let steps = 20_000;
        for i in 0..=steps {
            let z = -1.0 + 2.0 * i as f64 / steps as f64;
            min = min.min(f3(z));
            max = max.max(f3(z));
        }
        let c = logistic_log1pexp_component();
        assert!((min - c.third_deriv_range.0).abs() < 1e-6, "min {min}");
        assert!((max - c.third_deriv_range.1).abs() < 1e-6, "max {max}");
    }

    #[test]
    fn truncated_eval_matches_taylor_by_hand() {
        let c = logistic_log1pexp_component();
        // f̂(z) = ln2 + z/2 + z²/8.
        let z = 0.6;
        let expected = std::f64::consts::LN_2 + 0.3 + 0.045;
        assert!((c.eval_truncated(z) - expected).abs() < 1e-12);
    }

    #[test]
    fn truncation_error_small_near_center() {
        let c = logistic_log1pexp_component();
        for &z in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            let err = (c.eval_truncated(z) - log1p_exp(z)).abs();
            // The cubic remainder over [−1,1] is ≤ max|f'''|/6 ≈ 0.0151.
            assert!(err <= 0.0152, "error {err} at z={z}");
        }
    }

    #[test]
    fn poisson_component_constants() {
        let c = poisson_exp_component();
        assert_eq!(c.derivs, [1.0, 1.0, 1.0]);
        assert_eq!(c.center, 0.0);
        // Truncated eval is 1 + z + z²/2.
        assert!((c.eval_truncated(0.4) - (1.0 + 0.4 + 0.08)).abs() < 1e-15);
        // Remainder width (e − 1/e)/6 ≈ 0.392.
        assert!((c.remainder_width() - 0.3918).abs() < 1e-3);
        // Truncation error within the remainder bound over [−1, 1].
        for &z in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            let err = (c.eval_truncated(z) - z.exp()).abs();
            assert!(
                err <= c.third_deriv_range.1 / 6.0 + 1e-12,
                "err {err} at z={z}"
            );
        }
    }

    #[test]
    fn identity_component_is_exact() {
        let c = identity_component();
        for &z in &[-3.0, 0.0, 2.5] {
            assert_eq!(c.eval_truncated(z), z);
        }
        assert_eq!(c.remainder_width(), 0.0);
    }

    #[test]
    fn quadratic_contribution_expands_correctly() {
        // Component f(z) = log(1+e^z) at c = (0.5, −0.5):
        // contribution = ln2 + ½cᵀω + ⅛(cᵀω)².
        let comp = logistic_log1pexp_component();
        let c = [0.5, -0.5];
        let q = comp.quadratic_contribution(&c);
        for omega in [[0.0, 0.0], [1.0, 1.0], [0.3, -0.8]] {
            let z = vecops::dot(&c, &omega);
            let expected = comp.eval_truncated(z);
            assert!(
                (q.eval(&omega) - expected).abs() < 1e-12,
                "mismatch at {omega:?}"
            );
        }
        // M = ⅛ccᵀ must be symmetric.
        assert!(q.m().is_symmetric(0.0));
        assert!((q.m()[(0, 0)] - 0.125 * 0.25).abs() < 1e-15);
    }

    #[test]
    fn nonzero_center_expansion() {
        // f(z) = z² expanded at z=1: derivs (1, 2, 2), exact.
        let comp = TaylorComponent {
            center: 1.0,
            derivs: [1.0, 2.0, 2.0],
            third_deriv_range: (0.0, 0.0),
        };
        let c = [2.0];
        let q = comp.quadratic_contribution(&c);
        for &w in &[-1.0, 0.0, 0.5, 3.0] {
            let z = 2.0 * w;
            assert!((q.eval(&[w]) - z * z).abs() < 1e-12, "at ω={w}");
        }
    }

    #[test]
    fn accumulate_sums_components() {
        // Logistic loss for a tuple (x, y): f₁(xᵀω) + f₂(−y·xᵀω).
        let x = [0.3, 0.4];
        let y = 1.0;
        let mut q = QuadraticForm::zero(2);
        logistic_log1pexp_component().accumulate_into(&x, &mut q);
        let neg_yx = [-y * x[0], -y * x[1]];
        identity_component().accumulate_into(&neg_yx, &mut q);
        // Check against the direct formula ln2 + ½z + ⅛z² − yz at a point.
        let omega = [1.0, -2.0];
        let z = vecops::dot(&x, &omega);
        let expected = std::f64::consts::LN_2 + 0.5 * z + 0.125 * z * z - y * z;
        assert!((q.eval(&omega) - expected).abs() < 1e-12);
    }

    #[test]
    fn pseudo_huber_derivs_match_finite_differences() {
        let h = 1e-6;
        for gamma in [0.1, 0.25, 1.0] {
            for &u in &[-1.0, -0.3, 0.0, 0.2, 0.9] {
                let [f, f1, f2] = pseudo_huber_derivs(u, gamma);
                let fp = pseudo_huber_derivs(u + h, gamma)[0];
                let fm = pseudo_huber_derivs(u - h, gamma)[0];
                assert!((f1 - (fp - fm) / (2.0 * h)).abs() < 1e-5, "f' at {u}");
                assert!(
                    (f2 - (fp - 2.0 * f + fm) / (h * h)).abs() < 1e-3,
                    "f'' at {u}"
                );
                assert!(f >= 0.0 && f1.abs() < 1.0 && f2 > 0.0 && f2 <= 1.0 / gamma + 1e-12);
            }
            // h(0) = 0 and h approaches |u| − γ + O(γ²/|u|) for large |u|.
            assert_eq!(pseudo_huber_derivs(0.0, gamma)[0], 0.0);
            let far = pseudo_huber_derivs(100.0, gamma)[0];
            assert!((far - (100.0 - gamma)).abs() <= gamma * gamma / 200.0 + 1e-9);
        }
    }

    #[test]
    fn pseudo_huber_third_derivative_bound_dominates_scan() {
        for gamma in [0.1, 0.5, 2.0] {
            let bound = pseudo_huber_third_derivative_bound(gamma);
            let h = 1e-4 * gamma;
            let mut max_seen = 0.0_f64;
            for i in -4000..=4000 {
                let u = i as f64 * 1e-3;
                let f2p = pseudo_huber_derivs(u + h, gamma)[2];
                let f2m = pseudo_huber_derivs(u - h, gamma)[2];
                max_seen = max_seen.max(((f2p - f2m) / (2.0 * h)).abs());
            }
            assert!(
                max_seen <= bound * (1.0 + 1e-3),
                "γ={gamma}: {max_seen} > {bound}"
            );
            // The bound is tight: the scan must reach ≥ 99% of it.
            assert!(max_seen >= bound * 0.99, "γ={gamma}: bound too loose");
        }
    }

    #[test]
    fn smoothed_pinball_matches_finite_differences_and_asymptotes() {
        let h = 1e-6;
        for tau in [0.1, 0.25, 0.5, 0.9] {
            for gamma in [0.1, 0.25] {
                for &u in &[-1.0, -0.3, 0.0, 0.2, 0.9] {
                    let [f, f1, f2] = smoothed_pinball_derivs(u, tau, gamma);
                    let fp = smoothed_pinball_derivs(u + h, tau, gamma)[0];
                    let fm = smoothed_pinball_derivs(u - h, tau, gamma)[0];
                    assert!((f1 - (fp - fm) / (2.0 * h)).abs() < 1e-5, "ρ' at {u}");
                    assert!(
                        (f2 - (fp - 2.0 * f + fm) / (h * h)).abs() < 1e-3,
                        "ρ'' at {u}"
                    );
                    // Slope bound is the asymmetric |2τ−1| + 1/√(1+γ²).
                    let c1 = (2.0 * tau - 1.0).abs() + 1.0 / (1.0 + gamma * gamma).sqrt();
                    assert!(f1.abs() <= c1 + 1e-12, "|ρ'({u})| = {} > c₁ {c1}", f1.abs());
                }
                // Far from the origin the loss approaches twice the exact
                // pinball: 2τu for u ≫ 0, 2(τ−1)u for u ≪ 0.
                let far = 100.0;
                let up = smoothed_pinball_derivs(far, tau, gamma)[0];
                assert!((up - 2.0 * tau * far).abs() < gamma + 1e-9, "τ={tau}");
                let dn = smoothed_pinball_derivs(-far, tau, gamma)[0];
                assert!((dn - 2.0 * (tau - 1.0) * (-far)).abs() < gamma + 1e-9);
            }
        }
    }

    #[test]
    fn smoothed_pinball_at_half_is_the_pseudo_huber_loss() {
        // τ = ½ kills the (2τ−1) term identically, so the quantile loss
        // degenerates to the median loss bit-for-bit.
        for gamma in [0.05, 0.25, 1.0] {
            for &u in &[-1.0, -0.37, 0.0, 0.61, 1.0] {
                let q = smoothed_pinball_derivs(u, 0.5, gamma);
                let m = pseudo_huber_derivs(u, gamma);
                assert_eq!(q[0].to_bits(), m[0].to_bits(), "ρ at {u}");
                assert_eq!(q[1].to_bits(), m[1].to_bits(), "ρ' at {u}");
                assert_eq!(q[2].to_bits(), m[2].to_bits(), "ρ'' at {u}");
            }
        }
    }

    #[test]
    fn fused_batch_accumulation_is_bit_identical_to_two_pass() {
        // The fused Σx-from-the-syrk-pack path must reproduce the separate
        // col_sums_acc + syrk_acc passes bit-for-bit, remainder rows
        // included.
        for component in [logistic_log1pexp_component(), poisson_exp_component()] {
            for k in [0usize, 1, 5, 233, 1000] {
                let d = 4;
                let rows: Vec<f64> = (0..k * d)
                    .map(|i| ((i * 13) % 11) as f64 / 11.0 - 0.45)
                    .collect();
                let mut fused = QuadraticForm::zero(d);
                component.accumulate_batch_into(&rows, &mut fused);

                let mut two_pass = QuadraticForm::zero(d);
                let z = component.center;
                let [f0, f1, f2] = component.derivs;
                *two_pass.beta_mut() += k as f64 * (f0 - f1 * z + 0.5 * f2 * z * z);
                vecops::col_sums_acc(f1 - f2 * z, &rows, d, two_pass.alpha_mut());
                two_pass.m_mut().syrk_acc(0.5 * f2, &rows, d).unwrap();

                assert_eq!(fused.beta().to_bits(), two_pass.beta().to_bits(), "k={k}");
                for (a, b) in fused.alpha().iter().zip(two_pass.alpha()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "α k={k}");
                }
                for (a, b) in fused.m().as_slice().iter().zip(two_pass.m().as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "M k={k}");
                }
            }
        }
    }

    #[test]
    fn huber_derivs_piecewise_structure() {
        let delta = 0.5;
        // Quadratic region: exactly least squares.
        assert_eq!(huber_derivs(0.3, delta), [0.045, 0.3, 1.0]);
        assert_eq!(huber_derivs(-0.5, delta), [0.125, -0.5, 1.0]);
        // Linear tails: bounded slope ±δ, zero curvature.
        let [f, f1, f2] = huber_derivs(0.9, delta);
        assert!((f - 0.5 * (0.9 - 0.25)).abs() < 1e-15);
        assert_eq!((f1, f2), (0.5, 0.0));
        assert_eq!(huber_derivs(-2.0, delta)[1], -0.5);
        // C¹ continuity at the knot.
        let inner = huber_derivs(delta, delta);
        let outer = huber_derivs(delta + 1e-12, delta);
        assert!((inner[0] - outer[0]).abs() < 1e-11);
        assert!((inner[1] - outer[1]).abs() < 1e-11);
    }

    #[test]
    fn log1p_exp_stability() {
        // No overflow at large positive z; correct asymptotics.
        assert!((log1p_exp(800.0) - 800.0).abs() < 1e-9);
        assert!(log1p_exp(-800.0) >= 0.0);
        assert!(log1p_exp(-800.0) < 1e-300);
        assert!((log1p_exp(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
        // Agreement with naive formula in the safe range.
        for &z in &[-20.0_f64, -1.0, 0.5, 20.0] {
            let naive = (1.0 + z.exp()).ln();
            assert!((log1p_exp(z) - naive).abs() < 1e-12);
        }
    }
}
