//! Sparse multivariate polynomials: the Equation-3 representation
//! `f(ω) = Σ_j Σ_{φ∈Φ_j} λ_φ · φ(ω)`.
//!
//! [`Polynomial`] is the general-degree form used to express objective
//! functions abstractly and to state the sensitivity bound of Lemma 1
//! (`Σ_φ |λ_φ|` is [`Polynomial::coefficient_l1_norm`]). Degree-≤2
//! polynomials convert losslessly to the dense
//! [`crate::quadratic::QuadraticForm`] that the solver consumes.

use std::collections::BTreeMap;

use crate::monomial::Monomial;
use crate::quadratic::QuadraticForm;

/// Coefficients smaller than this are dropped on insertion to keep the
/// representation canonical (so `PartialEq` means mathematical equality for
/// exactly-representable inputs).
const COEFF_EPS: f64 = 0.0;

/// A sparse multivariate polynomial over `d` variables.
///
/// Invariants: every stored monomial has `num_vars() == d`; no stored
/// coefficient is exactly zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    num_vars: usize,
    terms: BTreeMap<Monomial, f64>,
}

impl Polynomial {
    /// The zero polynomial over `d` variables.
    #[must_use]
    pub fn zero(d: usize) -> Self {
        Polynomial {
            num_vars: d,
            terms: BTreeMap::new(),
        }
    }

    /// A constant polynomial.
    #[must_use]
    pub fn constant(d: usize, c: f64) -> Self {
        let mut p = Polynomial::zero(d);
        p.add_term(Monomial::constant(d), c);
        p
    }

    /// Number of variables `d`.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of stored (non-zero) terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total degree (0 for the zero polynomial).
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Adds `coeff · φ` into the polynomial, merging with any existing term.
    ///
    /// # Panics
    /// If the monomial's variable count differs from the polynomial's.
    pub fn add_term(&mut self, phi: Monomial, coeff: f64) {
        assert_eq!(
            phi.num_vars(),
            self.num_vars,
            "monomial arity does not match polynomial"
        );
        let entry = self.terms.entry(phi).or_insert(0.0);
        *entry += coeff;
        if entry.abs() <= COEFF_EPS {
            // Remove exact zeros to keep the map canonical.
            let key = self
                .terms
                .iter()
                .find(|(_, &v)| v == 0.0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }

    /// The coefficient of `φ` (zero when absent).
    #[must_use]
    pub fn coefficient(&self, phi: &Monomial) -> f64 {
        self.terms.get(phi).copied().unwrap_or(0.0)
    }

    /// Iterates `(φ, λ_φ)` in degree-major order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Evaluates the polynomial at `ω`.
    #[must_use]
    pub fn eval(&self, omega: &[f64]) -> f64 {
        self.terms.iter().map(|(m, c)| c * m.eval(omega)).sum()
    }

    /// The gradient `∇f(ω)` evaluated at `ω`.
    #[must_use]
    pub fn gradient(&self, omega: &[f64]) -> Vec<f64> {
        let mut grad = vec![0.0; self.num_vars];
        for (m, c) in &self.terms {
            for (i, g) in grad.iter_mut().enumerate() {
                if let Some((k, dm)) = m.partial_derivative(i) {
                    *g += c * k * dm.eval(omega);
                }
            }
        }
        grad
    }

    /// Adds another polynomial into this one.
    ///
    /// # Panics
    /// On mismatched variable counts.
    pub fn add_assign(&mut self, other: &Polynomial) {
        assert_eq!(self.num_vars, other.num_vars, "polynomial arity mismatch");
        for (m, c) in other.terms() {
            self.add_term(m.clone(), c);
        }
    }

    /// Multiplies two sparse polynomials exactly, term by term — the
    /// workhorse for building higher-degree objectives (e.g. the quartic
    /// loss as `((y − xᵀω)²)²`).
    ///
    /// # Panics
    /// On mismatched variable counts.
    #[must_use]
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        assert_eq!(self.num_vars, other.num_vars, "polynomial arity mismatch");
        let d = self.num_vars;
        let mut out = Polynomial::zero(d);
        for (ma, ca) in self.terms() {
            for (mb, cb) in other.terms() {
                let exps: Vec<u32> = ma
                    .exponents()
                    .iter()
                    .zip(mb.exponents())
                    .map(|(ea, eb)| ea + eb)
                    .collect();
                out.add_term(Monomial::new(exps), ca * cb);
            }
        }
        out
    }

    /// Adds the ridge term `λ·Σ_j ω_j²` — the general-degree analogue of
    /// [`crate::quadratic::QuadraticForm::regularize`]'s `λ·I` diagonal
    /// shift, used by the §6.1-style post-processing of noisy high-degree
    /// releases.
    pub fn regularize(&mut self, lambda: f64) {
        if lambda == 0.0 {
            return;
        }
        for j in 0..self.num_vars {
            let mut exps = vec![0u32; self.num_vars];
            exps[j] = 2;
            self.add_term(Monomial::new(exps), lambda);
        }
    }

    /// Scales every coefficient.
    pub fn scale(&mut self, a: f64) {
        if a == 0.0 {
            self.terms.clear();
            return;
        }
        for c in self.terms.values_mut() {
            *c *= a;
        }
    }

    /// `Σ_φ |λ_φ|` over terms of degree ≥ 1 only. The mechanism releases
    /// the constant coefficient too, so a Lemma-1 sensitivity contract
    /// bounded with this norm must account for the constant's
    /// data-dependent share separately — when in doubt, bound
    /// [`Polynomial::coefficient_l1_norm_with_constant`] instead. (A
    /// data-*independent* constant cancels between neighbour databases
    /// and needs no Δ share, which is when this norm is the right one.)
    #[must_use]
    pub fn coefficient_l1_norm(&self) -> f64 {
        self.terms
            .iter()
            .filter(|(m, _)| m.degree() >= 1)
            .map(|(_, c)| c.abs())
            .sum()
    }

    /// `Σ_φ |λ_φ|` over **all** terms, constant included — the quantity
    /// whose doubled per-tuple maximum is a valid sensitivity `Δ` for the
    /// full Algorithm-1 release (Lemma 1, line 1).
    #[must_use]
    pub fn coefficient_l1_norm_with_constant(&self) -> f64 {
        self.terms.values().map(|c| c.abs()).sum()
    }

    /// Converts a degree-≤2 polynomial to its dense quadratic form.
    ///
    /// Returns `None` when any term has degree ≥ 3. Cross terms `ω_iω_j`
    /// are split evenly between `M[i][j]` and `M[j][i]` so `M` is symmetric
    /// by construction, matching §6.1's requirement.
    #[must_use]
    pub fn to_quadratic_form(&self) -> Option<QuadraticForm> {
        if self.degree() > 2 {
            return None;
        }
        let d = self.num_vars;
        let mut q = QuadraticForm::zero(d);
        for (m, c) in self.terms() {
            match m.degree() {
                0 => *q.beta_mut() += c,
                1 => {
                    let i = m
                        .exponents()
                        .iter()
                        .position(|&e| e == 1)
                        .expect("degree 1");
                    q.alpha_mut()[i] += c;
                }
                2 => {
                    let idx: Vec<usize> = m
                        .exponents()
                        .iter()
                        .enumerate()
                        .filter(|(_, &e)| e > 0)
                        .map(|(i, _)| i)
                        .collect();
                    if idx.len() == 1 {
                        // ω_i² term.
                        let i = idx[0];
                        q.m_mut()[(i, i)] += c;
                    } else {
                        // ω_iω_j cross term, split symmetrically.
                        let (i, j) = (idx[0], idx[1]);
                        q.m_mut()[(i, j)] += c / 2.0;
                        q.m_mut()[(j, i)] += c / 2.0;
                    }
                }
                _ => unreachable!("degree checked above"),
            }
        }
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p(ω) = 2ω1² − 3ω1ω2 + ω2 + 5 over two variables.
    fn sample_poly() -> Polynomial {
        let mut p = Polynomial::zero(2);
        p.add_term(Monomial::quadratic(2, 0, 0), 2.0);
        p.add_term(Monomial::quadratic(2, 0, 1), -3.0);
        p.add_term(Monomial::linear(2, 1), 1.0);
        p.add_term(Monomial::constant(2), 5.0);
        p
    }

    #[test]
    fn construction_and_metadata() {
        let p = sample_poly();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_terms(), 4);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn zero_polynomial() {
        let z = Polynomial::zero(3);
        assert_eq!(z.num_terms(), 0);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(z.coefficient_l1_norm(), 0.0);
    }

    #[test]
    fn eval_known_values() {
        let p = sample_poly();
        // At (1, 1): 2 − 3 + 1 + 5 = 5.
        assert_eq!(p.eval(&[1.0, 1.0]), 5.0);
        // At (2, −1): 8 + 6 − 1 + 5 = 18.
        assert_eq!(p.eval(&[2.0, -1.0]), 18.0);
    }

    #[test]
    fn gradient_matches_hand_computation() {
        let p = sample_poly();
        // ∂p/∂ω1 = 4ω1 − 3ω2 ; ∂p/∂ω2 = −3ω1 + 1.
        let g = p.gradient(&[2.0, -1.0]);
        assert_eq!(g, vec![11.0, -5.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = sample_poly();
        let omega = [0.3, -0.7];
        let g = p.gradient(&omega);
        let h = 1e-6;
        for i in 0..2 {
            let mut up = omega;
            up[i] += h;
            let mut dn = omega;
            dn[i] -= h;
            let fd = (p.eval(&up) - p.eval(&dn)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "component {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn merging_terms_and_cancellation() {
        let mut p = Polynomial::zero(1);
        p.add_term(Monomial::linear(1, 0), 2.0);
        p.add_term(Monomial::linear(1, 0), 3.0);
        assert_eq!(p.coefficient(&Monomial::linear(1, 0)), 5.0);
        assert_eq!(p.num_terms(), 1);
        p.add_term(Monomial::linear(1, 0), -5.0);
        assert_eq!(p.num_terms(), 0, "cancelled term must be removed");
    }

    #[test]
    fn add_assign_and_scale() {
        let mut p = sample_poly();
        let q = sample_poly();
        p.add_assign(&q);
        assert_eq!(p.eval(&[1.0, 1.0]), 10.0);
        p.scale(0.5);
        assert_eq!(p.eval(&[1.0, 1.0]), 5.0);
        p.scale(0.0);
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut p = Polynomial::zero(2);
        p.add_term(Monomial::constant(3), 1.0);
    }

    #[test]
    fn l1_norms() {
        let p = sample_poly();
        // Degree ≥ 1 terms: |2| + |−3| + |1| = 6; with constant: 11.
        assert_eq!(p.coefficient_l1_norm(), 6.0);
        assert_eq!(p.coefficient_l1_norm_with_constant(), 11.0);
    }

    #[test]
    fn quadratic_form_roundtrip() {
        let p = sample_poly();
        let q = p.to_quadratic_form().expect("degree 2");
        for omega in [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0], [-0.5, 0.25]] {
            assert!(
                (q.eval(&omega) - p.eval(&omega)).abs() < 1e-12,
                "mismatch at {omega:?}"
            );
        }
        // M must come out symmetric.
        assert!(q.m().is_symmetric(0.0));
    }

    #[test]
    fn quadratic_form_rejects_cubics() {
        let mut p = Polynomial::zero(1);
        p.add_term(Monomial::new(vec![3]), 1.0);
        assert!(p.to_quadratic_form().is_none());
    }

    #[test]
    fn mul_is_exact() {
        // (1 + ω₀)·(1 − ω₀) = 1 − ω₀².
        let mut a = Polynomial::zero(1);
        a.add_term(Monomial::constant(1), 1.0);
        a.add_term(Monomial::linear(1, 0), 1.0);
        let mut b = Polynomial::zero(1);
        b.add_term(Monomial::constant(1), 1.0);
        b.add_term(Monomial::linear(1, 0), -1.0);
        let prod = a.mul(&b);
        assert_eq!(prod.coefficient(&Monomial::constant(1)), 1.0);
        assert_eq!(prod.coefficient(&Monomial::linear(1, 0)), 0.0);
        assert_eq!(prod.coefficient(&Monomial::new(vec![2])), -1.0);
        // Squaring twice yields the quartic expansion pointwise.
        let q = a.mul(&a).mul(&a.mul(&a));
        for w in [-1.5, 0.0, 0.3, 2.0] {
            assert!((q.eval(&[w]) - (1.0 + w).powi(4)).abs() < 1e-12);
        }
    }

    #[test]
    fn regularize_adds_ridge_to_every_square() {
        let mut p = sample_poly();
        let before = p.eval(&[0.5, -0.5]);
        p.regularize(2.0);
        // + 2(ω₁² + ω₂²) = + 2·0.5 at (0.5, −0.5).
        assert!((p.eval(&[0.5, -0.5]) - (before + 1.0)).abs() < 1e-12);
        // λ = 0 is a no-op.
        let q = p.clone();
        p.regularize(0.0);
        assert_eq!(p, q);
    }

    #[test]
    fn paper_worked_example_section_4_2() {
        // D = {(1, 0.4), (0.9, 0.3), (−0.5, −1)}, d = 1:
        // f_D(ω) = Σ (y_i − x_i ω)² = 2.06ω² − 2.34ω + 1.25.
        let data = [(1.0, 0.4), (0.9, 0.3), (-0.5, -1.0)];
        let mut f = Polynomial::zero(1);
        for (x, y) in data {
            f.add_term(Monomial::constant(1), y * y);
            f.add_term(Monomial::linear(1, 0), -2.0 * x * y);
            f.add_term(Monomial::new(vec![2]), x * x);
        }
        assert!((f.coefficient(&Monomial::new(vec![2])) - 2.06).abs() < 1e-12);
        assert!((f.coefficient(&Monomial::linear(1, 0)) - (-2.34)).abs() < 1e-12);
        assert!((f.coefficient(&Monomial::constant(1)) - 1.25).abs() < 1e-12);
        // Minimiser ω* = 2.34 / (2·2.06) = 117/206.
        let q = f.to_quadratic_form().unwrap();
        let omega_star = 117.0 / 206.0;
        let g = q.gradient(&[omega_star]);
        assert!(g[0].abs() < 1e-12, "gradient at paper's ω* should vanish");
    }
}
