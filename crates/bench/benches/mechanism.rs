//! Criterion microbenchmarks for the Functional Mechanism core: coefficient
//! assembly + perturbation (Algorithm 1) and the §6 post-processing solve.
//!
//! These quantify the claim behind Figures 7–9 at statistical rigor: FM's
//! per-fit cost is a single pass over the data plus an `O(d³)` solve,
//! independent of ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_core::linreg::LinearObjective;
use fm_core::logreg::LogisticObjective;
use fm_core::mechanism::FunctionalMechanism;
use fm_core::postprocess;

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_perturb");
    for &d in &[4usize, 13] {
        let mut rng = StdRng::seed_from_u64(7);
        let data = fm_data::synth::linear_dataset(&mut rng, 10_000, d, 0.1);
        let fm = FunctionalMechanism::new(0.8).expect("ε");
        group.bench_with_input(BenchmarkId::new("linear_n10k", d), &d, |b, _| {
            b.iter(|| {
                fm.perturb(&data, &LinearObjective, &mut rng)
                    .expect("perturb")
            })
        });
        let log_data = fm_data::synth::logistic_dataset(&mut rng, 10_000, d, 6.0);
        group.bench_with_input(BenchmarkId::new("logistic_n10k", d), &d, |b, _| {
            b.iter(|| {
                fm.perturb(&log_data, &LogisticObjective, &mut rng)
                    .expect("perturb")
            })
        });
    }
    group.finish();
}

fn bench_postprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("section6_postprocess");
    for &d in &[4usize, 13] {
        let mut rng = StdRng::seed_from_u64(11);
        let data = fm_data::synth::linear_dataset(&mut rng, 10_000, d, 0.1);
        let fm = FunctionalMechanism::new(0.8).expect("ε");
        let noisy = fm
            .perturb(&data, &LinearObjective, &mut rng)
            .expect("perturb");

        group.bench_with_input(BenchmarkId::new("regularize_trim_solve", d), &d, |b, _| {
            b.iter(|| {
                let mut n = noisy.clone();
                let lambda = postprocess::regularize(&mut n);
                postprocess::spectral_trim_minimize_with_floor(&n, lambda).expect("solve")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("direct_minimize_attempt", d),
            &d,
            |b, _| {
                b.iter(|| {
                    let mut n = noisy.clone();
                    postprocess::regularize(&mut n);
                    let _ = postprocess::minimize(&n); // may legitimately fail; we time the attempt
                })
            },
        );
    }
    group.finish();
}

fn bench_sensitivity_scaling(c: &mut Criterion) {
    // Δ computation is O(1); assembly is the O(n·d²) part. Confirm the
    // ε-independence of the fit cost (Figure 9's flat lines).
    let mut group = c.benchmark_group("epsilon_independence");
    let mut rng = StdRng::seed_from_u64(13);
    let data = fm_data::synth::linear_dataset(&mut rng, 10_000, 8, 0.1);
    for &eps in &[0.1, 3.2] {
        let fm = FunctionalMechanism::new(eps).expect("ε");
        group.bench_with_input(
            BenchmarkId::new("perturb_n10k_d8", format!("{eps}")),
            &eps,
            |b, _| {
                b.iter(|| {
                    fm.perturb(&data, &LinearObjective, &mut rng)
                        .expect("perturb")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_perturb,
    bench_postprocess,
    bench_sensitivity_scaling
);
criterion_main!(benches);
