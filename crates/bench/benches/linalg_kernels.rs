//! Criterion microbenchmarks for the linear-algebra kernels on the
//! mechanism's hot path: the `O(n·d²)` Gram assembly and the `O(d³)`
//! factorizations at the paper's dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fm_linalg::{Cholesky, Lu, Matrix, SymmetricEigen};

fn spd(d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::from_fn(d, d, |_, _| rng.gen_range(-1.0..1.0));
    let mut g = a.transpose().matmul(&a).expect("square");
    g.add_diagonal(0.5);
    g.symmetrize().expect("square");
    g
}

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorizations");
    for &d in &[4usize, 13, 32] {
        let m = spd(d, d as u64);
        group.bench_with_input(BenchmarkId::new("cholesky", d), &d, |b, _| {
            b.iter(|| Cholesky::new(&m).expect("SPD"))
        });
        group.bench_with_input(BenchmarkId::new("lu", d), &d, |b, _| {
            b.iter(|| Lu::new(&m).expect("nonsingular"))
        });
        group.bench_with_input(BenchmarkId::new("jacobi_eigen", d), &d, |b, _| {
            b.iter(|| SymmetricEigen::new(&m).expect("symmetric"))
        });
    }
    group.finish();
}

fn bench_gram_assembly(c: &mut Criterion) {
    // Σ x xᵀ over n rows — the dominant cost of objective assembly — as
    // (a) the per-tuple rank-1 reference and (b) the blocked syrk kernel.
    let mut group = c.benchmark_group("gram_assembly");
    for &n in &[1_000usize, 10_000] {
        for &d in &[4usize, 13, 32] {
            let mut rng = StdRng::seed_from_u64(17);
            let flat: Vec<f64> = (0..n)
                .flat_map(|_| fm_data::synth::sample_in_ball(&mut rng, d, 1.0))
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("rank1_updates_d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut m = Matrix::zeros(d, d);
                        for x in flat.chunks_exact(d) {
                            m.rank1_update(1.0, x).expect("arity");
                        }
                        m
                    })
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("syrk_d{d}"), n), &n, |b, _| {
                b.iter(|| {
                    let mut m = Matrix::zeros(d, d);
                    m.syrk_acc(1.0, &flat, d).expect("arity");
                    m
                })
            });
            let w: Vec<f64> = (0..n).map(|i| 0.25 + (i % 3) as f64 * 0.1).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("syrk_weighted_d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut m = Matrix::zeros(d, d);
                        m.syrk_weighted_acc(1.0, &flat, d, &w).expect("arity");
                        m
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_objective_assembly(c: &mut Criterion) {
    // End-to-end coefficient assembly (β, α, M) for the linear objective:
    // per-tuple reference vs the batched chunked pipeline.
    use fm_core::assembly::{assemble_per_tuple, assemble_with_chunk_rows};
    use fm_core::linreg::LinearObjective;

    let mut group = c.benchmark_group("objective_assembly");
    let n = 50_000;
    for &d in &[4usize, 13, 32] {
        let mut rng = StdRng::seed_from_u64(7);
        let data = fm_data::synth::linear_dataset(&mut rng, n, d, 0.05);
        group.bench_with_input(BenchmarkId::new("per_tuple", d), &d, |b, _| {
            b.iter(|| assemble_per_tuple(&LinearObjective, &data))
        });
        group.bench_with_input(BenchmarkId::new("batched", d), &d, |b, _| {
            b.iter(|| assemble_with_chunk_rows(&LinearObjective, &data, 4096))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_factorizations,
    bench_gram_assembly,
    bench_objective_assembly
);
criterion_main!(benches);
