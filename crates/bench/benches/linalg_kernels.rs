//! Criterion microbenchmarks for the linear-algebra kernels on the
//! mechanism's hot path: the `O(n·d²)` Gram assembly and the `O(d³)`
//! factorizations at the paper's dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fm_linalg::{Cholesky, Lu, Matrix, SymmetricEigen};

fn spd(d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::from_fn(d, d, |_, _| rng.gen_range(-1.0..1.0));
    let mut g = a.transpose().matmul(&a).expect("square");
    g.add_diagonal(0.5);
    g.symmetrize().expect("square");
    g
}

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorizations");
    for &d in &[4usize, 13, 32] {
        let m = spd(d, d as u64);
        group.bench_with_input(BenchmarkId::new("cholesky", d), &d, |b, _| {
            b.iter(|| Cholesky::new(&m).expect("SPD"))
        });
        group.bench_with_input(BenchmarkId::new("lu", d), &d, |b, _| {
            b.iter(|| Lu::new(&m).expect("nonsingular"))
        });
        group.bench_with_input(BenchmarkId::new("jacobi_eigen", d), &d, |b, _| {
            b.iter(|| SymmetricEigen::new(&m).expect("symmetric"))
        });
    }
    group.finish();
}

fn bench_gram_assembly(c: &mut Criterion) {
    // Σ x xᵀ over n rows — the dominant cost of objective assembly.
    let mut group = c.benchmark_group("gram_assembly");
    for &n in &[1_000usize, 10_000] {
        let d = 13;
        let mut rng = StdRng::seed_from_u64(17);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| fm_data::synth::sample_in_ball(&mut rng, d, 1.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("rank1_updates_d13", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Matrix::zeros(d, d);
                for x in &rows {
                    m.rank1_update(1.0, x).expect("arity");
                }
                m
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factorizations, bench_gram_assembly);
criterion_main!(benches);
