//! Criterion microbenchmarks for the repo's extensions beyond the paper's
//! headline pipeline: the Chebyshev surrogate (§8 "alternative analytical
//! tools"), the (ε, δ) Gaussian noise variant, DP Poisson regression, and
//! the SVD substrate that backs rank-deficient solves.
//!
//! The interesting claims these pin down:
//! * surrogate *fitting* (Chebyshev quadrature) is a one-off cost measured
//!   in microseconds — negligible next to the data pass;
//! * switching Laplace → Gaussian changes only the per-coefficient sampler,
//!   so fit time is unchanged (the accuracy ablation is in
//!   `fm-experiments --figure ablation-noise`);
//! * Poisson fits cost the same as linear fits (one data pass + one solve);
//! * one-sided Jacobi SVD at the paper's d ≤ 14 scale is tens of
//!   microseconds — fine as a fallback path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_core::linreg::DpLinearRegression;
use fm_core::logreg::{Approximation, DpLogisticRegression};
use fm_core::mechanism::NoiseDistribution;
use fm_core::poisson::DpPoissonRegression;
use fm_linalg::{Matrix, Svd, SymmetricEigen, TridiagonalEigen};
use fm_poly::chebyshev::logistic_chebyshev;

fn bench_chebyshev_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("chebyshev_surrogate");
    group.bench_function("fit_log1pexp_r1", |b| {
        b.iter(|| logistic_chebyshev(std::hint::black_box(1.0)))
    });
    group.bench_function("fit_exp_r2", |b| {
        b.iter(|| fm_poly::chebyshev::ChebyshevQuadratic::fit(f64::exp, std::hint::black_box(2.0)))
    });
    group.finish();
}

fn bench_approximation_choice(c: &mut Criterion) {
    // End-to-end logistic fit under each surrogate: the surrogate choice
    // must not change the fit cost materially.
    let mut group = c.benchmark_group("logistic_fit_by_surrogate");
    let mut rng = StdRng::seed_from_u64(23);
    let data = fm_data::synth::logistic_dataset(&mut rng, 10_000, 8, 6.0);
    for (name, approx) in [
        ("taylor", Approximation::Taylor),
        ("chebyshev_r1", Approximation::Chebyshev { half_width: 1.0 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                DpLogisticRegression::builder()
                    .epsilon(0.8)
                    .approximation(approx)
                    .build()
                    .fit(&data, &mut rng)
                    .expect("fit")
            })
        });
    }
    group.finish();
}

fn bench_noise_distribution(c: &mut Criterion) {
    // Laplace vs Gaussian noise: same assembly, same solve; only the
    // sampler differs.
    let mut group = c.benchmark_group("linear_fit_by_noise");
    let mut rng = StdRng::seed_from_u64(29);
    let data = fm_data::synth::linear_dataset(&mut rng, 10_000, 8, 0.1);
    for (name, noise) in [
        ("laplace", NoiseDistribution::Laplace),
        ("gaussian", NoiseDistribution::Gaussian { delta: 1e-6 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                DpLinearRegression::builder()
                    .epsilon(0.8)
                    .noise(noise)
                    .build()
                    .fit(&data, &mut rng)
                    .expect("fit")
            })
        });
    }
    group.finish();
}

fn bench_poisson_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_fit");
    for &d in &[4usize, 13] {
        let mut rng = StdRng::seed_from_u64(31);
        let data = fm_data::synth::poisson_dataset(&mut rng, 10_000, d, 8.0);
        group.bench_with_input(BenchmarkId::new("fm_n10k", d), &d, |b, _| {
            b.iter(|| {
                DpPoissonRegression::builder()
                    .epsilon(0.8)
                    .build()
                    .fit(&data, &mut rng)
                    .expect("fit")
            })
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_jacobi");
    for &d in &[5usize, 14] {
        // A deterministic dense square matrix of the Hessian's scale.
        let m = Matrix::from_fn(d, d, |r, c| (((r * 31 + c * 17) % 13) as f64 - 6.0) / 6.0);
        group.bench_with_input(BenchmarkId::new("decompose", d), &d, |b, _| {
            b.iter(|| Svd::new(std::hint::black_box(&m)).expect("svd"))
        });
        let svd = Svd::new(&m).expect("svd");
        let rhs = vec![1.0; d];
        group.bench_with_input(BenchmarkId::new("min_norm_solve", d), &d, |b, _| {
            b.iter(|| {
                svd.solve_min_norm(std::hint::black_box(&rhs))
                    .expect("solve")
            })
        });
    }
    group.finish();
}

fn bench_eigen_scaling(c: &mut Criterion) {
    // The Jacobi ↔ tridiagonal-QL crossover: both are exact symmetric
    // eigensolvers; Jacobi wins on simplicity at the paper's d ≤ 14,
    // QL on asymptotics for the production regime beyond it.
    let mut group = c.benchmark_group("eigen_scaling");
    for &d in &[14usize, 64, 128] {
        let mut m = Matrix::from_fn(d, d, |r, c| (((r * 7 + c * 13) % 19) as f64 - 9.0) / 9.0);
        m.symmetrize().expect("square");
        group.bench_with_input(BenchmarkId::new("jacobi", d), &d, |b, _| {
            b.iter(|| SymmetricEigen::new(std::hint::black_box(&m)).expect("eigen"))
        });
        group.bench_with_input(BenchmarkId::new("tridiagonal_ql", d), &d, |b, _| {
            b.iter(|| TridiagonalEigen::new(std::hint::black_box(&m)).expect("eigen"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chebyshev_fit,
    bench_approximation_choice,
    bench_noise_distribution,
    bench_poisson_fit,
    bench_svd,
    bench_eigen_scaling
);
criterion_main!(benches);
