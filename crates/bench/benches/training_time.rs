//! Criterion version of the paper's Figures 7–9: per-method logistic
//! training time. Workload sizes are fixed (n = 8,000, the quick-profile
//! scale) so the *relative* ordering — FM ≈ Truncated ≪ NoPrivacy ≪
//! DPME ≈ FP — is measured precisely; absolute full-scale numbers come from
//! `fm-experiments --figure fig7 --full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_bench::methods::{fit, Method};
use fm_bench::workload::{build, Country, Task};

fn bench_training_by_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_training_time_logistic");
    group.sample_size(10); // DPME/FP fits are whole-pipeline heavy
    let w = build(Country::Us, Task::Logistic, 8_000, 14, 42);

    for &method in Method::lineup(Task::Logistic) {
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(
            BenchmarkId::new("us_n8k_d13", method.name()),
            &method,
            |b, &m| b.iter(|| fit(m, Task::Logistic, &w.data, 0.8, &mut rng)),
        );
    }
    group.finish();
}

fn bench_training_by_dimension(c: &mut Criterion) {
    // The Figure-7 x-axis at Criterion rigor, FM only (the other methods'
    // scaling is visible in the harness output).
    let mut group = c.benchmark_group("fig7_fm_scaling_with_dimension");
    for &dim in &[5usize, 8, 11, 14] {
        let w = build(Country::Us, Task::Logistic, 8_000, dim, 42);
        let mut rng = StdRng::seed_from_u64(5);
        group.bench_with_input(BenchmarkId::new("fm", dim), &dim, |b, _| {
            b.iter(|| fit(Method::Fm, Task::Logistic, &w.data, 0.8, &mut rng))
        });
    }
    group.finish();
}

fn bench_training_by_cardinality(c: &mut Criterion) {
    // Figure 8's x-axis: FM and NoPrivacy scale linearly in n, with FM's
    // constant an order of magnitude smaller.
    let mut group = c.benchmark_group("fig8_scaling_with_cardinality");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000, 32_000] {
        let w = build(Country::Us, Task::Logistic, n, 14, 42);
        let mut rng = StdRng::seed_from_u64(9);
        group.bench_with_input(BenchmarkId::new("fm", n), &n, |b, _| {
            b.iter(|| fit(Method::Fm, Task::Logistic, &w.data, 0.8, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("noprivacy", n), &n, |b, _| {
            b.iter(|| fit(Method::NoPrivacy, Task::Logistic, &w.data, 0.8, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training_by_method,
    bench_training_by_dimension,
    bench_training_by_cardinality
);
criterion_main!(benches);
