//! Uniform dispatch over the paper's five methods.

use rand::rngs::StdRng;

use fm_baselines::dpme::Dpme;
use fm_baselines::fp::FilterPriority;
use fm_baselines::noprivacy::{LinearRegression, LogisticRegression};
use fm_baselines::truncated::TruncatedLogistic;
use fm_core::linreg::DpLinearRegression;
use fm_core::logreg::DpLogisticRegression;
use fm_data::Dataset;

use crate::workload::Task;

/// The methods of Section 7's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The Functional Mechanism (this paper).
    Fm,
    /// Lei's differentially private M-estimators.
    Dpme,
    /// Cormode et al.'s Filter-Priority publication.
    Fp,
    /// Exact non-private regression.
    NoPrivacy,
    /// The §5 Taylor objective without noise (logistic only).
    Truncated,
}

impl Method {
    /// Display name used in the result tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Method::Fm => "FM",
            Method::Dpme => "DPME",
            Method::Fp => "FP",
            Method::NoPrivacy => "NoPrivacy",
            Method::Truncated => "Truncated",
        }
    }

    /// Whether the method consumes a privacy budget (flat lines in Fig. 6).
    #[must_use]
    pub fn is_private(self) -> bool {
        matches!(self, Method::Fm | Method::Dpme | Method::Fp)
    }

    /// The paper's method line-up for a task (Truncated only applies to
    /// logistic regression; Figures 4a–b omit it for linear).
    #[must_use]
    pub fn lineup(task: Task) -> &'static [Method] {
        match task {
            Task::Linear => &[Method::Fm, Method::Dpme, Method::Fp, Method::NoPrivacy],
            Task::Logistic => &[
                Method::Fm,
                Method::Dpme,
                Method::Fp,
                Method::NoPrivacy,
                Method::Truncated,
            ],
        }
    }
}

/// A fitted model of either kind, unified for prediction.
pub enum FittedModel {
    /// Linear parameters.
    Linear(fm_core::model::LinearModel),
    /// Logistic parameters.
    Logistic(fm_core::model::LogisticModel),
}

impl FittedModel {
    /// Predictions appropriate to the task: ŷ for linear, `P(y=1|x)` for
    /// logistic.
    #[must_use]
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        match self {
            FittedModel::Linear(m) => m.predict_batch(data.x()),
            FittedModel::Logistic(m) => m.probabilities_batch(data.x()),
        }
    }
}

/// Fits `method` on `train` for `task` at privacy budget `epsilon`.
///
/// # Panics
/// On configuration errors (invalid ε) — the harness validates its grids
/// up front, so a failure here is a bug, not an input condition.
#[must_use]
pub fn fit(
    method: Method,
    task: Task,
    train: &Dataset,
    epsilon: f64,
    rng: &mut StdRng,
) -> FittedModel {
    match (task, method) {
        (Task::Linear, Method::Fm) => FittedModel::Linear(
            DpLinearRegression::builder()
                .epsilon(epsilon)
                .build()
                .fit(train, rng)
                .expect("FM linear fit"),
        ),
        (Task::Linear, Method::Dpme) => FittedModel::Linear(
            Dpme::new(epsilon)
                .expect("DPME config")
                .fit_linear(train, rng)
                .expect("DPME linear fit"),
        ),
        (Task::Linear, Method::Fp) => FittedModel::Linear(
            FilterPriority::new(epsilon)
                .expect("FP config")
                .fit_linear(train, rng)
                .expect("FP linear fit"),
        ),
        (Task::Linear, Method::NoPrivacy) => {
            FittedModel::Linear(LinearRegression::new().fit(train).expect("OLS fit"))
        }
        (Task::Linear, Method::Truncated) => {
            unreachable!("Truncated is logistic-only (linear objective is exact)")
        }
        (Task::Logistic, Method::Fm) => FittedModel::Logistic(
            DpLogisticRegression::builder()
                .epsilon(epsilon)
                .build()
                .fit(train, rng)
                .expect("FM logistic fit"),
        ),
        (Task::Logistic, Method::Dpme) => FittedModel::Logistic(
            Dpme::new(epsilon)
                .expect("DPME config")
                .fit_logistic(train, rng)
                .expect("DPME logistic fit"),
        ),
        (Task::Logistic, Method::Fp) => FittedModel::Logistic(
            FilterPriority::new(epsilon)
                .expect("FP config")
                .fit_logistic(train, rng)
                .expect("FP logistic fit"),
        ),
        (Task::Logistic, Method::NoPrivacy) => {
            FittedModel::Logistic(LogisticRegression::new().fit(train).expect("MLE fit"))
        }
        (Task::Logistic, Method::Truncated) => {
            FittedModel::Logistic(TruncatedLogistic::new().fit(train).expect("truncated fit"))
        }
    }
}

/// The task-appropriate error metric (MSE or misclassification rate).
#[must_use]
pub fn error_metric(task: Task, predictions: &[f64], targets: &[f64]) -> f64 {
    match task {
        Task::Linear => fm_data::metrics::mse(predictions, targets),
        Task::Logistic => fm_data::metrics::misclassification_rate(predictions, targets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lineups_match_the_figures() {
        assert_eq!(Method::lineup(Task::Linear).len(), 4);
        assert_eq!(Method::lineup(Task::Logistic).len(), 5);
        assert!(!Method::lineup(Task::Linear).contains(&Method::Truncated));
    }

    #[test]
    fn privacy_flags() {
        assert!(Method::Fm.is_private());
        assert!(Method::Dpme.is_private());
        assert!(Method::Fp.is_private());
        assert!(!Method::NoPrivacy.is_private());
        assert!(!Method::Truncated.is_private());
    }

    #[test]
    fn every_lineup_method_fits_both_tasks() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = fm_data::synth::linear_dataset(&mut rng, 400, 3, 0.1);
        let log = fm_data::synth::logistic_dataset(&mut rng, 400, 3, 6.0);
        for &m in Method::lineup(Task::Linear) {
            let model = fit(m, Task::Linear, &lin, 1.0, &mut rng);
            let preds = model.predict(&lin);
            assert_eq!(preds.len(), 400);
            let err = error_metric(Task::Linear, &preds, lin.y());
            assert!(err.is_finite());
        }
        for &m in Method::lineup(Task::Logistic) {
            let model = fit(m, Task::Logistic, &log, 1.0, &mut rng);
            let preds = model.predict(&log);
            let err = error_metric(Task::Logistic, &preds, log.y());
            assert!((0.0..=1.0).contains(&err));
        }
    }
}
