//! Uniform dispatch over the paper's five methods — through the
//! dyn-compatible [`DpEstimator`] surface.
//!
//! Until PR 3 this module matched `(task, method)` and called five
//! different concrete `fit` signatures; now it *constructs* the method as
//! a boxed `dyn DpEstimator` ([`linear_estimator`] / [`logistic_estimator`])
//! and every fit in the harness flows through one call site —
//! [`fit_in_session`] — which debits a shared
//! [`fm_core::session::PrivacySession`] so the figure harness can report
//! the honest composed ε of its repeats × folds protocol instead of the
//! per-fit ε alone. Non-private baselines advertise `epsilon() == None`
//! and pass through the session without a debit.

use rand::rngs::StdRng;

use fm_baselines::dpme::Dpme;
use fm_baselines::estimators::{DpmeLinear, DpmeLogistic, FpLinear, FpLogistic};
use fm_baselines::fp::FilterPriority;
use fm_baselines::noprivacy::{LinearRegression, LogisticRegression};
use fm_baselines::truncated::TruncatedLogistic;
use fm_core::estimator::DpEstimator;
use fm_core::linreg::DpLinearRegression;
use fm_core::logreg::DpLogisticRegression;
use fm_core::model::{LinearModel, LogisticModel};
use fm_core::session::PrivacySession;
use fm_data::Dataset;

use crate::workload::Task;

/// The methods of Section 7's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The Functional Mechanism (this paper).
    Fm,
    /// Lei's differentially private M-estimators.
    Dpme,
    /// Cormode et al.'s Filter-Priority publication.
    Fp,
    /// Exact non-private regression.
    NoPrivacy,
    /// The §5 Taylor objective without noise (logistic only).
    Truncated,
}

impl Method {
    /// Display name used in the result tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Method::Fm => "FM",
            Method::Dpme => "DPME",
            Method::Fp => "FP",
            Method::NoPrivacy => "NoPrivacy",
            Method::Truncated => "Truncated",
        }
    }

    /// Whether the method consumes a privacy budget (flat lines in Fig. 6).
    #[must_use]
    pub fn is_private(self) -> bool {
        matches!(self, Method::Fm | Method::Dpme | Method::Fp)
    }

    /// The paper's method line-up for a task (Truncated only applies to
    /// logistic regression; Figures 4a–b omit it for linear).
    #[must_use]
    pub fn lineup(task: Task) -> &'static [Method] {
        match task {
            Task::Linear => &[Method::Fm, Method::Dpme, Method::Fp, Method::NoPrivacy],
            Task::Logistic => &[
                Method::Fm,
                Method::Dpme,
                Method::Fp,
                Method::NoPrivacy,
                Method::Truncated,
            ],
        }
    }
}

/// Builds `method` as a boxed [`DpEstimator`] for the **linear** task.
///
/// # Panics
/// On configuration errors (invalid ε) — the harness validates its grids
/// up front, so a failure here is a bug, not an input condition. Also for
/// [`Method::Truncated`], which is logistic-only (the linear objective is
/// exact, so "truncated without noise" is just `NoPrivacy`).
#[must_use]
pub fn linear_estimator(method: Method, epsilon: f64) -> Box<dyn DpEstimator<Model = LinearModel>> {
    match method {
        Method::Fm => Box::new(DpLinearRegression::builder().epsilon(epsilon).build()),
        Method::Dpme => Box::new(DpmeLinear(Dpme::new(epsilon).expect("DPME config"))),
        Method::Fp => Box::new(FpLinear(FilterPriority::new(epsilon).expect("FP config"))),
        Method::NoPrivacy => Box::new(LinearRegression::new()),
        Method::Truncated => {
            unreachable!("Truncated is logistic-only (linear objective is exact)")
        }
    }
}

/// Builds `method` as a boxed [`DpEstimator`] for the **logistic** task.
///
/// # Panics
/// On configuration errors (invalid ε), as [`linear_estimator`].
#[must_use]
pub fn logistic_estimator(
    method: Method,
    epsilon: f64,
) -> Box<dyn DpEstimator<Model = LogisticModel>> {
    match method {
        Method::Fm => Box::new(DpLogisticRegression::builder().epsilon(epsilon).build()),
        Method::Dpme => Box::new(DpmeLogistic(Dpme::new(epsilon).expect("DPME config"))),
        Method::Fp => Box::new(FpLogistic(FilterPriority::new(epsilon).expect("FP config"))),
        Method::NoPrivacy => Box::new(LogisticRegression::new()),
        Method::Truncated => Box::new(TruncatedLogistic::new()),
    }
}

/// A fitted model of either kind, unified for prediction.
pub enum FittedModel {
    /// Linear parameters.
    Linear(LinearModel),
    /// Logistic parameters.
    Logistic(LogisticModel),
}

impl FittedModel {
    /// Predictions appropriate to the task: ŷ for linear, `P(y=1|x)` for
    /// logistic.
    #[must_use]
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        match self {
            FittedModel::Linear(m) => m.predict_batch(data.x()),
            FittedModel::Logistic(m) => m.probabilities_batch(data.x()),
        }
    }
}

/// Fits `method` on `train` through `session`: the estimator is built as a
/// `dyn DpEstimator`, its advertised (ε, δ) debited against the session's
/// ledger before the mechanism runs, and the released model returned in
/// the task-unified wrapper.
///
/// Dispatch goes through the **streaming** entry point
/// ([`PrivacySession::fit_stream`] over an
/// [`fm_data::stream::InMemorySource`]): the FM methods run their native
/// out-of-core pipeline — releasing coefficients bit-identical to the
/// in-memory `fit`, so no figure changes — while the baselines fall back
/// to the materializing default. One call site, both worlds, and since
/// the zero-copy redesign no transport tax either: the in-memory source
/// hands its backing dataset straight to the accumulator
/// (`take_dataset`), so every bench cell and CV fold assembles at the
/// batched path's rate (`BENCH_assembly.json`, `pr5-zero-copy-streaming`).
///
/// # Panics
/// On configuration errors or fit failures — the harness validates its
/// grids up front, so a failure here is a bug, not an input condition.
#[must_use]
pub fn fit_in_session(
    session: &mut PrivacySession,
    method: Method,
    task: Task,
    train: &Dataset,
    epsilon: f64,
    rng: &mut StdRng,
) -> FittedModel {
    let mut source = fm_data::stream::InMemorySource::new(train);
    match task {
        Task::Linear => {
            let est = linear_estimator(method, epsilon);
            FittedModel::Linear(
                session
                    .fit_stream(est.as_ref(), &mut source, rng)
                    .unwrap_or_else(|e| panic!("{} linear fit: {e}", method.name())),
            )
        }
        Task::Logistic => {
            let est = logistic_estimator(method, epsilon);
            FittedModel::Logistic(
                session
                    .fit_stream(est.as_ref(), &mut source, rng)
                    .unwrap_or_else(|e| panic!("{} logistic fit: {e}", method.name())),
            )
        }
    }
}

/// Fits `method` on `train` outside any session (one-off fits, tests).
///
/// # Panics
/// As [`fit_in_session`].
#[must_use]
pub fn fit(
    method: Method,
    task: Task,
    train: &Dataset,
    epsilon: f64,
    rng: &mut StdRng,
) -> FittedModel {
    fit_in_session(
        &mut PrivacySession::new(),
        method,
        task,
        train,
        epsilon,
        rng,
    )
}

/// The task-appropriate error metric (MSE or misclassification rate).
#[must_use]
pub fn error_metric(task: Task, predictions: &[f64], targets: &[f64]) -> f64 {
    match task {
        Task::Linear => fm_data::metrics::mse(predictions, targets),
        Task::Logistic => fm_data::metrics::misclassification_rate(predictions, targets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lineups_match_the_figures() {
        assert_eq!(Method::lineup(Task::Linear).len(), 4);
        assert_eq!(Method::lineup(Task::Logistic).len(), 5);
        assert!(!Method::lineup(Task::Linear).contains(&Method::Truncated));
    }

    #[test]
    fn privacy_flags() {
        assert!(Method::Fm.is_private());
        assert!(Method::Dpme.is_private());
        assert!(Method::Fp.is_private());
        assert!(!Method::NoPrivacy.is_private());
        assert!(!Method::Truncated.is_private());
    }

    #[test]
    fn estimators_advertise_epsilon_consistently_with_is_private() {
        for &m in Method::lineup(Task::Linear) {
            let est = linear_estimator(m, 0.8);
            assert_eq!(est.epsilon().is_some(), m.is_private(), "{}", m.name());
        }
        for &m in Method::lineup(Task::Logistic) {
            let est = logistic_estimator(m, 0.8);
            assert_eq!(est.epsilon().is_some(), m.is_private(), "{}", m.name());
        }
    }

    #[test]
    fn every_lineup_method_fits_both_tasks() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = fm_data::synth::linear_dataset(&mut rng, 400, 3, 0.1);
        let log = fm_data::synth::logistic_dataset(&mut rng, 400, 3, 6.0);
        for &m in Method::lineup(Task::Linear) {
            let model = fit(m, Task::Linear, &lin, 1.0, &mut rng);
            let preds = model.predict(&lin);
            assert_eq!(preds.len(), 400);
            let err = error_metric(Task::Linear, &preds, lin.y());
            assert!(err.is_finite());
        }
        for &m in Method::lineup(Task::Logistic) {
            let model = fit(m, Task::Logistic, &log, 1.0, &mut rng);
            let preds = model.predict(&log);
            let err = error_metric(Task::Logistic, &preds, log.y());
            assert!((0.0..=1.0).contains(&err));
        }
    }

    #[test]
    fn session_debits_private_methods_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = fm_data::synth::linear_dataset(&mut rng, 400, 2, 0.1);
        let mut session = PrivacySession::new();
        let _ = fit_in_session(&mut session, Method::Fm, Task::Linear, &lin, 0.5, &mut rng);
        let _ = fit_in_session(
            &mut session,
            Method::NoPrivacy,
            Task::Linear,
            &lin,
            0.5,
            &mut rng,
        );
        let _ = fit_in_session(
            &mut session,
            Method::Dpme,
            Task::Linear,
            &lin,
            0.25,
            &mut rng,
        );
        assert_eq!(session.num_fits(), 2, "NoPrivacy must not be debited");
        assert!((session.spent_epsilon() - 0.75).abs() < 1e-12);
    }
}
