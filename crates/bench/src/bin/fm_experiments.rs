//! `fm-experiments` — regenerate any table or figure from the paper.
//!
//! ```text
//! fm-experiments --figure fig4                # scaled-down defaults
//! fm-experiments --figure all --full          # the paper's exact protocol
//! fm-experiments --figure fig6 --rows 100000 --repeats 10 --seed 7
//! fm-experiments --figure ablation
//! ```
//!
//! Results are printed as aligned tables and written as CSV under
//! `results/`.

use std::path::Path;
use std::process::ExitCode;

use fm_bench::figures::{self, Axis};
use fm_bench::runner::EvalConfig;

struct Args {
    figure: String,
    cfg: EvalConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut figure = String::from("all");
    let mut cfg = EvalConfig::quick();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--figure" => {
                figure = argv.next().ok_or("--figure needs a value")?;
            }
            "--rows" => {
                let rows: usize = argv
                    .next()
                    .ok_or("--rows needs a value")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?;
                cfg.rows_us = rows;
                cfg.rows_brazil = (rows / 2).max(100);
            }
            "--repeats" => {
                cfg.repeats = argv
                    .next()
                    .ok_or("--repeats needs a value")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
            }
            "--seed" => {
                cfg.seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--full" => {
                cfg = EvalConfig::paper();
            }
            "--help" | "-h" => {
                println!(
                    "usage: fm-experiments [--figure fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablation|\n\
                     \x20                               ablation-approx|ablation-noise|poisson|accounting|all]\n\
                     \x20                     [--rows N] [--repeats R] [--seed S] [--full]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { figure, cfg })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = args.cfg;
    let out_dir = Path::new("results");
    println!(
        "# fm-experiments — figure={}, rows(US)={}, rows(Brazil)={}, repeats={}, folds={}, seed={}",
        args.figure, cfg.rows_us, cfg.rows_brazil, cfg.repeats, cfg.folds, cfg.seed
    );

    let run = |name: &str| -> bool { args.figure == name || args.figure == "all" };
    let mut tables = Vec::new();

    if run("fig2") {
        println!("{}", figures::fig2(cfg.seed));
    }
    if run("fig3") {
        println!("{}", figures::fig3());
    }
    if run("fig4") {
        tables.extend(figures::accuracy_figure("4", Axis::Dimensionality, &cfg));
    }
    if run("fig5") {
        tables.extend(figures::accuracy_figure("5", Axis::SamplingRate, &cfg));
    }
    if run("fig6") {
        tables.extend(figures::accuracy_figure("6", Axis::Epsilon, &cfg));
    }
    if run("fig7") {
        tables.extend(figures::timing_figure("7", Axis::Dimensionality, &cfg));
    }
    if run("fig8") {
        tables.extend(figures::timing_figure("8", Axis::SamplingRate, &cfg));
    }
    if run("fig9") {
        tables.extend(figures::timing_figure("9", Axis::Epsilon, &cfg));
    }
    if run("ablation") {
        tables.extend(figures::ablation(&cfg));
    }
    if run("ablation-approx") {
        tables.extend(figures::ablation_approx(&cfg));
    }
    if run("ablation-noise") {
        tables.extend(figures::ablation_noise(&cfg));
    }
    if run("poisson") {
        tables.extend(figures::poisson_figure(&cfg));
    }
    if run("accounting") {
        tables.extend(figures::accounting_figure());
    }

    if tables.is_empty() && !["fig2", "fig3", "all"].contains(&args.figure.as_str()) {
        eprintln!("error: unknown figure `{}` (try --help)", args.figure);
        return ExitCode::FAILURE;
    }

    for t in &tables {
        match t.write_csv(out_dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write CSV: {e}"),
        }
    }
    ExitCode::SUCCESS
}
