//! `fm-assembly-bench` — measures coefficient-assembly throughput and
//! emits the machine-readable `BENCH_assembly.json` that seeds the
//! repository's performance trajectory.
//!
//! For each dimensionality `d ∈ {4, 13, 32}` at the paper's census scale
//! (`n = 370,000` rows) it times, on the linear-regression objective:
//!
//! * `per_tuple` — the pre-batching reference loop
//!   (`fm_core::assembly::assemble_per_tuple`);
//! * `batched` — the blocked Gram-kernel pipeline
//!   (`PolynomialObjective::assemble`), single-threaded unless the binary
//!   was built with `--features parallel`.
//!
//! ```text
//! cargo run --release -p fm-bench --bin fm-assembly-bench            # writes BENCH_assembly.json
//! cargo run --release -p fm-bench --bin fm-assembly-bench -- --rows 50000 --out /tmp/a.json
//! ```
//!
//! The binary emits one run record; the committed `BENCH_assembly.json`
//! is a JSON *array* of such records, each tagged with a `"run"` label —
//! append the new record there to extend the performance trajectory.
//!
//! The per-run JSON schema (stable; append-only across PRs):
//!
//! ```json
//! {
//!   "n": 370000,
//!   "parallel_feature": false,
//!   "results": [
//!     {"d": 13, "per_tuple_rows_per_sec": ..., "batched_rows_per_sec": ..., "speedup": ...}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use fm_core::assembly::{assemble_per_tuple, CoefficientAccumulator};
use fm_core::linreg::LinearObjective;
use fm_core::PolynomialObjective;
use fm_data::stream::InMemorySource;
use fm_data::synth;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIMS: [usize; 3] = [4, 13, 32];

/// Measures the host's practical FMA ceiling (GFLOP/s) with a pure
/// register-resident kernel: 16 independent 8-lane `mul_add` chains, no
/// memory traffic. Speedup numbers are only interpretable relative to
/// this — on a 2×256-bit-FMA desktop core the ceiling is 30-50 GFLOP/s
/// and the batched path clears 5×; on throttled shared vCPUs the ceiling
/// can sit near the per-tuple path's own FLOP rate, capping any
/// reformulation's headroom.
fn host_fma_ceiling_gflops() -> f64 {
    // Eight named 8-lane accumulators: few enough to live in registers
    // (an array of arrays iterated by reference gets spilled to memory
    // and measures the store ports instead).
    let mut a0 = [1.0_f64; 8];
    let mut a1 = [1.1_f64; 8];
    let mut a2 = [1.2_f64; 8];
    let mut a3 = [1.3_f64; 8];
    let mut a4 = [1.4_f64; 8];
    let mut a5 = [1.5_f64; 8];
    let mut a6 = [1.6_f64; 8];
    let mut a7 = [1.7_f64; 8];
    let x = std::hint::black_box(1.000_000_1_f64);
    let y = std::hint::black_box(1e-9_f64);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        for _ in 0..100_000 {
            for l in 0..8 {
                a0[l] = x.mul_add(a0[l], y);
                a1[l] = x.mul_add(a1[l], y);
                a2[l] = x.mul_add(a2[l], y);
                a3[l] = x.mul_add(a3[l], y);
                a4[l] = x.mul_add(a4[l], y);
                a5[l] = x.mul_add(a5[l], y);
                a6[l] = x.mul_add(a6[l], y);
                a7[l] = x.mul_add(a7[l], y);
            }
        }
        iters += 100_000;
    }
    let flops = iters as f64 * 8.0 * 8.0 * 2.0;
    let total: f64 = [a0, a1, a2, a3, a4, a5, a6, a7].iter().flatten().sum();
    assert!(std::hint::black_box(total).is_finite());
    flops / start.elapsed().as_secs_f64() / 1e9
}

fn time_rows_per_sec(n: usize, mut run: impl FnMut() -> f64) -> f64 {
    // Warm-up, then enough repetitions to spend ~0.5 s per measurement.
    let mut sink = run();
    let start = Instant::now();
    let mut reps = 0u32;
    while start.elapsed().as_secs_f64() < 0.5 {
        sink += run();
        reps += 1;
    }
    assert!(sink.is_finite(), "benchmark result must stay finite");
    n as f64 * f64::from(reps) / start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let mut rows = 370_000usize;
    let mut out = "BENCH_assembly.json".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--rows" => rows = argv.next().and_then(|v| v.parse().ok()).unwrap_or(rows),
            "--out" => out = argv.next().unwrap_or(out),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let ceiling = host_fma_ceiling_gflops();
    eprintln!("host FMA ceiling: {ceiling:.1} GFLOP/s");

    let mut results = String::new();
    for (i, &d) in DIMS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(42 + d as u64);
        let data = synth::linear_dataset(&mut rng, rows, d, 0.05);

        let per_tuple =
            time_rows_per_sec(rows, || assemble_per_tuple(&LinearObjective, &data).beta());
        let batched = time_rows_per_sec(rows, || LinearObjective.assemble(&data).beta());
        // The streaming ingestion path at the default chunk size: one
        // row-copy per block (InMemorySource materializes owned blocks)
        // plus the same Gram kernels — `streamed_vs_batched` is the
        // transport tax of the out-of-core pipeline on data that *could*
        // have been fitted in memory.
        let streamed = time_rows_per_sec(rows, || {
            let mut acc = CoefficientAccumulator::new(&LinearObjective, d);
            acc.absorb(&mut InMemorySource::new(&data))
                .expect("in-memory stream");
            acc.finish().expect("non-empty").beta()
        });
        let speedup = batched / per_tuple;
        let streamed_ratio = streamed / batched;
        // Fused-FLOP rate of the batched path's Gram triangle (the
        // irreducible work): d(d+1)/2 + d + 1 multiply-adds per row.
        let flops_per_row = (d * (d + 1) / 2 + d + 1) as f64 * 2.0;
        let batched_gflops = batched * flops_per_row / 1e9;
        eprintln!(
            "d={d:>2}: per-tuple {per_tuple:>12.0} rows/s | batched {batched:>12.0} rows/s | streamed {streamed:>12.0} rows/s ({streamed_ratio:>4.2}x of batched) | {speedup:>5.2}x | {batched_gflops:>5.1} GFLOP/s ({:>3.0}% of ceiling)",
            batched_gflops / ceiling * 100.0
        );
        let separator = if i == 0 { "" } else { ",\n" };
        let fraction = batched_gflops / ceiling;
        let _ = write!(
            results,
            "{separator}    {{\"d\": {d}, \"per_tuple_rows_per_sec\": {per_tuple:.0}, \"batched_rows_per_sec\": {batched:.0}, \"streamed_rows_per_sec\": {streamed:.0}, \"streamed_vs_batched\": {streamed_ratio:.3}, \"speedup\": {speedup:.3}, \"batched_gflops\": {batched_gflops:.2}, \"batched_fraction_of_ceiling\": {fraction:.3}}}"
        );
    }

    let dims_json = DIMS.map(|d| d.to_string()).join(", ");
    let json = format!(
        "{{\n  \"n\": {rows},\n  \"d\": [{dims_json}],\n  \"objective\": \"linreg\",\n  \"parallel_feature\": {},\n  \"host_fma_ceiling_gflops\": {ceiling:.2},\n  \"results\": [\n{results}\n  ]\n}}\n",
        cfg!(feature = "parallel")
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
