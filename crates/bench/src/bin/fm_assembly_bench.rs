//! `fm-assembly-bench` — measures coefficient-assembly throughput and
//! emits the machine-readable `BENCH_assembly.json` that seeds the
//! repository's performance trajectory.
//!
//! For each dimensionality `d ∈ {4, 13, 32}` at the paper's census scale
//! (`n = 370,000` rows) it times, on the linear-regression objective:
//!
//! * `per_tuple` — the pre-batching reference loop
//!   (`fm_core::assembly::assemble_per_tuple`);
//! * `batched` — the blocked Gram-kernel pipeline
//!   (`PolynomialObjective::assemble`), single-threaded unless the binary
//!   was built with `--features parallel`;
//! * `streamed` — the streaming accumulator fed **owned** blocks (the
//!   default `next_block` visitor fallback: one block copy per chunk —
//!   the pre-zero-copy transport, kept for trajectory continuity with the
//!   `pr4-streaming-ingestion` run);
//! * `streamed_zero_copy` — the streaming accumulator draining an
//!   `InMemorySource` through the borrowed-block visitor: no block copy,
//!   no per-block allocation; includes the per-block contract validation
//!   a real streamed fit performs.
//!
//! A CSV scenario then measures the out-of-core transport itself: rows/s
//! of `CsvStreamSource` parse+absorb, and (with `--features parallel`)
//! the same stream wrapped in a `PrefetchSource` so parsing overlaps
//! accumulation.
//!
//! ```text
//! cargo run --release -p fm-bench --bin fm-assembly-bench            # writes BENCH_assembly.json
//! cargo run --release -p fm-bench --bin fm-assembly-bench -- --rows 50000 --out /tmp/a.json
//! ```
//!
//! The binary emits one run record; the committed `BENCH_assembly.json`
//! is a JSON *array* of such records, each tagged with a `"run"` label —
//! append the new record there to extend the performance trajectory.
//!
//! The per-run JSON schema (stable; append-only across PRs):
//!
//! ```json
//! {
//!   "n": 370000,
//!   "parallel_feature": false,
//!   "results": [
//!     {"d": 13, "per_tuple_rows_per_sec": ..., "batched_rows_per_sec": ..., "speedup": ...}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use fm_core::assembly::{assemble_per_tuple, CoefficientAccumulator};
use fm_core::linreg::LinearObjective;
use fm_core::PolynomialObjective;
use fm_data::stream::{InMemorySource, RowBlock, RowSource};
use fm_data::synth;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIMS: [usize; 3] = [4, 13, 32];

/// Forwards `next_block` only, hiding the inner source's borrowed-block
/// fast path *and* its materialized-dataset handoff: the accumulator then
/// drains it through the default owned-block visitor — exactly the
/// pre-zero-copy transport (one block allocation + copy per chunk) the
/// `pr4-streaming-ingestion` run measured, so `streamed_rows_per_sec`
/// stays comparable across runs.
struct OwnedBlocks<S>(S);

impl<S: RowSource> RowSource for OwnedBlocks<S> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn hint_rows(&self) -> Option<usize> {
        self.0.hint_rows()
    }
    fn next_block(&mut self, max_rows: usize) -> fm_data::Result<Option<RowBlock>> {
        self.0.next_block(max_rows)
    }
}

/// Forwards the borrowed-block visitor but hides the dataset handoff:
/// measures the pure zero-copy *streaming* transport (what sharded /
/// adapted in-memory sources take), without the in-place chunking +
/// columnar reuse an unwrapped `InMemorySource` gets.
struct BorrowedBlocks<S>(S);

impl<S: RowSource> RowSource for BorrowedBlocks<S> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn hint_rows(&self) -> Option<usize> {
        self.0.hint_rows()
    }
    fn next_block(&mut self, max_rows: usize) -> fm_data::Result<Option<RowBlock>> {
        self.0.next_block(max_rows)
    }
    fn for_each_block(
        &mut self,
        max_rows: usize,
        f: &mut fm_data::stream::BlockVisitor<'_>,
    ) -> fm_data::Result<()> {
        self.0.for_each_block(max_rows, f)
    }
}

/// Measures the host's practical FMA ceiling (GFLOP/s) with a pure
/// register-resident kernel: 16 independent 8-lane `mul_add` chains, no
/// memory traffic. Speedup numbers are only interpretable relative to
/// this — on a 2×256-bit-FMA desktop core the ceiling is 30-50 GFLOP/s
/// and the batched path clears 5×; on throttled shared vCPUs the ceiling
/// can sit near the per-tuple path's own FLOP rate, capping any
/// reformulation's headroom.
fn host_fma_ceiling_gflops() -> f64 {
    // Eight named 8-lane accumulators: few enough to live in registers
    // (an array of arrays iterated by reference gets spilled to memory
    // and measures the store ports instead).
    let mut a0 = [1.0_f64; 8];
    let mut a1 = [1.1_f64; 8];
    let mut a2 = [1.2_f64; 8];
    let mut a3 = [1.3_f64; 8];
    let mut a4 = [1.4_f64; 8];
    let mut a5 = [1.5_f64; 8];
    let mut a6 = [1.6_f64; 8];
    let mut a7 = [1.7_f64; 8];
    let x = std::hint::black_box(1.000_000_1_f64);
    let y = std::hint::black_box(1e-9_f64);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        for _ in 0..100_000 {
            for l in 0..8 {
                a0[l] = x.mul_add(a0[l], y);
                a1[l] = x.mul_add(a1[l], y);
                a2[l] = x.mul_add(a2[l], y);
                a3[l] = x.mul_add(a3[l], y);
                a4[l] = x.mul_add(a4[l], y);
                a5[l] = x.mul_add(a5[l], y);
                a6[l] = x.mul_add(a6[l], y);
                a7[l] = x.mul_add(a7[l], y);
            }
        }
        iters += 100_000;
    }
    let flops = iters as f64 * 8.0 * 8.0 * 2.0;
    let total: f64 = [a0, a1, a2, a3, a4, a5, a6, a7].iter().flatten().sum();
    assert!(std::hint::black_box(total).is_finite());
    flops / start.elapsed().as_secs_f64() / 1e9
}

/// Times the out-of-core CSV transport at a census-like width: rows/s of
/// `CsvStreamSource` parse+clamp+absorb into the streaming accumulator,
/// and — with `--features parallel` — the same stream wrapped in a
/// `PrefetchSource` so a worker thread parses the next block while the
/// consumer runs the Gram kernels. Returns the scenario's JSON object.
fn bench_csv_scenario(rows: usize) -> String {
    const CSV_D: usize = 13;
    let mut rng = StdRng::seed_from_u64(99);
    let data = synth::linear_dataset(&mut rng, rows, CSV_D, 0.05);
    // Per-process fixture name: concurrent bench invocations on one host
    // (a dev run next to CI's bench-smoke) must not clobber each other's
    // file mid-measurement.
    let path = std::env::temp_dir().join(format!(
        "fm_assembly_bench_ingest_{}.csv",
        std::process::id()
    ));
    fm_data::csv::write_dataset(&data, &path).expect("write bench csv");

    let mut direct: f64 = 0.0;
    for _ in 0..ROUNDS {
        direct = direct.max(time_rows_per_sec(rows, || {
            let mut src = fm_data::stream::CsvStreamSource::open(&path).expect("open bench csv");
            let mut acc = CoefficientAccumulator::new(&LinearObjective, CSV_D);
            acc.absorb(&mut src).expect("absorb csv");
            acc.finish().expect("non-empty").beta()
        }));
    }

    #[cfg(feature = "parallel")]
    let prefetch_json = {
        let mut prefetch: f64 = 0.0;
        for _ in 0..ROUNDS {
            prefetch = prefetch.max(time_rows_per_sec(rows, || {
                let src = fm_data::stream::CsvStreamSource::open(&path).expect("open bench csv");
                let mut pf = fm_data::stream::PrefetchSource::spawn(src, 4096, 2);
                let mut acc = CoefficientAccumulator::new(&LinearObjective, CSV_D);
                acc.absorb(&mut pf).expect("absorb prefetched csv");
                acc.finish().expect("non-empty").beta()
            }));
        }
        eprintln!(
            "csv d={CSV_D}: direct {direct:>12.0} rows/s | prefetched {prefetch:>12.0} rows/s ({:.2}x)",
            prefetch / direct
        );
        format!(
            ", \"prefetch_rows_per_sec\": {prefetch:.0}, \"prefetch_vs_direct\": {:.3}",
            prefetch / direct
        )
    };
    #[cfg(not(feature = "parallel"))]
    let prefetch_json = {
        eprintln!("csv d={CSV_D}: direct {direct:>12.0} rows/s (build with --features parallel for the prefetch column)");
        String::new()
    };

    let _ = std::fs::remove_file(&path);
    format!(
        "{{\"d\": {CSV_D}, \"rows\": {rows}, \"csv_rows_per_sec\": {direct:.0}{prefetch_json}}}"
    )
}

/// Measurement rounds per leg. Shared vCPUs throttle on multi-second
/// scales, which can hit one leg of a comparison and not another; every
/// leg is therefore measured `ROUNDS` times in interleaved order and the
/// per-leg **peak** is reported — peak throughput is the number the
/// hardware supports, and interleaving keeps a throttling event from
/// biasing any single ratio.
const ROUNDS: usize = 3;

fn time_rows_per_sec(n: usize, mut run: impl FnMut() -> f64) -> f64 {
    // Warm-up, then enough repetitions to spend ~0.5 s per measurement.
    let mut sink = run();
    let start = Instant::now();
    let mut reps = 0u32;
    while start.elapsed().as_secs_f64() < 0.5 {
        sink += run();
        reps += 1;
    }
    assert!(sink.is_finite(), "benchmark result must stay finite");
    n as f64 * f64::from(reps) / start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let mut rows = 370_000usize;
    let mut out = "BENCH_assembly.json".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--rows" => rows = argv.next().and_then(|v| v.parse().ok()).unwrap_or(rows),
            "--out" => out = argv.next().unwrap_or(out),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let ceiling = host_fma_ceiling_gflops();
    eprintln!("host FMA ceiling: {ceiling:.1} GFLOP/s");

    let mut results = String::new();
    for (i, &d) in DIMS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(42 + d as u64);
        let data = synth::linear_dataset(&mut rng, rows, d, 0.05);

        let mut per_tuple: f64 = 0.0;
        let mut batched: f64 = 0.0;
        let mut batched_fit: f64 = 0.0;
        let mut streamed: f64 = 0.0;
        let mut borrowed: f64 = 0.0;
        let mut zero_copy: f64 = 0.0;
        for _ in 0..ROUNDS {
            per_tuple = per_tuple.max(time_rows_per_sec(rows, || {
                assemble_per_tuple(&LinearObjective, &data).beta()
            }));
            batched = batched.max(time_rows_per_sec(rows, || {
                LinearObjective.assemble(&data).beta()
            }));
            // What an in-memory `fit()` actually runs before the noise
            // draw: the contract validation pass *plus* assembly. This is
            // the like-for-like baseline for the streamed legs below,
            // which all validate inline (earlier runs compared
            // streamed-with-validation against bare assembly — a baseline
            // no real fit can take).
            batched_fit = batched_fit.max(time_rows_per_sec(rows, || {
                data.check_normalized_linear().expect("bench data valid");
                LinearObjective.assemble(&data).beta()
            }));
            // The owned-block streaming path at the default chunk size:
            // one block allocation + row-copy per chunk (the default
            // visitor over `next_block`) plus validation and the same
            // Gram kernels — `streamed_vs_batched` is the transport tax a
            // source *without* a borrowed-block fast path still pays.
            streamed = streamed.max(time_rows_per_sec(rows, || {
                let mut acc = CoefficientAccumulator::new(&LinearObjective, d);
                acc.absorb(&mut OwnedBlocks(InMemorySource::new(&data)))
                    .expect("in-memory stream");
                acc.finish().expect("non-empty").beta()
            }));
            // The borrowed-block visitor: dataset slices lent straight to
            // the kernels, no block copy or per-block allocation — the
            // zero-copy *streaming* transport shard/adapter sources ride.
            borrowed = borrowed.max(time_rows_per_sec(rows, || {
                let mut acc = CoefficientAccumulator::new(&LinearObjective, d);
                acc.absorb(&mut BorrowedBlocks(InMemorySource::new(&data)))
                    .expect("in-memory stream");
                acc.finish().expect("non-empty").beta()
            }));
            // The full in-memory fast path: `InMemorySource` hands its
            // backing dataset over whole (`take_dataset`) and the
            // accumulator chunks it in place, reusing the cached columnar
            // transpose — what CV folds, `fit_in_session` and
            // `fit_stream` over in-memory data pay now.
            zero_copy = zero_copy.max(time_rows_per_sec(rows, || {
                let mut acc = CoefficientAccumulator::new(&LinearObjective, d);
                acc.absorb(&mut InMemorySource::new(&data))
                    .expect("in-memory stream");
                acc.finish().expect("non-empty").beta()
            }));
        }
        let speedup = batched / per_tuple;
        let streamed_ratio = streamed / batched;
        let borrowed_ratio = borrowed / batched_fit;
        let zero_copy_ratio = zero_copy / batched_fit;
        // Fused-FLOP rate of the batched path's Gram triangle (the
        // irreducible work): d(d+1)/2 + d + 1 multiply-adds per row.
        let flops_per_row = (d * (d + 1) / 2 + d + 1) as f64 * 2.0;
        let batched_gflops = batched * flops_per_row / 1e9;
        eprintln!(
            "d={d:>2}: per-tuple {per_tuple:>11.0} | batched {batched:>11.0} | batched+validate {batched_fit:>11.0} | owned {streamed:>11.0} ({streamed_ratio:>4.2}x of batched) | borrowed {borrowed:>11.0} ({borrowed_ratio:>4.2}x of fit) | zero-copy {zero_copy:>11.0} ({zero_copy_ratio:>4.2}x of fit) | {batched_gflops:>5.1} GFLOP/s ({:>3.0}% of ceiling)",
            batched_gflops / ceiling * 100.0
        );
        let separator = if i == 0 { "" } else { ",\n" };
        let fraction = batched_gflops / ceiling;
        let _ = write!(
            results,
            "{separator}    {{\"d\": {d}, \"per_tuple_rows_per_sec\": {per_tuple:.0}, \"batched_rows_per_sec\": {batched:.0}, \"batched_fit_rows_per_sec\": {batched_fit:.0}, \"streamed_rows_per_sec\": {streamed:.0}, \"streamed_vs_batched\": {streamed_ratio:.3}, \"streamed_borrowed_rows_per_sec\": {borrowed:.0}, \"streamed_borrowed_vs_batched_fit\": {borrowed_ratio:.3}, \"streamed_zero_copy_rows_per_sec\": {zero_copy:.0}, \"streamed_zero_copy_vs_batched_fit\": {zero_copy_ratio:.3}, \"speedup\": {speedup:.3}, \"batched_gflops\": {batched_gflops:.2}, \"batched_fraction_of_ceiling\": {fraction:.3}}}"
        );
    }

    let csv_ingest = bench_csv_scenario(rows);

    let dims_json = DIMS.map(|d| d.to_string()).join(", ");
    let json = format!(
        "{{\n  \"n\": {rows},\n  \"d\": [{dims_json}],\n  \"objective\": \"linreg\",\n  \"parallel_feature\": {},\n  \"host_fma_ceiling_gflops\": {ceiling:.2},\n  \"results\": [\n{results}\n  ],\n  \"csv_ingest\": {csv_ingest}\n}}\n",
        cfg!(feature = "parallel")
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
