//! `fm-probe` — a fast single-cell probe for calibrating the harness:
//! evaluates every method at one (rows, dimensionality, ε) point without
//! the full figure sweep.
//!
//! ```text
//! fm-probe --rows 370000 --dim 14 --epsilon 0.8 --task linear --country us
//! ```

use std::process::ExitCode;

use fm_bench::methods::{self, Method};
use fm_bench::runner::{evaluate, EvalConfig};
use fm_bench::workload::{build, Country, Task};

fn main() -> ExitCode {
    let mut rows = 40_000usize;
    let mut dim = 14usize;
    let mut epsilon = 0.8f64;
    let mut task = Task::Linear;
    let mut country = Country::Us;
    let mut repeats = 1usize;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut next = || argv.next().unwrap_or_default();
        match arg.as_str() {
            "--rows" => rows = next().parse().unwrap_or(rows),
            "--dim" => dim = next().parse().unwrap_or(dim),
            "--epsilon" => epsilon = next().parse().unwrap_or(epsilon),
            "--repeats" => repeats = next().parse().unwrap_or(repeats),
            "--task" => {
                task = if next().starts_with("log") {
                    Task::Logistic
                } else {
                    Task::Linear
                }
            }
            "--country" => {
                country = if next().starts_with("br") {
                    Country::Brazil
                } else {
                    Country::Us
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = EvalConfig {
        rows_us: rows,
        rows_brazil: rows,
        repeats,
        folds: 5,
        seed: 42,
    };
    println!(
        "probe: {} {} rows={rows} dim={dim} ε={epsilon} repeats={repeats}",
        country.name(),
        task.name()
    );
    let w = build(country, task, rows, dim, cfg.seed);
    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "method", "error", "± std", "sec/fit"
    );
    for (mi, &m) in Method::lineup(task).iter().enumerate() {
        let cell = evaluate(&w.data, task, m, epsilon, 1.0, &cfg, mi as u64);
        println!(
            "{:<12} {:>12.5} {:>10.5} {:>12.4}",
            m.name(),
            cell.error_mean,
            cell.error_std,
            cell.seconds_mean
        );
    }
    ExitCode::SUCCESS
}

// Methods module is exercised through the library; keep the probe minimal.
#[allow(unused_imports)]
use methods as _methods_keepalive;
