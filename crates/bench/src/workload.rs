//! Workload construction: census generation + normalization + attribute
//! subsetting, shared by every figure.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_data::census::{self, CensusProfile};
use fm_data::normalize::Normalizer;
use fm_data::Dataset;

/// Which census stands in for which IPUMS extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Country {
    /// IPUMS US (370k rows in the paper).
    Us,
    /// IPUMS Brazil (190k rows in the paper).
    Brazil,
}

impl Country {
    /// Display name matching the paper's figure captions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Country::Us => "US",
            Country::Brazil => "Brazil",
        }
    }

    /// The generation profile.
    #[must_use]
    pub fn profile(self) -> CensusProfile {
        match self {
            Country::Us => CensusProfile::us(),
            Country::Brazil => CensusProfile::brazil(),
        }
    }
}

/// Regression task, selecting the metric and label handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Linear regression; metric = mean squared error.
    Linear,
    /// Logistic regression; metric = misclassification rate.
    Logistic,
}

impl Task {
    /// Display name matching the paper's figure captions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Task::Linear => "Linear",
            Task::Logistic => "Logistic",
        }
    }

    /// Metric label for table headers.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            Task::Linear => "mean square error",
            Task::Logistic => "misclassification rate",
        }
    }
}

/// A fully prepared (normalized, subsetted) evaluation dataset.
pub struct Workload {
    /// The normalized dataset ready for fitting.
    pub data: Dataset,
    /// Which census it came from.
    pub country: Country,
    /// Which task it encodes.
    pub task: Task,
}

/// Generates the normalized workload for `country`/`task` at `rows` rows
/// and the paper `dimensionality` (5/8/11/14), deterministically from
/// `seed`.
///
/// # Panics
/// On invalid dimensionality or generation failure — harness code treats
/// these as fatal configuration errors.
#[must_use]
pub fn build(
    country: Country,
    task: Task,
    rows: usize,
    dimensionality: usize,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = country.profile();
    let raw = census::generate(&profile, rows, &mut rng).expect("census generation");
    let schema = census::schema(&profile);
    let normalizer = Normalizer::from_schema(&schema, census::LABEL).expect("normalizer");

    let full = match task {
        Task::Linear => normalizer.normalize_linear(&raw).expect("normalize"),
        Task::Logistic => normalizer
            .normalize_logistic(&raw, profile.income_threshold())
            .expect("normalize"),
    };
    let subset = census::attribute_subset(dimensionality).expect("dimensionality");
    let data = full.select_features(subset).expect("subset");
    Workload {
        data,
        country,
        task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_contract_satisfying_data() {
        let w = build(Country::Us, Task::Linear, 500, 8, 1);
        assert_eq!(w.data.d(), 7);
        w.data.check_normalized_linear().unwrap();

        let w = build(Country::Brazil, Task::Logistic, 500, 14, 1);
        assert_eq!(w.data.d(), 13);
        w.data.check_normalized_logistic().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(Country::Us, Task::Linear, 200, 5, 9);
        let b = build(Country::Us, Task::Linear, 200, 5, 9);
        assert_eq!(a.data.y(), b.data.y());
    }

    #[test]
    fn countries_differ() {
        let a = build(Country::Us, Task::Linear, 200, 5, 9);
        let b = build(Country::Brazil, Task::Linear, 200, 5, 9);
        assert_ne!(a.data.y(), b.data.y());
    }
}
