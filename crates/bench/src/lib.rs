//! Experiment harness for regenerating every table and figure of the
//! paper's evaluation (Section 7), plus the repo's own ablations.
//!
//! The binary `fm-experiments` (see `src/bin/fm_experiments.rs`) drives
//! everything:
//!
//! ```text
//! cargo run --release -p fm-bench --bin fm-experiments -- --figure fig4
//! cargo run --release -p fm-bench --bin fm-experiments -- --figure all --rows 370000 --repeats 50
//! ```
//!
//! | `--figure` | Paper artefact | Series printed |
//! |------------|----------------|----------------|
//! | `fig2`  | Fig. 2 — linear objective vs FM-noised version (worked example §4.2) | coefficients + minimisers |
//! | `fig3`  | Fig. 3 — logistic objective vs Taylor approximation (§5.2 example) | sampled curves |
//! | `fig4`  | Fig. 4a–d — accuracy vs dimensionality {5, 8, 11, 14} | per-method MSE / misclassification |
//! | `fig5`  | Fig. 5a–d — accuracy vs sampling rate {0.1 … 1.0} | per-method MSE / misclassification |
//! | `fig6`  | Fig. 6a–d — accuracy vs ε {0.1 … 3.2} | per-method MSE / misclassification |
//! | `fig7`  | Fig. 7a–b — training time vs dimensionality (logistic) | per-method seconds |
//! | `fig8`  | Fig. 8a–b — training time vs sampling rate (logistic) | per-method seconds |
//! | `fig9`  | Fig. 9a–b — training time vs ε (logistic) | per-method seconds |
//! | `ablation` | repo-specific design ablations | post-processing / sensitivity-bound sweeps |
//! | `ablation-approx` | §8 extension — Taylor vs Chebyshev surrogate | per-surrogate misclassification vs ε |
//! | `ablation-noise` | §2 extension — ε-DP Laplace vs (ε, δ) Gaussian | per-noise MSE vs dimensionality |
//! | `poisson` | §8 extension — DP Poisson regression | MAE vs ε; count-cap trade-off |
//!
//! Criterion microbenchmarks (`cargo bench -p fm-bench`) cover the same
//! timing claims at statistical rigor on fixed workloads.
//!
//! Defaults are scaled down (40k/20k rows, 2 CV repeats) so a full figure
//! regenerates in minutes on a laptop; `--rows`/`--repeats`/`--full`
//! restore the paper's 370k/190k × 50-repeat protocol.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod methods;
pub mod params;
pub mod report;
pub mod runner;
pub mod workload;
