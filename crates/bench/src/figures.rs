//! Per-figure experiment drivers: each function regenerates the data series
//! behind one figure of the paper.

use fm_core::linreg::{DpLinearRegression, LinearObjective};
use fm_core::mechanism::{FunctionalMechanism, PolynomialObjective, SensitivityBound};
use fm_core::postprocess;
use fm_data::Dataset;
use fm_linalg::Matrix;
use fm_poly::taylor::log1p_exp;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::methods::Method;
use crate::params;
use crate::report::Table;
use crate::runner::{evaluate, EvalConfig};
use crate::workload::{build, Country, Task};

/// The x-axis a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Figures 4 / 7: dataset dimensionality {5, 8, 11, 14}.
    Dimensionality,
    /// Figures 5 / 8: sampling rate {0.1 … 1.0}.
    SamplingRate,
    /// Figures 6 / 9: privacy budget ε {0.1 … 3.2}.
    Epsilon,
}

impl Axis {
    fn label(self) -> &'static str {
        match self {
            Axis::Dimensionality => "dimensionality",
            Axis::SamplingRate => "sampling rate",
            Axis::Epsilon => "privacy budget ε",
        }
    }

    fn values(self) -> Vec<f64> {
        match self {
            Axis::Dimensionality => params::DIMENSIONALITIES.iter().map(|&d| d as f64).collect(),
            Axis::SamplingRate => params::SAMPLING_RATES_PLOTTED.to_vec(),
            Axis::Epsilon => params::EPSILONS.to_vec(),
        }
    }
}

fn rows_for(country: Country, cfg: &EvalConfig) -> usize {
    match country {
        Country::Us => cfg.rows_us,
        Country::Brazil => cfg.rows_brazil,
    }
}

/// Figure 2: the §4.2 worked example — the exact linear objective
/// `2.06ω² − 2.34ω + 1.25` next to one FM-noised draw, with both
/// minimisers.
#[must_use]
pub fn fig2(seed: u64) -> String {
    let x = Matrix::from_rows(&[&[1.0], &[0.9], &[-0.5]]).expect("rows");
    let data = Dataset::new(x, vec![0.4, 0.3, -1.0]).expect("dataset");
    let clean = LinearObjective.assemble(&data);
    let omega_star = 117.0 / 206.0;

    let mut rng = StdRng::seed_from_u64(seed);
    let fm = FunctionalMechanism::new(1.0).expect("ε");
    let noisy = fm
        .perturb(&data, &LinearObjective, &mut rng)
        .expect("perturb");
    let nq = noisy.objective().clone();
    // The raw minimiser of f̄_D (what Figure 2 plots), when it exists …
    let raw_min = postprocess::minimize(&noisy)
        .map(|w| format!("{:.6}", w[0]))
        .unwrap_or_else(|_| "unbounded (§6 applies)".to_string());
    // … and the §6 full-pipeline output, for comparison.
    let pipeline_omega = DpLinearRegression::builder()
        .epsilon(1.0)
        .build()
        .fit(&data, &mut StdRng::seed_from_u64(seed))
        .expect("fit")
        .weights()[0];

    let mut out = String::new();
    out.push_str("\n== Figure 2 — linear objective vs FM-noised version (§4.2 example) ==\n");
    out.push_str(&format!(
        "f_D(ω)  = {:.4}ω² + {:.4}ω + {:.4}   (minimiser ω* = {:.6} = 117/206)\n",
        clean.m()[(0, 0)],
        clean.alpha()[0],
        clean.beta(),
        omega_star
    ));
    out.push_str(&format!(
        "f̄_D(ω) = {:.4}ω² + {:.4}ω + {:.4}   (Δ = {}, ε = 1, raw minimiser ω̄ = {raw_min})\n",
        nq.m()[(0, 0)],
        nq.alpha()[0],
        nq.beta(),
        noisy.sensitivity(),
    ));
    out.push_str(&format!(
        "§6 pipeline output (regularize λ=4√2·Δ/ε, trim): ω = {pipeline_omega:.6} — at n = 3 the\n\
         regularizer dominates; Theorem 2 recovers ω* as n grows.\n",
    ));
    out.push_str("\n        ω      f_D(ω)     f̄_D(ω)\n");
    for i in 0..=10 {
        let w = i as f64 / 10.0;
        out.push_str(&format!(
            "{w:>9.1} {:>11.4} {:>11.4}\n",
            clean.eval(&[w]),
            nq.eval(&[w])
        ));
    }
    out
}

/// Figure 3: the §5.2 example — exact logistic objective vs its degree-2
/// Taylor approximation over `D = {(−0.5, 1), (0, 0), (1, 1)}`.
#[must_use]
pub fn fig3() -> String {
    let x = Matrix::from_rows(&[&[-0.5], &[0.0], &[1.0]]).expect("rows");
    let data = Dataset::new(x, vec![1.0, 0.0, 1.0]).expect("dataset");
    let truncated = fm_core::logreg::truncated_objective(&data);

    let mut out = String::new();
    out.push_str(
        "\n== Figure 3 — logistic objective vs polynomial approximation (§5.2 example) ==\n",
    );
    out.push_str("        ω      f_D(ω)     f̂_D(ω)        gap\n");
    for i in 0..=10 {
        let w = -0.5 + i as f64 * 0.25; // ω ∈ [−0.5, 2.0] like the paper's plot
        let exact: f64 = data
            .tuples()
            .map(|(xi, yi)| log1p_exp(xi[0] * w) - yi * xi[0] * w)
            .sum();
        let approx = truncated.eval(&[w]);
        out.push_str(&format!(
            "{w:>9.2} {exact:>11.4} {approx:>11.4} {:>10.4}\n",
            approx - exact
        ));
    }
    out.push_str(&format!(
        "\nLemma-4 per-tuple error constant: {:.4} (paper reports ≈ 0.015)\n",
        fm_poly::taylor::paper_logistic_error_constant()
    ));
    out
}

/// Figures 4–6: the four accuracy panels (US/Brazil × Linear/Logistic)
/// along `axis`.
#[must_use]
pub fn accuracy_figure(figure: &str, axis: Axis, cfg: &EvalConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    let panels = [
        ('a', Country::Us, Task::Linear),
        ('b', Country::Brazil, Task::Linear),
        ('c', Country::Us, Task::Logistic),
        ('d', Country::Brazil, Task::Logistic),
    ];
    for (panel, country, task) in panels {
        let methods = Method::lineup(task);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        let mut table = Table::new(
            &format!(
                "Figure {figure}{panel} — {}-{} ({})",
                country.name(),
                task.name(),
                task.metric_name()
            ),
            axis.label(),
            &names,
        );
        let rows = rows_for(country, cfg);

        // Workload reuse: only the dimensionality axis changes the data.
        let default_workload = if axis == Axis::Dimensionality {
            None
        } else {
            Some(build(
                country,
                task,
                rows,
                params::DEFAULT_DIMENSIONALITY,
                cfg.seed,
            ))
        };

        let mut last_cells: Vec<(Method, crate::runner::CellResult)> = Vec::new();
        for (xi, &x) in axis.values().iter().enumerate() {
            let (dim, rate, eps) = match axis {
                Axis::Dimensionality => (
                    x as usize,
                    params::DEFAULT_SAMPLING_RATE,
                    params::DEFAULT_EPSILON,
                ),
                Axis::SamplingRate => (params::DEFAULT_DIMENSIONALITY, x, params::DEFAULT_EPSILON),
                Axis::Epsilon => (
                    params::DEFAULT_DIMENSIONALITY,
                    params::DEFAULT_SAMPLING_RATE,
                    x,
                ),
            };
            let built;
            let data = match &default_workload {
                Some(w) => &w.data,
                None => {
                    built = build(country, task, rows, dim, cfg.seed);
                    &built.data
                }
            };
            last_cells.clear();
            let mut row = Vec::with_capacity(methods.len());
            for (mi, &method) in methods.iter().enumerate() {
                let cell_seed = (xi as u64) << 32 | (mi as u64) << 16 | panel as u64;
                let cell = evaluate(data, task, method, eps, rate, cfg, cell_seed);
                row.push(cell.error_mean);
                last_cells.push((method, cell));
            }
            table.push_row(&format_axis_value(axis, x), row);
        }
        println!("{}", table.render());
        print_composed_epsilon(&last_cells);
        tables.push(table);
    }
    tables
}

/// Footnote printed under each panel: the honest composed (ε) cost of one
/// full CV cell — every plotted point spends `repeats × folds` sequential
/// fits on the same individuals, which the per-fit ε on the axis does not
/// show. Reported from each private method's last-row
/// [`crate::runner::CellResult`] session ledger (basic Σεᵢ and the best of
/// basic/advanced at δ′ = [`crate::runner::REPORT_DELTA_PRIME`]).
fn print_composed_epsilon(last_cells: &[(Method, crate::runner::CellResult)]) {
    let mut notes = Vec::new();
    for (method, cell) in last_cells {
        if let (Some(basic), Some(best)) = (cell.composed_epsilon_basic, cell.composed_epsilon_best)
        {
            notes.push(format!(
                "{} Σε = {basic:.3} over {} fits (best composition ≈ {best:.3})",
                method.name(),
                cell.fits
            ));
        }
    }
    if !notes.is_empty() {
        println!(
            "   honest composed budget per cell (session ledger, last row): {}\n",
            notes.join("; ")
        );
    }
}

/// Figures 7–9: the two computation-time panels (US, Brazil) for logistic
/// regression along `axis`, in seconds per training run.
#[must_use]
pub fn timing_figure(figure: &str, axis: Axis, cfg: &EvalConfig) -> Vec<Table> {
    // Timing needs far fewer repetitions than accuracy (the paper's
    // log-scale plots span orders of magnitude): 1 repeat × 2 folds per
    // point keeps the slowest baselines (DPME/FP retrain on up-to-4n
    // synthetic tuples) tractable.
    let cfg = &EvalConfig {
        repeats: 1,
        folds: 2,
        ..*cfg
    };
    let mut tables = Vec::new();
    let task = Task::Logistic;
    for (panel, country) in [('a', Country::Us), ('b', Country::Brazil)] {
        let methods = Method::lineup(task);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        let mut table = Table::new(
            &format!(
                "Figure {figure}{panel} — {} computation time, logistic (seconds)",
                country.name()
            ),
            axis.label(),
            &names,
        );
        let rows = rows_for(country, cfg);
        let default_workload = if axis == Axis::Dimensionality {
            None
        } else {
            Some(build(
                country,
                task,
                rows,
                params::DEFAULT_DIMENSIONALITY,
                cfg.seed,
            ))
        };

        let mut last_cells: Vec<(Method, crate::runner::CellResult)> = Vec::new();
        for (xi, &x) in axis.values().iter().enumerate() {
            let (dim, rate, eps) = match axis {
                Axis::Dimensionality => (
                    x as usize,
                    params::DEFAULT_SAMPLING_RATE,
                    params::DEFAULT_EPSILON,
                ),
                Axis::SamplingRate => (params::DEFAULT_DIMENSIONALITY, x, params::DEFAULT_EPSILON),
                Axis::Epsilon => (
                    params::DEFAULT_DIMENSIONALITY,
                    params::DEFAULT_SAMPLING_RATE,
                    x,
                ),
            };
            let built;
            let data = match &default_workload {
                Some(w) => &w.data,
                None => {
                    built = build(country, task, rows, dim, cfg.seed);
                    &built.data
                }
            };
            last_cells.clear();
            let mut row = Vec::with_capacity(methods.len());
            for (mi, &method) in methods.iter().enumerate() {
                // 0x77 decorrelates timing cells from the accuracy cells;
                // it must sit above the panel byte or `| panel` is a no-op
                // ('a'/'b' are both submasks of 0x77).
                let cell_seed = (xi as u64) << 32 | (mi as u64) << 16 | 0x77 << 8 | panel as u64;
                let cell = evaluate(data, task, method, eps, rate, cfg, cell_seed);
                row.push(cell.seconds_mean);
                last_cells.push((method, cell));
            }
            table.push_row(&format_axis_value(axis, x), row);
        }
        println!("{}", table.render());
        print_composed_epsilon(&last_cells);
        tables.push(table);
    }
    tables
}

/// Repo-specific ablations of the design choices DESIGN.md calls out:
/// post-processing strategy, regularization multiplier, sensitivity bound.
#[must_use]
pub fn ablation(cfg: &EvalConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    let w = build(
        Country::Us,
        Task::Linear,
        cfg.rows_us,
        params::DEFAULT_DIMENSIONALITY,
        cfg.seed,
    );
    let data = &w.data;
    let d = data.d();

    // (1) Post-processing strategies at each ε: mean MSE (±∞ = failure).
    {
        use fm_core::postprocess::Strategy;
        let strategies: [(&str, Strategy); 4] = [
            ("Reg+Trim", Strategy::RegularizeThenTrim),
            ("RegOnly", Strategy::RegularizeOnly),
            ("NoPostproc", Strategy::FailIfUnbounded),
            ("Resample", Strategy::Resample { max_attempts: 64 }),
        ];
        let names: Vec<&str> = strategies.iter().map(|(n, _)| *n).collect();
        let mut failures_cols: Vec<String> = names.iter().map(|n| format!("{n}:fail%")).collect();
        let mut columns: Vec<&str> = names.clone();
        let fail_refs: Vec<&str> = failures_cols.iter().map(String::as_str).collect();
        columns.extend(fail_refs);
        let mut table = Table::new(
            "Ablation — §6 post-processing strategy (US-Linear, MSE and failure rate)",
            "privacy budget ε",
            &columns,
        );
        for &eps in &params::EPSILONS {
            let mut errs = Vec::new();
            let mut fails = Vec::new();
            for (si, (_, strategy)) in strategies.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(cfg.seed + si as u64 * 131);
                let reps = (cfg.repeats * cfg.folds).max(4);
                let mut total = 0.0;
                let mut ok = 0usize;
                for _ in 0..reps {
                    let model = DpLinearRegression::builder()
                        .epsilon(eps)
                        .strategy(*strategy)
                        .build()
                        .fit(data, &mut rng);
                    if let Ok(m) = model {
                        total += fm_data::metrics::mse(&m.predict_batch(data.x()), data.y());
                        ok += 1;
                    }
                }
                errs.push(if ok > 0 { total / ok as f64 } else { f64::NAN });
                fails.push(100.0 * (reps - ok) as f64 / reps as f64);
            }
            errs.extend(fails);
            table.push_row(&format!("{eps}"), errs);
        }
        println!("{}", table.render());
        tables.push(table);
        failures_cols.clear();
    }

    // (2) Regularization multiplier sweep (paper picks 4× the noise stddev).
    {
        let multipliers = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0];
        let names: Vec<String> = multipliers.iter().map(|m| format!("λ={m}×σ")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut table = Table::new(
            "Ablation — §6.1 regularization multiplier (US-Linear, MSE)",
            "privacy budget ε",
            &refs,
        );
        for &eps in &params::EPSILONS {
            let mut row = Vec::new();
            for (mi, &mult) in multipliers.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(cfg.seed + 7_000 + mi as u64);
                let reps = (cfg.repeats * cfg.folds).max(4);
                let fm = FunctionalMechanism::new(eps).expect("ε");
                let mut total = 0.0;
                let mut ok = 0usize;
                for _ in 0..reps {
                    let mut noisy = fm
                        .perturb(data, &LinearObjective, &mut rng)
                        .expect("perturb");
                    let lambda = postprocess::regularize_with(&mut noisy, mult);
                    if let Ok((omega, _)) =
                        postprocess::spectral_trim_minimize_with_floor(&noisy, lambda)
                    {
                        let m = fm_core::model::LinearModel::new(omega, Some(eps));
                        total += fm_data::metrics::mse(&m.predict_batch(data.x()), data.y());
                        ok += 1;
                    }
                }
                row.push(if ok > 0 { total / ok as f64 } else { f64::NAN });
            }
            table.push_row(&format!("{eps}"), row);
        }
        println!("{}", table.render());
        tables.push(table);
    }

    // (3) Paper vs Cauchy–Schwarz-tight sensitivity bound.
    {
        let mut table = Table::new(
            "Ablation — sensitivity bound (US-Linear, MSE; lower Δ ⇒ less noise)",
            "privacy budget ε",
            &["paper Δ=2(d+1)²", "tight Δ=2(1+√d)²"],
        );
        for &eps in &params::EPSILONS {
            let mut row = Vec::new();
            for (bi, bound) in [SensitivityBound::Paper, SensitivityBound::Tight]
                .into_iter()
                .enumerate()
            {
                let mut rng = StdRng::seed_from_u64(cfg.seed + 9_000 + bi as u64);
                let reps = (cfg.repeats * cfg.folds).max(4);
                let mut total = 0.0;
                for _ in 0..reps {
                    let m = DpLinearRegression::builder()
                        .epsilon(eps)
                        .sensitivity_bound(bound)
                        .build()
                        .fit(data, &mut rng)
                        .expect("fit");
                    total += fm_data::metrics::mse(&m.predict_batch(data.x()), data.y());
                }
                row.push(total / reps as f64);
            }
            table.push_row(&format!("{eps}"), row);
        }
        println!(
            "   (paper Δ at d={d}: {}, tight: {})",
            LinearObjective.sensitivity(d, SensitivityBound::Paper),
            LinearObjective.sensitivity(d, SensitivityBound::Tight)
        );
        println!("{}", table.render());
        tables.push(table);
    }

    tables
}

/// Extension ablation — §8's "alternative analytical tools": the Taylor
/// surrogate (§5) vs degree-2 Chebyshev surrogates at two interval widths,
/// on US-Logistic misclassification across ε. Non-private `Truncated`
/// columns isolate the pure approximation error of each surrogate.
#[must_use]
pub fn ablation_approx(cfg: &EvalConfig) -> Vec<Table> {
    use fm_core::logreg::{Approximation, DpLogisticRegression};

    let w = build(
        Country::Us,
        Task::Logistic,
        cfg.rows_us,
        params::DEFAULT_DIMENSIONALITY,
        cfg.seed,
    );
    let data = &w.data;
    let approximations: [(&str, Approximation); 3] = [
        ("Taylor", Approximation::Taylor),
        ("ChebR1", Approximation::Chebyshev { half_width: 1.0 }),
        ("ChebR2", Approximation::Chebyshev { half_width: 2.0 }),
    ];

    let mut columns: Vec<String> = approximations
        .iter()
        .map(|(n, _)| format!("FM {n}"))
        .collect();
    columns.extend(approximations.iter().map(|(n, _)| format!("Tr {n}")));
    let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Ablation — §5 Taylor vs §8 Chebyshev surrogate (US-Logistic, misclassification)",
        "privacy budget ε",
        &refs,
    );

    // Non-private truncated error per surrogate is ε-independent; compute once.
    let truncated_errors: Vec<f64> = approximations
        .iter()
        .map(|(_, approx)| {
            let m = DpLogisticRegression::builder()
                .approximation(*approx)
                .build()
                .fit_truncated_without_privacy(data)
                .expect("truncated fit");
            fm_data::metrics::misclassification_rate(&m.probabilities_batch(data.x()), data.y())
        })
        .collect();

    for &eps in &params::EPSILONS {
        let mut row = Vec::new();
        for (ai, (_, approx)) in approximations.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(cfg.seed + 11_000 + ai as u64 * 37);
            let reps = (cfg.repeats * cfg.folds).max(4);
            let mut total = 0.0;
            for _ in 0..reps {
                let m = DpLogisticRegression::builder()
                    .epsilon(eps)
                    .approximation(*approx)
                    .build()
                    .fit(data, &mut rng)
                    .expect("fit");
                total += fm_data::metrics::misclassification_rate(
                    &m.probabilities_batch(data.x()),
                    data.y(),
                );
            }
            row.push(total / reps as f64);
        }
        row.extend(&truncated_errors);
        table.push_row(&format!("{eps}"), row);
    }
    println!("{}", table.render());
    vec![table]
}

/// Extension ablation — strict ε-DP Laplace noise (L1 sensitivity,
/// `Δ₁ = 2(d+1)²`) vs relaxed (ε, δ) Gaussian noise (L2 sensitivity,
/// `Δ₂ = 2√6`, dimension-independent) on US-Linear MSE across
/// dimensionality. The Gaussian column requires ε < 1, so the sweep runs
/// at ε = 0.8 (the paper's default).
#[must_use]
pub fn ablation_noise(cfg: &EvalConfig) -> Vec<Table> {
    use fm_core::mechanism::NoiseDistribution;

    let delta = 1e-6;
    let eps = params::DEFAULT_EPSILON;
    let mut table = Table::new(
        &format!(
            "Ablation — Laplace (ε-DP) vs Gaussian ((ε, δ)-DP, δ={delta}) at ε={eps} (US-Linear, MSE)"
        ),
        "dimensionality",
        &["FM Laplace", "FM Gaussian", "NoPrivacy"],
    );

    for (di, &d) in params::DIMENSIONALITIES.iter().enumerate() {
        let w = build(Country::Us, Task::Linear, cfg.rows_us, d, cfg.seed);
        let data = &w.data;
        let reps = (cfg.repeats * cfg.folds).max(4);

        let mut row = Vec::new();
        for (ni, noise) in [
            NoiseDistribution::Laplace,
            NoiseDistribution::Gaussian { delta },
        ]
        .into_iter()
        .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(cfg.seed + 13_000 + (di * 7 + ni) as u64);
            let mut total = 0.0;
            for _ in 0..reps {
                let m = DpLinearRegression::builder()
                    .epsilon(eps)
                    .noise(noise)
                    .build()
                    .fit(data, &mut rng)
                    .expect("fit");
                total += fm_data::metrics::mse(&m.predict_batch(data.x()), data.y());
            }
            row.push(total / reps as f64);
        }
        let clean = DpLinearRegression::builder()
            .build()
            .fit_without_privacy(data)
            .expect("OLS");
        row.push(fm_data::metrics::mse(
            &clean.predict_batch(data.x()),
            data.y(),
        ));
        table.push_row(&format!("{d}"), row);
    }
    println!(
        "   (Δ₁ grows as 2(d+1)²: {:?}; Δ₂ is constant 2√6 ≈ {:.2})",
        params::DIMENSIONALITIES
            .iter()
            .map(|&d| fm_core::linreg::sensitivity_paper(d))
            .collect::<Vec<_>>(),
        fm_core::linreg::sensitivity_l2()
    );
    println!("{}", table.render());
    vec![table]
}

/// Extension — §8's "other regression tasks": DP **Poisson** regression.
/// Reports held-out mean absolute error of the predicted rate against the
/// observed count, across ε, plus a count-cap (`y_max`) sweep showing the
/// cap-vs-noise trade-off in `Δ = 2((1 + y_max)d + d²/2)`.
#[must_use]
pub fn poisson_figure(cfg: &EvalConfig) -> Vec<Table> {
    use fm_core::logreg::Approximation;
    use fm_core::poisson::DpPoissonRegression;

    let d = 5;
    let y_max = fm_core::poisson::DEFAULT_Y_MAX;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let truth = fm_data::synth::ground_truth_weights(&mut rng, d);
    let data = fm_data::synth::poisson_dataset_with_weights(&mut rng, cfg.rows_us, &truth, y_max);

    let mae = |m: &fm_core::poisson::PoissonModel| -> f64 {
        data.tuples()
            .map(|(x, y)| (m.rate(x) - y).abs())
            .sum::<f64>()
            / data.n() as f64
    };

    let mut tables = Vec::new();

    // (1) Error vs ε, Taylor vs Chebyshev surrogates, with the non-private
    // truncated fit as the floor.
    {
        let mut table = Table::new(
            "Extension — DP Poisson regression (synthetic counts, mean |rate − y|)",
            "privacy budget ε",
            &["FM Taylor", "FM ChebR1", "Truncated"],
        );
        let truncated = DpPoissonRegression::builder()
            .y_max(y_max)
            .build()
            .fit_truncated_without_privacy(&data)
            .expect("truncated fit");
        let floor = mae(&truncated);
        for &eps in &params::EPSILONS {
            let reps = (cfg.repeats * cfg.folds).max(4);
            let mut row = Vec::new();
            for (ai, approx) in [
                Approximation::Taylor,
                Approximation::Chebyshev { half_width: 1.0 },
            ]
            .into_iter()
            .enumerate()
            {
                let mut rng = StdRng::seed_from_u64(cfg.seed + 17_000 + ai as u64);
                let mut total = 0.0;
                for _ in 0..reps {
                    let m = DpPoissonRegression::builder()
                        .epsilon(eps)
                        .y_max(y_max)
                        .approximation(approx)
                        .build()
                        .fit(&data, &mut rng)
                        .expect("fit");
                    total += mae(&m);
                }
                row.push(total / reps as f64);
            }
            row.push(floor);
            table.push_row(&format!("{eps}"), row);
        }
        println!("{}", table.render());
        tables.push(table);
    }

    // (2) The count-cap trade-off: clipping counts at a lower cap biases
    // labels but shrinks Δ linearly.
    {
        let caps = [2.0, 4.0, 8.0, 16.0, 32.0];
        let names: Vec<String> = caps.iter().map(|c| format!("y_max={c}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut table = Table::new(
            "Extension — Poisson count-cap trade-off (mean |rate − y| at default ε)",
            "privacy budget ε",
            &refs,
        );
        for &eps in &[0.4, params::DEFAULT_EPSILON, 3.2] {
            let mut row = Vec::new();
            for (ci, &cap) in caps.iter().enumerate() {
                // Re-clip the labels at this cap (the data was generated at
                // the default cap; tighter caps clip more).
                let y: Vec<f64> = data.y().iter().map(|&v| v.min(cap)).collect();
                let clipped = Dataset::new(data.x().clone(), y).expect("dataset");
                let mut rng = StdRng::seed_from_u64(cfg.seed + 19_000 + ci as u64);
                let reps = (cfg.repeats * cfg.folds).max(4);
                let mut total = 0.0;
                for _ in 0..reps {
                    let m = DpPoissonRegression::builder()
                        .epsilon(eps)
                        .y_max(cap)
                        .build()
                        .fit(&clipped, &mut rng)
                        .expect("fit");
                    total += data
                        .tuples()
                        .map(|(x, y)| (m.rate(x) - y).abs())
                        .sum::<f64>()
                        / data.n() as f64;
                }
                row.push(total / reps as f64);
            }
            table.push_row(&format!("{eps}"), row);
        }
        println!("{}", table.render());
        tables.push(table);
    }

    tables
}

/// Extension — composed-ε accounting for a T-release continual workload:
/// the privacy loss an auditor must report after T homogeneous releases,
/// under the three accountants the session stack offers. One table for
/// classically calibrated Gaussian releases (ε₀ = 0.1, δ₀ = 1e-6) —
/// where the moments accountant's √T scaling beats both the naive Σε and
/// the Dwork–Rothblum–Vadhan advanced bound from T ≈ 16 on — and one for
/// pure-ε Laplace releases through Mironov's exact Laplace curve, where
/// the crossover against `best` sits later because basic composition is
/// already tight for small T.
#[must_use]
pub fn accounting_figure() -> Vec<Table> {
    use fm_privacy::budget::EpsDeltaLedger;
    use fm_privacy::rdp::{RdpLedger, RenyiMechanism};

    const EPS0: f64 = 0.1;
    const DELTA0: f64 = 1e-6;
    const DELTA_PRIME: f64 = 1e-6;
    let horizons = [8usize, 16, 32, 64, 128, 256];
    let columns = ["naive Σε", "advanced ε", "best ε", "rdp ε", "rdp α*"];

    let mut tables = Vec::new();
    for (title, delta0) in [
        (
            "Accounting: T Gaussian releases (ε₀ = 0.1, δ₀ = 1e-6), reported at δ′ = 1e-6",
            DELTA0,
        ),
        (
            "Accounting: T Laplace releases (ε₀ = 0.1, pure ε-DP), reported at δ′ = 1e-6",
            0.0,
        ),
    ] {
        let mut table = Table::new(title, "T releases", &columns);
        for &t in &horizons {
            let mut ledger = EpsDeltaLedger::new();
            let mut rdp = RdpLedger::new();
            for _ in 0..t {
                ledger.record(EPS0, delta0).expect("valid entry");
                if delta0 == 0.0 {
                    // Mironov's exact Laplace curve, not the generic
                    // pure-DP bound: the releases are known Laplace.
                    rdp.record(RenyiMechanism::Laplace { epsilon: EPS0 })
                        .expect("valid mechanism");
                } else {
                    rdp.record(
                        RenyiMechanism::gaussian_from_calibration(EPS0, delta0)
                            .expect("classical calibration range"),
                    )
                    .expect("valid mechanism");
                }
            }
            let (naive, _) = ledger.basic_composition();
            let (advanced, _) = ledger.advanced_composition(DELTA_PRIME).expect("δ′ valid");
            let (best, _) = ledger.best_composition(DELTA_PRIME).expect("δ′ valid");
            let account = rdp.convert(DELTA_PRIME).expect("δ valid");
            table.push_row(
                &format!("{t}"),
                vec![
                    naive,
                    advanced,
                    best,
                    account.epsilon,
                    account.best_alpha.unwrap_or(f64::NAN),
                ],
            );
        }
        println!("{}", table.render());
        tables.push(table);
    }
    tables
}

fn format_axis_value(axis: Axis, x: f64) -> String {
    match axis {
        Axis::Dimensionality => format!("{}", x as usize),
        Axis::SamplingRate | Axis::Epsilon => format!("{x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_grids_match_table2() {
        assert_eq!(Axis::Dimensionality.values(), vec![5.0, 8.0, 11.0, 14.0]);
        assert_eq!(Axis::Epsilon.values().len(), 6);
        assert_eq!(Axis::SamplingRate.values().len(), 6);
    }

    #[test]
    fn fig2_reports_the_worked_example() {
        let s = fig2(1);
        assert!(s.contains("2.0600ω²"));
        assert!(s.contains("117/206"));
    }

    #[test]
    fn fig3_gap_is_bounded_by_lemma4() {
        let s = fig3();
        assert!(s.contains("Figure 3"));
        // Parse the gap column and compare to 3 tuples × the bound… the
        // rendering is stable, so a sanity substring check suffices here;
        // the numeric bound is asserted in fm-core's tests.
        assert!(s.contains("0.015"));
    }
}
