//! Table 2 of the paper: experimental parameters and default values.

/// Sampling rates (Table 2; default **1.0**).
pub const SAMPLING_RATES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// The subset of sampling rates shown on the paper's x-axes (Figures 5, 8).
pub const SAMPLING_RATES_PLOTTED: [f64; 6] = [0.1, 0.3, 0.5, 0.6, 0.8, 1.0];

/// Dataset dimensionalities, counting the label (Table 2; default **14**).
pub const DIMENSIONALITIES: [usize; 4] = [5, 8, 11, 14];

/// Privacy budgets (Table 2; default **0.8**).
pub const EPSILONS: [f64; 6] = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2];

/// Default privacy budget.
pub const DEFAULT_EPSILON: f64 = 0.8;

/// Default dimensionality (all 14 attributes).
pub const DEFAULT_DIMENSIONALITY: usize = 14;

/// Default sampling rate.
pub const DEFAULT_SAMPLING_RATE: f64 = 1.0;

/// The paper's cross-validation fold count.
pub const CV_FOLDS: usize = 5;

/// The paper's repeat count for the full protocol.
pub const PAPER_REPEATS: usize = 50;

/// Scaled-down defaults that keep a full figure under a few minutes.
pub mod quick {
    /// Default US rows (paper: 370,000).
    pub const US_ROWS: usize = 40_000;
    /// Default Brazil rows (paper: 190,000).
    pub const BRAZIL_ROWS: usize = 20_000;
    /// Default CV repeats (paper: 50).
    pub const REPEATS: usize = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_members_of_their_grids() {
        assert!(EPSILONS.contains(&DEFAULT_EPSILON));
        assert!(DIMENSIONALITIES.contains(&DEFAULT_DIMENSIONALITY));
        assert!(SAMPLING_RATES.contains(&DEFAULT_SAMPLING_RATE));
    }

    #[test]
    fn grids_match_table_2() {
        assert_eq!(SAMPLING_RATES.len(), 10);
        assert_eq!(DIMENSIONALITIES, [5, 8, 11, 14]);
        assert_eq!(EPSILONS, [0.1, 0.2, 0.4, 0.8, 1.6, 3.2]);
        assert_eq!(CV_FOLDS, 5);
        assert_eq!(PAPER_REPEATS, 50);
    }

    #[test]
    fn plotted_rates_are_a_subset() {
        for r in SAMPLING_RATES_PLOTTED {
            assert!(SAMPLING_RATES.contains(&r));
        }
    }
}
