//! Result tables: aligned console output plus CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A figure panel: one row per x-axis value, one column per method.
#[derive(Debug, Clone)]
pub struct Table {
    /// Panel title, e.g. `Figure 4a — US-Linear (mean square error)`.
    pub title: String,
    /// X-axis label, e.g. `dimensionality`.
    pub x_label: String,
    /// Column (method) names.
    pub columns: Vec<String>,
    /// `(x value, per-column measurements)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty panel.
    #[must_use]
    pub fn new(title: &str, x_label: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics on column-count mismatch (harness bug).
    pub fn push_row(&mut self, x: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "table width mismatch");
        self.rows.push((x.to_string(), values));
    }

    /// Renders the aligned console form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let _ = write!(out, "{:>16}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, "{c:>14}");
        }
        let _ = writeln!(out);
        for (x, values) in &self.rows {
            let _ = write!(out, "{x:>16}");
            for v in values {
                let _ = write!(out, "{:>14}", format_value(*v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the panel as CSV into `dir` (created if needed), named from a
    /// slug of the title. Returns the path written.
    ///
    /// # Errors
    /// I/O failures from directory creation or the file write.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", slug(&self.title)));
        let mut csv = String::new();
        let _ = write!(csv, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(csv, ",{c}");
        }
        let _ = writeln!(csv);
        for (x, values) in &self.rows {
            let _ = write!(csv, "{x}");
            for v in values {
                let _ = write!(csv, ",{v}");
            }
            let _ = writeln!(csv);
        }
        fs::write(&path, csv)?;
        Ok(path)
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 || v.abs() >= 10_000.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn slug(title: &str) -> String {
    title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure 4a — US-Linear", "dimensionality", &["FM", "DPME"]);
        t.push_row("5", vec![0.06, 0.10]);
        t.push_row("14", vec![0.08, 0.31]);
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let s = sample().render();
        assert!(s.contains("Figure 4a"));
        assert!(s.contains("FM"));
        assert!(s.contains("0.0600"));
        assert!(s.contains("0.3100"));
    }

    #[test]
    fn value_formatting_regimes() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(0.1234), "0.1234");
        assert!(format_value(1e-6).contains('e'));
        assert!(format_value(123_456.0).contains('e'));
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(
            slug("Figure 4a — US-Linear (MSE)"),
            "figure_4a_us_linear_mse"
        );
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("fm_bench_report_test");
        let path = sample().write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "dimensionality,FM,DPME");
        assert_eq!(lines.len(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", "x", &["a"]);
        t.push_row("1", vec![1.0, 2.0]);
    }
}
