//! The evaluation loop: the paper's k-fold cross-validation protocol with
//! wall-clock instrumentation.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_core::session::PrivacySession;
use fm_data::cv::KFold;
use fm_data::sampling;
use fm_data::Dataset;

use crate::methods::{self, Method};
use crate::workload::Task;

/// Advanced-composition slack δ′ used when reporting a cell's honest
/// composed guarantee.
pub const REPORT_DELTA_PRIME: f64 = 1e-6;

/// Evaluation knobs shared by every figure.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Rows for the US census (paper: 370,000).
    pub rows_us: usize,
    /// Rows for the Brazil census (paper: 190,000).
    pub rows_brazil: usize,
    /// Cross-validation repeats (paper: 50).
    pub repeats: usize,
    /// Folds per repeat (paper: 5).
    pub folds: usize,
    /// Base RNG seed; every cell derives its stream deterministically.
    pub seed: u64,
}

impl EvalConfig {
    /// The scaled-down default configuration.
    #[must_use]
    pub fn quick() -> Self {
        EvalConfig {
            rows_us: crate::params::quick::US_ROWS,
            rows_brazil: crate::params::quick::BRAZIL_ROWS,
            repeats: crate::params::quick::REPEATS,
            folds: crate::params::CV_FOLDS,
            seed: 42,
        }
    }

    /// The paper's full protocol (370k/190k rows, 50 repeats).
    #[must_use]
    pub fn paper() -> Self {
        EvalConfig {
            rows_us: 370_000,
            rows_brazil: 190_000,
            repeats: crate::params::PAPER_REPEATS,
            folds: crate::params::CV_FOLDS,
            seed: 42,
        }
    }
}

/// Aggregated outcome of one (method × parameter-point) cell.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// Mean error metric over repeats × folds.
    pub error_mean: f64,
    /// Sample standard deviation of the per-fold errors.
    pub error_std: f64,
    /// Mean training (fit-only) wall-clock seconds per fold.
    pub seconds_mean: f64,
    /// Number of budget-consuming fits the cell's [`PrivacySession`]
    /// recorded (0 for non-private methods).
    pub fits: usize,
    /// The cell's honest composed ε under basic (sequential) composition —
    /// every fold of every repeat touches the same individuals, so this is
    /// `repeats × folds × ε` — or `None` for non-private methods.
    pub composed_epsilon_basic: Option<f64>,
    /// The tighter of basic and Dwork–Rothblum–Vadhan advanced composition
    /// at slack δ′ = [`REPORT_DELTA_PRIME`], or `None` for non-private
    /// methods.
    pub composed_epsilon_best: Option<f64>,
}

/// Runs `method` on `data` (already normalized + subsetted) with the CV
/// protocol: `repeats` independent shuffles × `folds` folds, optionally
/// subsampling at `rate` first. Returns the aggregated error and timing.
#[must_use]
pub fn evaluate(
    data: &Dataset,
    task: Task,
    method: Method,
    epsilon: f64,
    rate: f64,
    cfg: &EvalConfig,
    cell_seed: u64,
) -> CellResult {
    let mut errors = Vec::with_capacity(cfg.repeats * cfg.folds);
    let mut seconds = Vec::with_capacity(cfg.repeats * cfg.folds);
    // One uncapped session per cell: every fold of every repeat is debited,
    // so the cell can report what its whole protocol honestly composed to.
    let mut session = PrivacySession::new();

    for rep in 0..cfg.repeats {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ cell_seed.wrapping_add(rep as u64 * 0x9E37));
        let sampled = if rate < 1.0 {
            sampling::subsample(data, rate, &mut rng).expect("valid rate")
        } else {
            data.clone()
        };
        let kf = KFold::new(sampled.n(), cfg.folds, &mut rng).expect("folds");
        for f in 0..cfg.folds {
            let (train, test) = kf.split(&sampled, f).expect("split");
            let start = Instant::now();
            let model =
                methods::fit_in_session(&mut session, method, task, &train, epsilon, &mut rng);
            seconds.push(start.elapsed().as_secs_f64());
            let preds = model.predict(&test);
            errors.push(methods::error_metric(task, &preds, test.y()));
        }
    }

    let (error_mean, error_std) = fm_data::metrics::mean_and_std(&errors);
    let (seconds_mean, _) = fm_data::metrics::mean_and_std(&seconds);
    let (composed_epsilon_basic, composed_epsilon_best) = if session.num_fits() > 0 {
        let report = session.report(REPORT_DELTA_PRIME).expect("valid δ′");
        (Some(report.basic.0), Some(report.best.0))
    } else {
        (None, None)
    };
    CellResult {
        error_mean,
        error_std,
        seconds_mean,
        fits: session.num_fits(),
        composed_epsilon_basic,
        composed_epsilon_best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build, Country};

    fn tiny_cfg() -> EvalConfig {
        EvalConfig {
            rows_us: 600,
            rows_brazil: 400,
            repeats: 1,
            folds: 3,
            seed: 7,
        }
    }

    #[test]
    fn evaluate_produces_finite_results() {
        let cfg = tiny_cfg();
        let w = build(Country::Us, Task::Linear, cfg.rows_us, 5, 1);
        let cell = evaluate(&w.data, Task::Linear, Method::NoPrivacy, 1.0, 1.0, &cfg, 0);
        assert!(cell.error_mean.is_finite());
        assert!(cell.error_std >= 0.0);
        assert!(cell.seconds_mean > 0.0);
        // Non-private: nothing debited, no composed guarantee to report.
        assert_eq!(cell.fits, 0);
        assert_eq!(cell.composed_epsilon_basic, None);
        assert_eq!(cell.composed_epsilon_best, None);
    }

    #[test]
    fn evaluate_reports_honest_composed_epsilon_for_private_methods() {
        let cfg = tiny_cfg();
        let w = build(Country::Us, Task::Linear, cfg.rows_us, 5, 1);
        let cell = evaluate(&w.data, Task::Linear, Method::Fm, 0.8, 1.0, &cfg, 5);
        // 1 repeat × 3 folds, every fold debited sequentially.
        assert_eq!(cell.fits, cfg.repeats * cfg.folds);
        let basic = cell.composed_epsilon_basic.unwrap();
        assert!((basic - 0.8 * cell.fits as f64).abs() < 1e-9);
        assert!(cell.composed_epsilon_best.unwrap() <= basic + 1e-12);
    }

    #[test]
    fn subsampling_rate_reduces_training_size_effects() {
        // Not a statistical assertion — just that the rate plumbing works
        // and produces a result at every plotted rate.
        let cfg = tiny_cfg();
        let w = build(Country::Brazil, Task::Linear, cfg.rows_brazil, 5, 2);
        for rate in [0.1, 0.5, 1.0] {
            let cell = evaluate(&w.data, Task::Linear, Method::Fm, 1.6, rate, &cfg, 3);
            assert!(cell.error_mean.is_finite(), "rate {rate}");
        }
    }

    #[test]
    fn deterministic_given_config() {
        let cfg = tiny_cfg();
        let w = build(Country::Us, Task::Linear, cfg.rows_us, 5, 1);
        let a = evaluate(&w.data, Task::Linear, Method::Fm, 0.8, 1.0, &cfg, 11);
        let b = evaluate(&w.data, Task::Linear, Method::Fm, 0.8, 1.0, &cfg, 11);
        assert_eq!(a.error_mean, b.error_mean);
    }

    #[test]
    fn configs_expose_paper_and_quick_profiles() {
        let q = EvalConfig::quick();
        let p = EvalConfig::paper();
        assert_eq!(p.rows_us, 370_000);
        assert_eq!(p.rows_brazil, 190_000);
        assert_eq!(p.repeats, 50);
        assert!(q.rows_us < p.rows_us);
    }
}
