//! Network fault injection: a [`Transport`] decorator that delivers one
//! scripted failure at a chosen message index — the network twin of
//! `fm_data::fault::FaultInjectingSource`, and the driver behind the
//! crash-point sweep in `tests/federated_faults.rs` (every byte prefix
//! of a full multi-client round transcript, the way
//! `tests/fault_tolerance.rs` sweeps WAL crash points).
//!
//! Faults are deterministic and fire exactly once, so a failing sweep
//! offset reproduces with no harness state: wrap the coordinator's
//! endpoint, pick the fault and the message index, run the round.
//!
//! The four faults mirror what a real network does to a message:
//!
//! * [`TransportFault::Drop`] — the message never arrives (the receiver
//!   just keeps waiting, until its deadline says otherwise);
//! * [`TransportFault::Delay`] — the message misses the receiver's
//!   deadline but arrives intact on the next receive — the ambiguous
//!   failure that makes idempotent uploads necessary;
//! * [`TransportFault::Duplicate`] — the message arrives twice (a
//!   retransmit raced the original), which the coordinator must dedup
//!   exactly-once;
//! * [`TransportFault::Torn`] — only the first N bytes arrive, followed
//!   by the sender's intact retransmit: the wire checksum must refuse
//!   the prefix and the retry must succeed.

use std::collections::VecDeque;
use std::time::Duration;

use crate::error::{timed_out, Result};
use crate::transport::Transport;

/// One scripted network failure (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// The targeted message is silently discarded.
    Drop,
    /// The targeted message arrives only after a deadline expiry.
    Delay,
    /// The targeted message is delivered twice.
    Duplicate,
    /// Only the first `N` bytes of the targeted message arrive; the
    /// intact message follows on a later receive (the retransmit).
    Torn(usize),
}

/// Wraps any [`Transport`], injecting `fault` on the `at_message`-th
/// successful receive (0-based). All other traffic passes through
/// untouched; the fault fires exactly once.
pub struct FaultInjectingTransport<T> {
    inner: T,
    fault: TransportFault,
    at_message: usize,
    seen: usize,
    fired: bool,
    /// Messages owed to later receives: the delayed original, the
    /// duplicate copy, or the retransmit behind a torn prefix.
    pending: VecDeque<Vec<u8>>,
}

impl<T: Transport> FaultInjectingTransport<T> {
    /// Arms `fault` to fire on the `at_message`-th successfully received
    /// message (0-based; an index past the traffic never fires).
    pub fn new(inner: T, fault: TransportFault, at_message: usize) -> Self {
        FaultInjectingTransport {
            inner,
            fault,
            at_message,
            seen: 0,
            fired: false,
            pending: VecDeque::new(),
        }
    }

    /// Whether the scripted fault has fired yet.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Unwraps the decorator, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultInjectingTransport<T> {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        self.inner.send(message)
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        loop {
            // Messages the fault postponed arrive before new traffic and
            // are not counted again — they already fired.
            if let Some(owed) = self.pending.pop_front() {
                return Ok(owed);
            }
            let message = self.inner.recv()?;
            let index = self.seen;
            self.seen += 1;
            if self.fired || index != self.at_message {
                return Ok(message);
            }
            self.fired = true;
            match self.fault {
                TransportFault::Drop => {
                    // Never arrives: fall through to waiting on the next
                    // message (or the transport's own deadline).
                }
                TransportFault::Delay => {
                    self.pending.push_back(message);
                    return Err(timed_out("recv"));
                }
                TransportFault::Duplicate => {
                    self.pending.push_back(message.clone());
                    return Ok(message);
                }
                TransportFault::Torn(at) => {
                    let cut = at.min(message.len());
                    let prefix = message[..cut].to_vec();
                    self.pending.push_back(message);
                    return Ok(prefix);
                }
            }
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.inner.set_deadline(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FederatedError;
    use crate::transport::InMemoryTransport;

    fn pair_with(
        fault: TransportFault,
        at: usize,
    ) -> (
        InMemoryTransport,
        FaultInjectingTransport<InMemoryTransport>,
    ) {
        let (tx, rx) = InMemoryTransport::pair();
        (tx, FaultInjectingTransport::new(rx, fault, at))
    }

    #[test]
    fn drop_discards_exactly_the_targeted_message() {
        let (mut tx, mut rx) = pair_with(TransportFault::Drop, 1);
        tx.send(b"m0").unwrap();
        tx.send(b"m1").unwrap();
        tx.send(b"m2").unwrap();
        assert_eq!(rx.recv().unwrap(), b"m0");
        // m1 evaporates; the very same recv call delivers m2.
        assert_eq!(rx.recv().unwrap(), b"m2");
        assert!(rx.fired());
        // With nothing further queued and a deadline set, the receiver
        // times out instead of hanging — dropped means dropped.
        rx.set_deadline(Some(Duration::from_millis(5))).unwrap();
        let err = rx.recv().unwrap_err();
        assert!(matches!(err, FederatedError::TimedOut { .. }));
    }

    #[test]
    fn delay_surfaces_a_timeout_then_delivers_intact() {
        let (mut tx, mut rx) = pair_with(TransportFault::Delay, 0);
        tx.send(b"slow").unwrap();
        let err = rx.recv().unwrap_err();
        assert!(matches!(err, FederatedError::TimedOut { op: "recv" }));
        assert_eq!(rx.recv().unwrap(), b"slow");
    }

    #[test]
    fn duplicate_delivers_twice_and_torn_delivers_prefix_then_retransmit() {
        let (mut tx, mut rx) = pair_with(TransportFault::Duplicate, 0);
        tx.send(b"twice").unwrap();
        assert_eq!(rx.recv().unwrap(), b"twice");
        assert_eq!(rx.recv().unwrap(), b"twice");

        let (mut tx, mut rx) = pair_with(TransportFault::Torn(3), 0);
        tx.send(b"whole message").unwrap();
        assert_eq!(rx.recv().unwrap(), b"who");
        assert_eq!(rx.recv().unwrap(), b"whole message");

        // A tear past the end degrades to intact delivery plus the
        // retransmit — never a panic.
        let (mut tx, mut rx) = pair_with(TransportFault::Torn(10_000), 0);
        tx.send(b"short").unwrap();
        assert_eq!(rx.recv().unwrap(), b"short");
        assert_eq!(rx.recv().unwrap(), b"short");
    }

    #[test]
    fn untargeted_traffic_passes_through_untouched() {
        let (mut tx, mut rx) = pair_with(TransportFault::Drop, 99);
        tx.send(b"a").unwrap();
        tx.send(b"b").unwrap();
        assert_eq!(rx.recv().unwrap(), b"a");
        assert_eq!(rx.recv().unwrap(), b"b");
        assert!(!rx.fired());
    }
}
