//! Typed errors for the federated subsystem.

use fm_core::FmError;

/// Everything that can go wrong between a federated client and its
/// coordinator. Wire violations, transport failures, and protocol
/// violations are deliberately separate variants: a checksum mismatch
/// (corruption in flight) calls for a retransmit, a protocol violation
/// (a client uploading off-grid) calls for rejecting the client, and an
/// [`FmError`] is the fit itself refusing. The transport variants split
/// further by what a caller can do about them — a [`TimedOut`] or
/// [`TornFrame`] recv is worth retrying, a [`Disconnected`] peer is
/// gone, and a [`Quorum`] failure means the round itself is lost.
///
/// [`TimedOut`]: FederatedError::TimedOut
/// [`TornFrame`]: FederatedError::TornFrame
/// [`Disconnected`]: FederatedError::Disconnected
/// [`Quorum`]: FederatedError::Quorum
#[derive(Debug)]
pub enum FederatedError {
    /// A payload failed `fm-accum v2` validation: version skew, checksum
    /// mismatch, torn tail, structural violation.
    Wire {
        /// What was violated.
        reason: String,
    },
    /// The byte transport failed for a reason not covered by a more
    /// specific variant: I/O error, poisoned channel, an unsupported
    /// operation.
    Transport {
        /// The operation that failed (`"send"`, `"recv"`, …).
        op: &'static str,
        /// Why.
        detail: String,
    },
    /// A blocking transport operation hit its deadline before the peer
    /// delivered. The message may still arrive — retrying is sound, and
    /// idempotent uploads make a retransmit after an ambiguous timeout
    /// safe.
    TimedOut {
        /// The operation that timed out (`"send"`, `"recv"`, …).
        op: &'static str,
    },
    /// The peer hung up: the channel is closed and no further message
    /// can ever arrive. Retrying is pointless — under a quorum policy
    /// this client is dropped from the round.
    Disconnected {
        /// The operation that observed the hang-up.
        op: &'static str,
    },
    /// A frame ended mid-message: the stream died after `at` of the
    /// `expected` bytes. The offsets pin down exactly where a torn
    /// transcript stops.
    TornFrame {
        /// The operation that observed the tear (`"recv"`, …).
        op: &'static str,
        /// Bytes actually delivered before the stream ended.
        at: usize,
        /// Bytes the frame promised.
        expected: usize,
    },
    /// A frame's length prefix exceeds the transport's cap — a hostile
    /// or corrupt peer must not drive a giant allocation.
    OversizedFrame {
        /// The operation that refused the frame.
        op: &'static str,
        /// The length the frame claimed.
        len: usize,
        /// The transport's cap ([`crate::transport::MAX_FRAME`]).
        cap: usize,
    },
    /// Too few clients survived for the round to release: `survivors`
    /// remained but the quorum policy requires `min_clients`. Nothing
    /// was debited.
    Quorum {
        /// Clients still connected when the round gave up.
        survivors: usize,
        /// The policy's minimum.
        min_clients: usize,
    },
    /// A structurally valid payload that violates the round's protocol:
    /// wrong dimensionality, off-grid chunk position, a mid-stream ragged
    /// tail, a noisy upload in a clean round, a client equivocating
    /// (two different payloads under one label in one round).
    Protocol {
        /// What was violated.
        reason: String,
    },
    /// An error surfaced by the underlying fitting machinery (admission,
    /// assembly, release).
    Fm(FmError),
}

impl FederatedError {
    /// Whether retrying the failed operation could succeed: `true` for
    /// transient failures (timeouts, torn frames, wire corruption — the
    /// peer may retransmit — and generic transport errors), `false` for
    /// terminal ones (a disconnected peer, protocol violations, quorum
    /// loss, oversized frames, and fit errors). [`RetryPolicy::run`]
    /// retries exactly the former.
    ///
    /// [`RetryPolicy::run`]: crate::transport::RetryPolicy::run
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FederatedError::Wire { .. }
                | FederatedError::Transport { .. }
                | FederatedError::TimedOut { .. }
                | FederatedError::TornFrame { .. }
        )
    }
}

impl std::fmt::Display for FederatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederatedError::Wire { reason } => write!(f, "wire format violation: {reason}"),
            FederatedError::Transport { op, detail } => {
                write!(f, "transport failure during {op}: {detail}")
            }
            FederatedError::TimedOut { op } => {
                write!(
                    f,
                    "transport {op} hit its deadline before the peer delivered"
                )
            }
            FederatedError::Disconnected { op } => {
                write!(f, "peer hung up during {op}: the channel is closed")
            }
            FederatedError::TornFrame { op, at, expected } => write!(
                f,
                "torn frame during {op}: the stream ended after {at} of {expected} bytes"
            ),
            FederatedError::OversizedFrame { op, len, cap } => write!(
                f,
                "oversized frame refused during {op}: {len} bytes exceeds the {cap}-byte cap"
            ),
            FederatedError::Quorum {
                survivors,
                min_clients,
            } => write!(
                f,
                "quorum lost: {survivors} client(s) survived but the policy requires \
                 {min_clients}; nothing was debited"
            ),
            FederatedError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            FederatedError::Fm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FederatedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FederatedError::Fm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FmError> for FederatedError {
    fn from(e: FmError) -> Self {
        FederatedError::Fm(e)
    }
}

/// Result alias for fallible federated operations.
pub type Result<T> = std::result::Result<T, FederatedError>;

/// Shorthand for a [`FederatedError::Wire`].
pub(crate) fn wire(reason: impl Into<String>) -> FederatedError {
    FederatedError::Wire {
        reason: reason.into(),
    }
}

/// Shorthand for a [`FederatedError::Protocol`].
pub(crate) fn protocol(reason: impl Into<String>) -> FederatedError {
    FederatedError::Protocol {
        reason: reason.into(),
    }
}

/// Shorthand for a [`FederatedError::Transport`].
pub(crate) fn transport(op: &'static str, detail: impl Into<String>) -> FederatedError {
    FederatedError::Transport {
        op,
        detail: detail.into(),
    }
}

/// Shorthand for a [`FederatedError::TimedOut`].
pub(crate) fn timed_out(op: &'static str) -> FederatedError {
    FederatedError::TimedOut { op }
}

/// Shorthand for a [`FederatedError::Disconnected`].
pub(crate) fn disconnected(op: &'static str) -> FederatedError {
    FederatedError::Disconnected { op }
}
