//! Typed errors for the federated subsystem.

use fm_core::FmError;

/// Everything that can go wrong between a federated client and its
/// coordinator. Wire violations, transport failures, and protocol
/// violations are deliberately separate variants: a checksum mismatch
/// (corruption in flight) calls for a retransmit, a protocol violation
/// (a client uploading off-grid) calls for rejecting the client, and an
/// [`FmError`] is the fit itself refusing.
#[derive(Debug)]
pub enum FederatedError {
    /// A payload failed `fm-accum v1` validation: version skew, checksum
    /// mismatch, torn tail, structural violation.
    Wire {
        /// What was violated.
        reason: String,
    },
    /// The byte transport failed: I/O error, torn frame, oversized frame,
    /// or a peer hanging up mid-message.
    Transport {
        /// The operation that failed (`"send"`, `"recv"`, …).
        op: &'static str,
        /// Why.
        detail: String,
    },
    /// A structurally valid payload that violates the round's protocol:
    /// wrong dimensionality, off-grid chunk position, a mid-stream ragged
    /// tail, a noisy upload in a clean round.
    Protocol {
        /// What was violated.
        reason: String,
    },
    /// An error surfaced by the underlying fitting machinery (admission,
    /// assembly, release).
    Fm(FmError),
}

impl std::fmt::Display for FederatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederatedError::Wire { reason } => write!(f, "wire format violation: {reason}"),
            FederatedError::Transport { op, detail } => {
                write!(f, "transport failure during {op}: {detail}")
            }
            FederatedError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            FederatedError::Fm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FederatedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FederatedError::Fm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FmError> for FederatedError {
    fn from(e: FmError) -> Self {
        FederatedError::Fm(e)
    }
}

/// Result alias for fallible federated operations.
pub type Result<T> = std::result::Result<T, FederatedError>;

/// Shorthand for a [`FederatedError::Wire`].
pub(crate) fn wire(reason: impl Into<String>) -> FederatedError {
    FederatedError::Wire {
        reason: reason.into(),
    }
}

/// Shorthand for a [`FederatedError::Protocol`].
pub(crate) fn protocol(reason: impl Into<String>) -> FederatedError {
    FederatedError::Protocol {
        reason: reason.into(),
    }
}

/// Shorthand for a [`FederatedError::Transport`].
pub(crate) fn transport(op: &'static str, detail: impl Into<String>) -> FederatedError {
    FederatedError::Transport {
        op,
        detail: detail.into(),
    }
}
