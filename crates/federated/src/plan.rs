//! Chunk-aligned shard planning: which contiguous row range each
//! federated client owns, and how a range decomposes into the aligned
//! dyadic runs the merge tree can replay.
//!
//! Bit-identity with a single-machine fit rests on one grid rule: a
//! pre-merged run of `2^rank` chunks can only be replayed at a global
//! chunk position divisible by `2^rank` — otherwise the replay would
//! group floating-point sums the single-machine binary counter never
//! groups. So every client except the last must own a whole number of
//! chunks (a chunk that mixed two clients' rows could not be replayed at
//! all), and each client pre-merges its chunks as the **aligned dyadic
//! segments** of its range: greedily, the longest power-of-two run that
//! both starts at its own multiple and fits the remaining range.

use crate::error::{protocol, Result};

/// One client's slice of a federated round, on the shared chunk grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientShare {
    /// First row of the client's contiguous range.
    pub start_row: usize,
    /// Rows in the range (`chunks · chunk_rows + tail_rows`).
    pub rows: usize,
    /// The client's first chunk on the shared grid.
    pub start_chunk: usize,
    /// Whole chunks the client owns.
    pub chunks: usize,
    /// Ragged-tail rows past the last whole chunk — nonzero only for the
    /// final client.
    pub tail_rows: usize,
}

/// A round's complete row partition: contiguous, chunk-aligned,
/// balanced shares covering `[0, total_rows)` in client order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shared chunk-grid size.
    pub chunk_rows: usize,
    /// Rows covered by the whole round.
    pub total_rows: usize,
    /// Per-client shares, in upload order.
    pub shares: Vec<ClientShare>,
}

impl ShardPlan {
    /// Splits `total_rows` across `clients` contiguous, chunk-aligned
    /// shares: whole chunks are distributed as evenly as possible
    /// (earlier clients take the remainder), and the ragged tail past the
    /// last whole chunk goes to the final client. Clients beyond the
    /// chunk count receive empty shares — they still participate in the
    /// round (and are still debited) but contribute no rows.
    ///
    /// # Errors
    /// [`crate::FederatedError::Protocol`] for zero clients or a zero
    /// chunk size.
    pub fn new(total_rows: usize, clients: usize, chunk_rows: usize) -> Result<Self> {
        if clients == 0 {
            return Err(protocol("a federated round needs at least one client"));
        }
        if chunk_rows == 0 {
            return Err(protocol("chunk_rows must be ≥ 1"));
        }
        let full_chunks = total_rows / chunk_rows;
        let tail = total_rows % chunk_rows;
        let base = full_chunks / clients;
        let extra = full_chunks % clients;
        let mut shares = Vec::with_capacity(clients);
        let mut chunk = 0usize;
        for i in 0..clients {
            let chunks = base + usize::from(i < extra);
            let tail_rows = if i == clients - 1 { tail } else { 0 };
            shares.push(ClientShare {
                start_row: chunk * chunk_rows,
                rows: chunks * chunk_rows + tail_rows,
                start_chunk: chunk,
                chunks,
                tail_rows,
            });
            chunk += chunks;
        }
        Ok(ShardPlan {
            chunk_rows,
            total_rows,
            shares,
        })
    }

    /// Re-packs clients of **known geometry** — `(whole chunks,
    /// tail rows)` per client, in order — contiguously from chunk 0.
    /// This is the recovery planner of a quorum round: when a client
    /// drops, the survivors keep the chunk counts of the uploads they
    /// already computed, and this constructor assigns them the new grid
    /// positions that close the dropped client's hole. Each survivor's
    /// data is untouched; only `start_chunk`/`start_row` move.
    ///
    /// # Errors
    /// [`crate::FederatedError::Protocol`] for an empty geometry, a zero
    /// chunk size, a tail as large as a chunk, or tail rows anywhere but
    /// the final client (the merge tree stages at most one partial
    /// chunk, at the end of the grid).
    pub fn from_client_geometry(chunk_rows: usize, geometry: &[(usize, usize)]) -> Result<Self> {
        if geometry.is_empty() {
            return Err(protocol("a recovery plan needs at least one client"));
        }
        if chunk_rows == 0 {
            return Err(protocol("chunk_rows must be ≥ 1"));
        }
        let last = geometry.len() - 1;
        let mut shares = Vec::with_capacity(geometry.len());
        let mut chunk = 0usize;
        let mut rows = 0usize;
        for (i, &(chunks, tail_rows)) in geometry.iter().enumerate() {
            if tail_rows >= chunk_rows {
                return Err(protocol(format!(
                    "{tail_rows} tail rows cannot fit a {chunk_rows}-row chunk mid-fill"
                )));
            }
            if tail_rows > 0 && i != last {
                return Err(protocol(
                    "only the final client of a plan may carry a partial chunk",
                ));
            }
            let client_rows = chunks * chunk_rows + tail_rows;
            shares.push(ClientShare {
                start_row: rows,
                rows: client_rows,
                start_chunk: chunk,
                chunks,
                tail_rows,
            });
            chunk += chunks;
            rows += client_rows;
        }
        Ok(ShardPlan {
            chunk_rows,
            total_rows: rows,
            shares,
        })
    }
}

/// Greedy aligned-dyadic segmentation of the chunk range
/// `[start_chunk, start_chunk + chunks)`: each segment `(start, rank)`
/// covers `2^rank` chunks, where `2^rank` is the largest power of two
/// that both divides `start` and fits the remaining range. Replaying the
/// segments in order through the merge tree's `push_run` reproduces the
/// single-machine grouping exactly (`fm_core::assembly` machine-checks
/// the equivalence for every split point).
#[must_use]
pub fn dyadic_segments(start_chunk: usize, chunks: usize) -> Vec<(usize, u32)> {
    let mut segs = Vec::new();
    let mut c = start_chunk;
    let mut m = chunks;
    while m > 0 {
        let align = if c == 0 {
            usize::MAX
        } else {
            1usize << c.trailing_zeros()
        };
        let mut len = 1usize;
        while len * 2 <= m && len * 2 <= align {
            len *= 2;
        }
        segs.push((c, len.trailing_zeros()));
        c += len;
        m -= len;
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_contiguous_chunk_aligned_and_exhaustive() {
        for total in [0usize, 1, 7, 8, 65, 1000] {
            for clients in [1usize, 2, 3, 7] {
                for chunk_rows in [1usize, 4, 8] {
                    let plan = ShardPlan::new(total, clients, chunk_rows).unwrap();
                    assert_eq!(plan.shares.len(), clients);
                    let mut row = 0usize;
                    let mut chunk = 0usize;
                    for (i, s) in plan.shares.iter().enumerate() {
                        assert_eq!(s.start_row, row, "total={total} clients={clients}");
                        assert_eq!(s.start_chunk, chunk);
                        assert_eq!(s.rows, s.chunks * chunk_rows + s.tail_rows);
                        if i != clients - 1 {
                            assert_eq!(s.tail_rows, 0, "tail must sit with the final client");
                        }
                        row += s.rows;
                        chunk += s.chunks;
                    }
                    assert_eq!(row, total, "shares must cover every row exactly once");
                    // Balanced: chunk counts differ by at most one.
                    let min = plan.shares.iter().map(|s| s.chunks).min().unwrap();
                    let max = plan.shares.iter().map(|s| s.chunks).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
        assert!(ShardPlan::new(10, 0, 4).is_err());
        assert!(ShardPlan::new(10, 2, 0).is_err());
    }

    #[test]
    fn recovery_plans_repack_survivor_geometry_contiguously() {
        // Dropping the middle client of a 3-way plan: survivors keep
        // their chunk counts but close the hole from chunk 0.
        let plan = ShardPlan::from_client_geometry(4, &[(3, 0), (2, 3)]).unwrap();
        assert_eq!(plan.total_rows, 3 * 4 + 2 * 4 + 3);
        assert_eq!(plan.shares[0].start_chunk, 0);
        assert_eq!(plan.shares[0].start_row, 0);
        assert_eq!(plan.shares[1].start_chunk, 3);
        assert_eq!(plan.shares[1].start_row, 12);
        assert_eq!(plan.shares[1].tail_rows, 3);

        // A recovery plan over survivor geometry equals a fresh plan
        // over the survivors' pooled rows when the chunk counts match
        // what ShardPlan::new would hand out.
        let fresh = ShardPlan::new(64, 2, 4).unwrap();
        let geometry: Vec<(usize, usize)> = fresh
            .shares
            .iter()
            .map(|s| (s.chunks, s.tail_rows))
            .collect();
        assert_eq!(
            ShardPlan::from_client_geometry(4, &geometry).unwrap(),
            fresh
        );

        // Mid-plan tails and oversized tails are refused.
        assert!(ShardPlan::from_client_geometry(4, &[(1, 2), (1, 0)]).is_err());
        assert!(ShardPlan::from_client_geometry(4, &[(1, 4)]).is_err());
        assert!(ShardPlan::from_client_geometry(0, &[(1, 0)]).is_err());
        assert!(ShardPlan::from_client_geometry(4, &[]).is_err());
    }

    #[test]
    fn dyadic_segments_cover_ranges_with_aligned_runs() {
        for start in 0usize..40 {
            for chunks in 0usize..40 {
                let segs = dyadic_segments(start, chunks);
                let mut at = start;
                for &(c, rank) in &segs {
                    assert_eq!(c, at, "segments must be contiguous");
                    let len = 1usize << rank;
                    assert_eq!(c % len, 0, "run of 2^{rank} chunks unaligned at {c}");
                    at += len;
                }
                assert_eq!(at, start + chunks, "segments must cover the range");
            }
        }
        // The canonical decomposition from the merge-tree tests.
        assert_eq!(dyadic_segments(5, 3), vec![(5, 0), (6, 1)]);
        assert_eq!(dyadic_segments(0, 6), vec![(0, 2), (4, 1)]);
    }
}
