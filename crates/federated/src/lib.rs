//! # fm-federated — cross-process federated fitting for the functional
//! mechanism
//!
//! Zhang et al.'s functional mechanism (PVLDB 2012) perturbs the
//! *coefficients* of the polynomial objective, and those coefficients
//! are sums over tuples — so they compose across parties by addition.
//! This crate turns that observation into a wire protocol: K clients
//! each accumulate a contiguous, chunk-aligned slice of the dataset with
//! the same streaming machinery a single machine uses
//! ([`fm_core::CoefficientAccumulator`]), ship their pre-merged partials
//! over a versioned, checksummed text format (`fm-accum v1`,
//! [`wire`]), and a coordinator merges them at matching merge-tree
//! ranks, debits each client's ε exactly once through a
//! parallel-composition scope on the shared privacy ledger
//! ([`fm_core::session::SharedPrivacySession`]), and releases one model.
//!
//! Two trust models share the protocol (see [`NoiseMode`]):
//!
//! * **central noise** — exact partials travel; the coordinator draws
//!   the mechanism's noise once. The released coefficients are
//!   **bit-identical** to a single-machine fit over the concatenated
//!   rows at the same chunk size and RNG state: the wire format round-
//!   trips floats exactly, and runs are replayed at aligned grid
//!   positions, so no floating-point sum is ever regrouped.
//! * **local noise** — each client perturbs its own Δ-scaled
//!   contribution before upload ([`FederatedClient::contribute_noisy`]);
//!   the coordinator only post-processes. Same ε per client, `√K`× the
//!   noise standard deviation — the measured utility gap between the
//!   two models is exactly the price of not trusting the coordinator.
//!
//! Transports are pluggable ([`Transport`]): an in-memory pair for
//! in-process rounds and length-prefixed frames over any
//! `Read`/`Write` stream (Unix sockets, TCP, pipes) for real process
//! boundaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod coordinator;
pub mod error;
pub mod plan;
pub mod transport;
pub mod wire;

pub use client::FederatedClient;
pub use coordinator::{Coordinator, NoiseMode};
pub use error::{FederatedError, Result};
pub use plan::{dyadic_segments, ClientShare, ShardPlan};
pub use transport::{InMemoryTransport, StreamTransport, Transport, MAX_FRAME};
pub use wire::{AccumUpload, PayloadMode, WirePartial, ACCUM_MAGIC};
