//! # fm-federated — cross-process federated fitting for the functional
//! mechanism
//!
//! Zhang et al.'s functional mechanism (PVLDB 2012) perturbs the
//! *coefficients* of the polynomial objective, and those coefficients
//! are sums over tuples — so they compose across parties by addition.
//! This crate turns that observation into a wire protocol: K clients
//! each accumulate a contiguous, chunk-aligned slice of the dataset with
//! the same streaming machinery a single machine uses
//! ([`fm_core::CoefficientAccumulator`]), ship their pre-merged partials
//! over a versioned, checksummed text format (`fm-accum v2`,
//! [`wire`]), and a coordinator merges them at matching merge-tree
//! ranks, debits each client's ε exactly once through a
//! parallel-composition scope on the shared privacy ledger
//! ([`fm_core::session::SharedPrivacySession`]), and releases one model.
//!
//! Two trust models share the protocol (see [`NoiseMode`]):
//!
//! * **central noise** — exact partials travel; the coordinator draws
//!   the mechanism's noise once. The released coefficients are
//!   **bit-identical** to a single-machine fit over the concatenated
//!   rows at the same chunk size and RNG state: the wire format round-
//!   trips floats exactly, and runs are replayed at aligned grid
//!   positions, so no floating-point sum is ever regrouped.
//! * **local noise** — each client perturbs its own Δ-scaled
//!   contribution before upload ([`FederatedClient::contribute_noisy`]);
//!   the coordinator only post-processes. Same ε per client, `√K`× the
//!   noise standard deviation — the measured utility gap between the
//!   two models is exactly the price of not trusting the coordinator.
//!
//! Transports are pluggable ([`Transport`]): an in-memory pair for
//! in-process rounds and length-prefixed frames over any
//! `Read`/`Write` stream (Unix sockets, TCP, pipes) for real process
//! boundaries.
//!
//! Rounds are **fault-tolerant** when asked to be: transports take
//! deadlines (typed [`FederatedError::TimedOut`], wired through
//! `set_read_timeout` on socket-backed streams), a deterministic
//! [`RetryPolicy`] retries transient failures, uploads are idempotent
//! (retransmits dedup by `(round, client, checksum)`), and a
//! [`QuorumPolicy`] lets [`Coordinator::run_round_with_quorum`] salvage
//! a round on client dropout by re-planning the grid onto survivors —
//! debiting exactly the clients whose data entered the release.
//! [`FaultInjectingTransport`] scripts the failures (drop, delay,
//! duplicate, torn frame at byte N) deterministically for tests.
//!
//! [`FederatedError::TimedOut`]: FederatedError::TimedOut

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod coordinator;
pub mod error;
pub mod fault;
pub mod plan;
pub mod transport;
pub mod wire;

pub use client::FederatedClient;
pub use coordinator::{Coordinator, NoiseMode, QuorumPolicy, RoundReport};
pub use error::{FederatedError, Result};
pub use fault::{FaultInjectingTransport, TransportFault};
pub use plan::{dyadic_segments, ClientShare, ShardPlan};
pub use transport::{
    DeadlineMedium, InMemoryTransport, RetryPolicy, StreamTransport, Transport, MAX_FRAME,
};
pub use wire::{AccumUpload, ControlMsg, PayloadMode, WirePartial, ACCUM_MAGIC, CTL_MAGIC};
