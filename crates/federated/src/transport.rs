//! Message transports between federated clients and their coordinator.
//!
//! The protocol layer ([`crate::client`], [`crate::coordinator`]) only
//! needs ordered, whole-message delivery — one `fm-accum v2` payload per
//! message — so the transport abstraction is deliberately tiny: send a
//! byte message, receive a byte message, optionally bound how long a
//! blocking operation may wait. Two implementations ship:
//!
//! * [`InMemoryTransport`] — a bidirectional in-process pair for tests
//!   and same-process "federation" (e.g. coordinator jobs running on an
//!   `fm-serve` worker pool);
//! * [`StreamTransport`] — length-prefixed frames over any
//!   [`std::io::Read`]/[`std::io::Write`] pair, which is what crosses
//!   process boundaries (Unix socket pairs in the test suite; TCP or
//!   pipes in a real deployment).
//!
//! Both refuse oversized frames ([`MAX_FRAME`]) and surface failures as
//! *typed* errors that tell the caller what to do next: a
//! [`FederatedError::TimedOut`] or [`FederatedError::TornFrame`] is
//! worth retrying (the peer may retransmit), a
//! [`FederatedError::Disconnected`] peer is gone for good. A coordinator
//! with a deadline set never blocks forever on a dead client and never
//! panics on a malicious length prefix. [`RetryPolicy`] packages the
//! retry loop itself: deterministic, capped exponential backoff with no
//! wall-clock randomness, so a faulted round replays the same way every
//! time.
//!
//! [`FederatedError::TimedOut`]: crate::FederatedError::TimedOut
//! [`FederatedError::TornFrame`]: crate::FederatedError::TornFrame
//! [`FederatedError::Disconnected`]: crate::FederatedError::Disconnected

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{disconnected, timed_out, transport, FederatedError, Result};

/// Hard cap on a single message, applied by every transport on both
/// send and receive: a hostile or corrupt 4-byte length prefix must not
/// translate into an attempted multi-gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Ordered, whole-message byte delivery between two federated parties.
pub trait Transport {
    /// Sends one message.
    ///
    /// # Errors
    /// [`crate::FederatedError::OversizedFrame`] for messages past
    /// [`MAX_FRAME`]; [`crate::FederatedError::Disconnected`] when the
    /// peer is gone; [`crate::FederatedError::Transport`] for other
    /// channel failures.
    fn send(&mut self, message: &[u8]) -> Result<()>;

    /// Receives the next message, blocking until one arrives or the
    /// deadline (if set) expires.
    ///
    /// # Errors
    /// [`crate::FederatedError::TimedOut`] past the deadline;
    /// [`crate::FederatedError::Disconnected`] when the peer hung up;
    /// [`crate::FederatedError::TornFrame`] /
    /// [`crate::FederatedError::OversizedFrame`] for frames that die
    /// mid-message or claim hostile lengths.
    fn recv(&mut self) -> Result<Vec<u8>>;

    /// Bounds how long a blocking `send`/`recv` may wait; `None` removes
    /// the bound. The default implementation refuses — a transport that
    /// cannot bound its blocking operations must not silently hang a
    /// coordinator that asked for a deadline.
    ///
    /// # Errors
    /// [`crate::FederatedError::Transport`] when the transport cannot
    /// enforce deadlines.
    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        let _ = deadline;
        Err(transport(
            "set_deadline",
            "this transport cannot bound blocking operations",
        ))
    }
}

/// Deterministic retry schedule for transient transport failures:
/// `max_attempts` tries with capped exponential backoff
/// (`base_backoff · 2ⁿ`, clamped to `max_backoff`) between them. No
/// jitter and no wall-clock randomness — a replayed faulty round
/// schedules its retries identically every time, which is what keeps
/// fault-injection sweeps and resumed rounds reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (`1` means no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper clamp on the doubled backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 25 ms base backoff doubling to at most 1 s.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no backoff — the pre-PR-10 fail-fast behavior.
    #[must_use]
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff to sleep after the `failures`-th consecutive failure
    /// (1-based): `base_backoff · 2^(failures−1)`, clamped to
    /// `max_backoff`. Saturating — never panics, never wraps.
    #[must_use]
    pub fn backoff(&self, failures: u32) -> Duration {
        let doublings = failures.saturating_sub(1).min(30);
        self.base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
    }

    /// Runs `op` until it succeeds, fails terminally, or exhausts
    /// `max_attempts`. Only failures for which
    /// [`FederatedError::is_retryable`] holds are retried; the closure
    /// receives the 1-based attempt number.
    ///
    /// # Errors
    /// The last error `op` returned.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt < attempts && e.is_retryable() => {
                    let pause = self.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// One direction of an in-memory pair: a queue plus the condition
/// variable receivers park on, and a closed flag the sender's drop sets.
struct Direction {
    state: Mutex<DirectionState>,
    ready: Condvar,
}

struct DirectionState {
    messages: VecDeque<Vec<u8>>,
    closed: bool,
}

impl Direction {
    fn new() -> Arc<Self> {
        Arc::new(Direction {
            state: Mutex::new(DirectionState {
                messages: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn push(&self, message: Vec<u8>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.messages.push_back(message);
        self.ready.notify_one();
    }

    fn is_closed(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }

    fn pop(&self, deadline: Option<Duration>) -> Result<Vec<u8>> {
        let limit = deadline.map(|d| Instant::now() + d);
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(message) = state.messages.pop_front() {
                return Ok(message);
            }
            if state.closed {
                return Err(disconnected("recv"));
            }
            state = match limit {
                None => self
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
                Some(limit) => {
                    let now = Instant::now();
                    if now >= limit {
                        return Err(timed_out("recv"));
                    }
                    self.ready
                        .wait_timeout(state, limit - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
            };
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        self.ready.notify_all();
    }
}

/// An in-process bidirectional message channel: [`InMemoryTransport::pair`]
/// yields two connected endpoints, each sending into the queue the other
/// receives from. Dropping an endpoint wakes the peer's pending `recv`
/// with a typed [`crate::FederatedError::Disconnected`] once the queue
/// drains — already-sent messages are never lost, and a receiver is
/// never parked forever on a dead peer. With a deadline set
/// ([`Transport::set_deadline`]), `recv` gives up with a typed
/// [`crate::FederatedError::TimedOut`] instead of waiting indefinitely
/// for a stalled-but-alive peer.
pub struct InMemoryTransport {
    outgoing: Arc<Direction>,
    incoming: Arc<Direction>,
    deadline: Option<Duration>,
}

impl InMemoryTransport {
    /// Creates a connected endpoint pair.
    #[must_use]
    pub fn pair() -> (InMemoryTransport, InMemoryTransport) {
        let a_to_b = Direction::new();
        let b_to_a = Direction::new();
        (
            InMemoryTransport {
                outgoing: Arc::clone(&a_to_b),
                incoming: Arc::clone(&b_to_a),
                deadline: None,
            },
            InMemoryTransport {
                outgoing: b_to_a,
                incoming: a_to_b,
                deadline: None,
            },
        )
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        if message.len() > MAX_FRAME {
            return Err(FederatedError::OversizedFrame {
                op: "send",
                len: message.len(),
                cap: MAX_FRAME,
            });
        }
        // The peer's drop closed what it sends into — our incoming. A
        // send to a dropped peer fails fast instead of queueing into the
        // void.
        if self.incoming.is_closed() {
            return Err(disconnected("send"));
        }
        self.outgoing.push(message.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        self.incoming.pop(self.deadline)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.deadline = deadline;
        Ok(())
    }
}

impl Drop for InMemoryTransport {
    fn drop(&mut self) {
        self.outgoing.close();
    }
}

/// A byte medium that can bound its blocking reads and writes — the hook
/// [`StreamTransport`] uses to translate [`Transport::set_deadline`]
/// into `set_read_timeout`/`set_write_timeout` on socket-backed streams.
///
/// Implementations ship for [`std::os::unix::net::UnixStream`] and
/// [`std::net::TcpStream`] (real kernel timeouts), and as no-ops for the
/// never-blocking in-memory media tests frame against (`&[u8]`,
/// `Vec<u8>`, [`std::io::Cursor`], [`std::io::Empty`],
/// [`std::io::Sink`]) — those cannot stall, so a deadline on them is
/// trivially satisfied.
pub trait DeadlineMedium {
    /// Bounds blocking reads; `None` removes the bound.
    ///
    /// # Errors
    /// The medium's own I/O error (e.g. a zero timeout the OS refuses).
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()>;

    /// Bounds blocking writes; `None` removes the bound.
    ///
    /// # Errors
    /// The medium's own I/O error.
    fn set_write_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()>;
}

impl<T: DeadlineMedium + ?Sized> DeadlineMedium for &mut T {
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        (**self).set_read_deadline(deadline)
    }

    fn set_write_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        (**self).set_write_deadline(deadline)
    }
}

#[cfg(unix)]
impl DeadlineMedium for std::os::unix::net::UnixStream {
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(deadline)
    }

    fn set_write_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(deadline)
    }
}

impl DeadlineMedium for std::net::TcpStream {
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(deadline)
    }

    fn set_write_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(deadline)
    }
}

/// Declares a medium never-blocking: deadlines are trivially satisfied.
macro_rules! non_blocking_medium {
    ($($ty:ty),* $(,)?) => {$(
        impl DeadlineMedium for $ty {
            fn set_read_deadline(&mut self, _deadline: Option<Duration>) -> std::io::Result<()> {
                Ok(())
            }

            fn set_write_deadline(&mut self, _deadline: Option<Duration>) -> std::io::Result<()> {
                Ok(())
            }
        }
    )*};
}

non_blocking_medium!(&[u8], Vec<u8>, std::io::Empty, std::io::Sink);

impl<T> DeadlineMedium for std::io::Cursor<T> {
    fn set_read_deadline(&mut self, _deadline: Option<Duration>) -> std::io::Result<()> {
        Ok(())
    }

    fn set_write_deadline(&mut self, _deadline: Option<Duration>) -> std::io::Result<()> {
        Ok(())
    }
}

/// Length-prefixed framing over any byte stream: each message travels as
/// a 4-byte big-endian length followed by the payload. This is the
/// cross-process transport — in the test suite the stream is a
/// [`std::os::unix::net::UnixStream`] pair, but any `Read`/`Write`
/// combination with a [`DeadlineMedium`] impl works (TCP sockets, pipes,
/// or an in-process buffer).
///
/// A timed-out read can strand the stream mid-frame (bytes already
/// consumed cannot be unread), so after a
/// [`crate::FederatedError::TimedOut`] **mid-frame** the connection
/// should be treated as dead; a timeout before the first prefix byte is
/// safely retryable.
pub struct StreamTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R, W> StreamTransport<R, W> {
    /// Wraps a reader/writer pair. For a duplex stream type like
    /// `UnixStream`, pass a `try_clone` as the reader and the original
    /// as the writer.
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport { reader, writer }
    }

    /// Unwraps the transport, returning the underlying stream halves.
    pub fn into_inner(self) -> (R, W) {
        (self.reader, self.writer)
    }
}

impl<R: Read + DeadlineMedium, W: Write + DeadlineMedium> StreamTransport<R, W> {
    /// Fills `buf` completely, mapping every partial outcome to the
    /// typed error the caller needs: EOF before the first byte of a
    /// *frame* is a clean hang-up, EOF with `already + filled` of
    /// `expected` frame bytes is a torn frame at that exact offset, and
    /// an OS-level read timeout is a typed deadline expiry.
    fn read_full(&mut self, buf: &mut [u8], already: usize, expected: usize) -> Result<()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) => {
                    return if already == 0 && filled == 0 {
                        Err(disconnected("recv"))
                    } else {
                        Err(FederatedError::TornFrame {
                            op: "recv",
                            at: already + filled,
                            expected,
                        })
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(timed_out("recv"));
                }
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    return Err(FederatedError::TornFrame {
                        op: "recv",
                        at: already + filled,
                        expected,
                    });
                }
                Err(e) => return Err(transport("recv", e.to_string())),
            }
        }
        Ok(())
    }
}

impl<R: Read + DeadlineMedium, W: Write + DeadlineMedium> Transport for StreamTransport<R, W> {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        if message.len() > MAX_FRAME {
            return Err(FederatedError::OversizedFrame {
                op: "send",
                len: message.len(),
                cap: MAX_FRAME,
            });
        }
        let len = u32::try_from(message.len())
            .map_err(|_| transport("send", "message length overflow"))?;
        self.writer
            .write_all(&len.to_be_bytes())
            .and_then(|()| self.writer.write_all(message))
            .and_then(|()| self.writer.flush())
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => timed_out("send"),
                std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted => disconnected("send"),
                _ => transport("send", e.to_string()),
            })
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let mut prefix = [0u8; 4];
        self.read_full(&mut prefix, 0, 4)?;
        let len = u32::from_be_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return Err(FederatedError::OversizedFrame {
                op: "recv",
                len,
                cap: MAX_FRAME,
            });
        }
        let mut message = vec![0u8; len];
        self.read_full(&mut message, 4, 4 + len)?;
        Ok(message)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.reader
            .set_read_deadline(deadline)
            .and_then(|()| self.writer.set_write_deadline(deadline))
            .map_err(|e| transport("set_deadline", e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FederatedError;

    #[test]
    fn in_memory_pair_delivers_in_order_and_reports_hangup() {
        let (mut a, mut b) = InMemoryTransport::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        // Queued messages survive the sender's drop; afterwards recv
        // reports the hang-up instead of blocking, and sends toward the
        // dead peer fail fast.
        drop(a);
        assert_eq!(b.recv().unwrap(), b"two");
        let err = b.recv().unwrap_err();
        assert!(matches!(err, FederatedError::Disconnected { op: "recv" }));
        let err = b.send(b"into the void").unwrap_err();
        assert!(matches!(err, FederatedError::Disconnected { op: "send" }));
    }

    #[test]
    fn in_memory_recv_honors_its_deadline() {
        let (_a, mut b) = InMemoryTransport::pair();
        b.set_deadline(Some(Duration::from_millis(10))).unwrap();
        let started = Instant::now();
        let err = b.recv().unwrap_err();
        assert!(matches!(err, FederatedError::TimedOut { op: "recv" }));
        assert!(err.is_retryable());
        assert!(started.elapsed() >= Duration::from_millis(10));
        // A message that arrives before the deadline is delivered.
        let (mut a2, mut b2) = InMemoryTransport::pair();
        b2.set_deadline(Some(Duration::from_secs(5))).unwrap();
        a2.send(b"in time").unwrap();
        assert_eq!(b2.recv().unwrap(), b"in time");
    }

    #[test]
    fn in_memory_pair_is_bidirectional_across_threads() {
        let (mut a, mut b) = InMemoryTransport::pair();
        let echo = std::thread::spawn(move || {
            let msg = b.recv().unwrap();
            b.send(&msg).unwrap();
        });
        a.send(b"ping").unwrap();
        assert_eq!(a.recv().unwrap(), b"ping");
        echo.join().unwrap();
    }

    #[test]
    fn stream_transport_round_trips_frames() {
        // Loop a framed message through an in-memory byte buffer.
        let mut sink: Vec<u8> = Vec::new();
        StreamTransport::new(std::io::empty(), &mut sink)
            .send(b"payload bytes")
            .unwrap();
        let mut reader = StreamTransport::new(sink.as_slice(), std::io::sink());
        assert_eq!(reader.recv().unwrap(), b"payload bytes");
        // A second recv on the exhausted stream is a clean hang-up: EOF
        // at a frame boundary, not a torn frame.
        let err = reader.recv().unwrap_err();
        assert!(matches!(err, FederatedError::Disconnected { op: "recv" }));
    }

    #[test]
    fn torn_and_oversized_frames_carry_their_offsets() {
        // Frame promises 100 bytes, stream carries 3: the error pins the
        // exact byte position where the transcript tore.
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let err = StreamTransport::new(bytes.as_slice(), std::io::sink())
            .recv()
            .unwrap_err();
        assert!(
            matches!(
                err,
                FederatedError::TornFrame {
                    op: "recv",
                    at: 7,
                    expected: 104,
                }
            ),
            "{err}"
        );
        assert!(err.is_retryable());

        // A tear inside the 4-byte prefix is also positioned.
        let err = StreamTransport::new(&[0u8, 0][..], std::io::sink())
            .recv()
            .unwrap_err();
        assert!(matches!(
            err,
            FederatedError::TornFrame {
                at: 2,
                expected: 4,
                ..
            }
        ));

        // A hostile length prefix may not drive a giant allocation; the
        // refusal names the claimed length and the cap.
        #[allow(clippy::cast_possible_truncation)]
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let err = StreamTransport::new(huge.as_slice(), std::io::sink())
            .recv()
            .unwrap_err();
        match err {
            FederatedError::OversizedFrame {
                op: "recv",
                len,
                cap,
            } => {
                assert_eq!(len, MAX_FRAME + 1);
                assert_eq!(cap, MAX_FRAME);
            }
            other => panic!("expected OversizedFrame, got {other}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn stream_transport_times_out_on_a_stalled_socket() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut rx = StreamTransport::new(a.try_clone().unwrap(), a);
        rx.set_deadline(Some(Duration::from_millis(20))).unwrap();
        // The peer is alive but silent: recv must give up, typed.
        let err = rx.recv().unwrap_err();
        assert!(
            matches!(err, FederatedError::TimedOut { op: "recv" }),
            "{err}"
        );
        // Once the peer delivers, the same transport works again.
        let mut tx = StreamTransport::new(b.try_clone().unwrap(), b);
        tx.send(b"late but whole").unwrap();
        assert_eq!(rx.recv().unwrap(), b"late but whole");
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(35));
        assert_eq!(policy.backoff(100), Duration::from_millis(35));

        // run() retries transient failures up to the attempt budget…
        let mut calls = 0;
        let quick = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let out: Result<()> = quick.run(|attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            Err(timed_out("recv"))
        });
        assert!(matches!(out, Err(FederatedError::TimedOut { .. })));
        assert_eq!(calls, 3);

        // …but a terminal failure short-circuits immediately.
        let mut calls = 0;
        let out: Result<()> = quick.run(|_| {
            calls += 1;
            Err(disconnected("recv"))
        });
        assert!(matches!(out, Err(FederatedError::Disconnected { .. })));
        assert_eq!(calls, 1);

        // Success on a later attempt returns the value.
        let mut calls = 0;
        let out = quick.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(timed_out("recv"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 2);
    }
}
