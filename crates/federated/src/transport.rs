//! Message transports between federated clients and their coordinator.
//!
//! The protocol layer ([`crate::client`], [`crate::coordinator`]) only
//! needs ordered, whole-message delivery — one `fm-accum v1` payload per
//! message — so the transport abstraction is deliberately tiny: send a
//! byte message, receive a byte message. Two implementations ship:
//!
//! * [`InMemoryTransport`] — a bidirectional in-process pair for tests
//!   and same-process "federation" (e.g. coordinator jobs running on an
//!   `fm-serve` worker pool);
//! * [`StreamTransport`] — length-prefixed frames over any
//!   [`std::io::Read`]/[`std::io::Write`] pair, which is what crosses
//!   process boundaries (Unix socket pairs in the test suite; TCP or
//!   pipes in a real deployment).
//!
//! Both refuse oversized frames ([`MAX_FRAME`]) and surface torn frames
//! and peer hang-ups as typed [`crate::FederatedError::Transport`]
//! errors — a coordinator never blocks forever on a dead client and
//! never panics on a malicious length prefix.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::error::{transport, Result};

/// Hard cap on a single message, applied by every transport on both
/// send and receive: a hostile or corrupt 4-byte length prefix must not
/// translate into an attempted multi-gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Ordered, whole-message byte delivery between two federated parties.
pub trait Transport {
    /// Sends one message.
    ///
    /// # Errors
    /// [`crate::FederatedError::Transport`] for oversized messages or a
    /// failed/closed underlying channel.
    fn send(&mut self, message: &[u8]) -> Result<()>;

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    /// [`crate::FederatedError::Transport`] for torn frames, oversized
    /// frames, or a peer that hung up.
    fn recv(&mut self) -> Result<Vec<u8>>;
}

/// One direction of an in-memory pair: a queue plus the condition
/// variable receivers park on, and a closed flag the sender's drop sets.
struct Direction {
    state: Mutex<DirectionState>,
    ready: Condvar,
}

struct DirectionState {
    messages: VecDeque<Vec<u8>>,
    closed: bool,
}

impl Direction {
    fn new() -> Arc<Self> {
        Arc::new(Direction {
            state: Mutex::new(DirectionState {
                messages: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn push(&self, message: Vec<u8>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.messages.push_back(message);
        self.ready.notify_one();
    }

    fn pop(&self) -> Result<Vec<u8>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(message) = state.messages.pop_front() {
                return Ok(message);
            }
            if state.closed {
                return Err(transport("recv", "peer hung up with no message pending"));
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        self.ready.notify_all();
    }
}

/// An in-process bidirectional message channel: [`InMemoryTransport::pair`]
/// yields two connected endpoints, each sending into the queue the other
/// receives from. Dropping an endpoint wakes the peer's pending `recv`
/// with a typed hang-up error once the queue drains — already-sent
/// messages are never lost.
pub struct InMemoryTransport {
    outgoing: Arc<Direction>,
    incoming: Arc<Direction>,
}

impl InMemoryTransport {
    /// Creates a connected endpoint pair.
    #[must_use]
    pub fn pair() -> (InMemoryTransport, InMemoryTransport) {
        let a_to_b = Direction::new();
        let b_to_a = Direction::new();
        (
            InMemoryTransport {
                outgoing: Arc::clone(&a_to_b),
                incoming: Arc::clone(&b_to_a),
            },
            InMemoryTransport {
                outgoing: b_to_a,
                incoming: a_to_b,
            },
        )
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        if message.len() > MAX_FRAME {
            return Err(transport(
                "send",
                format!(
                    "{}-byte message exceeds the {MAX_FRAME}-byte frame cap",
                    message.len()
                ),
            ));
        }
        self.outgoing.push(message.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        self.incoming.pop()
    }
}

impl Drop for InMemoryTransport {
    fn drop(&mut self) {
        self.outgoing.close();
    }
}

/// Length-prefixed framing over any byte stream: each message travels as
/// a 4-byte big-endian length followed by the payload. This is the
/// cross-process transport — in the test suite the stream is a
/// [`std::os::unix::net::UnixStream`] pair, but any `Read`/`Write`
/// combination works (TCP sockets, pipes, or an in-process
/// `VecDeque`-backed cursor).
pub struct StreamTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R: Read, W: Write> StreamTransport<R, W> {
    /// Wraps a reader/writer pair. For a duplex stream type like
    /// `UnixStream`, pass a `try_clone` as the reader and the original
    /// as the writer.
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport { reader, writer }
    }

    /// Unwraps the transport, returning the underlying stream halves.
    pub fn into_inner(self) -> (R, W) {
        (self.reader, self.writer)
    }
}

impl<R: Read, W: Write> Transport for StreamTransport<R, W> {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        if message.len() > MAX_FRAME {
            return Err(transport(
                "send",
                format!(
                    "{}-byte message exceeds the {MAX_FRAME}-byte frame cap",
                    message.len()
                ),
            ));
        }
        let len = u32::try_from(message.len())
            .map_err(|_| transport("send", "message length overflow"))?;
        self.writer
            .write_all(&len.to_be_bytes())
            .and_then(|()| self.writer.write_all(message))
            .and_then(|()| self.writer.flush())
            .map_err(|e| transport("send", e.to_string()))
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let mut prefix = [0u8; 4];
        self.reader
            .read_exact(&mut prefix)
            .map_err(|e| transport("recv", format!("reading length prefix: {e}")))?;
        let len = u32::from_be_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return Err(transport(
                "recv",
                format!("{len}-byte frame exceeds the {MAX_FRAME}-byte cap"),
            ));
        }
        let mut message = vec![0u8; len];
        self.reader.read_exact(&mut message).map_err(|e| {
            transport(
                "recv",
                format!("torn frame: peer promised {len} bytes but the stream ended: {e}"),
            )
        })?;
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FederatedError;

    #[test]
    fn in_memory_pair_delivers_in_order_and_reports_hangup() {
        let (mut a, mut b) = InMemoryTransport::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        // Queued messages survive the sender's drop; afterwards recv
        // reports the hang-up instead of blocking.
        drop(a);
        assert_eq!(b.recv().unwrap(), b"two");
        let err = b.recv().unwrap_err();
        assert!(matches!(err, FederatedError::Transport { op: "recv", .. }));
    }

    #[test]
    fn in_memory_pair_is_bidirectional_across_threads() {
        let (mut a, mut b) = InMemoryTransport::pair();
        let echo = std::thread::spawn(move || {
            let msg = b.recv().unwrap();
            b.send(&msg).unwrap();
        });
        a.send(b"ping").unwrap();
        assert_eq!(a.recv().unwrap(), b"ping");
        echo.join().unwrap();
    }

    #[test]
    fn stream_transport_round_trips_frames() {
        // Loop a framed message through an in-memory byte buffer.
        let mut sink: Vec<u8> = Vec::new();
        StreamTransport::new(std::io::empty(), &mut sink)
            .send(b"payload bytes")
            .unwrap();
        let mut reader = StreamTransport::new(sink.as_slice(), std::io::sink());
        assert_eq!(reader.recv().unwrap(), b"payload bytes");
        // A second recv on the exhausted stream is a typed error.
        assert!(reader.recv().is_err());
    }

    #[test]
    fn torn_and_oversized_frames_are_refused() {
        // Frame promises 100 bytes, stream carries 3.
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let err = StreamTransport::new(bytes.as_slice(), std::io::sink())
            .recv()
            .unwrap_err();
        assert!(matches!(err, FederatedError::Transport { op: "recv", .. }));

        // A hostile length prefix may not drive a giant allocation.
        #[allow(clippy::cast_possible_truncation)]
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let err = StreamTransport::new(huge.as_slice(), std::io::sink())
            .recv()
            .unwrap_err();
        assert!(matches!(err, FederatedError::Transport { op: "recv", .. }));
    }
}
