//! The client half of a federated round: accumulate a contiguous,
//! chunk-aligned slice of the dataset locally, pre-merge it into aligned
//! dyadic runs, and upload the result as one `fm-accum v2` payload.
//! [`FederatedClient::participate`] is the fault-tolerant loop on top:
//! upload with retries, then serve the coordinator's recovery
//! re-assignments until the round completes.
//!
//! In **central-noise** mode the upload carries exact coefficient
//! partials — the client trusts the coordinator with its aggregate (not
//! its rows: only the final client's sub-chunk ragged tail ever travels
//! as raw rows). In **local-noise** mode the client runs the functional
//! mechanism on its own contribution before upload, so not even the
//! aggregate leaves the machine un-noised; the coordinator merely sums
//! already-released objectives (pure post-processing).

use fm_core::{CoefficientAccumulator, FmEstimator, FunctionalMechanism, RegressionObjective};
use fm_data::stream::{InterceptAugmentSource, RowSource, TakeRows};
use fm_poly::QuadraticForm;
use rand::Rng;

use crate::error::{protocol, Result};
use crate::plan::{dyadic_segments, ClientShare};
use crate::transport::{RetryPolicy, Transport};
use crate::wire::{AccumUpload, ControlMsg, PayloadMode};

/// One participant of a federated round, bound to the round's shared
/// estimator configuration (objective, ε, sensitivity bound, noise
/// distribution, intercept handling), chunk grid, and round id.
pub struct FederatedClient<'a, O: RegressionObjective> {
    estimator: &'a FmEstimator<O>,
    name: String,
    chunk_rows: usize,
    round: u64,
}

impl<'a, O: RegressionObjective> FederatedClient<'a, O> {
    /// A client named `name` (its budget label on the coordinator's
    /// ledger) under the round's shared estimator, at the default chunk
    /// size, in round 0.
    pub fn new(estimator: &'a FmEstimator<O>, name: impl Into<String>) -> Self {
        Self::with_chunk_rows(estimator, name, fm_core::assembly::DEFAULT_CHUNK_ROWS)
    }

    /// As [`FederatedClient::new`] with an explicit shared chunk size
    /// (every party of a round must agree on it).
    pub fn with_chunk_rows(
        estimator: &'a FmEstimator<O>,
        name: impl Into<String>,
        chunk_rows: usize,
    ) -> Self {
        FederatedClient {
            estimator,
            name: name.into(),
            chunk_rows: chunk_rows.max(1),
            round: 0,
        }
    }

    /// Sets the round id stamped into this client's uploads (every party
    /// of a round must agree on it — the coordinator ignores frames from
    /// other rounds).
    #[must_use]
    pub fn with_round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// The client's budget label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The round id stamped into this client's uploads.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Accumulates this client's share from `source` (which must deliver
    /// exactly the share's rows, in order) into a **clean** upload: one
    /// pre-merged partial per aligned dyadic segment of the share's chunk
    /// range, plus the raw ragged-tail rows when the share carries them.
    /// Replayed at the coordinator, these runs reproduce the
    /// single-machine merge tree bit for bit.
    ///
    /// # Errors
    /// [`crate::FederatedError::Fm`] for contract violations in the rows;
    /// [`crate::FederatedError::Protocol`] when `source` runs dry before
    /// the share is covered.
    pub fn contribute_clean(
        &self,
        source: &mut (impl RowSource + ?Sized),
        share: &ClientShare,
    ) -> Result<AccumUpload<QuadraticForm>> {
        if self.estimator.config().fit_intercept {
            self.clean_upload(&mut InterceptAugmentSource::new(source), share)
        } else {
            self.clean_upload(source, share)
        }
    }

    fn clean_upload(
        &self,
        work: &mut (impl RowSource + ?Sized),
        share: &ClientShare,
    ) -> Result<AccumUpload<QuadraticForm>> {
        let d = work.dim();
        let objective = self.estimator.objective();
        let mut runs = Vec::new();
        for (c, rank) in dyadic_segments(share.start_chunk, share.chunks) {
            let seg_rows = (1usize << rank) * self.chunk_rows;
            let mut acc = CoefficientAccumulator::with_chunk_rows(objective, d, self.chunk_rows);
            let got = acc.absorb(&mut TakeRows::new(&mut *work, seg_rows))?;
            if got != seg_rows {
                return Err(protocol(format!(
                    "client {}: source delivered {got} of {seg_rows} rows for the \
                     2^{rank}-chunk segment at chunk {c}",
                    self.name
                )));
            }
            // 2^rank consecutive chunks from a fresh accumulator collapse
            // to exactly one counter run at that rank.
            let mut stack = acc.partial_runs().to_vec();
            debug_assert_eq!(stack.len(), 1);
            let (r, part) = stack.pop().expect("segment produced no run");
            debug_assert_eq!(r, rank);
            runs.push((r, part));
        }
        let (staged_xs, staged_ys) = if share.tail_rows > 0 {
            let mut acc = CoefficientAccumulator::with_chunk_rows(objective, d, self.chunk_rows);
            let got = acc.absorb(&mut TakeRows::new(&mut *work, share.tail_rows))?;
            if got != share.tail_rows {
                return Err(protocol(format!(
                    "client {}: source delivered {got} of {} ragged-tail rows",
                    self.name, share.tail_rows
                )));
            }
            let (xs, ys) = acc.staged();
            (xs.to_vec(), ys.to_vec())
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(AccumUpload {
            client: self.name.clone(),
            round: self.round,
            mode: PayloadMode::Clean,
            d,
            chunk_rows: self.chunk_rows,
            start_chunk: share.start_chunk,
            rows: share.rows,
            runs,
            staged_xs,
            staged_ys,
        })
    }

    /// Accumulates this client's entire `source` and perturbs the result
    /// with the round's mechanism **before** it leaves the machine — the
    /// local-noise trust model. The upload carries one noisy objective
    /// and no raw rows; the client's own ε is spent here, at its own RNG.
    ///
    /// # Errors
    /// [`crate::FederatedError::Fm`] for contract violations or an
    /// invalid mechanism configuration;
    /// [`crate::FederatedError::Protocol`] for an empty source.
    pub fn contribute_noisy(
        &self,
        source: &mut (impl RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<AccumUpload<QuadraticForm>> {
        if self.estimator.config().fit_intercept {
            self.noisy_upload(&mut InterceptAugmentSource::new(source), rng)
        } else {
            self.noisy_upload(source, rng)
        }
    }

    fn noisy_upload(
        &self,
        work: &mut (impl RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<AccumUpload<QuadraticForm>> {
        let d = work.dim();
        let objective = self.estimator.objective();
        let mut acc = CoefficientAccumulator::with_chunk_rows(objective, d, self.chunk_rows);
        let rows = acc.absorb(work)?;
        let Some(clean) = acc.finish() else {
            return Err(protocol(format!(
                "client {}: a noisy contribution needs at least one row",
                self.name
            )));
        };
        let config = self.estimator.config();
        let mechanism =
            FunctionalMechanism::with_config(config.epsilon, config.bound, config.noise)?;
        let noisy = mechanism.perturb_assembled(&clean, objective, rng)?;
        Ok(AccumUpload {
            client: self.name.clone(),
            round: self.round,
            mode: PayloadMode::Noisy,
            d,
            chunk_rows: self.chunk_rows,
            start_chunk: 0,
            rows,
            runs: vec![(0, noisy.into_objective())],
            staged_xs: Vec::new(),
            staged_ys: Vec::new(),
        })
    }

    /// Encodes `upload` and sends it to the coordinator.
    ///
    /// # Errors
    /// [`crate::FederatedError::Transport`] when the send fails.
    pub fn upload(
        &self,
        transport: &mut impl Transport,
        upload: &AccumUpload<QuadraticForm>,
    ) -> Result<()> {
        transport.send(upload.encode().as_bytes())
    }

    /// As [`FederatedClient::upload`], retrying transient send failures
    /// under `retry`. Safe to over-send: the payload's `(round, client,
    /// checksum)` identity makes a duplicate delivery after an ambiguous
    /// failure a dedup at the coordinator, never a refused round.
    ///
    /// # Errors
    /// The last transport error once `retry` is exhausted.
    pub fn upload_with_retry(
        &self,
        transport: &mut impl Transport,
        upload: &AccumUpload<QuadraticForm>,
        retry: &RetryPolicy,
    ) -> Result<()> {
        let encoded = upload.encode();
        retry.run(|_| transport.send(encoded.as_bytes()))
    }

    /// Full fault-tolerant participation in a central-noise round:
    /// contribute `share` from a fresh source, upload it (with retries),
    /// then serve the coordinator's control messages — re-contributing
    /// under each [`ControlMsg::Assign`] (a dropped peer's range was
    /// re-planned, moving this client's grid position) until a
    /// [`ControlMsg::Done`] releases the client. `source` is called once
    /// per contribution and must yield the client's local rows from the
    /// start each time.
    ///
    /// Returns the number of re-assignments served.
    ///
    /// # Errors
    /// As [`FederatedClient::contribute_clean`] and the transport's
    /// `recv`/`send`; [`crate::FederatedError::Wire`] for a corrupt
    /// control message; [`crate::FederatedError::Protocol`] for a
    /// control message from a different round.
    pub fn participate<S: RowSource>(
        &self,
        transport: &mut impl Transport,
        share: &ClientShare,
        mut source: impl FnMut() -> S,
        retry: &RetryPolicy,
    ) -> Result<usize> {
        let upload = self.contribute_clean(&mut source(), share)?;
        self.upload_with_retry(transport, &upload, retry)?;
        let mut reassignments = 0usize;
        loop {
            let bytes = transport.recv()?;
            let text = String::from_utf8(bytes)
                .map_err(|_| crate::error::wire("control message is not UTF-8"))?;
            match ControlMsg::decode(&text)? {
                ControlMsg::Done { round } if round == self.round => return Ok(reassignments),
                ControlMsg::Assign { round, share } if round == self.round => {
                    let upload = self.contribute_clean(&mut source(), &share)?;
                    self.upload_with_retry(transport, &upload, retry)?;
                    reassignments += 1;
                }
                ControlMsg::Done { round } | ControlMsg::Assign { round, .. } => {
                    return Err(protocol(format!(
                        "control message for round {round} arrived in round {}",
                        self.round
                    )));
                }
            }
        }
    }
}
