//! The coordinator half of a federated round: collect one upload per
//! registered client, validate every payload against the round's
//! protocol, debit each client's ε **exactly once** through a
//! parallel-composition scope on the shared privacy ledger, and release
//! one model.
//!
//! # Trust models
//!
//! * [`NoiseMode::Central`] — clients upload exact partials; the
//!   coordinator replays their pre-merged runs at matching ranks on the
//!   shared chunk grid (reproducing the single-machine merge tree **bit
//!   for bit**) and draws the mechanism's noise once at release. Same
//!   utility as a single-machine fit; the coordinator is trusted with
//!   per-client aggregates.
//! * [`NoiseMode::Local`] — every client perturbs its own Δ-scaled
//!   contribution before upload; the coordinator sums already-released
//!   objectives (pure post-processing) and never sees clean state. The
//!   summed noise has `√K`× the standard deviation of one central draw
//!   at the same ε — the utility price of not trusting the coordinator.
//!
//! Either way the round's privacy accounting is identical: the clients
//! hold disjoint rows, so the scope composes their (ε, δ) in parallel —
//! the tenant is debited the **maximum**, not the sum, and each client
//! label appears exactly once.

use fm_core::session::SharedPrivacySession;
use fm_core::{
    CoefficientAccumulator, FmEstimator, FunctionalMechanism, NoisyQuadratic, RegressionObjective,
};
use fm_poly::QuadraticForm;
use rand::Rng;

use crate::error::{protocol, Result};
use crate::plan::ShardPlan;
use crate::transport::Transport;
use crate::wire::{AccumUpload, PayloadMode};

/// Where a round's noise is drawn — see the module docs for the trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseMode {
    /// Clients upload exact partials; the coordinator draws noise once.
    Central,
    /// Clients perturb locally; the coordinator only post-processes.
    Local,
}

impl NoiseMode {
    /// The payload mode this round accepts from clients.
    #[must_use]
    pub fn expected_payload(self) -> PayloadMode {
        match self {
            NoiseMode::Central => PayloadMode::Clean,
            NoiseMode::Local => PayloadMode::Noisy,
        }
    }
}

/// A federated round's coordinator, bound to the shared estimator
/// configuration and chunk grid every client agreed on.
pub struct Coordinator<'a, O: RegressionObjective> {
    estimator: &'a FmEstimator<O>,
    mode: NoiseMode,
    chunk_rows: usize,
}

impl<'a, O: RegressionObjective> Coordinator<'a, O> {
    /// A coordinator for `mode` under the round's shared estimator, at
    /// the default chunk size.
    pub fn new(estimator: &'a FmEstimator<O>, mode: NoiseMode) -> Self {
        Self::with_chunk_rows(estimator, mode, fm_core::assembly::DEFAULT_CHUNK_ROWS)
    }

    /// As [`Coordinator::new`] with an explicit shared chunk size.
    pub fn with_chunk_rows(
        estimator: &'a FmEstimator<O>,
        mode: NoiseMode,
        chunk_rows: usize,
    ) -> Self {
        Coordinator {
            estimator,
            mode,
            chunk_rows: chunk_rows.max(1),
        }
    }

    /// The shared chunk-grid size of this round.
    #[must_use]
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The round's noise placement.
    #[must_use]
    pub fn mode(&self) -> NoiseMode {
        self.mode
    }

    /// Plans the round's row partition: contiguous, chunk-aligned,
    /// balanced shares for `clients` participants over `total_rows` rows.
    ///
    /// # Errors
    /// As [`ShardPlan::new`].
    pub fn plan(&self, total_rows: usize, clients: usize) -> Result<ShardPlan> {
        ShardPlan::new(total_rows, clients, self.chunk_rows)
    }

    /// Receives and decodes one upload per transport, in registration
    /// order.
    ///
    /// # Errors
    /// [`crate::FederatedError::Transport`] for channel failures;
    /// [`crate::FederatedError::Wire`] for payloads that fail `fm-accum
    /// v1` validation (corruption, truncation, version skew).
    pub fn collect(
        &self,
        transports: &mut [impl Transport],
    ) -> Result<Vec<AccumUpload<QuadraticForm>>> {
        transports
            .iter_mut()
            .map(|t| {
                let bytes = t.recv()?;
                let text = String::from_utf8(bytes)
                    .map_err(|_| crate::error::wire("payload is not UTF-8"))?;
                AccumUpload::decode(&text)
            })
            .collect()
    }

    /// Validates the collected uploads against the round's protocol,
    /// debits each client's (ε, δ) exactly once through a
    /// parallel-composition scope on `session` under `tenant`, and
    /// releases the round's model.
    ///
    /// Validation happens **before** the debit (a malformed round costs
    /// no budget); a release failure after the debit leaves the budget
    /// spent — fail closed, never under-count.
    ///
    /// # Errors
    /// [`crate::FederatedError::Protocol`] for duplicate client labels,
    /// mismatched dimensionality/chunk grid/mode, or non-contiguous grid
    /// coverage; [`crate::FederatedError::Fm`] for budget refusals and
    /// release failures.
    pub fn release(
        &self,
        uploads: Vec<AccumUpload<QuadraticForm>>,
        session: &SharedPrivacySession,
        tenant: &str,
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let d = self.validate(&uploads)?;

        // Disjoint client shards compose in parallel: debit each label
        // once; the tenant pays the max ε across clients, not the sum.
        let config = self.estimator.config();
        let delta = config.delta().unwrap_or(0.0);
        let mut scope = session.parallel_scope(tenant);
        for upload in &uploads {
            scope.admit(&upload.client, config.epsilon, delta)?;
        }
        scope.finish()?;

        match self.mode {
            NoiseMode::Central => self.release_central(uploads, d, rng),
            NoiseMode::Local => self.release_local(uploads, d),
        }
    }

    /// One-call round: collect every client's upload, then
    /// [`Coordinator::release`].
    ///
    /// # Errors
    /// As [`Coordinator::collect`] and [`Coordinator::release`].
    pub fn run_round(
        &self,
        transports: &mut [impl Transport],
        session: &SharedPrivacySession,
        tenant: &str,
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let uploads = self.collect(transports)?;
        self.release(uploads, session, tenant, rng)
    }

    /// Protocol validation over the whole round — everything checkable
    /// without touching the budget or the accumulator. Returns the
    /// round's working dimensionality.
    fn validate(&self, uploads: &[AccumUpload<QuadraticForm>]) -> Result<usize> {
        if uploads.is_empty() {
            return Err(protocol("a round needs at least one client upload"));
        }
        let mut labels: Vec<&str> = uploads.iter().map(|u| u.client.as_str()).collect();
        labels.sort_unstable();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(protocol(format!(
                "client {:?} uploaded more than once; a label is debited exactly once per round",
                dup[0]
            )));
        }
        let d = uploads[0].d;
        let expected = self.mode.expected_payload();
        let last = uploads.len() - 1;
        let mut frontier = 0usize;
        for (i, u) in uploads.iter().enumerate() {
            if u.d != d {
                return Err(protocol(format!(
                    "client {:?} uploaded d = {}, the round runs at d = {d}",
                    u.client, u.d
                )));
            }
            if u.chunk_rows != self.chunk_rows {
                return Err(protocol(format!(
                    "client {:?} chunked at {} rows, the round's grid is {}",
                    u.client, u.chunk_rows, self.chunk_rows
                )));
            }
            if u.mode != expected {
                return Err(protocol(format!(
                    "client {:?} uploaded a {:?} payload into a {:?} round",
                    u.client, u.mode, self.mode
                )));
            }
            if self.mode == NoiseMode::Central {
                if u.start_chunk != frontier {
                    return Err(protocol(format!(
                        "client {:?} starts at chunk {}, but the grid frontier is {frontier}",
                        u.client, u.start_chunk
                    )));
                }
                if i != last && !u.staged_ys.is_empty() {
                    return Err(protocol(format!(
                        "client {:?} uploaded ragged-tail rows mid-round; only the final \
                         client may carry a partial chunk",
                        u.client
                    )));
                }
                for &(rank, _) in &u.runs {
                    frontier = frontier
                        .checked_add(1usize << rank)
                        .ok_or_else(|| protocol("round chunk count overflows"))?;
                }
            }
        }
        Ok(d)
    }

    /// Central-noise release: replay every client's pre-merged runs at
    /// matching ranks on the shared grid, absorb the final ragged tail,
    /// and draw the mechanism's noise once over the merged exact
    /// coefficients — bit-identical to a single-machine fit over the
    /// concatenated rows at the same chunk size and RNG state.
    fn release_central(
        &self,
        uploads: Vec<AccumUpload<QuadraticForm>>,
        d: usize,
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let objective = self.estimator.objective();
        let mut acc = CoefficientAccumulator::with_chunk_rows(objective, d, self.chunk_rows);
        for upload in uploads {
            for (rank, part) in upload.runs {
                acc.push_run(rank, part)?;
            }
            if !upload.staged_ys.is_empty() {
                // Raw tail rows go through full contract validation, like
                // any other ingested block.
                acc.push_rows(&upload.staged_xs, &upload.staged_ys)?;
            }
        }
        let clean = acc
            .finish()
            .ok_or_else(|| protocol("the round covered no rows"))?;
        Ok(self.estimator.release_clean(&clean, rng)?)
    }

    /// Local-noise release: sum the already-perturbed client objectives
    /// in upload order (pure post-processing — no further noise, no
    /// further budget) and solve under the round's strategy. The noise
    /// calibration handed to post-processing is derived from the round's
    /// own mechanism configuration, never from the network.
    fn release_local(
        &self,
        uploads: Vec<AccumUpload<QuadraticForm>>,
        _d: usize,
    ) -> Result<O::Model> {
        let contributors = uploads.len();
        let mut total: Option<QuadraticForm> = None;
        for upload in uploads {
            for (_, part) in upload.runs {
                match &mut total {
                    None => total = Some(part),
                    Some(t) => t.merge(part),
                }
            }
        }
        let total = total.ok_or_else(|| protocol("the round carried no contributions"))?;
        let config = self.estimator.config();
        let mechanism =
            FunctionalMechanism::with_config(config.epsilon, config.bound, config.noise)?;
        let noisy = NoisyQuadratic::from_federated_sum(
            total,
            contributors,
            &mechanism,
            self.estimator.objective(),
        )?;
        Ok(self.estimator.release_noisy(noisy)?)
    }
}
