//! The coordinator half of a federated round: collect one upload per
//! registered client, validate every payload against the round's
//! protocol, debit each client's ε **exactly once** through a
//! parallel-composition scope on the shared privacy ledger, and release
//! one model.
//!
//! # Trust models
//!
//! * [`NoiseMode::Central`] — clients upload exact partials; the
//!   coordinator replays their pre-merged runs at matching ranks on the
//!   shared chunk grid (reproducing the single-machine merge tree **bit
//!   for bit**) and draws the mechanism's noise once at release. Same
//!   utility as a single-machine fit; the coordinator is trusted with
//!   per-client aggregates.
//! * [`NoiseMode::Local`] — every client perturbs its own Δ-scaled
//!   contribution before upload; the coordinator sums already-released
//!   objectives (pure post-processing) and never sees clean state. The
//!   summed noise has `√K`× the standard deviation of one central draw
//!   at the same ε — the utility price of not trusting the coordinator.
//!
//! Either way the round's privacy accounting is identical: the clients
//! hold disjoint rows, so the scope composes their (ε, δ) in parallel —
//! the tenant is debited the **maximum**, not the sum, and each client
//! label appears exactly once.
//!
//! # Fault tolerance
//!
//! [`Coordinator::run_round`] is all-or-nothing: one missing or torn
//! upload refuses the whole round (typed, debit-free).
//! [`Coordinator::run_round_with_quorum`] instead survives what a real
//! network does: deadlines bound every receive, transient failures are
//! retried, retransmits are deduped by their `(round, client, checksum)`
//! identity, and dropped clients' grid ranges are re-planned onto the
//! survivors in recovery sub-rounds — the salvaged release is
//! bit-identical to a fresh round over the survivor geometry at the same
//! seed, and only survivors are ever debited.

use std::collections::HashMap;
use std::time::Duration;

use fm_core::session::SharedPrivacySession;
use fm_core::{
    CoefficientAccumulator, FmEstimator, FunctionalMechanism, NoisyQuadratic, RegressionObjective,
};
use fm_poly::QuadraticForm;
use fm_privacy::wal::checksum64;
use rand::Rng;

use crate::error::{protocol, FederatedError, Result};
use crate::plan::{ClientShare, ShardPlan};
use crate::transport::{RetryPolicy, Transport};
use crate::wire::{AccumUpload, ControlMsg, PayloadMode};

/// Where a round's noise is drawn — see the module docs for the trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseMode {
    /// Clients upload exact partials; the coordinator draws noise once.
    Central,
    /// Clients perturb locally; the coordinator only post-processes.
    Local,
}

impl NoiseMode {
    /// The payload mode this round accepts from clients.
    #[must_use]
    pub fn expected_payload(self) -> PayloadMode {
        match self {
            NoiseMode::Central => PayloadMode::Clean,
            NoiseMode::Local => PayloadMode::Noisy,
        }
    }
}

/// Dropout tolerance for a round: how many clients must survive for a
/// release, how long a blocking receive may wait for each of them, and
/// the retry schedule for transient failures in between. Without a
/// policy ([`Coordinator::run_round`]) a round is all-or-nothing: any
/// missing, torn, or hostile upload refuses the whole round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumPolicy {
    /// Minimum clients whose data must enter the release (at least 1).
    pub min_clients: usize,
    /// Per-receive deadline — how long a silent client is presumed
    /// alive. Applied to every transport via [`Transport::set_deadline`].
    pub deadline: Duration,
    /// Retry schedule for transient failures (timeouts, torn frames,
    /// corrupt payloads awaiting a retransmit).
    pub retry: RetryPolicy,
}

impl QuorumPolicy {
    /// A policy requiring `min_clients` survivors, waiting at most
    /// `deadline` per receive, with the default [`RetryPolicy`].
    #[must_use]
    pub fn new(min_clients: usize, deadline: Duration) -> Self {
        QuorumPolicy {
            min_clients,
            deadline,
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the retry schedule.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// What actually happened in a fault-tolerant round (see
/// [`Coordinator::run_round_with_quorum`]): who made it into the
/// release, who was dropped, and how much fault machinery fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// Budget labels of the clients whose data entered the release —
    /// exactly the labels debited, in transport order.
    pub survivors: Vec<String>,
    /// Transport indices of clients dropped from the round (debited
    /// nothing), in drop order.
    pub dropped: Vec<usize>,
    /// Recovery sub-rounds run to close dropped clients' grid holes.
    pub recovery_subrounds: usize,
    /// Retransmitted frames recognized by their `(round, client,
    /// checksum)` identity and deduped exactly-once.
    pub deduped_frames: usize,
}

/// What the coordinator expects a recovery re-upload to look like: the
/// same client, at the re-assigned grid position.
struct ExpectedReplacement {
    client: String,
    share: ClientShare,
}

/// Idempotency state for one round: every `(client, payload checksum)`
/// identity accepted so far. A frame matching a known identity is a
/// retransmit — deduped, never an error; a frame reusing a known label
/// with *new* content outside an expected replacement is equivocation.
struct DedupLedger {
    seen: HashMap<String, Vec<u64>>,
    deduped_frames: usize,
}

/// Ignored frames (dedups, stale rounds, stale re-uploads) a single
/// receive slot will absorb before giving up — bounds hostile chatter
/// without counting benign retransmits against the retry budget.
const MAX_IGNORED_FRAMES: u32 = 32;

/// A federated round's coordinator, bound to the shared estimator
/// configuration, chunk grid, and round id every client agreed on.
pub struct Coordinator<'a, O: RegressionObjective> {
    estimator: &'a FmEstimator<O>,
    mode: NoiseMode,
    chunk_rows: usize,
    round: u64,
}

impl<'a, O: RegressionObjective> Coordinator<'a, O> {
    /// A coordinator for `mode` under the round's shared estimator, at
    /// the default chunk size.
    pub fn new(estimator: &'a FmEstimator<O>, mode: NoiseMode) -> Self {
        Self::with_chunk_rows(estimator, mode, fm_core::assembly::DEFAULT_CHUNK_ROWS)
    }

    /// As [`Coordinator::new`] with an explicit shared chunk size.
    pub fn with_chunk_rows(
        estimator: &'a FmEstimator<O>,
        mode: NoiseMode,
        chunk_rows: usize,
    ) -> Self {
        Coordinator {
            estimator,
            mode,
            chunk_rows: chunk_rows.max(1),
            round: 0,
        }
    }

    /// Sets the round id (default 0). Uploads stamped with any other
    /// round are refused by validation and ignored by the quorum
    /// collector — stale frames from an earlier round can never leak
    /// into this one.
    #[must_use]
    pub fn with_round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// The round id clients must stamp into their uploads.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The shared chunk-grid size of this round.
    #[must_use]
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The round's noise placement.
    #[must_use]
    pub fn mode(&self) -> NoiseMode {
        self.mode
    }

    /// Plans the round's row partition: contiguous, chunk-aligned,
    /// balanced shares for `clients` participants over `total_rows` rows.
    ///
    /// # Errors
    /// As [`ShardPlan::new`].
    pub fn plan(&self, total_rows: usize, clients: usize) -> Result<ShardPlan> {
        ShardPlan::new(total_rows, clients, self.chunk_rows)
    }

    /// Receives and decodes one upload per transport, in registration
    /// order.
    ///
    /// # Errors
    /// [`crate::FederatedError::Transport`] for channel failures;
    /// [`crate::FederatedError::Wire`] for payloads that fail `fm-accum
    /// v2` validation (corruption, truncation, version skew).
    pub fn collect(
        &self,
        transports: &mut [impl Transport],
    ) -> Result<Vec<AccumUpload<QuadraticForm>>> {
        transports
            .iter_mut()
            .map(|t| {
                let bytes = t.recv()?;
                let text = String::from_utf8(bytes)
                    .map_err(|_| crate::error::wire("payload is not UTF-8"))?;
                AccumUpload::decode(&text)
            })
            .collect()
    }

    /// Validates the collected uploads against the round's protocol,
    /// debits each client's (ε, δ) exactly once through a
    /// parallel-composition scope on `session` under `tenant`, and
    /// releases the round's model.
    ///
    /// Validation happens **before** the debit (a malformed round costs
    /// no budget); a release failure after the debit leaves the budget
    /// spent — fail closed, never under-count.
    ///
    /// # Errors
    /// [`crate::FederatedError::Protocol`] for duplicate client labels,
    /// mismatched dimensionality/chunk grid/mode, or non-contiguous grid
    /// coverage; [`crate::FederatedError::Fm`] for budget refusals and
    /// release failures.
    pub fn release(
        &self,
        uploads: Vec<AccumUpload<QuadraticForm>>,
        session: &SharedPrivacySession,
        tenant: &str,
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let d = self.validate(&uploads)?;

        // Disjoint client shards compose in parallel: debit each label
        // once; the tenant pays the max ε across clients, not the sum.
        let config = self.estimator.config();
        let delta = config.delta().unwrap_or(0.0);
        let mut scope = session.parallel_scope(tenant);
        for upload in &uploads {
            scope.admit(&upload.client, config.epsilon, delta)?;
        }
        scope.finish()?;

        match self.mode {
            NoiseMode::Central => self.release_central(uploads, d, rng),
            NoiseMode::Local => self.release_local(uploads, d),
        }
    }

    /// One-call round: collect every client's upload, then
    /// [`Coordinator::release`].
    ///
    /// # Errors
    /// As [`Coordinator::collect`] and [`Coordinator::release`].
    pub fn run_round(
        &self,
        transports: &mut [impl Transport],
        session: &SharedPrivacySession,
        tenant: &str,
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let uploads = self.collect(transports)?;
        self.release(uploads, session, tenant, rng)
    }

    /// Fault-tolerant round: collect one upload per transport under
    /// `policy`'s deadline and retry schedule, **salvage** the round
    /// when clients drop, and release over the survivors.
    ///
    /// * Transient failures (timeouts, torn frames, corrupt payloads)
    ///   are retried; retransmitted frames are recognized by their
    ///   `(round, client, checksum)` identity and deduped exactly-once.
    /// * A client that disconnects or exhausts its retries is
    ///   **dropped**: in a central-noise round its grid range is
    ///   re-planned onto the survivors — each shifted survivor receives
    ///   a [`ControlMsg::Assign`] and re-contributes its *own* rows at
    ///   the new chunk position, so the salvaged release is
    ///   **bit-identical** to a fresh round planned over the same
    ///   survivor geometry at the same seed. Clients that drop *during*
    ///   recovery trigger another re-plan.
    /// * Only survivors are debited: dropped clients never reach the
    ///   parallel-composition scope, so their ε cost is exactly zero.
    /// * When fewer than `policy.min_clients` survive, the round refuses
    ///   with [`FederatedError::Quorum`] — nothing debited.
    ///
    /// Survivors are told the round is over with a [`ControlMsg::Done`]
    /// (best-effort), so [`FederatedClient::participate`] loops
    /// terminate cleanly.
    ///
    /// [`FederatedClient::participate`]: crate::FederatedClient::participate
    ///
    /// # Errors
    /// [`FederatedError::Quorum`] below quorum;
    /// [`crate::FederatedError::Protocol`] for hostile uploads (a client
    /// equivocating — same label, same round, different payloads outside
    /// an expected replacement — or a replacement at the wrong position)
    /// and for protocol violations at release; [`crate::FederatedError::Fm`]
    /// for budget refusals and release failures.
    pub fn run_round_with_quorum(
        &self,
        transports: &mut [impl Transport],
        policy: &QuorumPolicy,
        session: &SharedPrivacySession,
        tenant: &str,
        rng: &mut impl Rng,
    ) -> Result<(O::Model, RoundReport)> {
        for t in transports.iter_mut() {
            t.set_deadline(Some(policy.deadline))?;
        }
        let mut dedup = DedupLedger {
            seen: HashMap::new(),
            deduped_frames: 0,
        };

        // Phase 1: one upload per transport, faults tolerated per-slot.
        let mut slots: Vec<Option<AccumUpload<QuadraticForm>>> = Vec::new();
        let mut dropped: Vec<usize> = Vec::new();
        for (i, t) in transports.iter_mut().enumerate() {
            match self.recv_upload(t, &policy.retry, &mut dedup, None)? {
                Some(u) => slots.push(Some(u)),
                None => {
                    slots.push(None);
                    dropped.push(i);
                }
            }
        }

        // Phase 2 (central rounds): close dropped clients' grid holes by
        // re-planning the survivors' own geometry contiguously from
        // chunk 0 and re-collecting from every survivor whose position
        // moved. Every iteration either reaches a contiguous grid or
        // drops at least one more client, so the loop terminates.
        let min_clients = policy.min_clients.max(1);
        let mut recovery_subrounds = 0usize;
        loop {
            let survivors: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_some()).collect();
            if survivors.len() < min_clients {
                return Err(FederatedError::Quorum {
                    survivors: survivors.len(),
                    min_clients,
                });
            }
            if self.mode != NoiseMode::Central {
                // Local-noise uploads carry no grid position — dropping
                // a client needs no re-planning at all.
                break;
            }
            let geometry: Vec<(usize, usize)> = survivors
                .iter()
                .map(|&i| {
                    let u = slots[i].as_ref().expect("survivor slot holds an upload");
                    (run_chunks(u), u.staged_ys.len())
                })
                .collect();
            let desired = ShardPlan::from_client_geometry(self.chunk_rows, &geometry)?;

            // Which survivors sit at the wrong position under the
            // re-packed plan?
            let mut moved: Vec<(usize, ClientShare)> = Vec::new();
            for (&slot, share) in survivors.iter().zip(&desired.shares) {
                let current = slots[slot].as_ref().expect("survivor slot holds an upload");
                if current.start_chunk != share.start_chunk {
                    moved.push((slot, *share));
                }
            }
            if moved.is_empty() {
                break;
            }
            recovery_subrounds += 1;

            // Re-assign, then re-collect. A client unreachable at either
            // step is dropped, and the next iteration re-plans again.
            let mut assigned: Vec<(usize, ClientShare)> = Vec::new();
            for (slot, share) in moved {
                let msg = ControlMsg::Assign {
                    round: self.round,
                    share,
                };
                let encoded = msg.encode();
                match policy
                    .retry
                    .run(|_| transports[slot].send(encoded.as_bytes()))
                {
                    Ok(()) => assigned.push((slot, share)),
                    Err(_) => {
                        slots[slot] = None;
                        dropped.push(slot);
                    }
                }
            }
            for (slot, share) in assigned {
                let expected = ExpectedReplacement {
                    client: slots[slot]
                        .as_ref()
                        .expect("assigned slot holds an upload")
                        .client
                        .clone(),
                    share,
                };
                match self.recv_upload(
                    &mut transports[slot],
                    &policy.retry,
                    &mut dedup,
                    Some(&expected),
                )? {
                    Some(u) => slots[slot] = Some(u),
                    None => {
                        slots[slot] = None;
                        dropped.push(slot);
                    }
                }
            }
        }

        // Release the survivors from the round before releasing the
        // model — best-effort: a client that misses its Done hits its
        // own deadline instead of hanging.
        let done = ControlMsg::Done { round: self.round }.encode();
        for (i, t) in transports.iter_mut().enumerate() {
            if slots[i].is_some() {
                let _ = t.send(done.as_bytes());
            }
        }

        let uploads: Vec<AccumUpload<QuadraticForm>> = slots.into_iter().flatten().collect();
        let report = RoundReport {
            survivors: uploads.iter().map(|u| u.client.clone()).collect(),
            dropped,
            recovery_subrounds,
            deduped_frames: dedup.deduped_frames,
        };
        let model = self.release(uploads, session, tenant, rng)?;
        Ok((model, report))
    }

    /// Receives one valid upload from `transport`, absorbing transient
    /// faults: retryable failures burn the retry budget, recognized
    /// retransmits/stale frames are ignored (up to
    /// [`MAX_IGNORED_FRAMES`]), and `Ok(None)` means the client is
    /// dropped — disconnected or out of patience. Only hostile behavior
    /// (equivocation, a replacement from the wrong client or at the
    /// wrong position) is a hard error: it aborts the round before any
    /// debit.
    fn recv_upload(
        &self,
        transport: &mut impl Transport,
        retry: &RetryPolicy,
        dedup: &mut DedupLedger,
        expected: Option<&ExpectedReplacement>,
    ) -> Result<Option<AccumUpload<QuadraticForm>>> {
        let max_attempts = retry.max_attempts.max(1);
        let mut failures = 0u32;
        let mut ignored = 0u32;
        loop {
            let bytes = match transport.recv() {
                Ok(bytes) => bytes,
                Err(FederatedError::Disconnected { .. }) => return Ok(None),
                Err(e) if e.is_retryable() => {
                    failures += 1;
                    if failures >= max_attempts {
                        return Ok(None);
                    }
                    let pause = retry.backoff(failures);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    continue;
                }
                // Terminal transport failure (e.g. an oversized frame):
                // this client cannot be salvaged, but the round can.
                Err(_) => return Ok(None),
            };
            let fingerprint = checksum64(&bytes);
            let upload = match String::from_utf8(bytes)
                .map_err(|_| crate::error::wire("payload is not UTF-8"))
                .and_then(|text| AccumUpload::<QuadraticForm>::decode(&text))
            {
                Ok(upload) => upload,
                Err(_) => {
                    // A torn or corrupt frame; the peer may retransmit.
                    failures += 1;
                    if failures >= max_attempts {
                        return Ok(None);
                    }
                    let pause = retry.backoff(failures);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    continue;
                }
            };

            // Stale round: a frame from an earlier round on a reused
            // transport. Ignore — it can never enter this release.
            if upload.round != self.round {
                ignored += 1;
                if ignored >= MAX_IGNORED_FRAMES {
                    return Ok(None);
                }
                continue;
            }
            // Idempotency: an already-accepted identity is a retransmit.
            if dedup
                .seen
                .get(&upload.client)
                .is_some_and(|fps| fps.contains(&fingerprint))
            {
                dedup.deduped_frames += 1;
                ignored += 1;
                if ignored >= MAX_IGNORED_FRAMES {
                    return Ok(None);
                }
                continue;
            }

            match expected {
                None => {
                    // First contact in this round may not reuse a label
                    // already accepted with different content.
                    if dedup.seen.contains_key(&upload.client) {
                        return Err(protocol(format!(
                            "client {:?} uploaded two different payloads in round {} \
                             (equivocation)",
                            upload.client, self.round
                        )));
                    }
                }
                Some(exp) => {
                    if upload.client != exp.client {
                        return Err(protocol(format!(
                            "recovery upload from {:?} on a channel owned by {:?}",
                            upload.client, exp.client
                        )));
                    }
                    if upload.start_chunk != exp.share.start_chunk
                        || run_chunks(&upload) != exp.share.chunks
                        || upload.staged_ys.len() != exp.share.tail_rows
                    {
                        // A re-upload under a superseded assignment (the
                        // plan moved again while it was in flight):
                        // ignore and keep waiting for the current one.
                        ignored += 1;
                        if ignored >= MAX_IGNORED_FRAMES {
                            return Ok(None);
                        }
                        continue;
                    }
                }
            }

            dedup
                .seen
                .entry(upload.client.clone())
                .or_default()
                .push(fingerprint);
            return Ok(Some(upload));
        }
    }

    /// Protocol validation over the whole round — everything checkable
    /// without touching the budget or the accumulator. Returns the
    /// round's working dimensionality.
    fn validate(&self, uploads: &[AccumUpload<QuadraticForm>]) -> Result<usize> {
        if uploads.is_empty() {
            return Err(protocol("a round needs at least one client upload"));
        }
        let mut labels: Vec<&str> = uploads.iter().map(|u| u.client.as_str()).collect();
        labels.sort_unstable();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(protocol(format!(
                "client {:?} uploaded more than once; a label is debited exactly once per round",
                dup[0]
            )));
        }
        let d = uploads[0].d;
        let expected = self.mode.expected_payload();
        let last = uploads.len() - 1;
        let mut frontier = 0usize;
        for (i, u) in uploads.iter().enumerate() {
            if u.round != self.round {
                return Err(protocol(format!(
                    "client {:?} uploaded into round {}, this round is {}",
                    u.client, u.round, self.round
                )));
            }
            if u.d != d {
                return Err(protocol(format!(
                    "client {:?} uploaded d = {}, the round runs at d = {d}",
                    u.client, u.d
                )));
            }
            if u.chunk_rows != self.chunk_rows {
                return Err(protocol(format!(
                    "client {:?} chunked at {} rows, the round's grid is {}",
                    u.client, u.chunk_rows, self.chunk_rows
                )));
            }
            if u.mode != expected {
                return Err(protocol(format!(
                    "client {:?} uploaded a {:?} payload into a {:?} round",
                    u.client, u.mode, self.mode
                )));
            }
            if self.mode == NoiseMode::Central {
                if u.start_chunk != frontier {
                    return Err(protocol(format!(
                        "client {:?} starts at chunk {}, but the grid frontier is {frontier}",
                        u.client, u.start_chunk
                    )));
                }
                if i != last && !u.staged_ys.is_empty() {
                    return Err(protocol(format!(
                        "client {:?} uploaded ragged-tail rows mid-round; only the final \
                         client may carry a partial chunk",
                        u.client
                    )));
                }
                for &(rank, _) in &u.runs {
                    frontier = frontier
                        .checked_add(1usize << rank)
                        .ok_or_else(|| protocol("round chunk count overflows"))?;
                }
            }
        }
        Ok(d)
    }

    /// Central-noise release: replay every client's pre-merged runs at
    /// matching ranks on the shared grid, absorb the final ragged tail,
    /// and draw the mechanism's noise once over the merged exact
    /// coefficients — bit-identical to a single-machine fit over the
    /// concatenated rows at the same chunk size and RNG state.
    fn release_central(
        &self,
        uploads: Vec<AccumUpload<QuadraticForm>>,
        d: usize,
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let objective = self.estimator.objective();
        let mut acc = CoefficientAccumulator::with_chunk_rows(objective, d, self.chunk_rows);
        for upload in uploads {
            for (rank, part) in upload.runs {
                acc.push_run(rank, part)?;
            }
            if !upload.staged_ys.is_empty() {
                // Raw tail rows go through full contract validation, like
                // any other ingested block.
                acc.push_rows(&upload.staged_xs, &upload.staged_ys)?;
            }
        }
        let clean = acc
            .finish()
            .ok_or_else(|| protocol("the round covered no rows"))?;
        Ok(self.estimator.release_clean(&clean, rng)?)
    }

    /// Local-noise release: sum the already-perturbed client objectives
    /// in upload order (pure post-processing — no further noise, no
    /// further budget) and solve under the round's strategy. The noise
    /// calibration handed to post-processing is derived from the round's
    /// own mechanism configuration, never from the network.
    fn release_local(
        &self,
        uploads: Vec<AccumUpload<QuadraticForm>>,
        _d: usize,
    ) -> Result<O::Model> {
        let contributors = uploads.len();
        let mut total: Option<QuadraticForm> = None;
        for upload in uploads {
            for (_, part) in upload.runs {
                match &mut total {
                    None => total = Some(part),
                    Some(t) => t.merge(part),
                }
            }
        }
        let total = total.ok_or_else(|| protocol("the round carried no contributions"))?;
        let config = self.estimator.config();
        let mechanism =
            FunctionalMechanism::with_config(config.epsilon, config.bound, config.noise)?;
        let noisy = NoisyQuadratic::from_federated_sum(
            total,
            contributors,
            &mechanism,
            self.estimator.objective(),
        )?;
        Ok(self.estimator.release_noisy(noisy)?)
    }
}

/// Whole chunks covered by an upload's pre-merged runs.
fn run_chunks(upload: &AccumUpload<QuadraticForm>) -> usize {
    upload.runs.iter().map(|(rank, _)| 1usize << *rank).sum()
}
