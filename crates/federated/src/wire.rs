//! The `fm-accum v2` wire format: a versioned, checksummed serialization
//! of streaming-accumulator state for cross-process federated fitting —
//! plus the tiny `fm-ctl v1` control format coordinators use to
//! re-assign grid positions in a recovery sub-round ([`ControlMsg`]).
//!
//! A federated client ships its contribution to the coordinator as one
//! payload holding the client's position on the shared chunk grid, its
//! pre-merged counter runs (each covering `2^rank` consecutive chunks),
//! and — for the final client of a central-noise round — the raw rows of
//! the ragged tail chunk. The format follows `fm-checkpoint v1`
//! ([`fm_core::checkpoint`]) exactly where it can: line-oriented ASCII,
//! one `key value…` pair per line, floats written with Rust's
//! shortest-round-trip formatting (bit-exact on reparse), closed by a
//! whole-payload FNV-1a-64 checksum ([`fm_privacy::wal::checksum64`]).
//!
//! v2 adds one header line over v1: `round`, a coordinator-chosen round
//! id. Together with the client label and the payload checksum it makes
//! uploads **idempotent** — a retransmit after an ambiguous failure
//! carries the same `(round, client, checksum)` identity, so the
//! coordinator dedups it exactly-once instead of refusing the round, and
//! a stale frame from an earlier round is recognized and ignored.
//!
//! # Format
//!
//! ```text
//! fm-accum v2
//! kind quadratic            (or polynomial)
//! client alice              (budget label: no whitespace/control, ≤ 128 bytes)
//! round 7                   (coordinator-chosen round id)
//! mode clean                (or noisy)
//! d 4
//! chunk_rows 4096
//! start_chunk 8             (the client's first chunk on the shared grid)
//! rows 40960
//! staged 0                  (ragged-tail rows riding along raw)
//! stage_ys <f>…
//! stage_xs <f>…
//! runs 2
//! run 3                     (counter rank: this partial covers 2³ chunks)
//! beta <f>
//! alpha <f>·d
//! m <f>·d²
//! run 1
//! …
//! checksum <16-hex FNV-1a-64 of every preceding byte>
//! ```
//!
//! Polynomial partials replace the `beta`/`alpha`/`m` lines with
//! `terms <k>` followed by `term <coeff> <e₁> … <e_d>` lines, exactly as
//! checkpoints do.
//!
//! # What decode refuses
//!
//! The checksum closes over the whole payload, so truncation or
//! corruption *anywhere* — a torn tail, a flipped byte mid-run — is
//! refused before any field is trusted. On top of that, decoding
//! enforces the structural invariants the merge-tree replay depends on:
//! version skew, unknown or out-of-order keys, a run that is not aligned
//! at its own grid position (`(start_chunk + chunks so far) mod 2^rank ≠
//! 0`), row counts inconsistent with the chunk grid, staged rows in a
//! noisy payload, and non-finite floats are all typed
//! [`crate::FederatedError::Wire`] errors, never panics. Every refusal
//! names *where* it happened — the 1-based body line, or the byte count
//! of a torn payload — so a faulted transcript can be debugged from the
//! error alone.

use fm_linalg::Matrix;
use fm_poly::{Monomial, Polynomial, QuadraticForm};
use fm_privacy::wal::checksum64;

use crate::error::{wire, Result};
use crate::plan::ClientShare;

/// Magic first line of an `fm-accum` payload, with the format version.
pub const ACCUM_MAGIC: &str = "fm-accum v2";

/// Magic first line of an `fm-ctl` control message.
pub const CTL_MAGIC: &str = "fm-ctl v1";

/// Whether a payload carries exact (clean) accumulator state or a
/// client-side perturbed (noisy) objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Exact coefficient partials; the coordinator draws the noise once
    /// at release (central-noise trust model).
    Clean,
    /// The client perturbed its own contribution before upload
    /// (local-noise trust model); the payload carries exactly one rank-0
    /// run holding the noisy objective and no raw rows.
    Noisy,
}

impl PayloadMode {
    fn token(self) -> &'static str {
        match self {
            PayloadMode::Clean => "clean",
            PayloadMode::Noisy => "noisy",
        }
    }

    fn parse(tok: &str) -> Result<Self> {
        match tok {
            "clean" => Ok(PayloadMode::Clean),
            "noisy" => Ok(PayloadMode::Noisy),
            other => Err(wire(format!("unknown mode {other:?}"))),
        }
    }
}

/// The two partial kinds the wire format carries — the degree-2
/// [`QuadraticForm`] of the built-in regressions and the general-degree
/// [`Polynomial`] of `fm_core::generic`.
pub trait WirePartial: Sized {
    /// The `kind` tag in the header.
    const KIND: &'static str;

    /// The partial's variable count (must equal the payload's `d`).
    fn wire_dim(&self) -> usize;

    /// Appends the partial's body lines to `out`.
    fn encode_body(&self, out: &mut String);

    /// Parses one partial body at dimensionality `d`.
    ///
    /// # Errors
    /// [`crate::FederatedError::Wire`] for malformed or mis-shaped bodies.
    fn decode_body(lines: &mut LineReader<'_>, d: usize) -> Result<Self>;
}

impl WirePartial for QuadraticForm {
    const KIND: &'static str = "quadratic";

    fn wire_dim(&self) -> usize {
        self.dim()
    }

    fn encode_body(&self, out: &mut String) {
        out.push_str("beta ");
        push_f64(out, self.beta());
        out.push('\n');
        push_floats_line(out, "alpha", self.alpha());
        push_floats_line(out, "m", self.m().as_slice());
    }

    fn decode_body(lines: &mut LineReader<'_>, d: usize) -> Result<Self> {
        let beta = lines.floats("beta", 1)?[0];
        let alpha = lines.floats("alpha", d)?;
        let m = lines.floats("m", d * d)?;
        let m = Matrix::from_vec(d, d, m).map_err(|e| wire(format!("uploaded m: {e}")))?;
        Ok(QuadraticForm::new(m, alpha, beta))
    }
}

impl WirePartial for Polynomial {
    const KIND: &'static str = "polynomial";

    fn wire_dim(&self) -> usize {
        self.num_vars()
    }

    fn encode_body(&self, out: &mut String) {
        let n_terms = self.terms().count();
        out.push_str(&format!("terms {n_terms}\n"));
        for (phi, coeff) in self.terms() {
            out.push_str("term ");
            push_f64(out, coeff);
            for &e in phi.exponents() {
                out.push_str(&format!(" {e}"));
            }
            out.push('\n');
        }
    }

    fn decode_body(lines: &mut LineReader<'_>, d: usize) -> Result<Self> {
        let n_terms = lines.usize_field("terms")?;
        let mut poly = Polynomial::zero(d);
        for _ in 0..n_terms {
            let toks = lines.tagged("term")?;
            let mut toks = toks.split(' ');
            let coeff = parse_f64_tok("term coefficient", toks.next())?;
            let exps: Vec<u32> = toks
                .map(|t| {
                    t.parse::<u32>()
                        .map_err(|_| wire(format!("unparseable exponent {t:?}")))
                })
                .collect::<Result<_>>()?;
            if exps.len() != d {
                return Err(wire(format!(
                    "term has {} exponents, payload says d = {d}",
                    exps.len()
                )));
            }
            poly.add_term(Monomial::new(exps), coeff);
        }
        Ok(poly)
    }
}

/// One client's contribution to a federated round, as carried by the
/// `fm-accum v2` wire format: the client's identity, round id and grid
/// position, its pre-merged counter runs, and (final client of a central
/// round only) the raw rows of the ragged tail chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumUpload<P = QuadraticForm> {
    /// The client's budget label (what the coordinator debits; no
    /// whitespace or control characters, at most 128 bytes).
    pub client: String,
    /// The round this upload belongs to. Retransmits carry the same
    /// round id; a coordinator ignores frames from other rounds.
    pub round: u64,
    /// Clean accumulator state or a client-side perturbed objective.
    pub mode: PayloadMode,
    /// The working dimensionality (intercept augmentation included).
    pub d: usize,
    /// The shared chunk-grid size every party agreed on.
    pub chunk_rows: usize,
    /// The client's first chunk on the shared grid.
    pub start_chunk: usize,
    /// Rows this contribution covers.
    pub rows: usize,
    /// Pre-merged counter runs `(rank, partial)` in grid order; each
    /// covers `2^rank` consecutive chunks starting at an aligned position.
    pub runs: Vec<(u32, P)>,
    /// Row-major features of the ragged tail rows (empty off the tail).
    pub staged_xs: Vec<f64>,
    /// Labels of the ragged tail rows (empty off the tail).
    pub staged_ys: Vec<f64>,
}

impl<P: WirePartial> AccumUpload<P> {
    /// Serializes the upload to the versioned, checksummed `fm-accum v2`
    /// text format. Floats are written shortest-round-trip, so
    /// [`AccumUpload::decode`] reproduces the exact bits.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(ACCUM_MAGIC);
        out.push('\n');
        out.push_str(&format!("kind {}\n", P::KIND));
        out.push_str(&format!("client {}\n", self.client));
        out.push_str(&format!("round {}\n", self.round));
        out.push_str(&format!("mode {}\n", self.mode.token()));
        out.push_str(&format!("d {}\n", self.d));
        out.push_str(&format!("chunk_rows {}\n", self.chunk_rows));
        out.push_str(&format!("start_chunk {}\n", self.start_chunk));
        out.push_str(&format!("rows {}\n", self.rows));
        out.push_str(&format!("staged {}\n", self.staged_ys.len()));
        push_floats_line(&mut out, "stage_ys", &self.staged_ys);
        push_floats_line(&mut out, "stage_xs", &self.staged_xs);
        out.push_str(&format!("runs {}\n", self.runs.len()));
        for (rank, part) in &self.runs {
            out.push_str(&format!("run {rank}\n"));
            part.encode_body(&mut out);
        }
        out.push_str(&format!("checksum {:016x}\n", checksum64(out.as_bytes())));
        out
    }

    /// Parses and validates an `fm-accum v2` payload.
    ///
    /// # Errors
    /// [`crate::FederatedError::Wire`] for checksum failures (any truncation or
    /// mid-payload corruption), version or kind skew, unknown or
    /// out-of-order keys, malformed numbers, and structural violations:
    /// unaligned runs, row counts inconsistent with the chunk grid,
    /// staged rows that cannot belong to a partial chunk, or a noisy
    /// payload carrying anything but a single rank-0 run. Errors carry
    /// the offending body line or the torn payload's byte count.
    pub fn decode(text: &str) -> Result<Self> {
        let body = verify_checksum(text)?;

        let mut lines = LineReader::new(body);
        let magic = lines.next_line()?;
        if magic != ACCUM_MAGIC {
            return Err(wire(format!(
                "unsupported payload format {magic:?} (expected {ACCUM_MAGIC:?})"
            )));
        }
        let kind = lines.tagged("kind")?;
        if kind != P::KIND {
            return Err(wire(format!(
                "payload holds a {kind} accumulator, expected {}",
                P::KIND
            )));
        }
        let client = lines.tagged("client")?.to_string();
        validate_client_label(&client)?;
        let round = lines.u64_field("round")?;
        let mode = PayloadMode::parse(lines.tagged("mode")?)?;
        let d = lines.usize_field("d")?;
        if d == 0 {
            return Err(wire("uploaded d must be ≥ 1"));
        }
        let chunk_rows = lines.usize_field("chunk_rows")?;
        if chunk_rows == 0 {
            return Err(wire("uploaded chunk_rows must be ≥ 1"));
        }
        let start_chunk = lines.usize_field("start_chunk")?;
        let rows = lines.usize_field("rows")?;

        let staged = lines.usize_field("staged")?;
        if staged >= chunk_rows {
            return Err(wire(format!(
                "{staged} staged rows cannot fit a {chunk_rows}-row chunk mid-fill"
            )));
        }
        let staged_ys = lines.floats("stage_ys", staged)?;
        let staged_xs = lines.floats("stage_xs", staged * d)?;

        let n_runs = lines.usize_field("runs")?;
        let mut runs: Vec<(u32, P)> = Vec::with_capacity(n_runs.min(1024));
        let mut chunks_total = 0usize;
        for _ in 0..n_runs {
            let rank_tok = lines.tagged("run")?;
            let rank: u32 = rank_tok
                .parse()
                .map_err(|_| wire(format!("unparseable run rank {rank_tok:?}")))?;
            if rank >= usize::BITS {
                return Err(wire(format!("run rank {rank} overflows the chunk grid")));
            }
            let run_chunks = 1usize << rank;
            let position = start_chunk
                .checked_add(chunks_total)
                .ok_or_else(|| wire("chunk position overflows"))?;
            if position % run_chunks != 0 {
                return Err(wire(format!(
                    "run of 2^{rank} chunks is not aligned at chunk {position}: \
                     replaying it would regroup sums the single-machine tree never groups"
                )));
            }
            let part = P::decode_body(&mut lines, d)?;
            if part.wire_dim() != d {
                return Err(wire(format!(
                    "run partial has d = {}, payload says {d}",
                    part.wire_dim()
                )));
            }
            chunks_total = chunks_total
                .checked_add(run_chunks)
                .ok_or_else(|| wire("run chunks overflow the addressable grid"))?;
            runs.push((rank, part));
        }
        if lines.lines.next().is_some() {
            return Err(wire("trailing content after the last run"));
        }

        match mode {
            PayloadMode::Clean => {
                // Every run holds exactly 2^rank full chunks; only the
                // ragged tail travels as raw rows.
                let expected_rows = chunks_total
                    .checked_mul(chunk_rows)
                    .and_then(|v| v.checked_add(staged));
                if expected_rows != Some(rows) {
                    return Err(wire(format!(
                        "row count {rows} inconsistent with {chunks_total} chunks of \
                         {chunk_rows} rows plus {staged} staged"
                    )));
                }
            }
            PayloadMode::Noisy => {
                // A noisy upload is one perturbed objective — never raw
                // rows, never a grid position.
                if runs.len() != 1 || runs[0].0 != 0 {
                    return Err(wire("a noisy payload must carry exactly one rank-0 run"));
                }
                if staged != 0 {
                    return Err(wire("a noisy payload must not carry raw staged rows"));
                }
                if start_chunk != 0 {
                    return Err(wire("a noisy payload has no grid position"));
                }
                if rows == 0 {
                    return Err(wire("a noisy payload must cover at least one row"));
                }
            }
        }

        Ok(AccumUpload {
            client,
            round,
            mode,
            d,
            chunk_rows,
            start_chunk,
            rows,
            runs,
            staged_xs,
            staged_ys,
        })
    }
}

/// Verifies the trailing `checksum` line of a payload and returns the
/// body it closes over. Shared by `fm-accum v2` and `fm-ctl v1`: the
/// checksum line closes over every byte before it, and the payload must
/// end exactly at its newline — a payload missing even the final byte is
/// refused, with the refusal naming how many bytes actually arrived.
fn verify_checksum(text: &str) -> Result<&str> {
    let body_end = text.rfind("checksum ").ok_or_else(|| {
        wire(format!(
            "missing checksum line in a {}-byte payload (truncated?)",
            text.len()
        ))
    })?;
    let (body, sum_line) = text.split_at(body_end);
    let sum_hex = sum_line.strip_prefix("checksum ").expect("split at match");
    let Some(sum_hex) = sum_hex.strip_suffix('\n') else {
        return Err(wire(format!(
            "payload torn mid-checksum at byte {}",
            text.len()
        )));
    };
    let expected = u64::from_str_radix(sum_hex, 16)
        .map_err(|_| wire(format!("unparseable checksum {sum_hex:?}")))?;
    if sum_hex.len() != 16 || checksum64(body.as_bytes()) != expected {
        return Err(wire(format!(
            "checksum mismatch over a {}-byte body: payload is corrupt or truncated",
            body.len()
        )));
    }
    Ok(body)
}

/// A coordinator→client control message in a fault-tolerant round, as
/// carried by the checksummed `fm-ctl v1` line format:
///
/// ```text
/// fm-ctl v1
/// type assign               (or done)
/// round 7
/// start_row 4096            (assign only: the re-planned share)
/// rows 8192
/// start_chunk 1
/// chunks 2
/// tail_rows 0
/// checksum <16-hex FNV-1a-64 of every preceding byte>
/// ```
///
/// After the upload phase of a quorum round, survivors wait for control
/// messages: an [`ControlMsg::Assign`] asks the client to re-contribute
/// its rows at a new grid position (a dropped peer's range was
/// re-planned), a [`ControlMsg::Done`] releases it from the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Re-contribute under the carried share (same local rows, possibly
    /// a new `start_chunk`) and upload again.
    Assign {
        /// The round being salvaged.
        round: u64,
        /// The client's re-planned position on the shared grid.
        share: ClientShare,
    },
    /// The round is complete; the client may leave.
    Done {
        /// The finished round.
        round: u64,
    },
}

impl ControlMsg {
    /// Serializes the message to the checksummed `fm-ctl v1` format.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(CTL_MAGIC);
        out.push('\n');
        match self {
            ControlMsg::Assign { round, share } => {
                out.push_str("type assign\n");
                out.push_str(&format!("round {round}\n"));
                out.push_str(&format!("start_row {}\n", share.start_row));
                out.push_str(&format!("rows {}\n", share.rows));
                out.push_str(&format!("start_chunk {}\n", share.start_chunk));
                out.push_str(&format!("chunks {}\n", share.chunks));
                out.push_str(&format!("tail_rows {}\n", share.tail_rows));
            }
            ControlMsg::Done { round } => {
                out.push_str("type done\n");
                out.push_str(&format!("round {round}\n"));
            }
        }
        out.push_str(&format!("checksum {:016x}\n", checksum64(out.as_bytes())));
        out
    }

    /// Parses and validates an `fm-ctl v1` message.
    ///
    /// # Errors
    /// [`crate::FederatedError::Wire`] for checksum failures, version
    /// skew, unknown message types, malformed fields, or a share whose
    /// row count disagrees with its chunk geometry.
    pub fn decode(text: &str) -> Result<Self> {
        let body = verify_checksum(text)?;
        let mut lines = LineReader::new(body);
        let magic = lines.next_line()?;
        if magic != CTL_MAGIC {
            return Err(wire(format!(
                "unsupported control format {magic:?} (expected {CTL_MAGIC:?})"
            )));
        }
        let kind = lines.tagged("type")?;
        let round = match kind {
            "assign" => {
                let round = lines.u64_field("round")?;
                let start_row = lines.usize_field("start_row")?;
                let rows = lines.usize_field("rows")?;
                let start_chunk = lines.usize_field("start_chunk")?;
                let chunks = lines.usize_field("chunks")?;
                let tail_rows = lines.usize_field("tail_rows")?;
                let share = ClientShare {
                    start_row,
                    rows,
                    start_chunk,
                    chunks,
                    tail_rows,
                };
                if lines.lines.next().is_some() {
                    return Err(wire("trailing content after the assignment"));
                }
                return Ok(ControlMsg::Assign { round, share });
            }
            "done" => lines.u64_field("round")?,
            other => return Err(wire(format!("unknown control type {other:?}"))),
        };
        if lines.lines.next().is_some() {
            return Err(wire("trailing content after the control message"));
        }
        Ok(ControlMsg::Done { round })
    }
}

/// Refuses client labels that could not serve as budget-ledger tokens:
/// empty, over 128 bytes, or containing whitespace/control characters
/// (which would also corrupt the line-oriented format).
fn validate_client_label(label: &str) -> Result<()> {
    if label.is_empty() || label.len() > 128 {
        return Err(wire(format!(
            "client label must be 1–128 bytes, got {}",
            label.len()
        )));
    }
    if label.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(wire(format!(
            "client label {label:?} contains whitespace or control characters"
        )));
    }
    Ok(())
}

/// Shortest-round-trip float formatting (bit-exact on reparse — the same
/// regime `fm-checkpoint v1` and `persist::SavedModel` rely on).
fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{v}"));
}

fn push_floats_line(out: &mut String, tag: &str, vals: &[f64]) {
    out.push_str(tag);
    for &v in vals {
        out.push(' ');
        push_f64(out, v);
    }
    out.push('\n');
}

fn parse_f64_tok(what: &str, tok: Option<&str>) -> Result<f64> {
    let tok = tok.ok_or_else(|| wire(format!("missing {what}")))?;
    let v: f64 = tok
        .parse()
        .map_err(|_| wire(format!("unparseable {what} {tok:?}")))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(wire(format!("{what} must be finite, got {tok}")))
    }
}

/// Sequential tagged-line reader over the payload body (same shape as
/// the checkpoint parser's; public only because [`WirePartial`] bodies
/// read through it). Tracks the 1-based line number so every refusal
/// names where in the transcript it happened.
pub struct LineReader<'a> {
    lines: std::str::Lines<'a>,
    line: usize,
}

impl<'a> LineReader<'a> {
    fn new(body: &'a str) -> Self {
        LineReader {
            lines: body.lines(),
            line: 0,
        }
    }

    fn next_line(&mut self) -> Result<&'a str> {
        self.line += 1;
        let at = self.line;
        self.lines
            .next()
            .ok_or_else(|| wire(format!("payload body truncated at line {at}")))
    }

    /// Consumes the next line, requiring tag `tag`; returns the rest.
    fn tagged(&mut self, tag: &str) -> Result<&'a str> {
        let line = self.next_line()?;
        match line.strip_prefix(tag) {
            Some("") => Ok(""),
            Some(rest) if rest.starts_with(' ') => Ok(&rest[1..]),
            _ => Err(wire(format!(
                "line {}: expected `{tag} …`, found {line:?} (unknown or out-of-order key)",
                self.line
            ))),
        }
    }

    fn usize_field(&mut self, tag: &str) -> Result<usize> {
        let rest = self.tagged(tag)?;
        rest.parse::<usize>()
            .map_err(|_| wire(format!("line {}: unparseable {tag} {rest:?}", self.line)))
    }

    fn u64_field(&mut self, tag: &str) -> Result<u64> {
        let rest = self.tagged(tag)?;
        rest.parse::<u64>()
            .map_err(|_| wire(format!("line {}: unparseable {tag} {rest:?}", self.line)))
    }

    /// Consumes a `tag v0 v1 …` line carrying exactly `n` finite floats.
    fn floats(&mut self, tag: &str, n: usize) -> Result<Vec<f64>> {
        let rest = self.tagged(tag)?;
        let vals: Vec<f64> = rest
            .split(' ')
            .filter(|t| !t.is_empty())
            .map(|t| parse_f64_tok(tag, Some(t)))
            .collect::<Result<_>>()?;
        if vals.len() != n {
            return Err(wire(format!(
                "line {}: {tag}: expected {n} values, found {}",
                self.line,
                vals.len()
            )));
        }
        Ok(vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FederatedError;

    fn sample_upload() -> AccumUpload<QuadraticForm> {
        let d = 2;
        let part = |seed: f64| {
            let m = Matrix::from_vec(d, d, vec![seed, seed * 0.5, seed * 0.5, seed * 2.0]).unwrap();
            QuadraticForm::new(m, vec![seed * 0.1, -seed], seed * 0.01)
        };
        AccumUpload {
            client: "alice".to_string(),
            round: 7,
            mode: PayloadMode::Clean,
            d,
            chunk_rows: 4,
            start_chunk: 4,
            rows: 4 * 4 + 4 + 2,
            runs: vec![(2, part(1.3)), (0, part(-0.7))],
            staged_xs: vec![0.1, 0.2, 0.3, 0.4],
            staged_ys: vec![0.5, -0.5],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let upload = sample_upload();
        let text = upload.encode();
        let back = AccumUpload::<QuadraticForm>::decode(&text).unwrap();
        assert_eq!(back, upload);
        // Deterministic: re-encoding reproduces the bytes.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn every_prefix_is_refused() {
        let text = sample_upload().encode();
        for cut in 0..text.len() {
            let prefix = &text[..cut];
            assert!(
                AccumUpload::<QuadraticForm>::decode(prefix).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn corruption_version_skew_and_kind_skew_are_refused() {
        let text = sample_upload().encode();
        for pos in [0usize, 12, text.len() / 2, text.len() - 3] {
            let mut evil = text.clone().into_bytes();
            evil[pos] ^= 0x01;
            let evil = String::from_utf8_lossy(&evil).into_owned();
            assert!(
                AccumUpload::<QuadraticForm>::decode(&evil).is_err(),
                "flip at {pos} accepted"
            );
        }
        // Version skew with a freshly valid checksum is still refused.
        let body = text[..text.rfind("checksum ").unwrap()].replace("v2", "v3");
        let skewed = format!("{body}checksum {:016x}\n", checksum64(body.as_bytes()));
        let err = AccumUpload::<QuadraticForm>::decode(&skewed).unwrap_err();
        assert!(matches!(err, FederatedError::Wire { .. }));
        // A quadratic payload is not a polynomial payload.
        assert!(AccumUpload::<Polynomial>::decode(&text).is_err());
    }

    fn reframe(text: &str, from: &str, to: &str) -> String {
        let body = text[..text.rfind("checksum ").unwrap()].replace(from, to);
        format!("{body}checksum {:016x}\n", checksum64(body.as_bytes()))
    }

    #[test]
    fn structural_violations_are_refused_even_with_valid_checksums() {
        let text = sample_upload().encode();
        // Unaligned run: moving the client off its aligned start makes the
        // rank-2 run start at chunk 5.
        let forged = reframe(&text, "start_chunk 4", "start_chunk 5");
        assert!(AccumUpload::<QuadraticForm>::decode(&forged).is_err());
        // Row accounting.
        let forged = reframe(&text, "rows 22", "rows 23");
        assert!(AccumUpload::<QuadraticForm>::decode(&forged).is_err());
        // A noisy payload may not carry staged rows or multiple runs.
        let forged = reframe(&text, "mode clean", "mode noisy");
        assert!(AccumUpload::<QuadraticForm>::decode(&forged).is_err());
        // Ranks past the grid.
        let forged = reframe(&text, "run 2\n", &format!("run {}\n", u32::MAX));
        assert!(AccumUpload::<QuadraticForm>::decode(&forged).is_err());
    }

    #[test]
    fn noisy_payloads_carry_one_rank0_run_and_nothing_else() {
        let mut upload = sample_upload();
        upload.mode = PayloadMode::Noisy;
        upload.runs.truncate(1);
        upload.runs[0].0 = 0;
        upload.staged_xs.clear();
        upload.staged_ys.clear();
        upload.start_chunk = 0;
        upload.rows = 9;
        let back = AccumUpload::<QuadraticForm>::decode(&upload.encode()).unwrap();
        assert_eq!(back, upload);

        upload.rows = 0;
        assert!(AccumUpload::<QuadraticForm>::decode(&upload.encode()).is_err());
    }

    #[test]
    fn wire_errors_carry_positions() {
        // A torn payload names its byte count…
        let text = sample_upload().encode();
        let torn = &text[..text.len() - 1];
        let err = AccumUpload::<QuadraticForm>::decode(torn).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("byte") || msg.contains("-byte"), "{msg}");
        // …and a structural refusal names its body line. `rows` is the
        // 9th line of a v2 payload (after magic/kind/client/round/mode/
        // d/chunk_rows/start_chunk).
        let forged = reframe(&text, "rows 22", "rows nonsense");
        let err = AccumUpload::<QuadraticForm>::decode(&forged).unwrap_err();
        assert!(err.to_string().contains("line 9"), "{err}");
    }

    #[test]
    fn control_messages_round_trip_and_refuse_every_prefix() {
        let assign = ControlMsg::Assign {
            round: 12,
            share: ClientShare {
                start_row: 64,
                rows: 32,
                start_chunk: 8,
                chunks: 4,
                tail_rows: 0,
            },
        };
        let done = ControlMsg::Done { round: 12 };
        for msg in [assign, done] {
            let text = msg.encode();
            assert_eq!(ControlMsg::decode(&text).unwrap(), msg);
            for cut in 0..text.len() {
                assert!(
                    ControlMsg::decode(&text[..cut]).is_err(),
                    "prefix of {cut} bytes accepted"
                );
            }
        }
        // A control message is not an upload and vice versa.
        assert!(AccumUpload::<QuadraticForm>::decode(&done.encode()).is_err());
        assert!(ControlMsg::decode(&sample_upload().encode()).is_err());
    }

    #[test]
    fn hostile_client_labels_are_refused() {
        for label in ["", "two words", "tab\tchar", &"x".repeat(129)] {
            let mut upload = sample_upload();
            upload.client = label.to_string();
            assert!(
                AccumUpload::<QuadraticForm>::decode(&upload.encode()).is_err(),
                "label {label:?} accepted"
            );
        }
    }
}
