//! `fm-federated-bench` — federated-round throughput and the
//! central-vs-local utility gap at equal ε.
//!
//! Plans a `clients`-way chunk-aligned shard split of `rows × d`
//! synthetic rows, runs one **central-noise** round and one
//! **local-noise** round over in-memory transports, and measures:
//!
//! * **bit_identical** — the central round's released model is compared
//!   against a single-machine `fit` over the concatenated rows at the
//!   same seed (the crate's core invariant; the run aborts on mismatch);
//! * **merge throughput** — rows/sec through the coordinator's
//!   validate → debit → replay-runs → release path alone (uploads
//!   already collected);
//! * **client encode throughput** — rows/sec through the client-side
//!   accumulate + pre-merge + `fm-accum v2` encode path;
//! * **central vs local MSE** — prediction error of both modes' models
//!   on the training rows at the same per-client ε, averaged over
//!   several noise draws: the measured utility price of not trusting
//!   the coordinator with exact aggregates;
//! * **fault overhead** — wall time of the same central round through
//!   the quorum path ([`Coordinator::run_round_with_quorum`]): clean,
//!   with every client's first frame torn mid-payload (checksum refusal
//!   + retry + dedup machinery), and with the first client dropped (a
//!   recovery sub-round re-plans the grid onto the survivors, who
//!   re-contribute). Faulted releases are still checked bit-identical
//!   to their fault-free references before timing is reported.
//!
//! [`Coordinator::run_round_with_quorum`]: fm_federated::Coordinator::run_round_with_quorum
//!
//! ```text
//! cargo run --release -p fm-federated --bin fm-federated-bench
//! cargo run --release -p fm-federated --bin fm-federated-bench -- \
//!     --clients 8 --rows 100000 --d 8 --out BENCH_federated.json
//! ```
//!
//! The record is appended to the `--out` JSON array (default
//! `BENCH_federated.json`), creating it when absent.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_core::linreg::DpLinearRegression;
use fm_core::session::SharedPrivacySession;
use fm_data::dataset::Dataset;
use fm_data::stream::InMemorySource;
use fm_data::{metrics, synth};
use fm_federated::{
    Coordinator, FaultInjectingTransport, FederatedClient, InMemoryTransport, NoiseMode,
    QuorumPolicy, RetryPolicy, Transport, TransportFault,
};
use fm_linalg::Matrix;

struct Args {
    clients: usize,
    rows: usize,
    d: usize,
    epsilon: f64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 4,
        rows: 40_000,
        d: 8,
        epsilon: 1.0,
        out: "BENCH_federated.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--clients" => args.clients = parse(&value("--clients")?)?,
            "--rows" => args.rows = parse(&value("--rows")?)?,
            "--d" => args.d = parse(&value("--d")?)?,
            "--epsilon" => {
                args.epsilon = value("--epsilon")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad epsilon: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.rows == 0 || args.d == 0 {
        return Err("--clients/--rows/--d must be positive".to_string());
    }
    if !args.epsilon.is_finite() || args.epsilon <= 0.0 {
        return Err("--epsilon must be positive".to_string());
    }
    Ok(args)
}

fn parse(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|e| format!("bad number {s}: {e}"))
}

/// Materializes the contiguous row range `[start, start + rows)` of
/// `data` as its own dataset — one federated client's local shard.
fn slice_dataset(data: &Dataset, start: usize, rows: usize) -> Result<Dataset, String> {
    let d = data.x().cols();
    let mut xs = Vec::with_capacity(rows * d);
    for r in start..start + rows {
        xs.extend_from_slice(data.x().row(r));
    }
    let ys = data.y()[start..start + rows].to_vec();
    let x = Matrix::from_vec(rows, d, xs).map_err(|e| e.to_string())?;
    Dataset::new(x, ys).map_err(|e| e.to_string())
}

fn run(args: &Args) -> Result<String, String> {
    let data = {
        let mut rng = StdRng::seed_from_u64(7_001);
        synth::linear_dataset(&mut rng, args.rows, args.d, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(args.epsilon).build();
    let coordinator = Coordinator::new(&estimator, NoiseMode::Central);
    let plan = coordinator
        .plan(args.rows, args.clients)
        .map_err(|e| e.to_string())?;
    let shards: Vec<Dataset> = plan
        .shares
        .iter()
        .map(|s| slice_dataset(&data, s.start_row, s.rows))
        .collect::<Result<_, _>>()?;

    // Client path: accumulate + pre-merge + encode, timed across all
    // clients (they run sequentially here, so rows/s is per-core).
    let encode_started = Instant::now();
    let mut coord_ends = Vec::with_capacity(args.clients);
    for (i, (share, shard)) in plan.shares.iter().zip(&shards).enumerate() {
        let client = FederatedClient::new(&estimator, format!("client-{i}"));
        let upload = client
            .contribute_clean(&mut InMemorySource::new(shard), share)
            .map_err(|e| e.to_string())?;
        let (mut tx, rx) = InMemoryTransport::pair();
        client.upload(&mut tx, &upload).map_err(|e| e.to_string())?;
        coord_ends.push(rx);
    }
    let encode_wall = encode_started.elapsed().as_secs_f64();
    let encode_rows_per_sec = args.rows as f64 / encode_wall;

    // Coordinator path: collect, then time validate → debit → replay →
    // release alone. The gate: the released model must be bit-identical
    // to a single-machine fit over the concatenated rows at the same
    // seed.
    let session = SharedPrivacySession::new();
    let uploads = coordinator
        .collect(&mut coord_ends)
        .map_err(|e| e.to_string())?;
    let merge_started = Instant::now();
    let mut rng = StdRng::seed_from_u64(42);
    let central = coordinator
        .release(uploads, &session, "bench-central", &mut rng)
        .map_err(|e| e.to_string())?;
    let merge_wall = merge_started.elapsed().as_secs_f64();
    let merge_rows_per_sec = args.rows as f64 / merge_wall;

    let mut rng = StdRng::seed_from_u64(42);
    let reference = estimator.fit(&data, &mut rng).map_err(|e| e.to_string())?;
    if central != reference {
        return Err(
            "central federated release is not bit-identical to the single-machine fit".to_string(),
        );
    }
    let (eps_central, _) = session.spent_for("bench-central");

    // Fault-tolerance overhead: the same central round through the
    // quorum path — clean, with every first frame torn mid-payload, and
    // with the first client dropped into a recovery sub-round.
    let retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let policy = QuorumPolicy::new(1, Duration::from_secs(5)).with_retry(retry);
    let frames: Vec<String> = plan
        .shares
        .iter()
        .zip(&shards)
        .enumerate()
        .map(|(i, (share, shard))| {
            FederatedClient::new(&estimator, format!("client-{i}"))
                .contribute_clean(&mut InMemorySource::new(shard), share)
                .map(|u| u.encode())
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    let preloaded = |fault: &dyn Fn(&str) -> (TransportFault, usize)| -> Result<
        Vec<FaultInjectingTransport<InMemoryTransport>>,
        String,
    > {
        frames
            .iter()
            .map(|f| {
                let (mut tx, rx) = InMemoryTransport::pair();
                tx.send(f.as_bytes()).map_err(|e| e.to_string())?;
                let (kind, at) = fault(f);
                Ok(FaultInjectingTransport::new(rx, kind, at))
            })
            .collect()
    };

    // (a) Clean round, quorum machinery on: deadlines, fingerprinting,
    // re-plan check — the price of fault tolerance when nothing fails.
    let mut ends = preloaded(&|_| (TransportFault::Drop, usize::MAX))?;
    let quorum_session = SharedPrivacySession::new();
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(42);
    let (quorum_clean, _) = coordinator
        .run_round_with_quorum(
            &mut ends,
            &policy,
            &quorum_session,
            "bench-quorum",
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
    let quorum_clean_ms = started.elapsed().as_secs_f64() * 1e3;
    if quorum_clean != reference {
        return Err("clean quorum round is not bit-identical to fit()".to_string());
    }

    // (b) Every client's first frame torn mid-payload: K checksum
    // refusals, K retries served from the intact retransmit.
    let mut ends = preloaded(&|f| (TransportFault::Torn(f.len() / 2), 0))?;
    let torn_session = SharedPrivacySession::new();
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(42);
    let (torn_model, _) = coordinator
        .run_round_with_quorum(&mut ends, &policy, &torn_session, "bench-torn", &mut rng)
        .map_err(|e| e.to_string())?;
    let torn_retry_ms = started.elapsed().as_secs_f64() * 1e3;
    if torn_model != reference {
        return Err("torn-and-retried round is not bit-identical to fit()".to_string());
    }

    // (c) The first client never uploads: every survivor's grid position
    // moves, so the round pays one full recovery sub-round (survivors
    // re-accumulate and re-upload at their new chunk positions).
    let survivor_rows: usize = plan.shares.iter().skip(1).map(|s| s.rows).sum();
    let salvage_session = SharedPrivacySession::new();
    let started = Instant::now();
    let (salvage_model, salvage_report) = std::thread::scope(|scope| {
        let mut ends = Vec::with_capacity(args.clients);
        for (i, share) in plan.shares.iter().enumerate() {
            let (tx, rx) = InMemoryTransport::pair();
            ends.push(FaultInjectingTransport::new(
                rx,
                TransportFault::Drop,
                usize::MAX,
            ));
            if i == 0 {
                continue; // client 0 hangs up without uploading
            }
            let estimator = &estimator;
            let shard = &shards[i];
            let share = *share;
            let mut tx = tx;
            scope.spawn(move || {
                FederatedClient::new(estimator, format!("client-{i}"))
                    .participate(
                        &mut tx,
                        &share,
                        || InMemorySource::new(shard),
                        &RetryPolicy::default(),
                    )
                    .expect("survivor participation failed");
            });
        }
        let mut rng = StdRng::seed_from_u64(44);
        coordinator
            .run_round_with_quorum(
                &mut ends,
                &policy,
                &salvage_session,
                "bench-salvage",
                &mut rng,
            )
            .map_err(|e| e.to_string())
    })?;
    let salvage_ms = started.elapsed().as_secs_f64() * 1e3;
    let survivor_pool = slice_dataset(&data, plan.shares[1].start_row, survivor_rows)?;
    let mut rng = StdRng::seed_from_u64(44);
    let salvage_reference = estimator
        .fit(&survivor_pool, &mut rng)
        .map_err(|e| e.to_string())?;
    if salvage_model != salvage_reference {
        return Err("salvaged round is not bit-identical to a fresh survivor fit".to_string());
    }
    let recovery_subrounds = salvage_report.recovery_subrounds;

    // Utility comparison at equal per-client ε, averaged over noise
    // draws (a single release is one sample of the noise — the modes
    // only separate in expectation). Central draws are taken from `fit`,
    // which the gate above just proved identical to a central round.
    const UTILITY_REPEATS: u64 = 5;
    let mut mse_central = 0.0;
    let mut mse_local = 0.0;
    let mut eps_local = 0.0;
    let local_coordinator = Coordinator::new(&estimator, NoiseMode::Local);
    for repeat in 0..UTILITY_REPEATS {
        let mut rng = StdRng::seed_from_u64(50 + repeat);
        let central = estimator.fit(&data, &mut rng).map_err(|e| e.to_string())?;
        mse_central += metrics::mse(&central.predict_batch(data.x()), data.y());

        // Local-noise round: every client perturbs before upload; the
        // coordinator only post-processes.
        let mut coord_ends = Vec::with_capacity(args.clients);
        for (i, shard) in shards.iter().enumerate() {
            let client = FederatedClient::new(&estimator, format!("client-{i}"));
            let mut client_rng = StdRng::seed_from_u64(9_000 + repeat * 100 + i as u64);
            let upload = client
                .contribute_noisy(&mut InMemorySource::new(shard), &mut client_rng)
                .map_err(|e| e.to_string())?;
            let (mut tx, rx) = InMemoryTransport::pair();
            client.upload(&mut tx, &upload).map_err(|e| e.to_string())?;
            coord_ends.push(rx);
        }
        let mut rng = StdRng::seed_from_u64(43);
        let local = local_coordinator
            .run_round(
                &mut coord_ends,
                &session,
                &format!("bench-local-{repeat}"),
                &mut rng,
            )
            .map_err(|e| e.to_string())?;
        mse_local += metrics::mse(&local.predict_batch(data.x()), data.y());
        eps_local = session.spent_for(&format!("bench-local-{repeat}")).0;
    }
    let mse_central = mse_central / UTILITY_REPEATS as f64;
    let mse_local = mse_local / UTILITY_REPEATS as f64;

    eprintln!(
        "{} clients x {} rows (d = {}): client encode {encode_rows_per_sec:.0} rows/s, \
         coordinator merge+release {merge_rows_per_sec:.0} rows/s; bit-identical to fit(); \
         quorum round clean {quorum_clean_ms:.1} ms, torn+retry {torn_retry_ms:.1} ms, \
         dropout salvage {salvage_ms:.1} ms ({recovery_subrounds} recovery sub-round(s)); \
         MSE central {mse_central:.5} vs local {mse_local:.5} at eps {} per client \
         (tenant debit: central {eps_central}, local {eps_local})",
        args.clients, args.rows, args.d, args.epsilon,
    );
    Ok(format!(
        "{{\n  \"run\": \"pr10-federated-faults\",\n  \"note\": \"K-client federated rounds over \
         in-memory transports: clean contributions pre-merged as aligned dyadic runs, \
         fm-accum v2 encode/decode, coordinator replay on the shared chunk grid; the central \
         release is checked bit-identical to a single-machine fit at the same seed before \
         measuring; quorum timings run the same round through run_round_with_quorum — clean, \
         with every first frame torn mid-payload (checksum refusal + retry), and with client 0 \
         dropped (survivors re-contribute in one recovery sub-round, threads included in the \
         wall time) — each faulted release re-checked bit-identical to its fault-free \
         reference; MSE is averaged over {UTILITY_REPEATS} noise draws per mode — the \
         local-noise rounds at the same per-client eps show the utility price of an \
         untrusted coordinator\",\n  \
         \"clients\": {},\n  \"rows\": {},\n  \"d\": {},\n  \"epsilon\": {},\n  \
         \"parallel_feature\": {},\n  \"results\": {{\"client_encode_rows_per_sec\": \
         {encode_rows_per_sec:.0}, \"coordinator_merge_rows_per_sec\": {merge_rows_per_sec:.0}, \
         \"quorum_clean_round_ms\": {quorum_clean_ms:.2}, \"torn_retry_round_ms\": \
         {torn_retry_ms:.2}, \"dropout_salvage_round_ms\": {salvage_ms:.2}, \
         \"salvage_recovery_subrounds\": {recovery_subrounds}, \
         \"mse_central\": {mse_central:.6}, \"mse_local\": {mse_local:.6}, \
         \"eps_debited_central\": {eps_central}, \"eps_debited_local\": {eps_local}, \
         \"bit_identical\": true}}\n}}",
        args.clients,
        args.rows,
        args.d,
        args.epsilon,
        cfg!(feature = "parallel"),
    ))
}

/// Appends `record` to the JSON array at `path`, creating it when absent.
fn append_record(path: &str, record: &str) -> Result<(), String> {
    let indented = record
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let Some(head) = trimmed.strip_suffix(']') else {
                return Err(format!("{path} is not a JSON array"));
            };
            let head = head.trim_end().trim_end_matches(',');
            let sep = if head.ends_with('[') { "" } else { "," };
            format!("{head}{sep}\n{indented}\n]\n")
        }
        Err(_) => format!("[\n{indented}\n]\n"),
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fm-federated-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args).and_then(|record| append_record(&args.out, &record)) {
        Ok(()) => {
            eprintln!("appended run record to {}", args.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fm-federated-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
