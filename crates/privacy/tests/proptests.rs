//! Property-based tests for the DP primitives: distribution identities,
//! mechanism calibration arithmetic, and ledger invariants.

use fm_privacy::budget::PrivacyBudget;
use fm_privacy::exponential::ExponentialMechanism;
use fm_privacy::laplace::Laplace;
use fm_privacy::mechanism::{GaussianMechanism, LaplaceMechanism};
use proptest::prelude::*;
use rand::SeedableRng;

fn scale() -> impl Strategy<Value = f64> {
    0.01..100.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdf_is_monotone_and_bounded(b in scale(), x1 in -50.0..50.0f64, x2 in -50.0..50.0f64) {
        let lap = Laplace::new(b).unwrap();
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(lap.cdf(lo) <= lap.cdf(hi) + 1e-15);
        prop_assert!((0.0..=1.0).contains(&lap.cdf(x1)));
    }

    #[test]
    fn cdf_symmetry(b in scale(), x in 0.0..50.0f64) {
        // F(−x) = 1 − F(x) for the symmetric Laplace.
        let lap = Laplace::new(b).unwrap();
        prop_assert!((lap.cdf(-x) + lap.cdf(x) - 1.0).abs() <= 1e-12);
    }

    #[test]
    fn inverse_cdf_roundtrip(b in scale(), p in 0.001..0.999f64) {
        let lap = Laplace::new(b).unwrap();
        let x = lap.inverse_cdf(p).unwrap();
        prop_assert!((lap.cdf(x) - p).abs() <= 1e-10);
    }

    #[test]
    fn pdf_integrates_to_cdf_increments(b in 0.1..10.0f64, x in -5.0..5.0f64) {
        // F(x+h) − F(x) ≈ f(x)·h for small h (density consistency).
        let lap = Laplace::new(b).unwrap();
        let h = 1e-6;
        let lhs = (lap.cdf(x + h) - lap.cdf(x)) / h;
        prop_assert!((lhs - lap.pdf(x)).abs() <= 1e-3 * (1.0 + lap.pdf(x)));
    }

    #[test]
    fn samples_respect_distributional_bounds(b in 0.1..10.0f64, seed in 0u64..1000) {
        // Any single sample is finite; the probability of |η| > 20b is
        // e^{−20} ≈ 2e−9, so a small batch never exceeds it.
        let lap = Laplace::new(b).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = lap.sample(&mut rng);
            prop_assert!(x.is_finite());
            prop_assert!(x.abs() <= 20.0 * b);
        }
    }

    #[test]
    fn mechanism_scale_arithmetic(s in scale(), eps in 0.01..10.0f64) {
        let m = LaplaceMechanism::new(s, eps).unwrap();
        prop_assert!((m.noise_scale() - s / eps).abs() <= 1e-12 * (1.0 + s / eps));
        prop_assert!((m.noise_std_dev() - std::f64::consts::SQRT_2 * s / eps).abs()
            <= 1e-12 * (1.0 + s / eps));
    }

    #[test]
    fn privatize_output_length_matches(s in scale(), eps in 0.1..5.0f64, n in 0usize..64, seed in 0u64..100) {
        let m = LaplaceMechanism::new(s, eps).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values = vec![1.0; n];
        prop_assert_eq!(m.privatize(&values, &mut rng).len(), n);
    }

    #[test]
    fn budget_ledger_conserves_epsilon(spends in proptest::collection::vec(0.01..0.3f64, 1..8)) {
        let total: f64 = spends.iter().sum::<f64>() + 0.5;
        let mut b = PrivacyBudget::new(total).unwrap();
        for &s in &spends {
            b.spend(s).unwrap();
        }
        prop_assert!((b.spent() - spends.iter().sum::<f64>()).abs() <= 1e-9);
        prop_assert!((b.spent() + b.remaining() - total).abs() <= 1e-9);
        prop_assert_eq!(b.num_operations(), spends.len());
        prop_assert_eq!(b.ledger().len(), spends.len());
    }

    #[test]
    fn budget_never_goes_negative(spends in proptest::collection::vec(0.05..1.0f64, 1..20)) {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        for &s in &spends {
            let _ = b.spend(s); // some succeed, some are refused
        }
        prop_assert!(b.remaining() >= 0.0);
        prop_assert!(b.spent() <= 1.0 + 1e-9);
    }

    #[test]
    fn split_remaining_sums_back(total in 0.5..4.0f64, parts in 1usize..10) {
        let mut b = PrivacyBudget::new(total).unwrap();
        let per = b.split_remaining(parts).unwrap();
        prop_assert!((per * parts as f64 - total).abs() <= 1e-9);
        prop_assert!(b.remaining() <= 1e-9);
    }

    #[test]
    fn gaussian_samples_are_finite(seed in 0u64..500, mean in -10.0..10.0f64, std in 0.0..5.0f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let x = fm_privacy::gaussian::normal(&mut rng, mean, std);
            prop_assert!(x.is_finite());
            if std == 0.0 {
                prop_assert_eq!(x, mean);
            }
        }
    }

    #[test]
    fn gaussian_mechanism_sigma_formula(
        s in scale(),
        eps in 0.01..0.99f64,
        delta_exp in 1.0..12.0f64,
    ) {
        let delta = 10f64.powf(-delta_exp);
        let m = GaussianMechanism::new(s, eps, delta).unwrap();
        let expected = s * (2.0 * (1.25 / delta).ln()).sqrt() / eps;
        prop_assert!((m.noise_std_dev() - expected).abs() <= 1e-9 * expected);
        // σ is monotone: decreasing in ε and in δ.
        let stricter_eps = GaussianMechanism::new(s, eps / 2.0, delta).unwrap();
        prop_assert!(stricter_eps.noise_std_dev() > m.noise_std_dev());
        let stricter_delta = GaussianMechanism::new(s, eps, delta / 10.0).unwrap();
        prop_assert!(stricter_delta.noise_std_dev() > m.noise_std_dev());
    }

    #[test]
    fn exponential_probabilities_form_distribution(
        utilities in proptest::collection::vec(-100.0..100.0f64, 1..16),
        eps in 0.01..10.0f64,
        du in 0.01..10.0f64,
    ) {
        let m = ExponentialMechanism::new(eps, du).unwrap();
        let p = m.selection_probabilities(&utilities).unwrap();
        prop_assert_eq!(p.len(), utilities.len());
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() <= 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Monotone in utility: higher utility never gets lower probability.
        for i in 0..utilities.len() {
            for j in 0..utilities.len() {
                if utilities[i] > utilities[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn exponential_dp_ratio_under_bounded_utility_shifts(
        utilities in proptest::collection::vec(-10.0..10.0f64, 2..8),
        shifts in proptest::collection::vec(-1.0..=1.0f64, 8),
        eps in 0.1..4.0f64,
        du in 0.1..2.0f64,
    ) {
        // Any per-candidate utility shift bounded by Δu (a neighbour-
        // database change) moves every selection probability by at most
        // e^ε — the mechanism's defining guarantee.
        let m = ExponentialMechanism::new(eps, du).unwrap();
        let shifted: Vec<f64> = utilities
            .iter()
            .zip(&shifts)
            .map(|(u, s)| u + s * du)
            .collect();
        let p1 = m.selection_probabilities(&utilities).unwrap();
        let p2 = m.selection_probabilities(&shifted).unwrap();
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!(a / b <= eps.exp() + 1e-9, "ratio {} vs e^ε {}", a / b, eps.exp());
            prop_assert!(b / a <= eps.exp() + 1e-9);
        }
    }

    #[test]
    fn exponential_select_returns_valid_index(
        utilities in proptest::collection::vec(-50.0..50.0f64, 1..12),
        seed in 0u64..500,
    ) {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let i = m.select(&utilities, &mut rng).unwrap();
        prop_assert!(i < utilities.len());
    }
}

/// A slower, deterministic statistical test kept out of the proptest block:
/// the empirical ε of the scalar Laplace mechanism on adjacent inputs never
/// undershoots the configured guarantee by more than sampling error.
#[test]
fn empirical_privacy_loss_matches_epsilon_across_scales() {
    for &eps in &[0.5, 2.0] {
        let m = LaplaceMechanism::new(1.0, eps).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200_000;
        // Adjacent outputs 0 and 1 (sensitivity 1). Compare densities at a
        // grid of points via histogram ratios.
        let mut h0 = [0u32; 32];
        let mut h1 = [0u32; 32];
        let bin = |x: f64| -> Option<usize> {
            let idx = ((x + 4.0) / 0.25).floor();
            (0.0..32.0).contains(&idx).then_some(idx as usize)
        };
        for _ in 0..n {
            if let Some(i) = bin(m.privatize_scalar(0.0, &mut rng)) {
                h0[i] += 1;
            }
            if let Some(i) = bin(m.privatize_scalar(1.0, &mut rng)) {
                h1[i] += 1;
            }
        }
        let bound = eps.exp() * 1.3;
        for i in 0..32 {
            if h0[i] > 400 && h1[i] > 400 {
                let ratio = f64::from(h0[i]) / f64::from(h1[i]);
                assert!(
                    ratio < bound && 1.0 / ratio < bound,
                    "ε={eps}, bin {i}: ratio {ratio} vs bound {bound}"
                );
            }
        }
    }
}
