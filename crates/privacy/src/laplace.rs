//! The Laplace distribution `Lap(b)` with zero mean and scale `b`.
//!
//! Section 3 of the paper: the Laplace mechanism draws noise
//! `η ~ pdf(η) = (1/2b)·exp(−|η|/b)` with `b = S(Q)/ε`. The functional
//! mechanism (Algorithm 1, line 4) draws one such variate per polynomial
//! coefficient with `b = Δ/ε`.

use rand::Rng;

use crate::{PrivacyError, Result};

/// A zero-location Laplace distribution with scale `b > 0`.
///
/// Sampling uses the exact inverse-CDF transform: for `u ~ U(−½, ½)`,
/// `η = −b · sgn(u) · ln(1 − 2|u|)` is Laplace-distributed. This avoids the
/// precision loss of the naive two-exponential approach near zero.
///
/// ```
/// use fm_privacy::laplace::Laplace;
/// use rand::SeedableRng;
///
/// let lap = Laplace::new(2.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let eta = lap.sample(&mut rng);
/// assert!(eta.is_finite());
/// assert_eq!(lap.variance(), 8.0); // 2b²
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates `Lap(scale)`.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless `scale` is finite and
    /// strictly positive.
    pub fn new(scale: f64) -> Result<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "finite and > 0",
            });
        }
        Ok(Laplace { scale })
    }

    /// Creates the mechanism-calibrated distribution `Lap(sensitivity/ε)`.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] if either argument is non-positive
    /// or non-finite.
    pub fn from_sensitivity(sensitivity: f64, epsilon: f64) -> Result<Self> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "sensitivity",
                value: sensitivity,
                constraint: "finite and > 0",
            });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "finite and > 0",
            });
        }
        Laplace::new(sensitivity / epsilon)
    }

    /// The scale parameter `b`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Variance `2b²`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Standard deviation `b·√2`.
    ///
    /// Section 6.1 of the paper sets the regularization constant to four
    /// times this quantity.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.scale * std::f64::consts::SQRT_2
    }

    /// Probability density at `x`.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    /// Inverse CDF (quantile function) at `p ∈ (0, 1)`.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] for `p` outside the open interval.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "p",
                value: p,
                constraint: "in the open interval (0, 1)",
            });
        }
        Ok(if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 - 2.0 * p).ln()
        })
    }

    /// Draws one variate.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // u ∈ (−½, ½); gen::<f64>() ∈ [0, 1) so 1 − 2|u| ∈ (0, 1] — the log
        // never sees zero.
        let u: f64 = rng.gen::<f64>() - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Fills `out` with i.i.d. variates.
    pub fn sample_into(&self, rng: &mut impl Rng, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }

    /// Draws `n` i.i.d. variates into a fresh vector.
    pub fn sample_vec(&self, rng: &mut impl Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xFACADE)
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
    }

    #[test]
    fn from_sensitivity_divides() {
        let lap = Laplace::from_sensitivity(8.0, 2.0).unwrap();
        assert_eq!(lap.scale(), 4.0);
        assert!(Laplace::from_sensitivity(0.0, 1.0).is_err());
        assert!(Laplace::from_sensitivity(1.0, 0.0).is_err());
        assert!(Laplace::from_sensitivity(1.0, -2.0).is_err());
    }

    #[test]
    fn moments() {
        let lap = Laplace::new(3.0).unwrap();
        assert_eq!(lap.variance(), 18.0);
        assert!((lap.std_dev() - 3.0 * std::f64::consts::SQRT_2).abs() < 1e-15);
    }

    #[test]
    fn pdf_properties() {
        let lap = Laplace::new(1.5).unwrap();
        // Symmetric, peak at 0 with height 1/(2b).
        assert!((lap.pdf(0.7) - lap.pdf(-0.7)).abs() < 1e-15);
        assert!((lap.pdf(0.0) - 1.0 / 3.0).abs() < 1e-15);
        assert!(lap.pdf(100.0) < 1e-20);
    }

    #[test]
    fn cdf_properties() {
        let lap = Laplace::new(2.0).unwrap();
        assert!((lap.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!(lap.cdf(-1e9) < 1e-15);
        assert!((lap.cdf(1e9) - 1.0).abs() < 1e-15);
        // Monotone.
        assert!(lap.cdf(-1.0) < lap.cdf(0.0));
        assert!(lap.cdf(0.0) < lap.cdf(1.0));
    }

    #[test]
    fn cdf_inverse_roundtrip() {
        let lap = Laplace::new(0.7).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = lap.inverse_cdf(p).unwrap();
            assert!((lap.cdf(x) - p).abs() < 1e-12, "roundtrip failed at p={p}");
        }
        assert!(lap.inverse_cdf(0.0).is_err());
        assert!(lap.inverse_cdf(1.0).is_err());
        assert!(lap.inverse_cdf(-0.1).is_err());
        assert!(lap.inverse_cdf(f64::NAN).is_err());
    }

    #[test]
    fn median_of_inverse_cdf_is_zero() {
        let lap = Laplace::new(5.0).unwrap();
        assert_eq!(lap.inverse_cdf(0.5).unwrap(), 0.0);
    }

    #[test]
    fn sample_mean_and_variance_converge() {
        let lap = Laplace::new(2.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let samples = lap.sample_vec(&mut r, n);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Mean 0 ± a few σ/√n; σ = 2√2 ≈ 2.83 → tolerance 0.05 is > 7σ_mean.
        assert!(mean.abs() < 0.05, "sample mean {mean} too far from 0");
        assert!(
            (var - 8.0).abs() < 0.4,
            "sample variance {var} too far from 8"
        );
    }

    #[test]
    fn sample_quantiles_match_cdf() {
        let lap = Laplace::new(1.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut samples = lap.sample_vec(&mut r, n);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &[0.1, 0.5, 0.9] {
            let empirical = samples[(p * n as f64) as usize];
            let theoretical = lap.inverse_cdf(p).unwrap();
            assert!(
                (empirical - theoretical).abs() < 0.05,
                "quantile {p}: empirical {empirical} vs theoretical {theoretical}"
            );
        }
    }

    #[test]
    fn sample_into_fills_everything() {
        let lap = Laplace::new(1.0).unwrap();
        let mut r = rng();
        let mut buf = vec![f64::NAN; 64];
        lap.sample_into(&mut r, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let lap = Laplace::new(1.0).unwrap();
        let a = lap.sample_vec(&mut rng(), 16);
        let b = lap.sample_vec(&mut rng(), 16);
        assert_eq!(a, b);
    }
}
