//! Crash-safe, write-ahead-logged privacy accounting.
//!
//! The ε-DP guarantee of the functional mechanism is only as strong as the
//! accounting around it: a process that crashes *after* drawing Laplace noise
//! but *before* recording the debit could re-spend the same ε on restart,
//! silently voiding the privacy claim. [`WalLedger`] closes that hole with a
//! two-phase, fail-closed protocol:
//!
//! 1. **Reserve** — before any data is scanned or noise drawn, a
//!    `reserve <id> <ε> <δ> <tenant> <label>` record is appended and
//!    fsync'd. Only once the fsync has returned may the caller touch data.
//! 2. **Commit / Abort** — after the mechanism releases its output the
//!    reservation is committed; a reservation whose fit never touched the
//!    data may instead be aborted, returning the ε to the pool.
//!
//! Recovery replays the log and treats every *dangling* reservation (a
//! `reserve` with no matching `commit`/`abort`) as **spent**: the crash may
//! have happened a nanosecond after the noise draw, so doubt resolves
//! against the adversary, never against the data owner. Recovered dangling
//! reservations are *sealed* — they still count as spent and may be resumed
//! or committed, but can never be aborted.
//!
//! # On-disk format
//!
//! The log is line-oriented ASCII. Every line — including the header — is
//! *framed*: `"<body>*<16-hex FNV-1a-64 checksum of body>"`. Floats are
//! printed with Rust's shortest-round-trip formatting, so replaying a log
//! reproduces every ε bit-for-bit (the same regime `persist::SavedModel`
//! uses). Record bodies:
//!
//! ```text
//! fm-wal v1                      (header)
//! reserve <id> <eps> <delta> <tenant> <label>
//! commit <id>
//! abort <id>
//! spent <eps> <delta> <fits> <tenant>   (compaction summary)
//! ```
//!
//! A checksum-invalid or truncated **final** line is a *torn tail*: the
//! `append + fsync` that was writing it never returned, so its caller never
//! proceeded to scan data — dropping it is sound, and recovery truncates
//! the file back to the last whole record. A checksum failure anywhere
//! *before* the final line cannot be explained by a crash mid-append and is
//! refused as corruption.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::budget::EpsDeltaEntry;
use crate::{PrivacyError, Result};

/// Magic first-line body identifying a functional-mechanism WAL, with the
/// format version. Bump the version on any incompatible record change.
pub const WAL_MAGIC: &str = "fm-wal v1";

/// 64-bit FNV-1a checksum of `bytes`.
///
/// Dependency-free and stable across platforms; used to frame every WAL
/// record and reused by `fm-core`'s checkpoint files so both durability
/// formats share one integrity primitive.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Frames a record body as `"<body>*<16-hex checksum>"`.
#[must_use]
pub fn frame(body: &str) -> String {
    format!("{body}*{:016x}", checksum64(body.as_bytes()))
}

/// Verifies and strips the checksum frame, returning the body.
///
/// Returns `None` if the line has no frame or the checksum does not match.
#[must_use]
pub fn unframe(line: &str) -> Option<&str> {
    let (body, sum) = line.rsplit_once('*')?;
    if sum.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (checksum64(body.as_bytes()) == sum).then_some(body)
}

/// A single in-flight (or recovered) budget reservation.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservation {
    /// Monotonically increasing reservation id, unique within one log.
    pub id: u64,
    /// The tenant being debited.
    pub tenant: String,
    /// A caller-chosen label for the fit (mirrors parallel-scope labels).
    pub label: String,
    /// Reserved ε.
    pub epsilon: f64,
    /// Reserved δ.
    pub delta: f64,
    /// `true` when this reservation was found dangling by recovery. Sealed
    /// reservations are permanently spent (fail-closed) and refuse `abort`.
    pub sealed: bool,
}

/// What [`WalLedger::open`] found while replaying an existing log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` if the log did not exist (or was an empty torn creation) and
    /// was initialised fresh.
    pub fresh: bool,
    /// Number of whole records replayed.
    pub records: usize,
    /// Dangling reservations found and sealed as spent (fail-closed).
    pub sealed_dangling: usize,
    /// `true` if a torn (checksum-invalid or unterminated) final record was
    /// dropped and the file truncated back to the last whole record.
    pub torn_tail_dropped: bool,
}

/// Live size/garbage statistics of a [`WalLedger`] — what a compaction
/// policy consults to decide *when* to fold settled history into `spent`
/// summaries (see [`CompactionPolicy`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Settled (`commit`/`abort`) records in the live log — pure garbage
    /// to a replay, since each one only cancels an earlier `reserve`.
    /// Reset to zero by [`WalLedger::compact`].
    pub settled_records: usize,
    /// Exact byte length of the log file (tracked, not stat'd: the ledger
    /// owns every write).
    pub file_bytes: u64,
    /// Reservations currently open (in-flight or recovered-dangling).
    pub open_reservations: usize,
    /// Open reservations that are sealed — recovered dangling after a
    /// crash, awaiting resume. A conservative compaction policy leaves
    /// the log untouched while any exist.
    pub sealed_reservations: usize,
    /// Wall-clock time since the ledger was opened or last compacted —
    /// what a [`CompactionPolicy::age`] threshold consults. A quiet
    /// ledger accumulates age without accumulating records, so an age
    /// trigger bounds how stale a long-idle log's layout can get.
    pub age: Duration,
}

/// When to fold a WAL's settled history into per-tenant `spent` summaries:
/// compact once the settled-record count **or** the file size crosses its
/// threshold. Thresholds are coarse by design — compaction is correct at
/// any time (reservation ids survive it); the policy only bounds how much
/// replayable garbage a long-lived serving process lets accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once this many settled (`commit`/`abort`) records have
    /// accumulated since open or the last compaction.
    pub max_settled_records: usize,
    /// Compact once the log file exceeds this many bytes.
    pub max_file_bytes: u64,
    /// Compact once this much wall-clock time has passed since open or
    /// the last compaction, regardless of how little garbage accrued.
    /// `None` (the default) disables the time trigger.
    pub max_age: Option<Duration>,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_settled_records: 1024,
            max_file_bytes: 256 * 1024,
            max_age: None,
        }
    }
}

impl CompactionPolicy {
    /// Overrides the settled-record threshold.
    #[must_use]
    pub fn settled_records(mut self, max: usize) -> Self {
        self.max_settled_records = max.max(1);
        self
    }

    /// Overrides the file-size threshold.
    #[must_use]
    pub fn file_bytes(mut self, max: u64) -> Self {
        self.max_file_bytes = max.max(1);
        self
    }

    /// Enables the time trigger: compact once [`WalStats::age`] reaches
    /// `max`. Size triggers bound garbage but never fire on a quiet
    /// ledger; an age bound guarantees a long-lived serving process
    /// folds history on a schedule even when traffic is sparse.
    #[must_use]
    pub fn age(mut self, max: Duration) -> Self {
        self.max_age = Some(max);
        self
    }

    /// Whether `stats` has crossed any enabled threshold.
    #[must_use]
    pub fn due(&self, stats: &WalStats) -> bool {
        stats.settled_records >= self.max_settled_records
            || stats.file_bytes >= self.max_file_bytes
            || self.max_age.is_some_and(|max| stats.age >= max)
    }
}

/// A durable, two-phase ε/δ ledger backed by a write-ahead log.
///
/// See the [module docs](self) for the protocol and on-disk format.
#[derive(Debug)]
pub struct WalLedger {
    file: File,
    path: PathBuf,
    next_id: u64,
    open: BTreeMap<u64, Reservation>,
    /// Committed spend per tenant: (Σε, Σδ, fits).
    committed: BTreeMap<String, (f64, f64, usize)>,
    /// Settled (`commit`/`abort`) records in the live log; see [`WalStats`].
    settled_records: usize,
    /// Exact byte length of the log file; see [`WalStats`].
    file_bytes: u64,
    /// When the log was opened or last compacted; see [`WalStats::age`].
    epoch: Instant,
}

fn io_err(op: &'static str, err: &std::io::Error) -> PrivacyError {
    PrivacyError::Durability {
        op,
        detail: err.to_string(),
    }
}

fn corrupt(op: &'static str, detail: impl Into<String>) -> PrivacyError {
    PrivacyError::Durability {
        op,
        detail: detail.into(),
    }
}

/// Validates a tenant or label token: non-empty, printable, no whitespace
/// (tokens are whitespace-delimited in record bodies), at most 128 bytes.
fn validate_token(op: &'static str, what: &str, token: &str) -> Result<()> {
    let ok = !token.is_empty()
        && token.len() <= 128
        && token.chars().all(|c| !c.is_whitespace() && !c.is_control());
    if ok {
        Ok(())
    } else {
        Err(corrupt(
            op,
            format!("invalid {what} {token:?}: must be 1..=128 non-whitespace printable bytes"),
        ))
    }
}

fn parse_f64(op: &'static str, field: &str, tok: &str) -> Result<f64> {
    tok.parse::<f64>()
        .map_err(|_| corrupt(op, format!("unparseable {field} {tok:?}")))
}

fn parse_u64(op: &'static str, field: &str, tok: &str) -> Result<u64> {
    tok.parse::<u64>()
        .map_err(|_| corrupt(op, format!("unparseable {field} {tok:?}")))
}

impl WalLedger {
    /// Opens (creating if absent) the log at `path`, replaying any existing
    /// records with fail-closed recovery semantics.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on a mid-log checksum failure, or on records
    /// that reference unknown reservation ids (both indicate corruption a
    /// crash cannot explain).
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport)> {
        const OP: &str = "recover";
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(OP, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err(OP, &e))?;

        let mut ledger = WalLedger {
            file,
            path,
            next_id: 1,
            open: BTreeMap::new(),
            committed: BTreeMap::new(),
            settled_records: 0,
            file_bytes: 0,
            epoch: Instant::now(),
        };
        let mut report = RecoveryReport::default();

        // A file with no complete (newline-terminated) header is either
        // brand new or a creation that crashed mid-header-write; both are
        // safe to (re)initialise, since no reserve can precede the header.
        if !bytes.contains(&b'\n') {
            ledger.file.set_len(0).map_err(|e| io_err(OP, &e))?;
            ledger
                .file
                .seek(SeekFrom::Start(0))
                .map_err(|e| io_err(OP, &e))?;
            ledger.append_line(OP, WAL_MAGIC)?;
            report.fresh = true;
            return Ok((ledger, report));
        }

        // Split into lines, tracking the byte offset of each line start so
        // a torn tail can be physically truncated away.
        let mut valid_len = 0usize;
        let mut lines: Vec<&[u8]> = Vec::new();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push(&bytes[start..i]);
                start = i + 1;
            }
        }
        let tail = &bytes[start..]; // bytes after the last newline, if any

        let decode = |raw: &[u8]| -> Option<String> {
            let line = std::str::from_utf8(raw).ok()?;
            unframe(line).map(str::to_owned)
        };

        let header = decode(lines[0])
            .ok_or_else(|| corrupt(OP, "log header is not a framed fm-wal line"))?;
        if header != WAL_MAGIC {
            return Err(corrupt(
                OP,
                format!("unsupported log format {header:?} (expected {WAL_MAGIC:?})"),
            ));
        }
        valid_len += lines[0].len() + 1;

        for (idx, raw) in lines.iter().enumerate().skip(1) {
            let is_last_line = idx == lines.len() - 1 && tail.is_empty();
            match decode(raw) {
                Some(body) => {
                    ledger.replay(&body)?;
                    report.records += 1;
                    valid_len += raw.len() + 1;
                }
                None if is_last_line => {
                    // Torn tail: the append that wrote it never returned.
                    report.torn_tail_dropped = true;
                    break;
                }
                None => {
                    return Err(corrupt(
                        OP,
                        format!("checksum failure at record {idx} (not the final line)"),
                    ))
                }
            }
        }
        if !tail.is_empty() {
            // Unterminated final record. If it happens to checksum (only
            // the trailing newline was lost) accept it, else drop it.
            match decode(tail) {
                Some(body) => {
                    ledger.replay(&body)?;
                    report.records += 1;
                    // Re-terminate it below by truncating *without* it and
                    // re-appending, keeping the invariant that every durable
                    // record is newline-terminated.
                    ledger
                        .file
                        .set_len(valid_len as u64)
                        .map_err(|e| io_err(OP, &e))?;
                    ledger
                        .file
                        .seek(SeekFrom::End(0))
                        .map_err(|e| io_err(OP, &e))?;
                    let line = std::str::from_utf8(tail).expect("decoded above");
                    ledger
                        .file
                        .write_all(line.as_bytes())
                        .map_err(|e| io_err(OP, &e))?;
                    ledger.file.write_all(b"\n").map_err(|e| io_err(OP, &e))?;
                    ledger.file.sync_data().map_err(|e| io_err(OP, &e))?;
                    valid_len += tail.len() + 1;
                }
                None => report.torn_tail_dropped = true,
            }
        }

        if valid_len < bytes.len() {
            ledger
                .file
                .set_len(valid_len as u64)
                .map_err(|e| io_err(OP, &e))?;
        }
        ledger
            .file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(OP, &e))?;
        // `valid_len` is the exact surviving byte length after any torn-tail
        // truncation and re-termination above.
        ledger.file_bytes = valid_len as u64;

        // Fail closed: every dangling reservation is sealed as spent.
        for res in ledger.open.values_mut() {
            res.sealed = true;
            report.sealed_dangling += 1;
        }
        Ok((ledger, report))
    }

    /// Replays one record body into in-memory state.
    fn replay(&mut self, body: &str) -> Result<()> {
        const OP: &str = "recover";
        let mut toks = body.split(' ');
        match toks.next() {
            Some("reserve") => {
                let (id, eps, delta, tenant, label) = match (
                    toks.next(),
                    toks.next(),
                    toks.next(),
                    toks.next(),
                    toks.next(),
                    toks.next(),
                ) {
                    (Some(id), Some(e), Some(d), Some(t), Some(l), None) => (id, e, d, t, l),
                    _ => return Err(corrupt(OP, format!("malformed reserve record {body:?}"))),
                };
                let id = parse_u64(OP, "reservation id", id)?;
                let res = Reservation {
                    id,
                    tenant: tenant.to_owned(),
                    label: label.to_owned(),
                    epsilon: parse_f64(OP, "epsilon", eps)?,
                    delta: parse_f64(OP, "delta", delta)?,
                    sealed: false,
                };
                if self.open.insert(id, res).is_some() {
                    return Err(corrupt(OP, format!("duplicate reservation id {id}")));
                }
                self.next_id = self.next_id.max(id + 1);
            }
            Some("commit") => {
                let id = match (toks.next(), toks.next()) {
                    (Some(id), None) => parse_u64(OP, "reservation id", id)?,
                    _ => return Err(corrupt(OP, format!("malformed commit record {body:?}"))),
                };
                let res = self
                    .open
                    .remove(&id)
                    .ok_or_else(|| corrupt(OP, format!("commit of unknown reservation {id}")))?;
                let slot = self.committed.entry(res.tenant).or_insert((0.0, 0.0, 0));
                slot.0 += res.epsilon;
                slot.1 += res.delta;
                slot.2 += 1;
                self.settled_records += 1;
            }
            Some("abort") => {
                let id = match (toks.next(), toks.next()) {
                    (Some(id), None) => parse_u64(OP, "reservation id", id)?,
                    _ => return Err(corrupt(OP, format!("malformed abort record {body:?}"))),
                };
                if self.open.remove(&id).is_none() {
                    return Err(corrupt(OP, format!("abort of unknown reservation {id}")));
                }
                self.settled_records += 1;
            }
            Some("spent") => {
                let (eps, delta, fits, tenant) = match (
                    toks.next(),
                    toks.next(),
                    toks.next(),
                    toks.next(),
                    toks.next(),
                ) {
                    (Some(e), Some(d), Some(n), Some(t), None) => (e, d, n, t),
                    _ => return Err(corrupt(OP, format!("malformed spent record {body:?}"))),
                };
                let slot = self
                    .committed
                    .entry(tenant.to_owned())
                    .or_insert((0.0, 0.0, 0));
                slot.0 += parse_f64(OP, "epsilon", eps)?;
                slot.1 += parse_f64(OP, "delta", delta)?;
                slot.2 += usize::try_from(parse_u64(OP, "fit count", fits)?)
                    .map_err(|_| corrupt(OP, "fit count overflows usize"))?;
            }
            other => {
                return Err(corrupt(
                    OP,
                    format!("unknown record kind {:?}", other.unwrap_or("")),
                ))
            }
        }
        Ok(())
    }

    /// Appends a framed, newline-terminated record and fsyncs it.
    fn append_line(&mut self, op: &'static str, body: &str) -> Result<()> {
        let mut line = frame(body);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(op, &e))?;
        self.file_bytes += line.len() as u64;
        self.file.sync_data().map_err(|e| io_err(op, &e))
    }

    /// Durably reserves `(epsilon, delta)` for `tenant` under `label`.
    ///
    /// The record is fsync'd before this returns: a caller that has a
    /// reservation id in hand may scan data and draw noise knowing a crash
    /// can only *over*-count the spend, never under-count it.
    ///
    /// # Errors
    ///
    /// Fails on invalid (ε, δ), invalid tenant/label tokens, or I/O errors.
    pub fn reserve(&mut self, tenant: &str, label: &str, epsilon: f64, delta: f64) -> Result<u64> {
        const OP: &str = "reserve";
        EpsDeltaEntry::validated(epsilon, delta)?;
        validate_token(OP, "tenant", tenant)?;
        validate_token(OP, "label", label)?;
        let id = self.next_id;
        self.append_line(
            OP,
            &format!("reserve {id} {epsilon} {delta} {tenant} {label}"),
        )?;
        self.next_id += 1;
        self.open.insert(
            id,
            Reservation {
                id,
                tenant: tenant.to_owned(),
                label: label.to_owned(),
                epsilon,
                delta,
                sealed: false,
            },
        );
        Ok(id)
    }

    /// Durably commits reservation `id`, settling it as spent.
    ///
    /// # Errors
    ///
    /// Fails if `id` is not an open reservation or on I/O errors.
    pub fn commit(&mut self, id: u64) -> Result<()> {
        const OP: &str = "commit";
        if !self.open.contains_key(&id) {
            return Err(corrupt(OP, format!("unknown reservation {id}")));
        }
        self.append_line(OP, &format!("commit {id}"))?;
        let res = self.open.remove(&id).expect("checked above");
        let slot = self.committed.entry(res.tenant).or_insert((0.0, 0.0, 0));
        slot.0 += res.epsilon;
        slot.1 += res.delta;
        slot.2 += 1;
        self.settled_records += 1;
        Ok(())
    }

    /// Durably aborts reservation `id`, returning its ε/δ to the pool.
    ///
    /// Only legitimate when the reserved fit **never touched the data** —
    /// e.g. it was refused by pre-scan validation. Sealed (crash-recovered)
    /// reservations refuse to abort: the crash may have happened after the
    /// noise draw, so their spend is permanent.
    ///
    /// # Errors
    ///
    /// Fails if `id` is unknown or sealed, or on I/O errors.
    pub fn abort(&mut self, id: u64) -> Result<()> {
        const OP: &str = "abort";
        match self.open.get(&id) {
            None => return Err(corrupt(OP, format!("unknown reservation {id}"))),
            Some(res) if res.sealed => {
                return Err(corrupt(
                    OP,
                    format!(
                        "reservation {id} was recovered from a crash and is fail-closed spent; \
                         it can be committed or resumed but never aborted"
                    ),
                ))
            }
            Some(_) => {}
        }
        self.append_line(OP, &format!("abort {id}"))?;
        self.open.remove(&id);
        self.settled_records += 1;
        Ok(())
    }

    /// Looks up an open (possibly sealed) reservation by id.
    #[must_use]
    pub fn reservation(&self, id: u64) -> Option<&Reservation> {
        self.open.get(&id)
    }

    /// Iterates over all open reservations in id order.
    pub fn open_reservations(&self) -> impl Iterator<Item = &Reservation> {
        self.open.values()
    }

    /// Total spent (Σε, Σδ) — committed **plus** open reservations, since an
    /// open reservation's fit may already have drawn noise (fail-closed).
    #[must_use]
    pub fn spent(&self) -> (f64, f64) {
        let (mut eps, mut delta) = (0.0, 0.0);
        for &(e, d, _) in self.committed.values() {
            eps += e;
            delta += d;
        }
        for res in self.open.values() {
            eps += res.epsilon;
            delta += res.delta;
        }
        (eps, delta)
    }

    /// Spent (Σε, Σδ) attributed to one tenant, committed plus open.
    #[must_use]
    pub fn spent_for(&self, tenant: &str) -> (f64, f64) {
        let (mut eps, mut delta) = self
            .committed
            .get(tenant)
            .map_or((0.0, 0.0), |&(e, d, _)| (e, d));
        for res in self.open.values().filter(|r| r.tenant == tenant) {
            eps += res.epsilon;
            delta += res.delta;
        }
        (eps, delta)
    }

    /// Number of settled fits plus open reservations.
    #[must_use]
    pub fn fits(&self) -> usize {
        self.committed.values().map(|&(_, _, n)| n).sum::<usize>() + self.open.len()
    }

    /// Per-tenant committed totals `(tenant, Σε, Σδ, fits)` in tenant order
    /// (open reservations are *not* folded in; see [`Self::spent_for`]).
    pub fn committed_by_tenant(&self) -> impl Iterator<Item = (&str, f64, f64, usize)> {
        self.committed
            .iter()
            .map(|(t, &(e, d, n))| (t.as_str(), e, d, n))
    }

    /// Rewrites the log as one `spent` summary per tenant plus the open
    /// reservations, atomically (write-temp + fsync + rename + dir fsync).
    ///
    /// Reservation ids survive compaction, so checkpoints referencing them
    /// stay resumable. Sealed status is re-derived on the next recovery
    /// (a compacted open reservation replays as dangling again).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; the original log is untouched on failure.
    pub fn compact(&mut self) -> Result<()> {
        const OP: &str = "compact";
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut out = String::new();
        out.push_str(&frame(WAL_MAGIC));
        out.push('\n');
        for (tenant, &(eps, delta, fits)) in &self.committed {
            out.push_str(&frame(&format!("spent {eps} {delta} {fits} {tenant}")));
            out.push('\n');
        }
        for res in self.open.values() {
            out.push_str(&frame(&format!(
                "reserve {} {} {} {} {}",
                res.id, res.epsilon, res.delta, res.tenant, res.label
            )));
            out.push('\n');
        }
        {
            let mut tmp = File::create(&tmp_path).map_err(|e| io_err(OP, &e))?;
            tmp.write_all(out.as_bytes()).map_err(|e| io_err(OP, &e))?;
            tmp.sync_data().map_err(|e| io_err(OP, &e))?;
        }
        std::fs::rename(&tmp_path, &self.path).map_err(|e| io_err(OP, &e))?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_data();
            }
        }
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(OP, &e))?;
        self.settled_records = 0;
        self.file_bytes = out.len() as u64;
        self.epoch = Instant::now();
        Ok(())
    }

    /// Current size/garbage statistics; see [`WalStats`].
    #[must_use]
    pub fn stats(&self) -> WalStats {
        WalStats {
            settled_records: self.settled_records,
            file_bytes: self.file_bytes,
            open_reservations: self.open.len(),
            sealed_reservations: self.open.values().filter(|r| r.sealed).count(),
            age: self.epoch.elapsed(),
        }
    }

    /// The path of the backing log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_wal(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fm-wal-test-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn frame_round_trips_and_rejects_flips() {
        let line = frame("reserve 1 0.5 0 acme fit");
        assert_eq!(unframe(&line), Some("reserve 1 0.5 0 acme fit"));
        let mut broken = line.clone().into_bytes();
        broken[0] ^= 0x20;
        let broken = String::from_utf8(broken).unwrap();
        assert_eq!(unframe(&broken), None);
        assert_eq!(unframe("no frame here"), None);
    }

    #[test]
    fn reserve_commit_abort_round_trip() {
        let path = tmp_wal("rcr");
        {
            let (mut wal, report) = WalLedger::open(&path).unwrap();
            assert!(report.fresh);
            let a = wal.reserve("acme", "fit-1", 0.5, 0.0).unwrap();
            let b = wal.reserve("globex", "fit-2", 0.25, 1e-6).unwrap();
            wal.commit(a).unwrap();
            wal.abort(b).unwrap();
            assert_eq!(wal.spent(), (0.5, 0.0));
            assert_eq!(wal.fits(), 1);
        }
        let (wal, report) = WalLedger::open(&path).unwrap();
        assert!(!report.fresh);
        assert_eq!(report.sealed_dangling, 0);
        assert_eq!(wal.spent(), (0.5, 0.0));
        assert_eq!(wal.spent_for("acme"), (0.5, 0.0));
        assert_eq!(wal.spent_for("globex"), (0.0, 0.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dangling_reservation_is_sealed_spent_and_unabortable() {
        let path = tmp_wal("dangle");
        let id = {
            let (mut wal, _) = WalLedger::open(&path).unwrap();
            wal.reserve("acme", "doomed", 0.75, 0.0).unwrap()
        }; // dropped with the reservation dangling, as a crash would
        let (mut wal, report) = WalLedger::open(&path).unwrap();
        assert_eq!(report.sealed_dangling, 1);
        assert_eq!(wal.spent(), (0.75, 0.0));
        let res = wal.reservation(id).unwrap();
        assert!(res.sealed);
        assert!(matches!(
            wal.abort(id),
            Err(PrivacyError::Durability { op: "abort", .. })
        ));
        // Committing the sealed reservation is fine (it was spent anyway).
        wal.commit(id).unwrap();
        assert_eq!(wal.spent(), (0.75, 0.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_but_mid_log_corruption_is_refused() {
        let path = tmp_wal("torn");
        {
            let (mut wal, _) = WalLedger::open(&path).unwrap();
            let id = wal.reserve("acme", "ok", 0.5, 0.0).unwrap();
            wal.commit(id).unwrap();
        }
        let clean = std::fs::read(&path).unwrap();

        // Truncating mid-final-record drops just that record.
        std::fs::write(&path, &clean[..clean.len() - 3]).unwrap();
        let (wal, report) = WalLedger::open(&path).unwrap();
        assert!(report.torn_tail_dropped);
        // The commit was torn away, so the reserve dangles: still spent.
        assert_eq!(wal.spent(), (0.5, 0.0));
        assert_eq!(report.sealed_dangling, 1);
        drop(wal);

        // Flipping a byte in the middle of the log is corruption.
        let mut evil = clean.clone();
        let mid = evil.len() / 2;
        evil[mid] ^= 0x01;
        std::fs::write(&path, &evil).unwrap();
        assert!(WalLedger::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_preserves_totals_and_open_reservations() {
        let path = tmp_wal("compact");
        let open_id;
        {
            let (mut wal, _) = WalLedger::open(&path).unwrap();
            for i in 0..5 {
                let id = wal.reserve("acme", &format!("fit-{i}"), 0.1, 0.0).unwrap();
                wal.commit(id).unwrap();
            }
            open_id = wal.reserve("globex", "in-flight", 0.25, 1e-7).unwrap();
            let before = wal.spent();
            wal.compact().unwrap();
            assert_eq!(wal.spent(), before);
            // The compacted log keeps accepting appends.
            let id = wal.reserve("acme", "post-compact", 0.05, 0.0).unwrap();
            wal.commit(id).unwrap();
        }
        let (wal, report) = WalLedger::open(&path).unwrap();
        assert_eq!(wal.spent_for("acme"), (0.1 * 5.0 + 0.05, 0.0));
        assert_eq!(wal.spent_for("globex"), (0.25, 1e-7));
        assert!(wal.reservation(open_id).is_some());
        assert_eq!(report.sealed_dangling, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_track_bytes_and_settled_records_across_compaction_and_reopen() {
        let path = tmp_wal("stats");
        {
            let (mut wal, _) = WalLedger::open(&path).unwrap();
            let fresh = wal.stats();
            assert_eq!(fresh.settled_records, 0);
            assert_eq!(fresh.open_reservations, 0);
            assert_eq!(
                fresh.file_bytes,
                std::fs::metadata(&path).unwrap().len(),
                "fresh log: tracked bytes must equal the file length"
            );

            let a = wal.reserve("acme", "a", 0.1, 0.0).unwrap();
            wal.commit(a).unwrap();
            let b = wal.reserve("acme", "b", 0.1, 0.0).unwrap();
            wal.abort(b).unwrap();
            let _dangling = wal.reserve("globex", "open", 0.2, 0.0).unwrap();
            let s = wal.stats();
            assert_eq!(s.settled_records, 2);
            assert_eq!(s.open_reservations, 1);
            assert_eq!(s.sealed_reservations, 0);
            assert_eq!(s.file_bytes, std::fs::metadata(&path).unwrap().len());

            let policy = CompactionPolicy::default().settled_records(2);
            assert!(policy.due(&s));
            wal.compact().unwrap();
            let after = wal.stats();
            assert_eq!(after.settled_records, 0);
            assert_eq!(after.open_reservations, 1);
            assert_eq!(after.file_bytes, std::fs::metadata(&path).unwrap().len());
            assert!(after.file_bytes < s.file_bytes);
            assert!(!policy.due(&after));
        }
        // Reopen: replayed stats agree with the file, dangling is sealed.
        let (wal, _) = WalLedger::open(&path).unwrap();
        let replayed = wal.stats();
        assert_eq!(replayed.settled_records, 0);
        assert_eq!(replayed.open_reservations, 1);
        assert_eq!(replayed.sealed_reservations, 1);
        assert_eq!(replayed.file_bytes, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_policy_thresholds_trigger_independently() {
        let policy = CompactionPolicy::default()
            .settled_records(10)
            .file_bytes(1000);
        let mut s = WalStats::default();
        assert!(!policy.due(&s));
        s.settled_records = 10;
        assert!(policy.due(&s));
        s.settled_records = 0;
        s.file_bytes = 1000;
        assert!(policy.due(&s));
    }

    #[test]
    fn age_threshold_triggers_alone_and_resets_on_compaction() {
        let policy = CompactionPolicy::default()
            .settled_records(usize::MAX)
            .file_bytes(u64::MAX)
            .age(Duration::from_millis(5));
        let mut s = WalStats::default();
        // Below the age bound nothing else can fire.
        assert!(!policy.due(&s));
        s.age = Duration::from_millis(5);
        assert!(policy.due(&s));
        // Without the age trigger the same stats stay quiescent.
        assert!(!CompactionPolicy::default()
            .settled_records(usize::MAX)
            .file_bytes(u64::MAX)
            .due(&s));

        // Against a real ledger: a quiet log with zero settled records
        // still comes due on age alone, and compaction resets the clock.
        let path = tmp_wal("age");
        let (mut wal, _) = WalLedger::open(&path).unwrap();
        let _open = wal.reserve("acme", "in-flight", 0.1, 0.0).unwrap();
        assert_eq!(wal.stats().settled_records, 0);
        std::thread::sleep(Duration::from_millis(6));
        assert!(policy.due(&wal.stats()));
        wal.compact().unwrap();
        let after = wal.stats();
        assert!(
            after.age < Duration::from_millis(5),
            "compaction must reset the age clock (got {:?})",
            after.age
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tokens_with_whitespace_are_refused() {
        let path = tmp_wal("tokens");
        let (mut wal, _) = WalLedger::open(&path).unwrap();
        assert!(wal.reserve("two words", "fit", 0.5, 0.0).is_err());
        assert!(wal.reserve("acme", "", 0.5, 0.0).is_err());
        assert!(wal.reserve("acme", "tab\tlabel", 0.5, 0.0).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
