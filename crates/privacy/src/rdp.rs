//! Rényi differential privacy (RDP) accounting — the moments accountant.
//!
//! [`crate::budget::EpsDeltaLedger`] composes releases with the basic and
//! Dwork–Rothblum–Vadhan advanced bounds, both of which grow like
//! `O(√T·ε)` *at best* for `T` homogeneous releases. Tracking each
//! mechanism's **Rényi divergence curve** `α ↦ ε_R(α)` instead and
//! composing *additively per order* (Mironov 2017) keeps the exact
//! per-mechanism moment information until the very end, when a single
//! optimal-order conversion produces an (ε, δ) pair. For Gaussian
//! releases the result is the analytically optimal
//! `ε = T/(2σ̃²) + √(2·T·ln(1/δ))/σ̃` — typically 3–10× tighter than
//! `best_composition` once `T ≳ 16`.
//!
//! Four curve families cover every mechanism this workspace releases:
//!
//! * **Gaussian** (classical calibration): `ε_R(α) = α/(2σ̃²)` exactly,
//!   where `σ̃ = σ/Δ₂` is the noise multiplier. Exact for scalar *and*
//!   vector releases (the multivariate Gaussian divergence depends only
//!   on `‖shift‖₂/σ ≤ Δ₂/σ`).
//! * **Subsampled Gaussian** (Mironov–Talwar–Zhang 2019): the Gaussian
//!   mechanism applied to a Poisson subsample at rate `q` — what a
//!   federated client releases when it fits on a sampled fraction of
//!   its rows. The binomial-expansion upper bound at integer orders,
//!   extended to the fractional grid by chord interpolation of the
//!   convex log-moment `(α−1)·ε_R(α)`; collapses to the plain Gaussian
//!   curve **bit-exactly** at `q = 1`.
//! * **Laplace**: the known closed form (Mironov 2017, Table II).
//!   Sound for the vector Laplace mechanism at L1 sensitivity: the
//!   per-coordinate Rényi integrand is convex in the shift, so the
//!   divergence over the L1 ball is maximised at a vertex — a single
//!   coordinate shifted by Δ₁, i.e. the scalar curve at the full ε₀.
//!   Also sound for Lemma-5 resample releases split as k parts of
//!   ε₀/k each: the curve is convex in ε₀ with value 0 at 0, hence
//!   superadditive, so `Σ L(ε₀/k) ≤ L(ε₀)`.
//! * **Pure DP** (any ε₀-DP mechanism): `min(ε₀, α·ε₀²/2)` — the
//!   Bun–Steinke reduction (pure ε-DP ⇒ ½ε²-zCDP) capped by the max
//!   divergence. Sound for *every* pure mechanism, including the
//!   exponential mechanism, so it is the safe default when the ledger
//!   only knows "some ε₀-DP release happened".
//!
//! Releases whose curve is unknown (e.g. aggregated totals recovered
//! from a WAL) enter as an **opaque** (ε, δ) pair composed basically on
//! the side; they weaken the final bound additively but never
//! unsoundly.

use crate::{PrivacyError, Result};

/// Default Rényi order grid: dense where the optimum usually lands
/// (α ∈ (1, 64]) and sparse out to 1024 for very-low-noise regimes.
///
/// The conversion takes a minimum over this grid, so *any* grid is
/// sound; a finer grid can only tighten the reported ε (see the
/// grid-refinement property test in `tests/accounting.rs`).
#[must_use]
pub fn default_alpha_grid() -> Vec<f64> {
    let mut grid = Vec::with_capacity(128);
    // (1, 2): fine steps — the optimum for large noise / tiny T.
    for i in 1..=9 {
        grid.push(1.0 + f64::from(i) / 10.0);
    }
    // [2, 16): quarter then half steps.
    for i in 8..=20 {
        grid.push(f64::from(i) / 4.0);
    }
    for i in 11..32 {
        grid.push(f64::from(i) / 2.0);
    }
    // [16, 64]: unit steps.
    for i in 16..=64 {
        grid.push(f64::from(i));
    }
    // (64, 1024]: geometric-ish tail.
    for i in 9..=32 {
        grid.push(f64::from(i * 8));
    }
    for i in 9..=32 {
        grid.push(f64::from(i * 32));
    }
    grid.sort_by(f64::total_cmp);
    grid.dedup();
    grid
}

/// A mechanism with a known Rényi divergence curve `α ↦ ε_R(α)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RenyiMechanism {
    /// Gaussian mechanism with noise multiplier `σ̃ = σ/Δ₂`.
    Gaussian {
        /// Noise standard deviation divided by the L2 sensitivity.
        noise_multiplier: f64,
    },
    /// Gaussian mechanism over a Poisson subsample of the data: each row
    /// enters the release independently with probability `sampling_rate`,
    /// then noise at multiplier `σ̃ = σ/Δ₂` is added. Uses the
    /// Mironov–Talwar–Zhang (2019) upper bound, which is what buys a
    /// federated client that samples rows its much tighter composed ε.
    SubsampledGaussian {
        /// Noise standard deviation divided by the L2 sensitivity.
        noise_multiplier: f64,
        /// Poisson sampling rate `q ∈ (0, 1]`; `q = 1` (no subsampling)
        /// reproduces [`RenyiMechanism::Gaussian`] bit-exactly.
        sampling_rate: f64,
    },
    /// (Vector) Laplace mechanism satisfying pure `epsilon`-DP.
    Laplace {
        /// The pure-DP budget ε₀ of the release.
        epsilon: f64,
    },
    /// Any pure `epsilon`-DP mechanism with no tighter curve known.
    PureDp {
        /// The pure-DP budget ε₀ of the release.
        epsilon: f64,
    },
}

impl RenyiMechanism {
    /// The Gaussian mechanism calibrated classically for (ε, δ):
    /// `σ = Δ₂·√(2·ln(1.25/δ))/ε`, i.e. noise multiplier
    /// `σ̃ = √(2·ln(1.25/δ))/ε` — exactly what
    /// [`crate::mechanism::GaussianMechanism::new`] constructs.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless `0 < ε < 1` and
    /// `δ ∈ (0, 1)` (the classical calibration's validity range).
    pub fn gaussian_from_calibration(epsilon: f64, delta: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "classical Gaussian calibration requires 0 < epsilon < 1",
            });
        }
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "must satisfy 0 < delta < 1",
            });
        }
        Ok(RenyiMechanism::Gaussian {
            noise_multiplier: (2.0 * (1.25 / delta).ln()).sqrt() / epsilon,
        })
    }

    fn validate(self) -> Result<()> {
        match self {
            RenyiMechanism::Gaussian { noise_multiplier } => {
                if !noise_multiplier.is_finite() || noise_multiplier <= 0.0 {
                    return Err(PrivacyError::InvalidParameter {
                        name: "noise_multiplier",
                        value: noise_multiplier,
                        constraint: "must be finite and > 0",
                    });
                }
            }
            RenyiMechanism::SubsampledGaussian {
                noise_multiplier,
                sampling_rate,
            } => {
                if !noise_multiplier.is_finite() || noise_multiplier <= 0.0 {
                    return Err(PrivacyError::InvalidParameter {
                        name: "noise_multiplier",
                        value: noise_multiplier,
                        constraint: "must be finite and > 0",
                    });
                }
                if !sampling_rate.is_finite() || sampling_rate <= 0.0 || sampling_rate > 1.0 {
                    return Err(PrivacyError::InvalidParameter {
                        name: "sampling_rate",
                        value: sampling_rate,
                        constraint: "must satisfy 0 < q <= 1",
                    });
                }
            }
            RenyiMechanism::Laplace { epsilon } | RenyiMechanism::PureDp { epsilon } => {
                if !epsilon.is_finite() || epsilon <= 0.0 {
                    return Err(PrivacyError::InvalidParameter {
                        name: "epsilon",
                        value: epsilon,
                        constraint: "must be finite and > 0",
                    });
                }
            }
        }
        Ok(())
    }

    /// The Rényi divergence bound `ε_R(α)` of this mechanism at order
    /// `alpha > 1`.
    #[must_use]
    pub fn rdp(self, alpha: f64) -> f64 {
        debug_assert!(alpha > 1.0, "Rényi orders must exceed 1");
        match self {
            RenyiMechanism::Gaussian { noise_multiplier } => {
                alpha / (2.0 * noise_multiplier * noise_multiplier)
            }
            RenyiMechanism::SubsampledGaussian {
                noise_multiplier,
                sampling_rate,
            } => subsampled_gaussian_rdp(alpha, noise_multiplier, sampling_rate),
            RenyiMechanism::Laplace { epsilon } => laplace_rdp(alpha, epsilon),
            RenyiMechanism::PureDp { epsilon } => {
                // Bun–Steinke: ε₀-DP ⇒ ½ε₀²-zCDP ⇒ ε_R(α) ≤ α·ε₀²/2,
                // capped by the max divergence ε₀.
                epsilon.min(0.5 * alpha * epsilon * epsilon)
            }
        }
    }
}

/// Exact Laplace-mechanism RDP (Mironov 2017, Table II):
/// `ε_R(α) = ln[ α/(2α−1)·e^{(α−1)ε₀} + (α−1)/(2α−1)·e^{−αε₀} ] / (α−1)`,
/// evaluated in log space so large `(α−1)·ε₀` cannot overflow, and capped
/// by the max divergence ε₀.
fn laplace_rdp(alpha: f64, eps0: f64) -> f64 {
    let a = (alpha / (2.0 * alpha - 1.0)).ln() + (alpha - 1.0) * eps0;
    let b = ((alpha - 1.0) / (2.0 * alpha - 1.0)).ln() - alpha * eps0;
    // log-sum-exp(a, b); a ≥ b always holds here but order defensively.
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    let lse = hi + (lo - hi).exp().ln_1p();
    (lse / (alpha - 1.0)).min(eps0)
}

/// Poisson-subsampled Gaussian RDP (Mironov–Talwar–Zhang 2019, Thm. 11
/// upper bound). At integer orders `α ≥ 2`,
/// `ε_R(α) = ln[ Σ_{k=0}^{α} C(α,k)·(1−q)^{α−k}·q^k·e^{k(k−1)/(2σ̃²)} ] / (α−1)`,
/// evaluated entirely in log space (log-sum-exp over the binomial terms)
/// so high orders at low noise cannot overflow. Fractional grid orders
/// take the chord of the convex log-moment `h(α) = (α−1)·ε_R(α)` between
/// the bracketing integers (`h(1) = 0`), which upper-bounds `h` and is
/// therefore sound. `q = 1` short-circuits to the exact plain-Gaussian
/// curve `α/(2σ̃²)` so the two enum variants agree bit-for-bit there.
fn subsampled_gaussian_rdp(alpha: f64, sigma: f64, q: f64) -> f64 {
    if q >= 1.0 {
        return alpha / (2.0 * sigma * sigma);
    }
    let lo = alpha.floor();
    let hi = alpha.ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if lo == hi {
        return subsampled_gaussian_log_moment(alpha as u64, sigma, q) / (alpha - 1.0);
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let h_lo = if lo <= 1.0 {
        0.0
    } else {
        subsampled_gaussian_log_moment(lo as u64, sigma, q)
    };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let h_hi = subsampled_gaussian_log_moment(hi as u64, sigma, q);
    let t = alpha - lo;
    ((1.0 - t) * h_lo + t * h_hi) / (alpha - 1.0)
}

/// `h(α) = ln E_k[e^{k(k−1)/(2σ̃²)}]`, `k ~ Binomial(α, q)`, for integer
/// `α ≥ 2` and `q < 1`. The binomial log-coefficients accumulate
/// incrementally (`ln C(α,k+1) = ln C(α,k) + ln((α−k)/(k+1))`), and
/// `ln(1−q)` comes from `ln_1p` so rates within one ulp of 1 stay exact.
fn subsampled_gaussian_log_moment(alpha_int: u64, sigma: f64, q: f64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let a = alpha_int as f64;
    let ln_q = q.ln();
    let ln_1q = (-q).ln_1p();
    let gauss = 1.0 / (2.0 * sigma * sigma);
    let mut ln_binom = 0.0;
    let mut max = f64::NEG_INFINITY;
    let mut terms = Vec::with_capacity(alpha_int as usize + 1);
    for k in 0..=alpha_int {
        #[allow(clippy::cast_precision_loss)]
        let kf = k as f64;
        let term = ln_binom + (a - kf) * ln_1q + kf * ln_q + kf * (kf - 1.0) * gauss;
        max = max.max(term);
        terms.push(term);
        if k < alpha_int {
            ln_binom += ((a - kf) / (kf + 1.0)).ln();
        }
    }
    // log-sum-exp; divergences are non-negative so clamp tiny negative
    // float residue at exactly zero.
    let sum: f64 = terms.iter().map(|&t| (t - max).exp()).sum();
    (max + sum.ln()).max(0.0)
}

/// The (ε, δ) account produced by [`RdpLedger::convert`] — the "moments
/// accountant" column reported next to basic and advanced composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentsAccount {
    /// The composed privacy loss ε at [`MomentsAccount::delta`].
    pub epsilon: f64,
    /// The total failure probability, `δ_target` plus any opaque δ.
    pub delta: f64,
    /// The Rényi order the conversion selected, when any curve was
    /// tracked (`None` for an empty or opaque-only ledger).
    pub best_alpha: Option<f64>,
    /// Number of releases composed (curves plus opaque records).
    pub mechanisms: usize,
}

/// An additive ledger of Rényi divergence curves on a fixed order grid.
///
/// Recording a mechanism adds its curve pointwise to the running totals
/// (RDP composes additively per order); [`RdpLedger::convert`] then
/// applies the Mironov conversion
/// `ε(δ) = min_α [ ε_R(α) + ln(1/δ)/(α−1) ]` at the optimal grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct RdpLedger {
    alphas: Vec<f64>,
    totals: Vec<f64>,
    curves: usize,
    opaque_epsilon: f64,
    opaque_delta: f64,
    opaque: usize,
}

impl Default for RdpLedger {
    fn default() -> Self {
        RdpLedger::new()
    }
}

impl RdpLedger {
    /// An empty ledger on [`default_alpha_grid`].
    #[must_use]
    pub fn new() -> Self {
        // The default grid is statically valid; unwrap cannot fire.
        RdpLedger::with_alphas(default_alpha_grid()).expect("default grid is valid")
    }

    /// An empty ledger on a custom order grid (each `α > 1`, finite).
    /// The grid is sorted and deduplicated. Any grid is sound; finer
    /// grids convert no looser.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] for an empty grid or any
    /// order ≤ 1 or non-finite.
    pub fn with_alphas(mut alphas: Vec<f64>) -> Result<Self> {
        if alphas.is_empty() {
            return Err(PrivacyError::InvalidParameter {
                name: "alphas",
                value: 0.0,
                constraint: "order grid must be non-empty",
            });
        }
        for &a in &alphas {
            if !a.is_finite() || a <= 1.0 {
                return Err(PrivacyError::InvalidParameter {
                    name: "alpha",
                    value: a,
                    constraint: "every Rényi order must be finite and > 1",
                });
            }
        }
        alphas.sort_by(f64::total_cmp);
        alphas.dedup();
        let totals = vec![0.0; alphas.len()];
        Ok(RdpLedger {
            alphas,
            totals,
            curves: 0,
            opaque_epsilon: 0.0,
            opaque_delta: 0.0,
            opaque: 0,
        })
    }

    /// The order grid the ledger tracks.
    #[must_use]
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Total number of releases recorded (curves plus opaque).
    #[must_use]
    pub fn mechanisms(&self) -> usize {
        self.curves + self.opaque
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mechanisms() == 0
    }

    /// Records one release of `mechanism`, adding its curve to the
    /// running per-order totals.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] for degenerate parameters.
    pub fn record(&mut self, mechanism: RenyiMechanism) -> Result<()> {
        mechanism.validate()?;
        for (total, &alpha) in self.totals.iter_mut().zip(&self.alphas) {
            *total += mechanism.rdp(alpha);
        }
        self.curves += 1;
        Ok(())
    }

    /// Records a release known only by its (ε, δ) guarantee — e.g. an
    /// aggregate recovered from a WAL. Composed basically on the side
    /// and added to the conversion result.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless ε ≥ 0 is finite and
    /// δ ∈ [0, 1).
    pub fn record_opaque(&mut self, epsilon: f64, delta: f64) -> Result<()> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "must be finite and >= 0",
            });
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "must satisfy 0 <= delta < 1",
            });
        }
        self.opaque_epsilon += epsilon;
        self.opaque_delta += delta;
        self.opaque += 1;
        Ok(())
    }

    /// Converts the composed curves to an (ε, δ) guarantee at target
    /// failure probability `delta`, picking the optimal grid order
    /// (Mironov 2017, Prop. 3). Opaque records compose basically on
    /// top: their Σε adds to the converted ε and their Σδ to the
    /// reported δ.
    ///
    /// An empty ledger converts to exactly (0, 0) — no release, no
    /// loss, no failure probability.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless `δ ∈ (0, 1)` and the
    /// total δ (target plus opaque) stays below 1.
    pub fn convert(&self, delta: f64) -> Result<MomentsAccount> {
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "must satisfy 0 < delta < 1",
            });
        }
        if self.is_empty() {
            return Ok(MomentsAccount {
                epsilon: 0.0,
                delta: 0.0,
                best_alpha: None,
                mechanisms: 0,
            });
        }
        if self.curves == 0 {
            // Opaque-only: nothing to convert, pass the basic sums
            // through without spending the target δ.
            return Ok(MomentsAccount {
                epsilon: self.opaque_epsilon,
                delta: self.opaque_delta,
                best_alpha: None,
                mechanisms: self.mechanisms(),
            });
        }
        let total_delta = delta + self.opaque_delta;
        if total_delta >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: total_delta,
                constraint: "target delta plus opaque delta must stay below 1",
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let mut best = f64::INFINITY;
        let mut best_alpha = self.alphas[0];
        for (&alpha, &rdp) in self.alphas.iter().zip(&self.totals) {
            let eps = rdp + log_inv_delta / (alpha - 1.0);
            if eps < best {
                best = eps;
                best_alpha = alpha;
            }
        }
        Ok(MomentsAccount {
            epsilon: best + self.opaque_epsilon,
            delta: total_delta,
            best_alpha: Some(best_alpha),
            mechanisms: self.mechanisms(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed-form optimum for k homogeneous Gaussians under the
    /// Mironov conversion, minimised over continuous α:
    /// `ε* = k/(2σ̃²) + √(2·k·ln(1/δ))/σ̃`.
    fn gaussian_analytic_optimum(k: usize, noise_multiplier: f64, delta: f64) -> f64 {
        let c = k as f64 / (2.0 * noise_multiplier * noise_multiplier);
        c + 2.0 * (c * (1.0 / delta).ln()).sqrt()
    }

    #[test]
    fn empty_ledger_converts_to_exact_zero() {
        let ledger = RdpLedger::new();
        let account = ledger.convert(1e-6).unwrap();
        assert_eq!(account.epsilon, 0.0);
        assert_eq!(account.delta, 0.0);
        assert_eq!(account.best_alpha, None);
        assert_eq!(account.mechanisms, 0);
    }

    #[test]
    fn gaussian_composition_matches_analytic_optimum() {
        let sigma = 5.0;
        let mut ledger = RdpLedger::new();
        for _ in 0..64 {
            ledger
                .record(RenyiMechanism::Gaussian {
                    noise_multiplier: sigma,
                })
                .unwrap();
        }
        let account = ledger.convert(1e-6).unwrap();
        let exact = gaussian_analytic_optimum(64, sigma, 1e-6);
        // Grid discretisation can only lose, and only a little.
        assert!(account.epsilon >= exact - 1e-12);
        assert!(
            account.epsilon <= exact * 1.01,
            "grid ε {} vs analytic {exact}",
            account.epsilon
        );
        assert!(account.best_alpha.is_some());
        assert_eq!(account.mechanisms, 64);
    }

    #[test]
    fn laplace_rdp_limits_are_correct() {
        // α → ∞: the curve approaches the max divergence ε₀.
        let eps0 = 0.5;
        let at_big = laplace_rdp(1024.0, eps0);
        assert!(at_big <= eps0 + 1e-12);
        assert!(at_big > 0.9 * eps0);
        // Small α: strictly below ε₀ (that's the whole point).
        assert!(laplace_rdp(2.0, eps0) < eps0);
        // Numerically stable for huge (α−1)·ε₀.
        let big = laplace_rdp(1024.0, 500.0);
        assert!(big.is_finite() && big <= 500.0);
    }

    #[test]
    fn pure_dp_curve_is_capped_by_epsilon() {
        let m = RenyiMechanism::PureDp { epsilon: 0.2 };
        // Low order: quadratic regime α·ε²/2.
        assert!((m.rdp(2.0) - 0.04).abs() < 1e-15);
        // High order: capped at ε₀.
        assert_eq!(m.rdp(1024.0), 0.2);
    }

    #[test]
    fn subsampled_gaussian_at_full_rate_is_bit_identical_to_gaussian() {
        let sigma = 3.0;
        let plain = RenyiMechanism::Gaussian {
            noise_multiplier: sigma,
        };
        let sub = RenyiMechanism::SubsampledGaussian {
            noise_multiplier: sigma,
            sampling_rate: 1.0,
        };
        for &alpha in &default_alpha_grid() {
            assert_eq!(
                plain.rdp(alpha).to_bits(),
                sub.rdp(alpha).to_bits(),
                "q = 1 must reproduce the plain Gaussian curve exactly at α = {alpha}"
            );
        }
        // And therefore the composed accounts agree bit-for-bit too.
        let mut a = RdpLedger::new();
        let mut b = RdpLedger::new();
        for _ in 0..32 {
            a.record(plain).unwrap();
            b.record(sub).unwrap();
        }
        let (a, b) = (a.convert(1e-6).unwrap(), b.convert(1e-6).unwrap());
        assert_eq!(a.epsilon.to_bits(), b.epsilon.to_bits());
        assert_eq!(a.best_alpha, b.best_alpha);
    }

    #[test]
    fn subsampling_tightens_the_curve_and_the_composed_account() {
        let sigma = 2.0;
        let plain = RenyiMechanism::Gaussian {
            noise_multiplier: sigma,
        };
        let sub = RenyiMechanism::SubsampledGaussian {
            noise_multiplier: sigma,
            sampling_rate: 0.05,
        };
        for &alpha in &default_alpha_grid() {
            let (p, s) = (plain.rdp(alpha), sub.rdp(alpha));
            assert!(s.is_finite() && s >= 0.0, "ε_R({alpha}) = {s}");
            assert!(
                s <= p + 1e-12,
                "subsampling must never loosen: α = {alpha}, sub {s} vs plain {p}"
            );
        }
        // In the small-q regime the curve contracts roughly like q²: at
        // q = 0.05 expect ≫10× tightening at moderate orders.
        assert!(sub.rdp(8.0) < 0.05 * plain.rdp(8.0));
        // Composed: T = 64 subsampled releases beat T = 64 full ones.
        let mut full = RdpLedger::new();
        let mut sampled = RdpLedger::new();
        for _ in 0..64 {
            full.record(plain).unwrap();
            sampled.record(sub).unwrap();
        }
        let (f, s) = (full.convert(1e-6).unwrap(), sampled.convert(1e-6).unwrap());
        assert!(
            s.epsilon < 0.5 * f.epsilon,
            "sampled ε {} vs full ε {}",
            s.epsilon,
            f.epsilon
        );
    }

    #[test]
    fn subsampled_gaussian_fractional_orders_interpolate_the_log_moment() {
        let m = RenyiMechanism::SubsampledGaussian {
            noise_multiplier: 1.5,
            sampling_rate: 0.1,
        };
        // The chord of the convex log-moment h(α) = (α−1)·ε(α): exact at
        // integers, and between them h stays on the straight line.
        let h = |alpha: f64| (alpha - 1.0) * m.rdp(alpha);
        let mid = h(2.5);
        let chord = 0.5 * (h(2.0) + h(3.0));
        assert!((mid - chord).abs() < 1e-12);
        // (1, 2) anchors at h(1) = 0.
        assert!((h(1.5) - 0.5 * h(2.0)).abs() < 1e-12);
        // ε_R stays monotone along the default grid (Rényi orders).
        let grid = default_alpha_grid();
        for w in grid.windows(2) {
            assert!(
                m.rdp(w[0]) <= m.rdp(w[1]) + 1e-12,
                "curve must be non-decreasing at α = {} → {}",
                w[0],
                w[1]
            );
        }
        // Degenerate parameters are refused by record().
        let mut ledger = RdpLedger::new();
        assert!(ledger
            .record(RenyiMechanism::SubsampledGaussian {
                noise_multiplier: 1.0,
                sampling_rate: 0.0,
            })
            .is_err());
        assert!(ledger
            .record(RenyiMechanism::SubsampledGaussian {
                noise_multiplier: 1.0,
                sampling_rate: 1.5,
            })
            .is_err());
        assert!(ledger
            .record(RenyiMechanism::SubsampledGaussian {
                noise_multiplier: 0.0,
                sampling_rate: 0.5,
            })
            .is_err());
    }

    #[test]
    fn conversion_is_monotone_in_delta() {
        let mut ledger = RdpLedger::new();
        for _ in 0..16 {
            ledger
                .record(RenyiMechanism::Laplace { epsilon: 0.3 })
                .unwrap();
        }
        let loose = ledger.convert(1e-3).unwrap();
        let tight = ledger.convert(1e-9).unwrap();
        assert!(loose.epsilon <= tight.epsilon);
    }

    #[test]
    fn opaque_records_compose_basically() {
        let mut ledger = RdpLedger::new();
        ledger
            .record(RenyiMechanism::Gaussian {
                noise_multiplier: 10.0,
            })
            .unwrap();
        let base = ledger.convert(1e-6).unwrap();
        ledger.record_opaque(0.25, 1e-7).unwrap();
        let with_opaque = ledger.convert(1e-6).unwrap();
        assert!((with_opaque.epsilon - (base.epsilon + 0.25)).abs() < 1e-12);
        assert!((with_opaque.delta - (1e-6 + 1e-7)).abs() < 1e-18);
        assert_eq!(with_opaque.mechanisms, 2);
    }

    #[test]
    fn opaque_only_ledger_passes_sums_through() {
        let mut ledger = RdpLedger::new();
        ledger.record_opaque(0.5, 1e-5).unwrap();
        ledger.record_opaque(0.25, 0.0).unwrap();
        let account = ledger.convert(1e-6).unwrap();
        assert!((account.epsilon - 0.75).abs() < 1e-12);
        assert!((account.delta - 1e-5).abs() < 1e-18);
        assert_eq!(account.best_alpha, None);
    }

    #[test]
    fn invalid_parameters_are_refused() {
        let mut ledger = RdpLedger::new();
        assert!(ledger
            .record(RenyiMechanism::Gaussian {
                noise_multiplier: 0.0
            })
            .is_err());
        assert!(ledger
            .record(RenyiMechanism::Laplace { epsilon: -1.0 })
            .is_err());
        assert!(ledger.record_opaque(0.1, 1.0).is_err());
        assert!(ledger.convert(0.0).is_err());
        assert!(ledger.convert(1.0).is_err());
        assert!(RdpLedger::with_alphas(vec![]).is_err());
        assert!(RdpLedger::with_alphas(vec![1.0]).is_err());
        assert!(RenyiMechanism::gaussian_from_calibration(1.5, 1e-6).is_err());
    }

    #[test]
    fn calibration_matches_gaussian_mechanism_sigma() {
        let (eps, delta) = (0.3, 1e-6);
        let m = RenyiMechanism::gaussian_from_calibration(eps, delta).unwrap();
        let mech = crate::mechanism::GaussianMechanism::new(2.0, eps, delta).unwrap();
        let RenyiMechanism::Gaussian { noise_multiplier } = m else {
            panic!("expected Gaussian");
        };
        // σ̃ = σ/Δ₂ exactly as the mechanism constructs it.
        assert!((noise_multiplier - mech.noise_std_dev() / 2.0).abs() < 1e-12);
    }
}
