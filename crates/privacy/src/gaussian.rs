//! Standard-normal sampling via the Box–Muller transform.
//!
//! This module is a *sampler*, not a privacy mechanism. It backs two
//! consumers: the (ε, δ) [`crate::mechanism::GaussianMechanism`], and the
//! synthetic census generator in `fm-data` (the substitute for the paper's
//! IPUMS datasets, see DESIGN.md §4), which needs correlated normal
//! covariates. Strict ε-DP paths use [`crate::laplace`] only.

use rand::Rng;

/// Draws one standard-normal variate using Box–Muller.
///
/// Uses the trigonometric form; one of the two produced variates is
/// discarded for API simplicity (dataset synthesis is not a hot path).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 ∈ (0, 1] so the log is finite; u2 ∈ [0, 1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// `std_dev` may be zero (degenerate point mass); negative values are a
/// caller bug and are debug-asserted.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "negative std_dev");
    mean + std_dev * standard_normal(rng)
}

/// Fills `out` with i.i.d. standard-normal variates.
pub fn standard_normal_into(rng: &mut impl Rng, out: &mut [f64]) {
    for v in out {
        *v = standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn moments_converge() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn shifted_and_scaled() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn zero_std_dev_is_point_mass() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 3.5, 0.0), 3.5);
    }

    #[test]
    fn empirical_68_95_rule() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let within1 = samples.iter().filter(|x| x.abs() < 1.0).count() as f64 / n as f64;
        let within2 = samples.iter().filter(|x| x.abs() < 2.0).count() as f64 / n as f64;
        assert!((within1 - 0.6827).abs() < 0.01, "P(|X|<1) = {within1}");
        assert!((within2 - 0.9545).abs() < 0.01, "P(|X|<2) = {within2}");
    }

    #[test]
    fn fill_helper_is_finite() {
        let mut r = rng();
        let mut buf = vec![f64::NAN; 32];
        standard_normal_into(&mut r, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reproducible_with_seed() {
        let a: Vec<f64> = {
            let mut r = rng();
            (0..8).map(|_| standard_normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..8).map(|_| standard_normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
