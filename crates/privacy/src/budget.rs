//! Privacy-budget accounting: sequential composition and the
//! advanced-composition bound.
//!
//! ε-DP composes additively: running an ε₁-DP algorithm followed by an
//! ε₂-DP algorithm on the same data is (ε₁+ε₂)-DP. The paper leans on this
//! twice: Lemma 5 shows that re-running Algorithm 1 until the noisy
//! objective is bounded costs `2ε`, and the experiment harness must ensure
//! each method consumes exactly its advertised budget.
//!
//! Two ledgers are provided:
//!
//! * [`PrivacyBudget`] — the strict-ε ledger: construct with a total ε,
//!   [`PrivacyBudget::spend`] draws down, and over-spending is an error
//!   rather than a silent privacy violation.
//! * [`EpsDeltaLedger`] — an (ε, δ) audit trail for workloads mixing the
//!   Laplace and Gaussian variants; reports both **basic** composition
//!   `(Σεᵢ, Σδᵢ)` and the **advanced** composition bound of Dwork,
//!   Rothblum & Vadhan, which pays an extra δ′ to shrink the ε total from
//!   `Σεᵢ` to `√(2 ln(1/δ′)·Σεᵢ²) + Σεᵢ(e^{εᵢ} − 1)` — a large saving
//!   when many small-ε queries compose.

use crate::{PrivacyError, Result};

/// Tolerance for floating-point slack when comparing spends against the
/// remaining budget (ε values are user-scale numbers like 0.1–3.2).
const EPS_SLACK: f64 = 1e-12;

/// A sequential-composition ε ledger.
///
/// ```
/// use fm_privacy::budget::PrivacyBudget;
///
/// let mut budget = PrivacyBudget::new(1.0).unwrap();
/// budget.spend(0.4).unwrap();
/// budget.spend(0.6).unwrap();
/// assert!(budget.spend(0.1).is_err()); // exhausted
/// assert!(budget.remaining() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
    /// Individual spends, for auditing.
    ledger: Vec<f64>,
}

impl PrivacyBudget {
    /// Creates a budget with `total` ε available.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless `total` is finite and > 0.
    pub fn new(total: f64) -> Result<Self> {
        if !total.is_finite() || total <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "total epsilon",
                value: total,
                constraint: "finite and > 0",
            });
        }
        Ok(PrivacyBudget {
            total,
            spent: 0.0,
            ledger: Vec::new(),
        })
    }

    /// Total ε this budget started with.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε consumed so far.
    #[must_use]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available (never negative).
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Number of recorded spends.
    #[must_use]
    pub fn num_operations(&self) -> usize {
        self.ledger.len()
    }

    /// The audit trail of individual spends, in order.
    #[must_use]
    pub fn ledger(&self) -> &[f64] {
        &self.ledger
    }

    /// Whether a spend of `epsilon` would be accepted right now — the
    /// pre-flight check estimator sessions use to refuse a fit *before*
    /// any mechanism touches the data.
    #[must_use]
    pub fn can_spend(&self, epsilon: f64) -> bool {
        epsilon.is_finite() && epsilon > 0.0 && epsilon <= self.remaining() + EPS_SLACK
    }

    /// Records a spend of `epsilon`.
    ///
    /// # Errors
    /// * [`PrivacyError::InvalidParameter`] for non-positive/non-finite ε.
    /// * [`PrivacyError::BudgetExhausted`] when the spend would exceed what
    ///   remains (beyond floating-point slack).
    pub fn spend(&mut self, epsilon: f64) -> Result<()> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "finite and > 0",
            });
        }
        if epsilon > self.remaining() + EPS_SLACK {
            return Err(PrivacyError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        self.ledger.push(epsilon);
        Ok(())
    }

    /// Splits the *remaining* budget into `parts` equal spends, recording
    /// and returning the per-part ε.
    ///
    /// Useful for mechanisms that make a known number of sequential noisy
    /// queries (e.g. DPME noising each histogram cell would instead use
    /// parallel composition; this helper is for genuinely sequential steps).
    ///
    /// # Errors
    /// * [`PrivacyError::InvalidParameter`] when `parts == 0`.
    /// * [`PrivacyError::BudgetExhausted`] when nothing remains.
    pub fn split_remaining(&mut self, parts: usize) -> Result<f64> {
        if parts == 0 {
            return Err(PrivacyError::InvalidParameter {
                name: "parts",
                value: 0.0,
                constraint: "at least 1",
            });
        }
        let remaining = self.remaining();
        if remaining <= 0.0 {
            return Err(PrivacyError::BudgetExhausted {
                requested: 0.0,
                remaining,
            });
        }
        let per_part = remaining / parts as f64;
        for _ in 0..parts {
            self.spend(per_part)?;
        }
        Ok(per_part)
    }
}

/// One recorded (ε, δ) mechanism invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsDeltaEntry {
    /// The invocation's ε.
    pub epsilon: f64,
    /// The invocation's δ (0 for pure ε-DP mechanisms such as Laplace).
    pub delta: f64,
}

impl EpsDeltaEntry {
    /// Validates an (ε, δ) pair *without* committing it anywhere — the
    /// hook budget-aware sessions use to check a fit's advertised cost
    /// before debiting any ledger, so a malformed δ can never leave a
    /// budget and an audit trail disagreeing.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] for ε ≤ 0, non-finite values,
    /// or δ outside `[0, 1)`.
    pub fn validated(epsilon: f64, delta: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "finite and > 0",
            });
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "in [0, 1)",
            });
        }
        Ok(EpsDeltaEntry { epsilon, delta })
    }
}

/// An append-only (ε, δ) audit ledger with basic and advanced composition
/// reports.
///
/// Unlike [`PrivacyBudget`] this ledger does not enforce a cap — mixing
/// pure-ε and (ε, δ) mechanisms has no single scalar budget to enforce.
/// Instead it answers the question an auditor asks after the fact: *what
/// total guarantee do these invocations compose to?*
///
/// ```
/// use fm_privacy::budget::EpsDeltaLedger;
///
/// let mut ledger = EpsDeltaLedger::new();
/// for _ in 0..100 {
///     ledger.record(0.05, 1e-8).unwrap(); // 100 small Gaussian queries
/// }
/// let (eps_basic, _) = ledger.basic_composition();    // 5.0
/// let (eps_adv, _) = ledger.advanced_composition(1e-6).unwrap(); // ≈ 2.9
/// assert!(eps_adv < eps_basic); // the √k regime: advanced wins
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpsDeltaLedger {
    entries: Vec<EpsDeltaEntry>,
}

impl EpsDeltaLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        EpsDeltaLedger::default()
    }

    /// Records an (ε, δ)-DP invocation (`δ = 0` for pure ε-DP).
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] for ε ≤ 0, non-finite values, or
    /// δ outside `[0, 1)`.
    pub fn record(&mut self, epsilon: f64, delta: f64) -> Result<()> {
        self.record_entry(EpsDeltaEntry::validated(epsilon, delta)?);
        Ok(())
    }

    /// Appends an already-validated entry (see
    /// [`EpsDeltaEntry::validated`]) — infallible, so callers that must
    /// keep several ledgers in lock-step can validate first, commit
    /// everywhere second.
    pub fn record_entry(&mut self, entry: EpsDeltaEntry) {
        self.entries.push(entry);
    }

    /// The recorded invocations, in order.
    #[must_use]
    pub fn entries(&self) -> &[EpsDeltaEntry] {
        &self.entries
    }

    /// Number of recorded invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Basic (sequential) composition: the invocations jointly satisfy
    /// `(Σεᵢ, Σδᵢ)`-DP.
    #[must_use]
    pub fn basic_composition(&self) -> (f64, f64) {
        let eps: f64 = self.entries.iter().map(|e| e.epsilon).sum();
        let delta: f64 = self.entries.iter().map(|e| e.delta).sum();
        (eps, delta)
    }

    /// Advanced composition (Dwork–Rothblum–Vadhan, heterogeneous form):
    /// for any slack `δ′ > 0` the invocations jointly satisfy
    /// `(ε*, Σδᵢ + δ′)`-DP with
    ///
    /// ```text
    /// ε* = √(2 ln(1/δ′) · Σεᵢ²)  +  Σ εᵢ·(e^{εᵢ} − 1)
    /// ```
    ///
    /// The bound beats basic composition when many small-ε invocations
    /// compose (the `√k` regime) and loses to it for a few large-ε ones —
    /// use [`EpsDeltaLedger::best_composition`] to always report the
    /// tighter of the two.
    ///
    /// An empty ledger composes to exactly `(0, 0)` — no invocations
    /// means no privacy loss, so no δ′ slack is charged. A single
    /// large ε (≳ 700) overflows the `εᵢ·(e^{εᵢ} − 1)` term to
    /// infinity; rather than poisoning the report (and through it
    /// [`EpsDeltaLedger::best_composition`]), the bound falls back to
    /// basic composition, which always holds.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless `δ′ ∈ (0, 1)`.
    pub fn advanced_composition(&self, delta_prime: f64) -> Result<(f64, f64)> {
        if !delta_prime.is_finite() || delta_prime <= 0.0 || delta_prime >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "delta_prime",
                value: delta_prime,
                constraint: "in (0, 1)",
            });
        }
        if self.entries.is_empty() {
            return Ok((0.0, 0.0));
        }
        let sum_sq: f64 = self.entries.iter().map(|e| e.epsilon * e.epsilon).sum();
        let linear: f64 = self
            .entries
            .iter()
            .map(|e| e.epsilon * (e.epsilon.exp_m1()))
            .sum();
        let eps = (2.0 * (1.0 / delta_prime).ln() * sum_sq).sqrt() + linear;
        if !eps.is_finite() {
            // The advanced bound degenerated numerically; the basic
            // bound is always valid (and here certainly tighter).
            return Ok(self.basic_composition());
        }
        let delta: f64 = self.entries.iter().map(|e| e.delta).sum::<f64>() + delta_prime;
        Ok((eps, delta))
    }

    /// The tighter of basic and advanced composition at slack `δ′`:
    /// returns whichever pair has the smaller ε (basic is reported with its
    /// original `Σδᵢ`, i.e. without paying δ′ it does not need).
    ///
    /// # Errors
    /// As [`EpsDeltaLedger::advanced_composition`].
    pub fn best_composition(&self, delta_prime: f64) -> Result<(f64, f64)> {
        let basic = self.basic_composition();
        let advanced = self.advanced_composition(delta_prime)?;
        Ok(if advanced.0 < basic.0 {
            advanced
        } else {
            basic
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(-1.0).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY).is_err());
        assert!(PrivacyBudget::new(0.8).is_ok());
    }

    #[test]
    fn sequential_composition_adds_up() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.spend(0.3).unwrap();
        b.spend(0.2).unwrap();
        assert!((b.spent() - 0.5).abs() < 1e-15);
        assert!((b.remaining() - 0.5).abs() < 1e-15);
        assert_eq!(b.num_operations(), 2);
        assert_eq!(b.ledger(), &[0.3, 0.2]);
    }

    #[test]
    fn overspend_is_rejected_and_not_recorded() {
        let mut b = PrivacyBudget::new(0.5).unwrap();
        b.spend(0.4).unwrap();
        let err = b.spend(0.2).unwrap_err();
        assert!(matches!(err, PrivacyError::BudgetExhausted { .. }));
        assert_eq!(b.num_operations(), 1);
        assert!((b.remaining() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.spend(1.0).unwrap();
        assert!(b.remaining() < 1e-15);
        assert!(b.spend(1e-6).is_err());
    }

    #[test]
    fn floating_point_slack_tolerated() {
        let mut b = PrivacyBudget::new(0.3).unwrap();
        b.spend(0.1).unwrap();
        b.spend(0.1).unwrap();
        // 0.3 - 0.2 leaves 0.09999999999999998; spending "0.1" must work.
        b.spend(0.1).unwrap();
    }

    #[test]
    fn invalid_spends_rejected() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        assert!(b.spend(0.0).is_err());
        assert!(b.spend(-0.1).is_err());
        assert!(b.spend(f64::NAN).is_err());
        assert_eq!(b.num_operations(), 0);
    }

    #[test]
    fn split_remaining_even_parts() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.spend(0.2).unwrap();
        let per = b.split_remaining(4).unwrap();
        assert!((per - 0.2).abs() < 1e-12);
        assert!(b.remaining() < 1e-9);
        assert_eq!(b.num_operations(), 5);
    }

    #[test]
    fn split_remaining_validation() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        assert!(b.split_remaining(0).is_err());
        b.spend(1.0).unwrap();
        assert!(b.split_remaining(2).is_err());
    }

    #[test]
    fn lemma5_retry_costs_double() {
        // Lemma 5: repeating an ε-DP mechanism until its output satisfies a
        // data-independent predicate is 2ε-DP. The accountant models this as
        // two spends of ε.
        let eps = 0.8;
        let mut b = PrivacyBudget::new(2.0 * eps).unwrap();
        b.spend(eps).unwrap(); // the (possibly repeated) mechanism
        b.spend(eps).unwrap(); // the retry premium
        assert!(b.remaining() < 1e-12);
    }

    #[test]
    fn can_spend_preflight_matches_spend() {
        let mut b = PrivacyBudget::new(0.5).unwrap();
        assert!(b.can_spend(0.5));
        assert!(!b.can_spend(0.6));
        assert!(!b.can_spend(0.0));
        assert!(!b.can_spend(f64::NAN));
        b.spend(0.4).unwrap();
        assert!(b.can_spend(0.1));
        assert!(!b.can_spend(0.2));
    }

    #[test]
    fn validated_entry_checks_without_committing() {
        assert!(EpsDeltaEntry::validated(0.7, 0.0).is_ok());
        assert!(EpsDeltaEntry::validated(-1.0, 0.0).is_err());
        assert!(EpsDeltaEntry::validated(0.5, 1.0).is_err());
        assert!(EpsDeltaEntry::validated(0.5, f64::NAN).is_err());
        // record_entry is the infallible commit of a validated entry.
        let mut l = EpsDeltaLedger::new();
        l.record_entry(EpsDeltaEntry::validated(0.7, 0.0).unwrap());
        assert_eq!(
            l.entries(),
            &[EpsDeltaEntry {
                epsilon: 0.7,
                delta: 0.0
            }]
        );
    }

    #[test]
    fn eps_delta_ledger_records_and_validates() {
        let mut l = EpsDeltaLedger::new();
        assert!(l.is_empty());
        l.record(0.5, 0.0).unwrap();
        l.record(0.3, 1e-6).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[1].delta, 1e-6);
        assert!(l.record(0.0, 0.0).is_err());
        assert!(l.record(0.1, -0.1).is_err());
        assert!(l.record(0.1, 1.0).is_err());
        assert!(l.record(f64::NAN, 0.0).is_err());
        assert_eq!(l.len(), 2, "rejected records must not be stored");
    }

    #[test]
    fn basic_composition_sums() {
        let mut l = EpsDeltaLedger::new();
        l.record(0.5, 1e-6).unwrap();
        l.record(0.3, 2e-6).unwrap();
        let (eps, delta) = l.basic_composition();
        assert!((eps - 0.8).abs() < 1e-15);
        assert!((delta - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn advanced_composition_matches_drv_formula_homogeneous() {
        // k identical (ε, 0) entries: ε* = ε√(2k ln(1/δ′)) + kε(e^ε − 1).
        let (k, eps, dp) = (20usize, 0.1, 1e-6);
        let mut l = EpsDeltaLedger::new();
        for _ in 0..k {
            l.record(eps, 0.0).unwrap();
        }
        let (e_adv, d_adv) = l.advanced_composition(dp).unwrap();
        let expected = eps * (2.0 * (k as f64) * (1.0f64 / dp).ln()).sqrt()
            + k as f64 * eps * (eps.exp() - 1.0);
        assert!((e_adv - expected).abs() < 1e-12, "{e_adv} vs {expected}");
        assert!((d_adv - dp).abs() < 1e-18);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_queries() {
        let mut l = EpsDeltaLedger::new();
        for _ in 0..100 {
            l.record(0.05, 0.0).unwrap();
        }
        let (basic, _) = l.basic_composition();
        let (adv, _) = l.advanced_composition(1e-6).unwrap();
        assert!(adv < basic, "advanced {adv} should beat basic {basic} = 5");
        let (best, best_d) = l.best_composition(1e-6).unwrap();
        assert_eq!(best, adv);
        assert!((best_d - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn basic_beats_advanced_for_one_large_query() {
        let mut l = EpsDeltaLedger::new();
        l.record(2.0, 0.0).unwrap();
        let (basic, basic_d) = l.basic_composition();
        let (adv, _) = l.advanced_composition(1e-6).unwrap();
        assert!(basic < adv);
        let best = l.best_composition(1e-6).unwrap();
        assert_eq!(best, (basic, basic_d), "best must fall back to basic");
    }

    #[test]
    fn advanced_composition_validates_slack() {
        let mut l = EpsDeltaLedger::new();
        l.record(0.1, 0.0).unwrap();
        assert!(l.advanced_composition(0.0).is_err());
        assert!(l.advanced_composition(1.0).is_err());
        assert!(l.advanced_composition(f64::NAN).is_err());
    }

    #[test]
    fn empty_ledger_composes_to_zero() {
        let l = EpsDeltaLedger::new();
        assert_eq!(l.basic_composition(), (0.0, 0.0));
        // No invocations ⇒ exactly (0, 0): the δ′ slack buys nothing and
        // must not be charged.
        assert_eq!(l.advanced_composition(1e-6).unwrap(), (0.0, 0.0));
        assert_eq!(l.best_composition(1e-6).unwrap(), (0.0, 0.0));
    }

    #[test]
    fn huge_epsilon_falls_back_to_basic_instead_of_infinity() {
        // ε ≈ 710 overflows εᵢ·(e^{εᵢ}−1) to inf; the advanced bound must
        // degrade to the (always valid) basic bound, not poison
        // best_composition with a non-finite ε.
        let mut l = EpsDeltaLedger::new();
        l.record(710.0, 0.0).unwrap();
        l.record(0.1, 1e-7).unwrap();
        let basic = l.basic_composition();
        let adv = l.advanced_composition(1e-6).unwrap();
        assert!(adv.0.is_finite(), "advanced ε must stay finite");
        assert_eq!(adv, basic);
        let best = l.best_composition(1e-6).unwrap();
        assert!(best.0.is_finite());
        assert_eq!(best, basic);
    }

    #[test]
    fn mixed_laplace_gaussian_workload_audit() {
        // The repo's own mixed workload: 5 Laplace fits at ε = 0.2 and
        // 5 Gaussian fits at (0.2, 1e−7). Basic: (2.0, 5e−7).
        let mut l = EpsDeltaLedger::new();
        for _ in 0..5 {
            l.record(0.2, 0.0).unwrap();
            l.record(0.2, 1e-7).unwrap();
        }
        let (eps_b, delta_b) = l.basic_composition();
        assert!((eps_b - 2.0).abs() < 1e-12);
        assert!((delta_b - 5e-7).abs() < 1e-18);
        // At k = 10 invocations of ε = 0.2, the √k saving does not yet pay
        // for the √(2 ln(1/δ′)) factor — best_composition must fall back to
        // basic rather than report the looser advanced bound.
        let (eps_a, _) = l.advanced_composition(1e-6).unwrap();
        assert!(eps_a > eps_b, "advanced {eps_a} only wins at larger k");
        let best = l.best_composition(1e-6).unwrap();
        assert_eq!(best, (eps_b, delta_b));
    }
}
