//! The exponential mechanism (McSherry & Talwar, FOCS 2007) for queries
//! with *discrete* output spaces.
//!
//! The paper's related-work section (§2) positions this as the complement
//! of the Laplace mechanism: where Laplace perturbs real-valued outputs,
//! the exponential mechanism selects one of `k` candidates `r₁…r_k` with
//! probability proportional to `exp(ε·u(D, rᵢ) / (2·Δu))`, where `u` is a
//! utility score and `Δu = max_r max_{D₁~D₂} |u(D₁, r) − u(D₂, r)|` its
//! per-tuple sensitivity. The result is ε-differentially private.
//!
//! In this workspace it powers **private model selection** — choosing a
//! hyper-parameter (e.g. the §6.1 regularization multiplier) by utility on
//! a validation split without leaking that split (see
//! `examples/model_selection.rs`).

use rand::Rng;

use crate::{PrivacyError, Result};

/// A configured exponential mechanism: privacy budget + utility sensitivity.
///
/// ```
/// use fm_privacy::exponential::ExponentialMechanism;
/// use rand::SeedableRng;
///
/// let mech = ExponentialMechanism::new(1.0, 0.5).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// // Three candidates; the last has the highest utility.
/// let winner = mech.select(&[0.1, 0.2, 5.0], &mut rng).unwrap();
/// assert_eq!(winner, 2); // overwhelmingly likely at this ε/Δu
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExponentialMechanism {
    epsilon: f64,
    utility_sensitivity: f64,
}

impl ExponentialMechanism {
    /// Creates a mechanism with privacy budget `epsilon` and utility
    /// sensitivity `utility_sensitivity` (`Δu`).
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] if either parameter is
    /// non-positive or non-finite.
    pub fn new(epsilon: f64, utility_sensitivity: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "finite and > 0",
            });
        }
        if !utility_sensitivity.is_finite() || utility_sensitivity <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "utility_sensitivity",
                value: utility_sensitivity,
                constraint: "finite and > 0",
            });
        }
        Ok(ExponentialMechanism {
            epsilon,
            utility_sensitivity,
        })
    }

    /// The privacy parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The utility sensitivity Δu.
    #[must_use]
    pub fn utility_sensitivity(&self) -> f64 {
        self.utility_sensitivity
    }

    /// The normalized selection probabilities
    /// `P(i) ∝ exp(ε·uᵢ / (2Δu))`, computed stably (max-shifted softmax).
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] for an empty candidate list or a
    /// non-finite utility.
    pub fn selection_probabilities(&self, utilities: &[f64]) -> Result<Vec<f64>> {
        if utilities.is_empty() {
            return Err(PrivacyError::InvalidParameter {
                name: "utilities",
                value: 0.0,
                constraint: "a non-empty candidate list",
            });
        }
        if let Some(&bad) = utilities.iter().find(|u| !u.is_finite()) {
            return Err(PrivacyError::InvalidParameter {
                name: "utilities",
                value: bad,
                constraint: "finite utility scores",
            });
        }
        let scale = self.epsilon / (2.0 * self.utility_sensitivity);
        let max = utilities.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = utilities
            .iter()
            .map(|&u| ((u - max) * scale).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        Ok(weights.into_iter().map(|w| w / total).collect())
    }

    /// Selects a candidate index with probability
    /// `∝ exp(ε·uᵢ / (2Δu))` — the ε-DP release.
    ///
    /// # Errors
    /// As [`ExponentialMechanism::selection_probabilities`].
    pub fn select(&self, utilities: &[f64], rng: &mut impl Rng) -> Result<usize> {
        let probs = self.selection_probabilities(utilities)?;
        let mut u: f64 = rng.gen();
        for (i, &p) in probs.iter().enumerate() {
            if u < p {
                return Ok(i);
            }
            u -= p;
        }
        // Floating-point round-off: fall back to the last candidate.
        Ok(probs.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(606)
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ExponentialMechanism::new(0.0, 1.0).is_err());
        assert!(ExponentialMechanism::new(1.0, 0.0).is_err());
        assert!(ExponentialMechanism::new(f64::NAN, 1.0).is_err());
        assert!(ExponentialMechanism::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_bad_utilities() {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut r = rng();
        assert!(m.select(&[], &mut r).is_err());
        assert!(m.select(&[1.0, f64::NAN], &mut r).is_err());
        assert!(m.selection_probabilities(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn probabilities_normalize_and_order_by_utility() {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let p = m.selection_probabilities(&[0.0, 1.0, 2.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
        // Exact ratio: p[2]/p[1] = exp(ε/(2Δu)) = e^{1/2}.
        assert!((p[2] / p[1] - 0.5f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn probabilities_invariant_to_utility_shift() {
        let m = ExponentialMechanism::new(0.7, 2.0).unwrap();
        let a = m.selection_probabilities(&[0.0, 3.0, 1.0]).unwrap();
        let b = m.selection_probabilities(&[100.0, 103.0, 101.0]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_theory() {
        let m = ExponentialMechanism::new(2.0, 1.0).unwrap();
        let utilities = [0.0, 1.0, 0.5];
        let theory = m.selection_probabilities(&utilities).unwrap();
        let mut r = rng();
        let n = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[m.select(&utilities, &mut r).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - theory[i]).abs() < 0.01,
                "candidate {i}: {freq} vs {}",
                theory[i]
            );
        }
    }

    #[test]
    fn higher_epsilon_concentrates_on_the_best() {
        let utilities = [0.0, 1.0];
        let weak = ExponentialMechanism::new(0.1, 1.0).unwrap();
        let strong = ExponentialMechanism::new(10.0, 1.0).unwrap();
        let pw = weak.selection_probabilities(&utilities).unwrap();
        let ps = strong.selection_probabilities(&utilities).unwrap();
        assert!(ps[1] > pw[1]);
        assert!(ps[1] > 0.99);
        // At ε → 0 the choice approaches uniform.
        let tiny = ExponentialMechanism::new(1e-6, 1.0).unwrap();
        let pt = tiny.selection_probabilities(&utilities).unwrap();
        assert!((pt[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn large_utility_gaps_are_numerically_stable() {
        // Max-shifted softmax must not overflow even with huge scores.
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let p = m.selection_probabilities(&[-1e305, 0.0, 1e305]).unwrap();
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_candidate_always_selected() {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut r = rng();
        assert_eq!(m.select(&[42.0], &mut r).unwrap(), 0);
    }

    #[test]
    fn dp_ratio_bound_between_neighbour_utilities() {
        // The defining property: shifting every utility by at most Δu
        // (a neighbour-database change) moves each selection probability by
        // at most a factor e^ε. Verify on a worst-case shift pattern.
        let eps = 1.0;
        let du = 0.5;
        let m = ExponentialMechanism::new(eps, du).unwrap();
        let u1 = [0.3, 1.2, 0.7, 2.0];
        // Adversarial neighbour: the chosen candidate loses Δu, all others
        // gain Δu.
        for target in 0..u1.len() {
            let u2: Vec<f64> = u1
                .iter()
                .enumerate()
                .map(|(i, &u)| if i == target { u - du } else { u + du })
                .collect();
            let p1 = m.selection_probabilities(&u1).unwrap();
            let p2 = m.selection_probabilities(&u2).unwrap();
            let ratio = p1[target] / p2[target];
            assert!(
                ratio <= eps.exp() + 1e-9,
                "candidate {target}: ratio {ratio} exceeds e^ε"
            );
        }
    }
}
