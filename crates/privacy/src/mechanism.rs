//! Noise mechanisms for vector-valued queries.
//!
//! * [`LaplaceMechanism`] (Dwork et al., TCC 2006): given a query
//!   `Q : D → ℝᵏ` with L1 sensitivity
//!   `S(Q) = max_{D₁~D₂} ‖Q(D₁) − Q(D₂)‖₁` (Equation 1 of the paper),
//!   adding i.i.d. `Lap(S(Q)/ε)` noise to each output coordinate satisfies
//!   ε-differential privacy. The functional mechanism is exactly this
//!   applied to the vector of polynomial coefficients of the objective
//!   function.
//! * [`GaussianMechanism`] (Dwork & Roth, Thm. A.1): for the relaxed
//!   (ε, δ)-DP the paper's related-work section discusses, adding i.i.d.
//!   `N(0, σ²)` noise with `σ = S₂(Q)·√(2 ln(1.25/δ))/ε` — calibrated to
//!   the **L2** sensitivity — suffices when `ε < 1`. Because the L2
//!   sensitivity of regression coefficient vectors is *dimension-
//!   independent* (every per-tuple block is bounded by `‖x‖₂ ≤ 1`), this
//!   variant trades the δ relaxation for dramatically less noise at high
//!   `d`; the `fm-bench` ablations quantify the trade.

use rand::Rng;

use crate::laplace::Laplace;
use crate::{PrivacyError, Result};

/// A configured Laplace mechanism: sensitivity + ε ⇒ noise scale.
///
/// ```
/// use fm_privacy::mechanism::LaplaceMechanism;
/// use rand::SeedableRng;
///
/// let mech = LaplaceMechanism::new(2.0, 0.5).unwrap(); // S(Q)=2, ε=0.5
/// assert_eq!(mech.noise_scale(), 4.0);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let noisy = mech.privatize(&[10.0, 20.0], &mut rng);
/// assert_eq!(noisy.len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    sensitivity: f64,
    epsilon: f64,
    noise: Laplace,
}

impl LaplaceMechanism {
    /// Creates a mechanism for a query with the given L1 `sensitivity`,
    /// targeting `epsilon`-DP.
    ///
    /// # Errors
    /// [`crate::PrivacyError::InvalidParameter`] if either parameter is
    /// non-positive or non-finite.
    pub fn new(sensitivity: f64, epsilon: f64) -> Result<Self> {
        let noise = Laplace::from_sensitivity(sensitivity, epsilon)?;
        Ok(LaplaceMechanism {
            sensitivity,
            epsilon,
            noise,
        })
    }

    /// The query's L1 sensitivity.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The privacy parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Laplace scale `S(Q)/ε` applied to each coordinate.
    #[must_use]
    pub fn noise_scale(&self) -> f64 {
        self.noise.scale()
    }

    /// Standard deviation of the per-coordinate noise (`√2·S/ε`); the paper's
    /// §6.1 regularization constant is 4× this value.
    #[must_use]
    pub fn noise_std_dev(&self) -> f64 {
        self.noise.std_dev()
    }

    /// Underlying noise distribution.
    #[must_use]
    pub fn distribution(&self) -> Laplace {
        self.noise
    }

    /// Returns `values + Lap(S/ε)ᵏ` as a new vector.
    pub fn privatize(&self, values: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        values.iter().map(|&v| v + self.noise.sample(rng)).collect()
    }

    /// Adds noise to `values` in place.
    pub fn privatize_in_place(&self, values: &mut [f64], rng: &mut impl Rng) {
        for v in values {
            *v += self.noise.sample(rng);
        }
    }

    /// Privatizes a single scalar.
    pub fn privatize_scalar(&self, value: f64, rng: &mut impl Rng) -> f64 {
        value + self.noise.sample(rng)
    }
}

/// The classical Gaussian mechanism for (ε, δ)-differential privacy
/// (Dwork & Roth, *The Algorithmic Foundations of Differential Privacy*,
/// Theorem A.1).
///
/// For a query with **L2** sensitivity
/// `S₂(Q) = max_{D₁~D₂} ‖Q(D₁) − Q(D₂)‖₂`, adding i.i.d. `N(0, σ²)` noise
/// with `σ = S₂·√(2 ln(1.25/δ))/ε` to each coordinate satisfies
/// (ε, δ)-DP for `ε ∈ (0, 1)` and `δ ∈ (0, 1)`.
///
/// The `ε < 1` restriction is inherent to the classical calibration; this
/// implementation rejects `ε ≥ 1` rather than silently under-noising.
///
/// ```
/// use fm_privacy::mechanism::GaussianMechanism;
/// use rand::SeedableRng;
///
/// let mech = GaussianMechanism::new(2.0, 0.5, 1e-6).unwrap();
/// assert!(mech.noise_std_dev() > 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let noisy = mech.privatize(&[10.0, 20.0], &mut rng);
/// assert_eq!(noisy.len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GaussianMechanism {
    l2_sensitivity: f64,
    epsilon: f64,
    delta: f64,
    sigma: f64,
}

impl GaussianMechanism {
    /// Creates a mechanism for a query with the given **L2**
    /// `l2_sensitivity`, targeting `(epsilon, delta)`-DP.
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] unless `l2_sensitivity > 0`,
    /// `0 < epsilon < 1` and `0 < delta < 1`, all finite.
    pub fn new(l2_sensitivity: f64, epsilon: f64, delta: f64) -> Result<Self> {
        if !l2_sensitivity.is_finite() || l2_sensitivity <= 0.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "l2_sensitivity",
                value: l2_sensitivity,
                constraint: "finite and > 0",
            });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "in (0, 1) for the classical Gaussian mechanism",
            });
        }
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(PrivacyError::InvalidParameter {
                name: "delta",
                value: delta,
                constraint: "in (0, 1)",
            });
        }
        let sigma = l2_sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
        Ok(GaussianMechanism {
            l2_sensitivity,
            epsilon,
            delta,
            sigma,
        })
    }

    /// The query's L2 sensitivity.
    #[must_use]
    pub fn l2_sensitivity(&self) -> f64 {
        self.l2_sensitivity
    }

    /// The privacy parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure probability δ.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The per-coordinate noise standard deviation
    /// `σ = S₂·√(2 ln(1.25/δ))/ε`.
    #[must_use]
    pub fn noise_std_dev(&self) -> f64 {
        self.sigma
    }

    /// Returns `values + N(0, σ²)ᵏ` as a new vector.
    pub fn privatize(&self, values: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        values
            .iter()
            .map(|&v| v + crate::gaussian::normal(rng, 0.0, self.sigma))
            .collect()
    }

    /// Adds noise to `values` in place.
    pub fn privatize_in_place(&self, values: &mut [f64], rng: &mut impl Rng) {
        for v in values {
            *v += crate::gaussian::normal(rng, 0.0, self.sigma);
        }
    }

    /// Privatizes a single scalar.
    pub fn privatize_scalar(&self, value: f64, rng: &mut impl Rng) -> f64 {
        value + crate::gaussian::normal(rng, 0.0, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(8.0, 0.8).unwrap();
        assert!((m.noise_scale() - 10.0).abs() < 1e-12);
        assert_eq!(m.sensitivity(), 8.0);
        assert_eq!(m.epsilon(), 0.8);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::new(-1.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn privatize_preserves_length_and_changes_values() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let mut r = rng();
        let original = vec![1.0, 2.0, 3.0, 4.0];
        let noisy = m.privatize(&original, &mut r);
        assert_eq!(noisy.len(), 4);
        // With continuous noise the probability of any exact match is zero.
        assert!(noisy.iter().zip(&original).all(|(a, b)| a != b));
    }

    #[test]
    fn privatize_in_place_matches_distributional_scale() {
        let m = LaplaceMechanism::new(2.0, 0.5).unwrap(); // scale 4, var 32
        let mut r = rng();
        let n = 100_000;
        let mut values = vec![0.0; n];
        m.privatize_in_place(&mut values, &mut r);
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 32.0).abs() < 1.5, "variance {var}");
    }

    #[test]
    fn higher_epsilon_means_less_noise() {
        let strict = LaplaceMechanism::new(1.0, 0.1).unwrap();
        let loose = LaplaceMechanism::new(1.0, 10.0).unwrap();
        assert!(strict.noise_scale() > loose.noise_scale());
        assert!(strict.noise_std_dev() > loose.noise_std_dev());
    }

    #[test]
    fn scalar_privatization_unbiased() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| m.privatize_scalar(42.0, &mut r))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 42.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gaussian_sigma_matches_dwork_roth_formula() {
        let m = GaussianMechanism::new(3.0, 0.5, 1e-5).unwrap();
        let expected = 3.0 * (2.0f64 * (1.25f64 / 1e-5).ln()).sqrt() / 0.5;
        assert!((m.noise_std_dev() - expected).abs() < 1e-12);
        assert_eq!(m.l2_sensitivity(), 3.0);
        assert_eq!(m.epsilon(), 0.5);
        assert_eq!(m.delta(), 1e-5);
    }

    #[test]
    fn gaussian_rejects_invalid_parameters() {
        assert!(GaussianMechanism::new(0.0, 0.5, 1e-5).is_err());
        assert!(GaussianMechanism::new(1.0, 0.0, 1e-5).is_err());
        // ε ≥ 1 is outside the classical theorem's validity.
        assert!(GaussianMechanism::new(1.0, 1.0, 1e-5).is_err());
        assert!(GaussianMechanism::new(1.0, 2.0, 1e-5).is_err());
        assert!(GaussianMechanism::new(1.0, 0.5, 0.0).is_err());
        assert!(GaussianMechanism::new(1.0, 0.5, 1.0).is_err());
        assert!(GaussianMechanism::new(f64::NAN, 0.5, 1e-5).is_err());
    }

    #[test]
    fn gaussian_noise_has_calibrated_spread() {
        let m = GaussianMechanism::new(1.0, 0.5, 1e-4).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut values = vec![0.0; n];
        m.privatize_in_place(&mut values, &mut r);
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sigma2 = m.noise_std_dev() * m.noise_std_dev();
        assert!(mean.abs() < m.noise_std_dev() * 0.02, "mean {mean}");
        assert!(
            (var - sigma2).abs() < sigma2 * 0.05,
            "var {var} vs {sigma2}"
        );
    }

    #[test]
    fn gaussian_smaller_delta_means_more_noise() {
        let loose = GaussianMechanism::new(1.0, 0.5, 1e-2).unwrap();
        let strict = GaussianMechanism::new(1.0, 0.5, 1e-9).unwrap();
        assert!(strict.noise_std_dev() > loose.noise_std_dev());
    }

    #[test]
    fn gaussian_scalar_unbiased() {
        let m = GaussianMechanism::new(1.0, 0.9, 1e-6).unwrap();
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| m.privatize_scalar(7.0, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn empirical_dp_ratio_bound_on_counts() {
        // A crude end-to-end DP sanity check: for the count query with
        // sensitivity 1, compare the distribution of noisy outputs for two
        // neighbour databases (true counts 10 and 11). Binned likelihood
        // ratios must respect e^ε within sampling slack.
        let eps = 1.0;
        let m = LaplaceMechanism::new(1.0, eps).unwrap();
        let mut r = rng();
        let n = 400_000;
        let mut hist_a = [0u32; 40];
        let mut hist_b = [0u32; 40];
        let bin = |x: f64| -> Option<usize> {
            let idx = ((x - 0.0) / 0.5).floor();
            if (0.0..40.0).contains(&idx) {
                Some(idx as usize)
            } else {
                None
            }
        };
        for _ in 0..n {
            if let Some(i) = bin(m.privatize_scalar(10.0, &mut r)) {
                hist_a[i] += 1;
            }
            if let Some(i) = bin(m.privatize_scalar(11.0, &mut r)) {
                hist_b[i] += 1;
            }
        }
        let bound = eps.exp() * 1.25; // 25% sampling slack
        for i in 0..40 {
            if hist_a[i] > 500 && hist_b[i] > 500 {
                let ratio = f64::from(hist_a[i]) / f64::from(hist_b[i]);
                assert!(
                    ratio < bound && 1.0 / ratio < bound,
                    "bin {i}: ratio {ratio} exceeds e^ε bound {bound}"
                );
            }
        }
    }
}
