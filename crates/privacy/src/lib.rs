//! Differential-privacy primitives for the `functional-mechanism` workspace.
//!
//! Implements, from scratch (the only dependency is `rand` for raw uniform
//! bits), the machinery that Section 3 of *Functional Mechanism: Regression
//! Analysis under Differential Privacy* (Zhang et al., VLDB 2012) builds on:
//!
//! * [`laplace::Laplace`] — the Laplace distribution `Lap(s)` with
//!   inverse-CDF sampling, used by Algorithm 1 to perturb polynomial
//!   coefficients with scale `Δ/ε`.
//! * [`mechanism::LaplaceMechanism`] — the classic Dwork et al. mechanism
//!   for vector-valued queries with known L1 sensitivity (Equation 1 of the
//!   paper); also used by the DPME and Filter-Priority baselines to noise
//!   histogram counts.
//! * [`mechanism::GaussianMechanism`] — the classical (ε, δ) Gaussian
//!   mechanism calibrated to L2 sensitivity, backing the relaxed-privacy
//!   variant of the functional mechanism (the paper's related work
//!   discusses (ε, δ)-DP; the `fm-bench` ablations measure what the
//!   relaxation buys).
//! * [`exponential::ExponentialMechanism`] — McSherry & Talwar's mechanism
//!   for discrete output spaces (cited in the paper's §2), used here for
//!   ε-DP model selection over hyper-parameter candidates.
//! * [`budget::PrivacyBudget`] — an ε accountant with sequential
//!   composition, used to implement (and test) Lemma 5's claim that
//!   "re-run until bounded" costs `2ε`.
//! * [`gaussian`] — a Box–Muller standard-normal sampler backing both the
//!   Gaussian mechanism and the synthetic census generator in `fm-data`.
//!
//! # Determinism
//!
//! Every sampling function takes `&mut impl rand::Rng`; given a seeded RNG
//! the entire workspace is reproducible bit-for-bit. No global RNG state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod exponential;
pub mod gaussian;
pub mod laplace;
pub mod mechanism;
pub mod rdp;
pub mod wal;

mod error;

pub use error::PrivacyError;

/// Result alias for fallible privacy operations.
pub type Result<T> = std::result::Result<T, PrivacyError>;
