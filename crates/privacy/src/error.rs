use std::fmt;

/// Errors produced by privacy primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// A privacy parameter was outside its valid domain.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint that was violated.
        constraint: &'static str,
    },
    /// A budget spend would exceed the remaining ε.
    BudgetExhausted {
        /// ε requested by the operation.
        requested: f64,
        /// ε still available.
        remaining: f64,
    },
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid {name} = {value}: must be {constraint}"),
            PrivacyError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε = {requested}, remaining ε = {remaining}"
            ),
        }
    }
}

impl std::error::Error for PrivacyError {}
