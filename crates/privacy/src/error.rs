use std::fmt;

/// Errors produced by privacy primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// A privacy parameter was outside its valid domain.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint that was violated.
        constraint: &'static str,
    },
    /// A budget spend would exceed the remaining ε.
    BudgetExhausted {
        /// ε requested by the operation.
        requested: f64,
        /// ε still available.
        remaining: f64,
    },
    /// A durable-ledger (write-ahead log) operation failed.
    ///
    /// Carries the failing operation and a human-readable detail string
    /// rather than the underlying `io::Error` so the error type stays
    /// `Clone + PartialEq` like the rest of the crate.
    Durability {
        /// The WAL operation that failed (e.g. `"reserve"`, `"recover"`).
        op: &'static str,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid {name} = {value}: must be {constraint}"),
            PrivacyError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε = {requested}, remaining ε = {remaining}"
            ),
            PrivacyError::Durability { op, detail } => {
                write!(f, "durable ledger {op} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for PrivacyError {}
