//! Released model artefacts and the unified [`Model`] trait.
//!
//! A fitted model is just its parameter vector `ω̄` — the output of
//! Algorithm 1 — plus the fit metadata. Predictions are deterministic
//! functions of `ω̄` and the query point, so they are post-processing and
//! carry the same ε-DP guarantee as the parameters themselves.
//!
//! All model types optionally carry an **intercept** `b` (the paper's
//! footnote-2 generalisation `ŷ = xᵀω + b`); models fitted without one have
//! `b = 0` and behave exactly as Definition 1/2 prescribe.
//!
//! The three concrete families — [`LinearModel`], [`LogisticModel`],
//! [`PoissonModel`] — share one dyn-compatible [`Model`] trait (weights,
//! intercept, spent ε, task-appropriate batch prediction), which is what
//! [`crate::persist::SavedModel`] and the generic cross-validation in
//! [`crate::session`] consume instead of matching per kind. The sized
//! companion trait [`PersistableModel`] adds the construction direction
//! (kind tag + `from_parts`) used by persistence round-trips and by the
//! generic [`crate::estimator::FmEstimator`] fit path.

use fm_linalg::{vecops, Matrix};

/// Which regression family a model (or estimator) belongs to — the `task`
/// metadata of [`crate::estimator::DpEstimator`] and the `kind` tag of
/// serialised [`crate::persist::SavedModel`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// `ŷ = xᵀω + b` (Definition 1 / footnote 2).
    Linear,
    /// `P(y=1|x) = σ(xᵀω + b)` (Definition 2).
    Logistic,
    /// `λ(x) = exp(xᵀω + b)` (the §8 count-regression extension).
    Poisson,
}

impl ModelKind {
    /// Stable lower-case name (used by the `fm-model v1` text format and
    /// experiment reports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::Logistic => "logistic",
            ModelKind::Poisson => "poisson",
        }
    }
}

/// The family-agnostic surface of a released regression model.
///
/// Everything here is post-processing of the (already private) parameter
/// vector, so generic consumers — persistence, cross-validation, the
/// benchmark harness — inherit the fit's (ε[, δ]) guarantee for free.
/// The trait is dyn-compatible: `Box<dyn Model>` works for heterogeneous
/// model stores.
pub trait Model {
    /// The regression family this model belongs to.
    fn kind(&self) -> ModelKind;

    /// The parameter vector `ω`.
    fn weights(&self) -> &[f64];

    /// The intercept `b` (0 when fitted without one).
    fn intercept(&self) -> f64;

    /// Privacy budget spent fitting, if any (`None` for non-private
    /// baselines).
    fn epsilon(&self) -> Option<f64>;

    /// Dimensionality `d` (excluding the intercept).
    fn dim(&self) -> usize {
        self.weights().len()
    }

    /// The family's natural point prediction: `ŷ` for linear,
    /// `P(y = 1 | x)` for logistic, the rate `λ(x)` for Poisson.
    fn predict(&self, x: &[f64]) -> f64;

    /// [`Model::predict`] for every row of `x`.
    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

/// The sized companion of [`Model`]: a statically-known family tag plus
/// the constructor persistence and the generic estimator core use to
/// materialise a model from raw parts.
pub trait PersistableModel: Model + Sized {
    /// The family tag, known without an instance (what
    /// [`crate::persist::SavedModel::into_model`] checks against).
    const KIND: ModelKind;

    /// Builds a model from its released parts.
    fn from_parts(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self;
}

/// A fitted linear-regression model `ρ(x) = xᵀω + b` (Definition 1;
/// footnote 2 for the intercept `b`).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    intercept: f64,
    epsilon: Option<f64>,
}

impl LinearModel {
    /// Wraps a parameter vector with no intercept; `epsilon` records the
    /// privacy budget spent fitting it (`None` for non-private baselines).
    #[must_use]
    pub fn new(weights: Vec<f64>, epsilon: Option<f64>) -> Self {
        LinearModel {
            weights,
            intercept: 0.0,
            epsilon,
        }
    }

    /// Wraps a parameter vector together with an intercept term.
    #[must_use]
    pub fn with_intercept(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self {
        LinearModel {
            weights,
            intercept,
            epsilon,
        }
    }

    /// The model parameters `ω`.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept `b` (0 when the model was fitted without one).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Privacy budget spent fitting, if any.
    #[must_use]
    pub fn epsilon(&self) -> Option<f64> {
        self.epsilon
    }

    /// Dimensionality `d` (excluding the intercept).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Predicts `ŷ = xᵀω + b`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        vecops::dot(x, &self.weights) + self.intercept
    }

    /// Predicts for every row of `x`.
    #[must_use]
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }
}

/// A fitted logistic-regression model
/// `P(y = 1 | x) = exp(xᵀω + b)/(1 + exp(xᵀω + b))` (Definition 2;
/// footnote-2-style intercept `b`).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    weights: Vec<f64>,
    intercept: f64,
    epsilon: Option<f64>,
}

impl LogisticModel {
    /// Wraps a parameter vector with no intercept; `epsilon` records the
    /// privacy budget spent fitting it (`None` for non-private baselines).
    #[must_use]
    pub fn new(weights: Vec<f64>, epsilon: Option<f64>) -> Self {
        LogisticModel {
            weights,
            intercept: 0.0,
            epsilon,
        }
    }

    /// Wraps a parameter vector together with an intercept term.
    #[must_use]
    pub fn with_intercept(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self {
        LogisticModel {
            weights,
            intercept,
            epsilon,
        }
    }

    /// The model parameters `ω`.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept `b` (0 when the model was fitted without one).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Privacy budget spent fitting, if any.
    #[must_use]
    pub fn epsilon(&self) -> Option<f64> {
        self.epsilon
    }

    /// Dimensionality `d` (excluding the intercept).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The probability `P(y = 1 | x) = σ(xᵀω + b)`, computed stably.
    #[must_use]
    pub fn probability(&self, x: &[f64]) -> f64 {
        let z = vecops::dot(x, &self.weights) + self.intercept;
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Class prediction: `1` iff `P(y = 1 | x) > ½` (Section 7's rule).
    #[must_use]
    pub fn predict_class(&self, x: &[f64]) -> f64 {
        f64::from(self.probability(x) > 0.5)
    }

    /// Probabilities for every row of `x`.
    #[must_use]
    pub fn probabilities_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.probability(x.row(r))).collect()
    }
}

/// A fitted Poisson-regression model with rate `λ(x) = exp(xᵀω + b)` (the
/// §8 count-regression extension).
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonModel {
    weights: Vec<f64>,
    intercept: f64,
    epsilon: Option<f64>,
}

impl PoissonModel {
    /// Wraps a parameter vector (no intercept).
    #[must_use]
    pub fn new(weights: Vec<f64>, epsilon: Option<f64>) -> Self {
        PoissonModel {
            weights,
            intercept: 0.0,
            epsilon,
        }
    }

    /// Wraps a parameter vector together with an intercept term.
    #[must_use]
    pub fn with_intercept(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self {
        PoissonModel {
            weights,
            intercept,
            epsilon,
        }
    }

    /// The model parameters `ω`.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept `b` (0 when fitted without one).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Privacy budget spent fitting, if any.
    #[must_use]
    pub fn epsilon(&self) -> Option<f64> {
        self.epsilon
    }

    /// Dimensionality `d` (excluding the intercept).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The log-rate `xᵀω + b`.
    #[must_use]
    pub fn log_rate(&self, x: &[f64]) -> f64 {
        vecops::dot(x, &self.weights) + self.intercept
    }

    /// The predicted rate (= expected count) `λ(x) = exp(xᵀω + b)`.
    #[must_use]
    pub fn rate(&self, x: &[f64]) -> f64 {
        self.log_rate(x).exp()
    }

    /// Rates for every row of `x`.
    #[must_use]
    pub fn rates_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.rate(x.row(r))).collect()
    }
}

impl Model for LinearModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Linear
    }
    fn weights(&self) -> &[f64] {
        LinearModel::weights(self)
    }
    fn intercept(&self) -> f64 {
        LinearModel::intercept(self)
    }
    fn epsilon(&self) -> Option<f64> {
        LinearModel::epsilon(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        LinearModel::predict(self, x)
    }
}

impl PersistableModel for LinearModel {
    const KIND: ModelKind = ModelKind::Linear;
    fn from_parts(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self {
        LinearModel::with_intercept(weights, intercept, epsilon)
    }
}

impl Model for LogisticModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Logistic
    }
    fn weights(&self) -> &[f64] {
        LogisticModel::weights(self)
    }
    fn intercept(&self) -> f64 {
        LogisticModel::intercept(self)
    }
    fn epsilon(&self) -> Option<f64> {
        LogisticModel::epsilon(self)
    }
    /// The task-natural prediction: `P(y = 1 | x)`.
    fn predict(&self, x: &[f64]) -> f64 {
        self.probability(x)
    }
}

impl PersistableModel for LogisticModel {
    const KIND: ModelKind = ModelKind::Logistic;
    fn from_parts(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self {
        LogisticModel::with_intercept(weights, intercept, epsilon)
    }
}

impl Model for PoissonModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Poisson
    }
    fn weights(&self) -> &[f64] {
        PoissonModel::weights(self)
    }
    fn intercept(&self) -> f64 {
        PoissonModel::intercept(self)
    }
    fn epsilon(&self) -> Option<f64> {
        PoissonModel::epsilon(self)
    }
    /// The task-natural prediction: the rate `λ(x)`.
    fn predict(&self, x: &[f64]) -> f64 {
        self.rate(x)
    }
}

impl PersistableModel for PoissonModel {
    const KIND: ModelKind = ModelKind::Poisson;
    fn from_parts(weights: Vec<f64>, intercept: f64, epsilon: Option<f64>) -> Self {
        PoissonModel::with_intercept(weights, intercept, epsilon)
    }
}

/// Splits a parameter vector fitted on [`fm_data::Dataset::augment_for_intercept`]'d
/// data back into `(ω, b)` in the *original* feature scale: the augmentation
/// maps `x ↦ (x/√2, 1/√2)`, so `ω_j = ω'_j/√2` and `b = ω'_d/√2`.
///
/// Panics if `omega_aug` is empty (the augmented dimension is always ≥ 1).
#[must_use]
pub(crate) fn split_augmented_weights(mut omega_aug: Vec<f64>) -> (Vec<f64>, f64) {
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let b = omega_aug.pop().expect("augmented weights are non-empty") * inv_sqrt2;
    for w in &mut omega_aug {
        *w *= inv_sqrt2;
    }
    (omega_aug, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_prediction() {
        let m = LinearModel::new(vec![2.0, -1.0], Some(0.8));
        assert_eq!(m.predict(&[1.0, 1.0]), 1.0);
        assert_eq!(m.predict(&[0.0, 3.0]), -3.0);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.epsilon(), Some(0.8));
        assert_eq!(m.intercept(), 0.0);
    }

    #[test]
    fn linear_prediction_with_intercept() {
        let m = LinearModel::with_intercept(vec![2.0], 0.5, None);
        assert_eq!(m.predict(&[1.0]), 2.5);
        assert_eq!(m.intercept(), 0.5);
        assert_eq!(m.dim(), 1);
    }

    #[test]
    fn linear_batch() {
        let m = LinearModel::new(vec![1.0, 0.0], None);
        let x = Matrix::from_rows(&[&[2.0, 9.0], &[-1.0, 5.0]]).unwrap();
        assert_eq!(m.predict_batch(&x), vec![2.0, -1.0]);
        assert_eq!(m.epsilon(), None);
    }

    #[test]
    fn logistic_probability_range_and_midpoint() {
        let m = LogisticModel::new(vec![1.0], None);
        assert!((m.probability(&[0.0]) - 0.5).abs() < 1e-15);
        assert!(m.probability(&[10.0]) > 0.99);
        assert!(m.probability(&[-10.0]) < 0.01);
    }

    #[test]
    fn logistic_intercept_shifts_decision_boundary() {
        let flat = LogisticModel::new(vec![1.0], None);
        let shifted = LogisticModel::with_intercept(vec![1.0], 2.0, None);
        // Same input, higher log-odds with positive intercept.
        assert!(shifted.probability(&[0.0]) > flat.probability(&[0.0]));
        assert!((shifted.probability(&[-2.0]) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn logistic_probability_is_stable_at_extremes() {
        let m = LogisticModel::new(vec![1000.0], None);
        let hi = m.probability(&[1.0]);
        let lo = m.probability(&[-1.0]);
        assert!(hi > 0.0 && hi <= 1.0 && hi.is_finite());
        assert!((0.0..1.0).contains(&lo) && lo.is_finite());
    }

    #[test]
    fn logistic_class_rule_is_strict_majority() {
        let m = LogisticModel::new(vec![1.0], None);
        assert_eq!(m.predict_class(&[0.0]), 0.0); // exactly 0.5 ⇒ class 0
        assert_eq!(m.predict_class(&[0.1]), 1.0);
        assert_eq!(m.predict_class(&[-0.1]), 0.0);
    }

    #[test]
    fn logistic_batch_matches_scalar() {
        let m = LogisticModel::new(vec![0.5, -0.5], Some(1.6));
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let probs = m.probabilities_batch(&x);
        assert_eq!(probs[0], m.probability(&[1.0, 0.0]));
        assert_eq!(probs[1], m.probability(&[0.0, 1.0]));
    }

    #[test]
    fn logistic_symmetry() {
        // σ(−z) = 1 − σ(z).
        let m = LogisticModel::new(vec![1.0], None);
        let p = m.probability(&[0.73]);
        let q = m.probability(&[-0.73]);
        assert!((p + q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_augmented_weights_inverts_augmentation() {
        // Fitting ω' on (x/√2, 1/√2) and splitting must reproduce the
        // prediction xᵀω + b exactly.
        let omega_aug = vec![1.4, -0.6, 0.8];
        let (omega, b) = split_augmented_weights(omega_aug.clone());
        let x = [0.3, -0.5];
        let x_aug = [
            x[0] * std::f64::consts::FRAC_1_SQRT_2,
            x[1] * std::f64::consts::FRAC_1_SQRT_2,
            std::f64::consts::FRAC_1_SQRT_2,
        ];
        let direct = vecops::dot(&x_aug, &omega_aug);
        let split = vecops::dot(&x, &omega) + b;
        assert!((direct - split).abs() < 1e-15);
    }
}
