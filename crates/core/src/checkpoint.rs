//! Checkpointing for streaming fits: serialize and restore the state of a
//! [`CoefficientAccumulator`](crate::assembly::CoefficientAccumulator) /
//! [`PolynomialAccumulator`](crate::generic::PolynomialAccumulator) so a
//! killed out-of-core `partial_fit` can resume **bit-identical** to an
//! uninterrupted run.
//!
//! What makes bit-identity possible is that the streaming accumulator's
//! entire state is small and exact: the fixed chunk grid position (the
//! staged rows of the current partial chunk), the binary-counter merge
//! stack of `O(log n_chunks)` partials, and the row count. All floats are
//! written with Rust's shortest-round-trip formatting — the same regime
//! `persist::SavedModel` uses — so a restored accumulator continues from
//! exactly the floating-point state the interrupted one held, and the
//! final release matches an uninterrupted fit bit for bit.
//!
//! # Format (`fm-checkpoint v1`)
//!
//! Line-oriented ASCII, one `key value…` pair per line, closed by a
//! whole-file checksum:
//!
//! ```text
//! fm-checkpoint v1
//! kind quadratic            (or polynomial)
//! d 4
//! chunk_rows 4096
//! rows 10000
//! reservation 3             (optional: WAL reservation id, see below)
//! staged 2
//! stage_ys <f>…
//! stage_xs <f>…
//! partials 2
//! partial 3                 (counter-stack rank, bottom → top)
//! beta <f>
//! alpha <f>·d
//! m <f>·d²
//! partial 1
//! …
//! checksum <16-hex FNV-1a-64 of every preceding byte>
//! ```
//!
//! Polynomial partials replace the `beta`/`alpha`/`m` lines with
//! `terms <k>` followed by `term <coeff> <e₁> … <e_d>` lines in the
//! polynomial's canonical (degree-major) term order.
//!
//! The checksum closes over the whole file, so truncation or corruption
//! *anywhere* is refused — a half-written checkpoint can never silently
//! resume as a shorter fit. Unknown keys and version mismatches are
//! refused too (same stance as `persist`).
//!
//! # WAL integration: resume never re-debits
//!
//! A checkpoint may carry the WAL reservation id of the in-flight fit
//! ([`crate::session::FitPermit::id`]). On restart, recovery seals that
//! reservation as spent (fail-closed); re-attaching to it via
//! [`crate::session::SharedPrivacySession::resume_reservation`] hands back
//! a permit for the *already-debited* budget, so finishing the resumed fit
//! draws no new ε.

use fm_linalg::Matrix;
use fm_poly::{Monomial, Polynomial, QuadraticForm};
use fm_privacy::wal::checksum64;

use crate::assembly::StreamCore;
use crate::{FmError, Result};

/// Magic first line of a checkpoint file, with the format version.
pub const CHECKPOINT_MAGIC: &str = "fm-checkpoint v1";

fn bad(reason: impl Into<String>) -> FmError {
    FmError::Checkpoint {
        reason: reason.into(),
    }
}

/// The two partial kinds the streaming accumulators checkpoint.
pub(crate) trait CheckpointPartial: Sized {
    /// The `kind` tag in the header.
    const KIND: &'static str;
    fn write(&self, out: &mut String);
    fn parse(lines: &mut LineReader<'_>, d: usize) -> Result<Self>;
}

impl CheckpointPartial for QuadraticForm {
    const KIND: &'static str = "quadratic";

    fn write(&self, out: &mut String) {
        out.push_str("beta ");
        push_f64(out, self.beta());
        out.push('\n');
        push_floats_line(out, "alpha", self.alpha());
        push_floats_line(out, "m", self.m().as_slice());
    }

    fn parse(lines: &mut LineReader<'_>, d: usize) -> Result<Self> {
        let beta = lines.floats("beta", 1)?[0];
        let alpha = lines.floats("alpha", d)?;
        let m = lines.floats("m", d * d)?;
        let m = Matrix::from_vec(d, d, m).map_err(|e| bad(format!("checkpointed m: {e}")))?;
        Ok(QuadraticForm::new(m, alpha, beta))
    }
}

impl CheckpointPartial for Polynomial {
    const KIND: &'static str = "polynomial";

    fn write(&self, out: &mut String) {
        let n_terms = self.terms().count();
        out.push_str(&format!("terms {n_terms}\n"));
        for (phi, coeff) in self.terms() {
            out.push_str("term ");
            push_f64(out, coeff);
            for &e in phi.exponents() {
                out.push_str(&format!(" {e}"));
            }
            out.push('\n');
        }
    }

    fn parse(lines: &mut LineReader<'_>, d: usize) -> Result<Self> {
        let n_terms = lines.usize_field("terms")?;
        let mut poly = Polynomial::zero(d);
        for _ in 0..n_terms {
            let toks = lines.tagged("term")?;
            let mut toks = toks.split(' ');
            let coeff = parse_f64_tok("term coefficient", toks.next())?;
            let exps: Vec<u32> = toks
                .map(|t| {
                    t.parse::<u32>()
                        .map_err(|_| bad(format!("unparseable exponent {t:?}")))
                })
                .collect::<Result<_>>()?;
            if exps.len() != d {
                return Err(bad(format!(
                    "term has {} exponents, checkpoint says d = {d}",
                    exps.len()
                )));
            }
            poly.add_term(Monomial::new(exps), coeff);
        }
        Ok(poly)
    }
}

/// Shortest-round-trip float formatting (bit-exact on reparse, the same
/// regime `persist::SavedModel` relies on).
fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{v}"));
}

fn push_floats_line(out: &mut String, tag: &str, vals: &[f64]) {
    out.push_str(tag);
    for &v in vals {
        out.push(' ');
        push_f64(out, v);
    }
    out.push('\n');
}

fn parse_f64_tok(what: &str, tok: Option<&str>) -> Result<f64> {
    let tok = tok.ok_or_else(|| bad(format!("missing {what}")))?;
    let v: f64 = tok
        .parse()
        .map_err(|_| bad(format!("unparseable {what} {tok:?}")))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(bad(format!("{what} must be finite, got {tok}")))
    }
}

/// Sequential tagged-line reader over the checkpoint body.
pub(crate) struct LineReader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> LineReader<'a> {
    fn next_line(&mut self) -> Result<&'a str> {
        self.lines
            .next()
            .ok_or_else(|| bad("truncated checkpoint body"))
    }

    /// Consumes the next line, requiring tag `tag`; returns the rest.
    fn tagged(&mut self, tag: &str) -> Result<&'a str> {
        let line = self.next_line()?;
        match line.strip_prefix(tag) {
            Some("") => Ok(""),
            Some(rest) if rest.starts_with(' ') => Ok(&rest[1..]),
            _ => Err(bad(format!(
                "expected `{tag} …`, found {line:?} (unknown or out-of-order key)"
            ))),
        }
    }

    fn usize_field(&mut self, tag: &str) -> Result<usize> {
        let rest = self.tagged(tag)?;
        rest.parse::<usize>()
            .map_err(|_| bad(format!("unparseable {tag} {rest:?}")))
    }

    /// Consumes a `tag v0 v1 …` line carrying exactly `n` finite floats.
    fn floats(&mut self, tag: &str, n: usize) -> Result<Vec<f64>> {
        let rest = self.tagged(tag)?;
        let vals: Vec<f64> = rest
            .split(' ')
            .filter(|t| !t.is_empty())
            .map(|t| parse_f64_tok(tag, Some(t)))
            .collect::<Result<_>>()?;
        if vals.len() != n {
            return Err(bad(format!(
                "{tag}: expected {n} values, found {}",
                vals.len()
            )));
        }
        Ok(vals)
    }
}

/// Serializes an accumulator core (plus an optional WAL reservation id)
/// to the versioned, checksummed text format.
pub(crate) fn write_core<T: CheckpointPartial>(
    core: &StreamCore<T>,
    reservation: Option<u64>,
) -> String {
    let mut out = String::new();
    out.push_str(CHECKPOINT_MAGIC);
    out.push('\n');
    out.push_str(&format!("kind {}\n", T::KIND));
    out.push_str(&format!("d {}\n", core.dim()));
    out.push_str(&format!("chunk_rows {}\n", core.chunk_rows()));
    out.push_str(&format!("rows {}\n", core.rows()));
    if let Some(id) = reservation {
        out.push_str(&format!("reservation {id}\n"));
    }
    let (xs, ys) = core.staged();
    out.push_str(&format!("staged {}\n", ys.len()));
    push_floats_line(&mut out, "stage_ys", ys);
    push_floats_line(&mut out, "stage_xs", xs);
    let stack = core.partials();
    out.push_str(&format!("partials {}\n", stack.len()));
    for (rank, part) in stack {
        out.push_str(&format!("partial {rank}\n"));
        part.write(&mut out);
    }
    out.push_str(&format!("checksum {:016x}\n", checksum64(out.as_bytes())));
    out
}

/// Parses and validates a checkpoint, rebuilding the accumulator core.
///
/// Refuses version mismatches, kind mismatches, checksum failures (any
/// truncation or corruption), and structural violations (shapes, counter
/// rank ordering, row accounting).
pub(crate) fn parse_core<T: CheckpointPartial>(text: &str) -> Result<(StreamCore<T>, Option<u64>)> {
    // The checksum line closes over every byte before it.
    let body_end = text
        .rfind("checksum ")
        .ok_or_else(|| bad("missing checksum line (truncated checkpoint?)"))?;
    let (body, sum_line) = text.split_at(body_end);
    let sum_hex = sum_line
        .strip_prefix("checksum ")
        .expect("split at match")
        .trim_end_matches('\n');
    let expected = u64::from_str_radix(sum_hex, 16)
        .map_err(|_| bad(format!("unparseable checksum {sum_hex:?}")))?;
    if checksum64(body.as_bytes()) != expected || sum_hex.len() != 16 {
        return Err(bad("checksum mismatch: checkpoint is corrupt or truncated"));
    }

    let mut lines = LineReader {
        lines: body.lines(),
    };
    let magic = lines.next_line()?;
    if magic != CHECKPOINT_MAGIC {
        return Err(bad(format!(
            "unsupported checkpoint format {magic:?} (expected {CHECKPOINT_MAGIC:?})"
        )));
    }
    let kind = lines.tagged("kind")?;
    if kind != T::KIND {
        return Err(bad(format!(
            "checkpoint holds a {kind} accumulator, expected {}",
            T::KIND
        )));
    }
    let d = lines.usize_field("d")?;
    if d == 0 {
        return Err(bad("checkpointed d must be ≥ 1"));
    }
    let chunk_rows = lines.usize_field("chunk_rows")?;
    if chunk_rows == 0 {
        return Err(bad("checkpointed chunk_rows must be ≥ 1"));
    }
    let rows = lines.usize_field("rows")?;

    // Peek for the optional reservation line.
    let mut rest = lines.lines.clone();
    let reservation = match rest.next() {
        Some(line) if line.starts_with("reservation ") => {
            lines.lines = rest;
            let id = line["reservation ".len()..]
                .parse::<u64>()
                .map_err(|_| bad("unparseable reservation id"))?;
            Some(id)
        }
        _ => None,
    };

    let staged = lines.usize_field("staged")?;
    if staged >= chunk_rows {
        return Err(bad(format!(
            "{staged} staged rows cannot fit a {chunk_rows}-row chunk mid-fill"
        )));
    }
    let stage_ys = lines.floats("stage_ys", staged)?;
    let stage_xs = lines.floats("stage_xs", staged * d)?;

    let n_partials = lines.usize_field("partials")?;
    let mut stack: Vec<(u32, T)> = Vec::with_capacity(n_partials);
    for _ in 0..n_partials {
        let rank_tok = lines.tagged("partial")?;
        let rank: u32 = rank_tok
            .parse()
            .map_err(|_| bad(format!("unparseable partial rank {rank_tok:?}")))?;
        if let Some(&(prev, _)) = stack.last() {
            if rank >= prev {
                return Err(bad(format!(
                    "counter ranks must strictly decrease (…, {prev}, {rank})"
                )));
            }
        }
        let part = T::parse(&mut lines, d)?;
        stack.push((rank, part));
    }
    if lines.lines.next().is_some() {
        return Err(bad("trailing content after the last partial"));
    }

    // Row accounting must be exact: mid-fit, every flushed chunk holds
    // exactly `chunk_rows` rows (the ragged tail only flushes at finish),
    // and the counter stack holds runs of 2^rank chunks.
    let chunks_in_stack: usize = stack
        .iter()
        .try_fold(0usize, |acc, &(r, _)| {
            if r >= usize::BITS {
                return None;
            }
            acc.checked_add(1usize << r)
        })
        .ok_or_else(|| bad("counter ranks overflow the addressable chunk count"))?;
    let expected_rows = chunks_in_stack
        .checked_mul(chunk_rows)
        .and_then(|v| v.checked_add(staged));
    if expected_rows != Some(rows) {
        return Err(bad(format!(
            "row count {rows} inconsistent with {chunks_in_stack} chunks of \
             {chunk_rows} rows plus {staged} staged"
        )));
    }

    Ok((
        StreamCore::restore(d, chunk_rows, rows, stage_xs, stage_ys, stack),
        reservation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_quadratic(core: &StreamCore<QuadraticForm>, reservation: Option<u64>) {
        let text = write_core(core, reservation);
        let (restored, res) = parse_core::<QuadraticForm>(&text).unwrap();
        assert_eq!(res, reservation);
        assert_eq!(restored.dim(), core.dim());
        assert_eq!(restored.chunk_rows(), core.chunk_rows());
        assert_eq!(restored.rows(), core.rows());
        assert_eq!(restored.staged(), core.staged());
        assert_eq!(restored.partials().len(), core.partials().len());
        for ((ra, pa), (rb, pb)) in restored.partials().iter().zip(core.partials()) {
            assert_eq!(ra, rb);
            assert_eq!(pa, pb);
        }
        // Serialization is deterministic: re-writing reproduces the bytes.
        assert_eq!(write_core(&restored, reservation), text);
    }

    fn populated_core(rows: usize, d: usize, chunk_rows: usize) -> StreamCore<QuadraticForm> {
        let mut core = StreamCore::new(d, chunk_rows);
        let xs: Vec<f64> = (0..rows * d)
            .map(|i| ((i as f64) * 0.37).sin() * 0.1)
            .collect();
        let ys: Vec<f64> = (0..rows).map(|i| ((i as f64) * 0.11).cos()).collect();
        core.push_rows(
            &xs,
            &ys,
            |_, _, _| Ok(()),
            |cx, cy, d| {
                let mut q = QuadraticForm::zero(d);
                crate::linreg::LinearObjective.accumulate_batch(cx, cy, d, &mut q);
                q
            },
            &|a: &mut QuadraticForm, b| a.merge(b),
        )
        .unwrap();
        core
    }

    use crate::mechanism::PolynomialObjective as _;

    #[test]
    fn quadratic_core_round_trips_bitwise() {
        for (rows, chunk) in [(0usize, 8usize), (3, 8), (8, 8), (21, 8), (100, 7)] {
            roundtrip_quadratic(&populated_core(rows, 3, chunk), None);
            roundtrip_quadratic(&populated_core(rows, 3, chunk), Some(42));
        }
    }

    #[test]
    fn corruption_and_truncation_are_refused() {
        let text = write_core(&populated_core(21, 3, 8), Some(7));
        // Any single-byte flip in the body must be caught.
        for pos in [0usize, 10, text.len() / 2, text.len() - 20] {
            let mut evil = text.clone().into_bytes();
            evil[pos] ^= 0x01;
            let evil = String::from_utf8_lossy(&evil).into_owned();
            assert!(
                parse_core::<QuadraticForm>(&evil).is_err(),
                "flip at {pos} accepted"
            );
        }
        // Truncation at any line boundary must be caught.
        let mut prefix = String::new();
        for line in text.lines().take(text.lines().count() - 1) {
            prefix.push_str(line);
            prefix.push('\n');
            assert!(parse_core::<QuadraticForm>(&prefix).is_err());
        }
        // Kind mismatch must be caught even with a valid checksum.
        assert!(parse_core::<Polynomial>(&text).is_err());
    }

    #[test]
    fn polynomial_core_round_trips_bitwise() {
        let d = 2;
        let mut core: StreamCore<Polynomial> = StreamCore::new(d, 4);
        let xs: Vec<f64> = (0..10 * d).map(|i| (i as f64) * 0.01).collect();
        let ys: Vec<f64> = (0..10).map(|i| (i as f64) * 0.1).collect();
        core.push_rows(
            &xs,
            &ys,
            |_, _, _| Ok(()),
            |cx, cy, d| {
                let mut f = Polynomial::zero(d);
                for (row, &y) in cx.chunks_exact(d).zip(cy) {
                    // A toy degree-2 objective: (y - x·1)² expanded.
                    let s: f64 = row.iter().sum();
                    f.add_term(Monomial::new(vec![0; d]), y * y - 2.0 * y * s + s * s);
                    for j in 0..d {
                        let mut e = vec![0; d];
                        e[j] = 1;
                        f.add_term(Monomial::new(e), row[j]);
                    }
                }
                f
            },
            &|a, b| a.add_assign(&b),
        )
        .unwrap();
        let text = write_core(&core, None);
        let (restored, res) = parse_core::<Polynomial>(&text).unwrap();
        assert_eq!(res, None);
        assert_eq!(restored.rows(), core.rows());
        for ((ra, pa), (rb, pb)) in restored.partials().iter().zip(core.partials()) {
            assert_eq!(ra, rb);
            let a: Vec<_> = pa.terms().map(|(m, c)| (m.clone(), c.to_bits())).collect();
            let b: Vec<_> = pb.terms().map(|(m, c)| (m.clone(), c.to_bits())).collect();
            assert_eq!(a, b);
        }
        assert_eq!(write_core(&restored, None), text);
    }

    #[test]
    fn row_accounting_violations_are_refused() {
        let text = write_core(&populated_core(21, 3, 8), None);
        // Forge a higher row count and re-checksum: structurally valid,
        // semantically impossible.
        let body_end = text.rfind("checksum ").unwrap();
        let forged_body = text[..body_end].replace("rows 21", "rows 2100");
        let forged = format!(
            "{forged_body}checksum {:016x}\n",
            checksum64(forged_body.as_bytes())
        );
        assert!(parse_core::<QuadraticForm>(&forged).is_err());
    }
}
