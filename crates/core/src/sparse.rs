//! The [`SparsePolynomial`](fm_poly::SparsePolynomial)-backed estimator
//! core: higher-degree losses through the **same** pipeline as everything
//! else.
//!
//! [`crate::generic`] implements Algorithm 1 at arbitrary degree, but
//! until this module it was a *side path*: callers drove
//! `GenericFunctionalMechanism::perturb` and `NoisyPolynomial::minimize`
//! by hand, outside the `FitConfig` configuration surface, the
//! [`DpEstimator`] line-up, [`crate::session::PrivacySession`] accounting
//! and [`crate::persist::SavedModel`] persistence. [`SparseFmEstimator`]
//! closes that gap: it is to [`GeneralObjective`] what
//! [`crate::estimator::FmEstimator`] is to
//! [`crate::PolynomialObjective`] — one shared fit pipeline
//!
//! 1. optionally augment the data for an intercept (footnote 2);
//! 2. run the general-degree Algorithm 1 (every monomial in
//!    `Φ_0 ∪ … ∪ Φ_J` perturbed, structural zeros included);
//! 3. resolve unboundedness per the configured §6 [`Strategy`] — ridge
//!    regularization and the Lemma-5 resample loop carry over verbatim;
//!    spectral trimming has no general-degree analogue and is replaced by
//!    ridge escalation (see [`crate::postprocess::solve_polynomial`]);
//! 4. wrap the released weights in the objective's model family.
//!
//! Two deliberate restrictions, both surfaced as loud errors instead of
//! silent unsoundness:
//!
//! * **Gaussian noise needs a derived Δ₂.** The (ε, δ) Gaussian variant
//!   calibrates to an L2 sensitivity; objectives that derive one via
//!   [`GeneralObjective::sensitivity_l2`] (both built-ins do) release
//!   through the Gaussian path exactly like the degree-2 estimators,
//!   while objectives without a Δ₂ stay Laplace-only and Gaussian noise
//!   is refused rather than guessed at. The Lemma-5 resample strategy is
//!   refused with Gaussian noise for the same reason as in
//!   [`crate::estimator::FmEstimator`]: its 2× budget accounting is only
//!   proved for pure ε-DP.
//! * **One Δ₁ bound.** The §4 Cauchy–Schwarz refinement is specific to
//!   the degree-2 objectives; the general trait declares a single L1
//!   bound and [`FitConfig::bound`] is not consulted.

use rand::{Rng, RngCore};

use fm_data::Dataset;

use fm_data::stream::RowSource as _;

use crate::estimator::{DpEstimator, FitConfig};
use crate::generic::{GeneralObjective, GenericFunctionalMechanism, PolynomialAccumulator};
use crate::mechanism::NoiseDistribution;
use crate::model::{ModelKind, PersistableModel};
use crate::postprocess::{self, Strategy};
use crate::{FmError, Result};

/// Default divergence radius for the bounded minimisation of noisy
/// high-degree polynomials: far above any parameter norm the normalized
/// domain can produce, so a genuine minimiser is never mistaken for a
/// divergent iterate.
pub const DEFAULT_DIVERGENCE_RADIUS: f64 = 1e3;

/// A [`GeneralObjective`] that knows which model family its released
/// weight vector belongs to — the general-degree counterpart of
/// [`crate::estimator::RegressionObjective`], and the only thing a
/// high-degree loss must add to plug into [`SparseFmEstimator`].
pub trait SparseRegressionObjective: GeneralObjective {
    /// The model type wrapping this objective's released weights.
    type Model: PersistableModel;
}

impl SparseRegressionObjective for crate::generic::QuarticObjective {
    /// The quartic loss releases a linear predictor `ŷ = xᵀω (+ b)`.
    type Model = crate::model::LinearModel;
}

impl SparseRegressionObjective for crate::generic::GeneralLinearObjective {
    type Model = crate::model::LinearModel;
}

/// The generic Functional-Mechanism estimator over **sparse polynomial**
/// objectives of any finite degree: the quartic demo, and any user loss
/// expressible per Equation 3 — configured by the same [`FitConfig`],
/// implementing the same [`DpEstimator`] surface, debitable through the
/// same [`crate::session::PrivacySession`], and releasing the same
/// persistable model types as the degree-2 estimators.
///
/// ```
/// use fm_core::generic::QuarticObjective;
/// use fm_core::sparse::SparseFmEstimator;
/// use fm_core::estimator::FitConfig;
/// use fm_core::Strategy;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(12);
/// let data = fm_data::synth::linear_dataset(&mut rng, 20_000, 2, 0.05);
/// let est = SparseFmEstimator::new(
///     QuarticObjective,
///     FitConfig::new()
///         .epsilon(32.0)
///         .strategy(Strategy::Resample { max_attempts: 8 }),
/// );
/// let model = est.fit(&data, &mut rng).unwrap();
/// assert_eq!(model.dim(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SparseFmEstimator<O> {
    objective: O,
    config: FitConfig,
    radius: f64,
}

impl<O: SparseRegressionObjective> SparseFmEstimator<O> {
    /// Wraps an objective with a fit configuration (default divergence
    /// radius [`DEFAULT_DIVERGENCE_RADIUS`]).
    #[must_use]
    pub fn new(objective: O, config: FitConfig) -> Self {
        SparseFmEstimator {
            objective,
            config,
            radius: DEFAULT_DIVERGENCE_RADIUS,
        }
    }

    /// Overrides the divergence radius used by the bounded minimiser.
    #[must_use]
    pub fn divergence_radius(mut self, radius: f64) -> Self {
        self.radius = radius;
        self
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// The objective this estimator perturbs.
    #[must_use]
    pub fn objective(&self) -> &O {
        &self.objective
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// Fits a private model on `data`, which must satisfy the objective's
    /// domain contract.
    ///
    /// # Errors
    /// * [`FmError::Data`] for contract violations.
    /// * [`FmError::InvalidConfig`] for a bad ε, Gaussian noise on an
    ///   objective without a derived Δ₂ or combined with the Resample
    ///   strategy, a coefficient count beyond
    ///   [`crate::generic::MAX_COEFFICIENTS`], or zero resample attempts.
    /// * [`FmError::ResampleExhausted`] / [`FmError::Optim`] when the
    ///   configured strategy cannot produce a bounded objective.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<O::Model> {
        self.check_noise()?;
        let aug;
        let work: &Dataset = if self.config.fit_intercept {
            aug = data.augment_for_intercept();
            &aug
        } else {
            data
        };
        self.objective.validate(work).map_err(FmError::Data)?;
        let clean = self.objective.assemble(work);
        let omega_raw = self.release(&clean, rng)?;
        Ok(self.finish(omega_raw, Some(self.config.epsilon)))
    }

    /// Fits a private model from a streaming
    /// [`fm_data::stream::RowSource`] — the general-degree counterpart of
    /// [`crate::estimator::FmEstimator::fit_stream`]: blocks are validated
    /// and accumulated into a [`PolynomialAccumulator`] as they arrive,
    /// then the mechanism runs once over the assembled coefficients.
    /// Bit-identical released weights to [`SparseFmEstimator::fit`] on the
    /// materialized data at the same seed, for any block sizing or shard
    /// split.
    ///
    /// # Errors
    /// As [`SparseFmEstimator::fit`], plus transport errors from the
    /// source.
    pub fn fit_stream(
        &self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let mut partial = self.partial_fit()?;
        partial.absorb(source)?;
        partial.finalize(rng)
    }

    /// Fits one model over the union of disjoint shards with the shards
    /// assembled concurrently under the `parallel` cargo feature — the
    /// general-degree counterpart of
    /// [`crate::estimator::FmEstimator::fit_sharded`], with the same
    /// determinism guarantee: serial and parallel builds release
    /// bit-identical weights (per-shard accumulations are independent;
    /// the final merge runs in shard order), and relative to a single
    /// accumulator over the concatenation the per-shard chunk grids
    /// regroup floating-point sums like a different `chunk_rows` would.
    ///
    /// # Errors
    /// As [`SparseFmEstimator::fit`], plus [`FmError::Data`] for an empty
    /// shard list, mismatched shard dimensionalities, or transport
    /// errors.
    pub fn fit_sharded<S>(&self, shards: &mut [S], rng: &mut impl Rng) -> Result<O::Model>
    where
        S: fm_data::stream::RowSource + Send,
    {
        self.check_noise()?;
        crate::assembly::check_shard_dims(shards)?;
        let chunk_rows = crate::assembly::DEFAULT_CHUNK_ROWS;
        let parts = if self.config.fit_intercept {
            let mut aug: Vec<_> = shards
                .iter_mut()
                .map(fm_data::stream::InterceptAugmentSource::new)
                .collect();
            crate::generic::assemble_polynomial_shards(&self.objective, &mut aug, chunk_rows)?
        } else {
            crate::generic::assemble_polynomial_shards(&self.objective, shards, chunk_rows)?
        };
        let mut clean: Option<fm_poly::Polynomial> = None;
        for (_, part) in parts {
            if let Some(part) = part {
                match &mut clean {
                    None => clean = Some(part),
                    Some(total) => total.add_assign(&part),
                }
            }
        }
        let clean = clean.ok_or(FmError::Data(fm_data::DataError::EmptyDataset))?;
        let omega_raw = self.release(&clean, rng)?;
        Ok(self.finish(omega_raw, Some(self.config.epsilon)))
    }

    /// Begins a two-phase shard-at-a-time fit over the general-degree
    /// objective; see [`crate::estimator::FmEstimator::partial_fit`] for
    /// the protocol. The Resample + Gaussian refusal happens here,
    /// *before* any data is absorbed; a missing Δ₂ surfaces at
    /// [`SparsePartialFit::finalize`].
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for Gaussian noise combined with the
    /// Resample strategy.
    pub fn partial_fit(&self) -> Result<SparsePartialFit<'_, O>> {
        self.check_noise()?;
        Ok(SparsePartialFit {
            estimator: self,
            acc: None,
            chunk_rows: crate::assembly::DEFAULT_CHUNK_ROWS,
            reservation: None,
        })
    }

    /// Resumes an interrupted shard-at-a-time fit from a
    /// [`SparsePartialFit::checkpoint`] snapshot — the general-degree
    /// sibling of [`crate::estimator::FmEstimator::resume_partial_fit`],
    /// with the same bit-identical-release guarantee and the same
    /// never-re-debit WAL reservation handoff.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for Gaussian noise combined with the
    /// Resample strategy; [`FmError::Checkpoint`] for
    /// corruption/truncation, version/kind mismatches, or structural
    /// violations in the snapshot.
    pub fn resume_partial_fit(&self, snapshot: &str) -> Result<SparsePartialFit<'_, O>> {
        self.check_noise()?;
        let (acc, reservation) = PolynomialAccumulator::resume(&self.objective, snapshot)?;
        Ok(SparsePartialFit {
            estimator: self,
            chunk_rows: acc.chunk_rows(),
            acc: Some(acc),
            reservation,
        })
    }

    /// The noise/strategy compatibility guard every fitting entry point
    /// shares: the Lemma-5 resample loop is only sound with Laplace
    /// noise (its 2× accounting is proved for pure ε-DP), so
    /// Resample + Gaussian is refused up front — mirroring the degree-2
    /// pipeline. Whether the *objective* supports Gaussian noise at all
    /// is decided later by [`GeneralObjective::sensitivity_l2`] inside
    /// the mechanism, which refuses objectives without a derived Δ₂.
    fn check_noise(&self) -> Result<()> {
        if !matches!(self.config.noise, NoiseDistribution::Laplace)
            && matches!(self.config.strategy, Strategy::Resample { .. })
        {
            return Err(FmError::InvalidConfig {
                name: "strategy",
                reason: "Resample (Lemma 5) is only sound with Laplace noise".to_string(),
            });
        }
        Ok(())
    }

    /// The post-assembly half of the pipeline, shared by the in-memory and
    /// streaming entry points: perturb the already-assembled polynomial
    /// per the §6-style strategy. The Lemma-5 resample loop re-perturbs
    /// the same clean coefficients per attempt — assembly is
    /// deterministic, so the noise stream matches the per-attempt
    /// re-assembly it replaces.
    fn release(&self, clean: &fm_poly::Polynomial, rng: &mut impl Rng) -> Result<Vec<f64>> {
        let start = vec![0.0; clean.num_vars()];
        match self.config.strategy {
            Strategy::Resample { max_attempts } => {
                if max_attempts == 0 {
                    return Err(FmError::InvalidConfig {
                        name: "max_attempts",
                        reason: "must be at least 1".to_string(),
                    });
                }
                // Lemma 5: each attempt runs at ε/2 so the advertised
                // total honours the 2× repetition cost — identical
                // accounting to the degree-2 pipeline.
                let fm = GenericFunctionalMechanism::new(self.config.epsilon / 2.0)?;
                for _ in 0..max_attempts {
                    let noisy = fm.perturb_assembled(clean, &self.objective, rng)?;
                    match postprocess::solve_polynomial(
                        noisy,
                        Strategy::FailIfUnbounded,
                        &start,
                        self.radius,
                    ) {
                        Ok(omega) => return Ok(omega),
                        Err(FmError::Optim(
                            fm_optim::OptimError::UnboundedObjective
                            | fm_optim::OptimError::NonFiniteObjective,
                        )) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(FmError::ResampleExhausted {
                    attempts: max_attempts,
                })
            }
            other => {
                let fm =
                    GenericFunctionalMechanism::with_noise(self.config.epsilon, self.config.noise)?;
                let noisy = fm.perturb_assembled(clean, &self.objective, rng)?;
                postprocess::solve_polynomial(noisy, other, &start, self.radius)
            }
        }
    }

    /// Fits the *non-private* minimiser of the exact polynomial objective
    /// (ε = ∞) — the reference isolating optimisation/approximation error
    /// from privacy noise.
    ///
    /// # Errors
    /// [`FmError::Data`] on contract violation, [`FmError::Optim`] when
    /// the clean objective is itself unbounded within the radius.
    pub fn fit_without_privacy(&self, data: &Dataset) -> Result<O::Model> {
        let aug;
        let work: &Dataset = if self.config.fit_intercept {
            aug = data.augment_for_intercept();
            &aug
        } else {
            data
        };
        self.objective.validate(work).map_err(FmError::Data)?;
        let clean = self.objective.assemble(work);
        let omega = crate::generic::minimize_polynomial(&clean, &vec![0.0; work.d()], self.radius)?;
        Ok(self.finish(omega, None))
    }

    /// Wraps released weights in the family's model type, undoing the
    /// intercept augmentation when one was fitted.
    fn finish(&self, omega_raw: Vec<f64>, epsilon: Option<f64>) -> O::Model {
        if self.config.fit_intercept {
            let (omega, b) = crate::model::split_augmented_weights(omega_raw);
            O::Model::from_parts(omega, b, epsilon)
        } else {
            O::Model::from_parts(omega_raw, 0.0, epsilon)
        }
    }
}

/// An in-progress shard-at-a-time fit over a general-degree objective
/// (see [`SparseFmEstimator::partial_fit`]): the sparse sibling of
/// [`crate::estimator::PartialFit`], holding a [`PolynomialAccumulator`]
/// and applying the footnote-2 intercept augmentation per block.
pub struct SparsePartialFit<'a, O: SparseRegressionObjective> {
    estimator: &'a SparseFmEstimator<O>,
    acc: Option<PolynomialAccumulator<'a, O>>,
    chunk_rows: usize,
    reservation: Option<u64>,
}

impl<'a, O: SparseRegressionObjective> SparsePartialFit<'a, O> {
    /// Overrides the accumulation chunk size — the out-of-core memory
    /// cap, exactly as [`crate::estimator::PartialFit::chunk_rows`]: set
    /// it before absorbing data (silently ignored afterwards); the
    /// default size is bit-identical to [`SparseFmEstimator::fit`].
    #[must_use]
    pub fn chunk_rows(mut self, chunk_rows: usize) -> Self {
        debug_assert!(
            self.acc.is_none(),
            "set the chunk size before absorbing data"
        );
        if self.acc.is_none() {
            self.chunk_rows = chunk_rows.max(1);
        }
        self
    }

    fn accumulator(&mut self, work_d: usize) -> Result<&mut PolynomialAccumulator<'a, O>> {
        let estimator: &'a SparseFmEstimator<O> = self.estimator;
        let chunk_rows = self.chunk_rows;
        let acc = self.acc.get_or_insert_with(|| {
            PolynomialAccumulator::with_chunk_rows(&estimator.objective, work_d, chunk_rows)
        });
        if acc.dim() != work_d {
            return Err(FmError::Data(fm_data::DataError::InvalidParameter {
                name: "shard",
                reason: format!(
                    "shard has working dimensionality {work_d}, earlier shards had {}",
                    acc.dim()
                ),
            }));
        }
        Ok(acc)
    }

    /// Absorbs one shard (drains `source`); returns its row count.
    ///
    /// # Errors
    /// [`FmError::Data`] for dimensionality mismatches, contract
    /// violations, or transport errors.
    pub fn absorb(
        &mut self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
    ) -> Result<usize> {
        if self.estimator.config.fit_intercept {
            let mut aug = fm_data::stream::InterceptAugmentSource::new(source);
            let work_d = aug.dim();
            self.accumulator(work_d)?.absorb(&mut aug)
        } else {
            let work_d = source.dim();
            self.accumulator(work_d)?.absorb(source)
        }
    }

    /// Total rows absorbed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.acc.as_ref().map_or(0, PolynomialAccumulator::rows)
    }

    /// Tags this fit with the durable-ledger reservation id it runs
    /// under, exactly as [`crate::estimator::PartialFit::with_reservation`].
    #[must_use]
    pub fn with_reservation(mut self, id: u64) -> Self {
        self.reservation = Some(id);
        self
    }

    /// The durable-ledger reservation id this fit carries, if any.
    #[must_use]
    pub fn reservation(&self) -> Option<u64> {
        self.reservation
    }

    /// Serializes the fit's complete accumulation state to the versioned,
    /// checksummed `fm-checkpoint v1` format (kind `polynomial`) — the
    /// general-degree sibling of
    /// [`crate::estimator::PartialFit::checkpoint`], with the same
    /// bit-identical-resume guarantee via
    /// [`SparseFmEstimator::resume_partial_fit`].
    ///
    /// # Errors
    /// [`FmError::Checkpoint`] when nothing has been absorbed yet.
    pub fn checkpoint(&self) -> Result<String> {
        match &self.acc {
            Some(acc) => Ok(acc.checkpoint(self.reservation)),
            None => Err(FmError::Checkpoint {
                reason: "nothing absorbed yet: no accumulation state to snapshot".into(),
            }),
        }
    }

    /// Runs the mechanism over the accumulated polynomial and wraps the
    /// released weights.
    ///
    /// # Errors
    /// [`FmError::Data`] ([`fm_data::DataError::EmptyDataset`]) when
    /// nothing was absorbed; otherwise as [`SparseFmEstimator::fit`].
    pub fn finalize(self, rng: &mut impl Rng) -> Result<O::Model> {
        let SparsePartialFit { estimator, acc, .. } = self;
        let clean = acc
            .filter(|a| a.rows() > 0)
            .and_then(PolynomialAccumulator::finish)
            .ok_or(FmError::Data(fm_data::DataError::EmptyDataset))?;
        let omega_raw = estimator.release(&clean, rng)?;
        Ok(estimator.finish(omega_raw, Some(estimator.config.epsilon)))
    }
}

impl<O: SparseRegressionObjective> crate::estimator::FitProgress for SparsePartialFit<'_, O> {
    fn rows(&self) -> usize {
        SparsePartialFit::rows(self)
    }

    fn reservation(&self) -> Option<u64> {
        SparsePartialFit::reservation(self)
    }

    fn checkpoint(&self) -> Result<String> {
        SparsePartialFit::checkpoint(self)
    }
}

impl<O: SparseRegressionObjective> DpEstimator for SparseFmEstimator<O> {
    type Model = O::Model;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<O::Model> {
        SparseFmEstimator::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn fm_data::stream::RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<O::Model> {
        SparseFmEstimator::fit_stream(self, source, &mut rng)
    }

    fn fit_sharded(
        &self,
        shards: &mut [&mut (dyn fm_data::stream::RowSource + Send)],
        mut rng: &mut dyn RngCore,
    ) -> Result<O::Model> {
        SparseFmEstimator::fit_sharded(self, shards, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        // Gaussian releases carry their configured δ into session
        // accounting; Laplace stays strict ε-DP.
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        <O::Model as PersistableModel>::KIND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::QuarticObjective;
    use crate::model::LinearModel;
    use fm_linalg::vecops;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(515)
    }

    #[test]
    fn unified_fit_matches_manual_mechanism_bit_for_bit() {
        // FailIfUnbounded + no intercept is exactly the old side path:
        // same RNG stream in, same released weights out.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_000, 2, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(64.0)
                .strategy(Strategy::FailIfUnbounded),
        );

        let mut r1 = rand::rngs::StdRng::seed_from_u64(99);
        let unified = est.fit(&data, &mut r1).unwrap();

        let mut r2 = rand::rngs::StdRng::seed_from_u64(99);
        let fm = GenericFunctionalMechanism::new(64.0).unwrap();
        let noisy = fm.perturb(&data, &QuarticObjective, &mut r2).unwrap();
        let manual = noisy
            .minimize(&[0.0; 2], DEFAULT_DIVERGENCE_RADIUS)
            .unwrap();

        assert_eq!(unified.weights(), manual.as_slice());
    }

    #[test]
    fn fit_stream_is_bit_identical_to_fit() {
        use fm_data::stream::InMemorySource;
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 3_000, 2, 0.05);
        for strategy in [
            Strategy::FailIfUnbounded,
            Strategy::Resample { max_attempts: 8 },
        ] {
            let est = SparseFmEstimator::new(
                QuarticObjective,
                FitConfig::new().epsilon(64.0).strategy(strategy),
            );
            let mut r1 = rand::rngs::StdRng::seed_from_u64(77);
            let in_memory = est.fit(&data, &mut r1).unwrap();
            let mut r2 = rand::rngs::StdRng::seed_from_u64(77);
            let streamed = est
                .fit_stream(&mut InMemorySource::new(&data), &mut r2)
                .unwrap();
            assert_eq!(in_memory, streamed, "{strategy:?}");
        }
        // partial_fit across a shard split matches too.
        let est = SparseFmEstimator::new(QuarticObjective, FitConfig::new().epsilon(64.0));
        let idx: Vec<usize> = (0..data.n()).collect();
        let shards = [
            data.subset(&idx[..1_111]).unwrap(),
            data.subset(&idx[1_111..]).unwrap(),
        ];
        let mut partial = est.partial_fit().unwrap();
        for s in &shards {
            partial.absorb(&mut InMemorySource::new(s)).unwrap();
        }
        assert_eq!(partial.rows(), data.n());
        let mut r1 = rand::rngs::StdRng::seed_from_u64(78);
        let sharded = partial.finalize(&mut r1).unwrap();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(78);
        let whole = est.fit(&data, &mut r2).unwrap();
        assert_eq!(sharded, whole);
        // Resample + Gaussian is refused before any data is absorbed.
        let gauss = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(0.5)
                .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
                .strategy(Strategy::Resample { max_attempts: 8 }),
        );
        assert!(gauss.partial_fit().is_err());
    }

    #[test]
    fn resample_strategy_recovers_truth_at_generous_budget() {
        let mut r = rng();
        let w = vec![0.5, -0.3];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 40_000, &w, 0.02);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(128.0)
                .strategy(Strategy::Resample { max_attempts: 8 }),
        );
        let model = est.fit(&data, &mut r).unwrap();
        let cos =
            vecops::dot(model.weights(), &w) / (vecops::norm2(model.weights()) * vecops::norm2(&w));
        assert!(cos > 0.9, "cosine {cos}, weights {:?}", model.weights());
    }

    #[test]
    fn regularized_strategies_survive_hostile_draws() {
        // At tiny ε most raw draws are unbounded; ridge escalation must
        // still return a finite model (or a clean error), never panic or
        // release non-finite weights.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 200, 2, 0.05);
        for strategy in [Strategy::RegularizeOnly, Strategy::RegularizeThenTrim] {
            let est = SparseFmEstimator::new(
                QuarticObjective,
                FitConfig::new().epsilon(0.05).strategy(strategy),
            );
            for _ in 0..10 {
                match est.fit(&data, &mut r) {
                    Ok(m) => assert!(m.weights().iter().all(|v| v.is_finite())),
                    Err(FmError::Optim(_)) => {}
                    Err(e) => panic!("unexpected error class: {e}"),
                }
            }
        }
    }

    #[test]
    fn non_private_quartic_fit_matches_ols_direction() {
        let mut r = rng();
        let w = vec![0.4, -0.2];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 20_000, &w, 0.02);
        let est = SparseFmEstimator::new(QuarticObjective, FitConfig::new());
        let model = est.fit_without_privacy(&data).unwrap();
        assert_eq!(model.epsilon(), None);
        assert!(
            vecops::dist2(model.weights(), &w) < 0.05,
            "weights {:?}",
            model.weights()
        );
    }

    #[test]
    fn intercept_fit_recovers_offset() {
        // Quartic loss on offset data: the footnote-2 augmentation must
        // carry over to the sparse path unchanged (non-private, exact).
        let w = [0.3];
        let n = 4_000;
        let x = fm_linalg::Matrix::from_fn(n, 1, |i, _| ((i % 100) as f64 / 100.0 - 0.5) / 2.0);
        let y: Vec<f64> = (0..n).map(|i| x[(i, 0)] * w[0] + 0.2).collect();
        let data = Dataset::new(x, y).unwrap();
        let est = SparseFmEstimator::new(QuarticObjective, FitConfig::new().fit_intercept(true));
        let model = est.fit_without_privacy(&data).unwrap();
        assert!(
            (model.intercept() - 0.2).abs() < 1e-3,
            "b = {}",
            model.intercept()
        );
        assert!((model.weights()[0] - 0.3).abs() < 1e-3);
    }

    #[test]
    fn gaussian_noise_fits_with_derived_delta2() {
        // Δ₂ is now derived for both built-ins, so the (ε, δ) Gaussian
        // release runs through the same pipeline; δ is surfaced through
        // the DpEstimator metadata for session accounting.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 5_000, 2, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(0.9)
                .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
                .strategy(Strategy::RegularizeOnly),
        );
        let dyn_est: &dyn DpEstimator<Model = LinearModel> = &est;
        assert_eq!(dyn_est.delta(), Some(1e-6));
        let mut r1 = rand::rngs::StdRng::seed_from_u64(41);
        let model = est.fit(&data, &mut r1).unwrap();
        assert!(model.weights().iter().all(|v| v.is_finite()));
        // Streaming matches in-memory bit for bit under Gaussian noise.
        let mut r2 = rand::rngs::StdRng::seed_from_u64(41);
        let streamed = est
            .fit_stream(&mut fm_data::stream::InMemorySource::new(&data), &mut r2)
            .unwrap();
        assert_eq!(model, streamed);
    }

    #[test]
    fn gaussian_refused_without_delta2_or_with_resample() {
        // An objective that never derived a Δ₂ keeps the old refusal.
        struct NoL2;
        impl GeneralObjective for NoL2 {
            fn tuple_polynomial(&self, x: &[f64], y: f64, d: usize) -> fm_poly::Polynomial {
                QuarticObjective.tuple_polynomial(x, y, d)
            }
            fn max_degree(&self, d: usize) -> u32 {
                QuarticObjective.max_degree(d)
            }
            fn sensitivity(&self, d: usize) -> f64 {
                QuarticObjective.sensitivity(d)
            }
            fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
                QuarticObjective.validate(data)
            }
        }
        impl SparseRegressionObjective for NoL2 {
            type Model = LinearModel;
        }
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.05);
        let gauss = FitConfig::new()
            .epsilon(0.5)
            .noise(NoiseDistribution::Gaussian { delta: 1e-6 });
        let est = SparseFmEstimator::new(NoL2, gauss);
        assert!(matches!(
            est.fit(&data, &mut r),
            Err(FmError::InvalidConfig { .. })
        ));
        // Resample + Gaussian is refused up front, Δ₂ or not.
        let est = SparseFmEstimator::new(
            QuarticObjective,
            gauss.strategy(Strategy::Resample { max_attempts: 4 }),
        );
        assert!(matches!(
            est.fit(&data, &mut r),
            Err(FmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn dyn_estimator_and_session_accounting() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 10_000, 2, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(50.0)
                .strategy(Strategy::Resample { max_attempts: 8 }),
        );
        let dyn_est: &dyn DpEstimator<Model = LinearModel> = &est;
        assert_eq!(dyn_est.epsilon(), Some(50.0));
        assert_eq!(dyn_est.task(), ModelKind::Linear);
        let mut session = crate::session::PrivacySession::with_budget(60.0).unwrap();
        session.fit(dyn_est, &data, &mut r).unwrap();
        assert!((session.spent_epsilon() - 50.0).abs() < 1e-12);
        assert!(session.fit(dyn_est, &data, &mut r).is_err(), "over budget");
    }

    #[test]
    fn persistence_roundtrip_through_saved_model() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 10_000, 2, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(64.0)
                .strategy(Strategy::Resample { max_attempts: 8 }),
        );
        let model = est.fit(&data, &mut r).unwrap();
        let text = crate::persist::SavedModel::from(&model).to_text().unwrap();
        let back: LinearModel = crate::persist::SavedModel::from_text(&text)
            .unwrap()
            .into_model()
            .unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn zero_resample_attempts_rejected() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new().strategy(Strategy::Resample { max_attempts: 0 }),
        );
        assert!(matches!(
            est.fit(&data, &mut r),
            Err(FmError::InvalidConfig { .. })
        ));
    }
}
