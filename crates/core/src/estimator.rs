//! The generic estimator core: one trait-driven surface for every
//! regression the Functional Mechanism can fit.
//!
//! The paper's Algorithm 1 is *one* mechanism instantiated per loss; this
//! module makes the code match that shape. A [`FitConfig`] owns the knobs
//! every fit shares (ε, sensitivity bound, §6 strategy, intercept, noise
//! distribution), a [`RegressionObjective`] ties a
//! [`PolynomialObjective`] to the model family it releases, and
//! [`FmEstimator`] runs the one shared pipeline:
//!
//! 1. optionally augment the data for an intercept (footnote 2);
//! 2. run Algorithm 1 — assemble, perturb with calibrated noise;
//! 3. resolve unboundedness per the §6 [`Strategy`];
//! 4. wrap the released weights in the family's model type.
//!
//! `linreg`, `logreg` and `poisson` are thin instantiations of this core
//! (a type alias for linear; two-field wrappers for the families whose
//! surrogate construction can fail), so a new objective — median
//! regression, the quartic demo, a user loss — plugs in as one
//! `RegressionObjective` impl instead of a ~700-line copied stack.
//!
//! The [`DpEstimator`] trait is the dyn-compatible face of all of this:
//! private estimators *and* the `fm-baselines` comparators implement it,
//! so harness code (cross-validation, method line-ups, the
//! [`crate::session::PrivacySession`] ledger) runs over `&dyn DpEstimator`
//! without knowing which method it is driving.

use rand::{Rng, RngCore};

use fm_data::stream::{InterceptAugmentSource, RowBlock, RowSource};
use fm_data::{DataError, Dataset};
use fm_poly::QuadraticForm;

use crate::assembly::CoefficientAccumulator;
use crate::mechanism::{
    FunctionalMechanism, NoiseDistribution, PolynomialObjective, SensitivityBound,
};
use crate::model::{ModelKind, PersistableModel};
use crate::postprocess::{self, Strategy};
use crate::{FmError, Result};

/// The configuration every Functional-Mechanism fit shares, regardless of
/// objective: the fields the per-family builders used to re-declare.
///
/// ```
/// use fm_core::estimator::FitConfig;
/// use fm_core::SensitivityBound;
///
/// let config = FitConfig::new()
///     .epsilon(0.8)
///     .sensitivity_bound(SensitivityBound::Tight)
///     .fit_intercept(true);
/// assert_eq!(config.epsilon, 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// The privacy budget ε (default 1.0).
    pub epsilon: f64,
    /// Which sensitivity bound calibrates the noise (default
    /// [`SensitivityBound::Paper`]).
    pub bound: SensitivityBound,
    /// The §6 unboundedness strategy (default
    /// [`Strategy::RegularizeThenTrim`]).
    pub strategy: Strategy,
    /// Whether to fit the footnote-2 intercept term (default `false`).
    pub fit_intercept: bool,
    /// The noise distribution (default [`NoiseDistribution::Laplace`],
    /// strict ε-DP).
    pub noise: NoiseDistribution,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            epsilon: 1.0,
            bound: SensitivityBound::Paper,
            strategy: Strategy::default(),
            fit_intercept: false,
            noise: NoiseDistribution::Laplace,
        }
    }
}

impl FitConfig {
    /// The default configuration (ε = 1, paper bound, regularize-then-trim,
    /// no intercept, Laplace noise).
    #[must_use]
    pub fn new() -> Self {
        FitConfig::default()
    }

    /// Sets the privacy budget ε.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the sensitivity bound.
    #[must_use]
    pub fn sensitivity_bound(mut self, bound: SensitivityBound) -> Self {
        self.bound = bound;
        self
    }

    /// Sets the §6 unboundedness strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables/disables the footnote-2 intercept term.
    #[must_use]
    pub fn fit_intercept(mut self, yes: bool) -> Self {
        self.fit_intercept = yes;
        self
    }

    /// Sets the noise distribution.
    #[must_use]
    pub fn noise(mut self, noise: NoiseDistribution) -> Self {
        self.noise = noise;
        self
    }

    /// The δ of the configured noise distribution (`None` under strict
    /// ε-DP Laplace noise).
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        match self.noise {
            NoiseDistribution::Laplace => None,
            NoiseDistribution::Gaussian { delta } => Some(delta),
        }
    }
}

/// A differentially-private (or deliberately non-private baseline)
/// estimator: anything that can turn a [`Dataset`] plus randomness into a
/// fitted model, and can state up front what the fit costs in (ε, δ).
///
/// The trait is dyn-compatible — `&dyn DpEstimator<Model = LinearModel>`
/// is how the experiment harness runs FM next to DPME, FP and NoPrivacy
/// through one code path, and how [`crate::session::PrivacySession`]
/// debits every fit against a shared budget.
pub trait DpEstimator {
    /// The released model family.
    type Model;

    /// Fits a model on `data`, drawing noise from `rng`.
    ///
    /// Typed estimators also expose an inherent `fit(&self, data, &mut
    /// impl Rng)` with identical behaviour; this dyn-compatible form
    /// exists so heterogeneous line-ups can share one call site (any
    /// `&mut impl Rng` coerces to `&mut dyn RngCore` at the call).
    ///
    /// # Errors
    /// Family-specific: contract violations ([`FmError::Data`]), invalid
    /// configuration, solver breakdown.
    fn fit(&self, data: &Dataset, rng: &mut dyn RngCore) -> Result<Self::Model>;

    /// The privacy budget ε one [`DpEstimator::fit`] call consumes, or
    /// `None` for non-private baselines.
    fn epsilon(&self) -> Option<f64>;

    /// The failure probability δ of one fit (`None` for pure ε-DP and for
    /// non-private estimators).
    fn delta(&self) -> Option<f64> {
        None
    }

    /// Which regression family this estimator releases.
    fn task(&self) -> ModelKind;

    /// Fits a model from a streaming [`RowSource`] instead of a
    /// materialized [`Dataset`].
    ///
    /// The default drains the source into a temporary `Dataset` and
    /// delegates to [`DpEstimator::fit`] — always correct, so baselines
    /// and custom estimators keep working against streaming harness code,
    /// just without the out-of-core memory profile. The Functional-
    /// Mechanism estimators override it with the true streaming pipeline
    /// (bounded memory, bit-identical released coefficients to `fit` on
    /// the materialized data at the same seed).
    ///
    /// # Errors
    /// Transport errors from the source as [`FmError::Data`], plus
    /// whatever [`DpEstimator::fit`] returns.
    fn fit_stream(&self, source: &mut dyn RowSource, rng: &mut dyn RngCore) -> Result<Self::Model> {
        let data = fm_data::stream::materialize(source).map_err(FmError::Data)?;
        self.fit(&data, rng)
    }

    /// Fits **one** model over the union of disjoint shards — the
    /// assembled-fit hook that lets any estimator, baselines included,
    /// ride the sharded ingestion path the harness drives
    /// ([`crate::session::PrivacySession::fit_sharded_dyn`]).
    ///
    /// The default validates the shard family (non-empty, equal
    /// dimensionalities), drains the shards **in order** into one
    /// temporary `Dataset`, and delegates to [`DpEstimator::fit`] —
    /// always correct, with the privacy cost of a single fit. The
    /// Functional-Mechanism estimators override it with true per-shard
    /// coefficient assembly (bounded memory, concurrent under the
    /// `parallel` feature); for them the trait call is exactly the
    /// inherent `fit_sharded`.
    ///
    /// # Errors
    /// [`FmError::Data`] for an empty shard list, mismatched shard
    /// dimensionalities, or transport errors; otherwise as
    /// [`DpEstimator::fit`].
    fn fit_sharded(
        &self,
        shards: &mut [&mut (dyn RowSource + Send)],
        rng: &mut dyn RngCore,
    ) -> Result<Self::Model> {
        let views: Vec<&mut (dyn RowSource + Send)> = shards.iter_mut().map(|s| &mut **s).collect();
        let mut union = fm_data::stream::ShardedSource::new(views).map_err(FmError::Data)?;
        let data = fm_data::stream::materialize(&mut union).map_err(FmError::Data)?;
        self.fit(&data, rng)
    }
}

/// Scheduler-visible progress of an in-flight streaming fit: the least a
/// serving layer needs to report status on — and checkpoint — a fit whose
/// objective type it does not know. Dyn-compatible, so a worker pool can
/// hold `&dyn FitProgress` across heterogeneous jobs.
///
/// Implemented by [`PartialFit`] and
/// [`crate::sparse::SparsePartialFit`]; the inherent methods on those
/// types behave identically.
pub trait FitProgress {
    /// Total rows absorbed so far.
    fn rows(&self) -> usize;

    /// The durable-ledger reservation id the fit carries, if any (see
    /// [`PartialFit::with_reservation`]).
    fn reservation(&self) -> Option<u64>;

    /// Serializes the fit's complete accumulation state to the versioned
    /// `fm-checkpoint v1` text format, reservation id included.
    ///
    /// # Errors
    /// [`FmError::Checkpoint`] when nothing has been absorbed yet — there
    /// is no accumulation state to snapshot.
    fn checkpoint(&self) -> Result<String>;
}

/// A [`PolynomialObjective`] that knows which model family its released
/// weight vector belongs to — the only thing a loss must add to plug into
/// the generic [`FmEstimator`] core.
pub trait RegressionObjective: PolynomialObjective {
    /// The model type wrapping this objective's released weights.
    type Model: PersistableModel;
}

/// The one generic Functional-Mechanism estimator: Algorithm 1 (and its
/// Algorithm-2 surrogate instantiations) over any
/// [`RegressionObjective`], configured by a shared [`FitConfig`].
///
/// `DpLinearRegression` is exactly `FmEstimator<LinearObjective>`;
/// the logistic and Poisson front-ends are two-field wrappers that build
/// their surrogate objective and delegate here. Fitting a *new* loss
/// needs only an objective:
///
/// ```
/// use fm_core::estimator::{FitConfig, FmEstimator};
/// use fm_core::linreg::LinearObjective;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let data = fm_data::synth::linear_dataset(&mut rng, 5_000, 3, 0.1);
/// let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(0.8));
/// let model = est.fit(&data, &mut rng).unwrap();
/// assert_eq!(model.epsilon(), Some(0.8));
/// ```
#[derive(Debug, Clone)]
pub struct FmEstimator<O> {
    objective: O,
    config: FitConfig,
}

impl<O: RegressionObjective> FmEstimator<O> {
    /// Wraps an objective with a fit configuration.
    #[must_use]
    pub fn new(objective: O, config: FitConfig) -> Self {
        FmEstimator { objective, config }
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// The objective this estimator perturbs.
    #[must_use]
    pub fn objective(&self) -> &O {
        &self.objective
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// Fits a private model on `data`, which must satisfy the objective's
    /// normalized-domain contract.
    ///
    /// # Errors
    /// * [`FmError::Data`] for contract violations.
    /// * [`FmError::InvalidConfig`] for a bad ε/δ or zero resample attempts.
    /// * [`FmError::ResampleExhausted`] / [`FmError::EmptySpectrum`] /
    ///   [`FmError::Optim`] when the configured strategy cannot produce a
    ///   bounded objective.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<O::Model> {
        let work: &Dataset = if self.config.fit_intercept {
            // Footnote 2: fit d+1 weights on the √2-scaled augmented data,
            // then map back to (ω, b). The augmented dataset's contract is
            // implied by the original's. The cached instance is shared by
            // every intercept fit on `data`, so repeat fits reuse one
            // augmentation and unlock its columnar assembly kernels.
            data.augmented_for_intercept_cached()
        } else {
            data
        };
        let omega_raw = fit_with_mechanism_noise(
            work,
            &self.objective,
            self.config.epsilon,
            self.config.bound,
            self.config.noise,
            self.config.strategy,
            rng,
        )?;
        Ok(self.finish(omega_raw, Some(self.config.epsilon)))
    }

    /// Fits a private model from a streaming [`RowSource`] — Algorithm 1
    /// out-of-core: blocks are validated and accumulated as they arrive
    /// (peak memory one staged chunk, whatever the stream length), then
    /// the released coefficients are drawn exactly as
    /// [`FmEstimator::fit`] would.
    ///
    /// For the same logical rows and RNG state, `fit_stream` is
    /// **bit-identical** to `fit` on the materialized dataset — for any
    /// block sizing or shard split the source happens to deliver (the
    /// facade's `tests/streaming_equivalence.rs` property suite pins
    /// this). Equivalently: `fit(data, rng)` *is*
    /// `fit_stream(&mut InMemorySource::new(data), rng)`; the in-memory
    /// entry point merely keeps its zero-copy/columnar assembly fast
    /// path.
    ///
    /// # Errors
    /// As [`FmEstimator::fit`], plus transport errors from the source as
    /// [`FmError::Data`].
    pub fn fit_stream(
        &self,
        source: &mut (impl RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<O::Model> {
        let mut partial = self.partial_fit();
        partial.absorb(source)?;
        partial.finalize(rng)
    }

    /// Begins a two-phase **shard-at-a-time** fit: feed any number of
    /// sources/blocks through [`PartialFit::absorb`] /
    /// [`PartialFit::push_block`], then draw the release once with
    /// [`PartialFit::finalize`]. One mechanism invocation total — the
    /// privacy cost is the estimator's configured ε once, not per shard —
    /// and the released coefficients are bit-identical to a single
    /// [`FmEstimator::fit`] over the shard concatenation.
    #[must_use]
    pub fn partial_fit(&self) -> PartialFit<'_, O> {
        PartialFit {
            estimator: self,
            acc: None,
            chunk_rows: crate::assembly::DEFAULT_CHUNK_ROWS,
            reservation: None,
        }
    }

    /// Resumes an interrupted shard-at-a-time fit from a
    /// [`PartialFit::checkpoint`] snapshot. The restored fit continues
    /// from exactly the floating-point state the interrupted one held —
    /// absorbing the remaining rows and finalizing releases coefficients
    /// **bit-identical** to an uninterrupted fit over the same rows and
    /// RNG state. The WAL reservation id the checkpoint carried (if any)
    /// travels with the fit, so re-attaching it to a
    /// [`crate::session::SharedPrivacySession`] via
    /// [`crate::session::SharedPrivacySession::resume_reservation`] never
    /// re-debits ε.
    ///
    /// # Errors
    /// [`FmError::Checkpoint`] for corruption/truncation, version/kind
    /// mismatches, or structural violations in the snapshot.
    pub fn resume_partial_fit(&self, snapshot: &str) -> Result<PartialFit<'_, O>> {
        let (acc, reservation) = CoefficientAccumulator::resume(&self.objective, snapshot)?;
        Ok(PartialFit {
            estimator: self,
            chunk_rows: acc.chunk_rows(),
            acc: Some(acc),
            reservation,
        })
    }

    /// Fits **one** model over the union of disjoint shards, with the
    /// shards assembled **concurrently** under the `parallel` cargo
    /// feature: each shard runs its own streaming accumulator (validated
    /// and re-chunked from the shard's first row), the per-shard
    /// coefficient partials are merged in shard order, and the
    /// mechanism's noise is drawn once over the merged objective — the
    /// privacy cost is the configured ε once, exactly as for
    /// [`FmEstimator::fit_stream`] over a
    /// [`fm_data::stream::ShardedSource`] of the same shards.
    ///
    /// Determinism: the released coefficients are **bit-identical between
    /// the serial and parallel builds** — per-shard merge trees touch
    /// only their own chunks and the final shard-order merge is fixed, so
    /// worker scheduling can never regroup a floating-point sum
    /// (`tests/streaming_equivalence.rs` pins this). Relative to one
    /// accumulator over the shard *concatenation* (`fit_stream`), the
    /// per-shard chunk grids regroup sums exactly as a different
    /// `chunk_rows` would (~1e-15 relative on the clean coefficients);
    /// with a single shard the two paths are bit-identical.
    ///
    /// # Errors
    /// * [`FmError::Data`] for an empty shard list, mismatched shard
    ///   dimensionalities, contract violations, or transport errors.
    /// * Otherwise as [`FmEstimator::fit`].
    pub fn fit_sharded<S>(&self, shards: &mut [S], rng: &mut impl Rng) -> Result<O::Model>
    where
        S: RowSource + Send,
    {
        crate::assembly::check_shard_dims(shards)?;
        let mut clean: Option<QuadraticForm> = None;
        for (_, part) in self.assemble_shards_clean(shards)? {
            if let Some(part) = part {
                match &mut clean {
                    None => clean = Some(part),
                    Some(total) => total.merge(part),
                }
            }
        }
        let clean = clean.ok_or(FmError::Data(DataError::EmptyDataset))?;
        self.release_clean(&clean, rng)
    }

    /// Runs the mechanism over already-assembled (and already-validated)
    /// clean coefficients and wraps the released weights — the noise-
    /// drawing half shared by [`FmEstimator::fit_sharded`], the
    /// session's parallel disjoint-shard fitting (where assembly runs
    /// concurrently but every release draws from the shared rng in shard
    /// order), and a federated coordinator's central-noise release over
    /// merged client partials.
    ///
    /// The caller owns the precondition that `clean` is the exact
    /// Algorithm-1 coefficient sum over contract-satisfying tuples at
    /// this estimator's working dimensionality (intercept augmentation
    /// included when configured) — the sensitivity bound, and with it
    /// the ε-guarantee, is stated for that sum.
    ///
    /// # Errors
    /// As [`FmEstimator::fit`] past assembly: invalid configuration, an
    /// unbounded noisy objective per the configured strategy, or solver
    /// failure.
    pub fn release_clean(&self, clean: &QuadraticForm, rng: &mut impl Rng) -> Result<O::Model> {
        let config = &self.config;
        let omega_raw = release_assembled(
            clean,
            &self.objective,
            config.epsilon,
            config.bound,
            config.noise,
            config.strategy,
            rng,
        )?;
        Ok(self.finish(omega_raw, Some(config.epsilon)))
    }

    /// Post-processes an **already-perturbed** objective into a released
    /// model: §6 boundedness handling under the configured strategy, then
    /// the intercept un-augmentation — the release half a federated
    /// coordinator runs in local-noise mode, where the noise was drawn on
    /// the clients and `noisy` is their aggregated upload
    /// ([`crate::mechanism::NoisyQuadratic::from_federated_sum`]). Draws **no** noise and
    /// spends no further budget: everything here is post-processing of
    /// `noisy`.
    ///
    /// # Errors
    /// * [`FmError::InvalidConfig`] under [`Strategy::Resample`] — Lemma 5
    ///   re-runs the mechanism, which only the noise-drawing entry points
    ///   ([`FmEstimator::fit`], [`FmEstimator::release_clean`]) can do.
    /// * Otherwise as [`crate::postprocess::solve`].
    pub fn release_noisy(&self, noisy: crate::NoisyQuadratic) -> Result<O::Model> {
        let omega_raw = crate::postprocess::solve(noisy, self.config.strategy)?;
        Ok(self.finish(omega_raw, Some(self.config.epsilon)))
    }

    /// Per-shard clean coefficient assembly at the estimator's working
    /// dimensionality (footnote-2 intercept augmentation applied per
    /// shard when configured), concurrent under `parallel` — the shared
    /// data pass behind [`FmEstimator::fit_sharded`] and
    /// [`crate::session::PrivacySession::fit_disjoint_shards_parallel`].
    pub(crate) fn assemble_shards_clean<S>(
        &self,
        shards: &mut [S],
    ) -> Result<Vec<(usize, Option<QuadraticForm>)>>
    where
        S: RowSource + Send,
    {
        let chunk_rows = crate::assembly::DEFAULT_CHUNK_ROWS;
        if self.config.fit_intercept {
            let mut aug: Vec<InterceptAugmentSource<&mut S>> =
                shards.iter_mut().map(InterceptAugmentSource::new).collect();
            crate::assembly::assemble_shards(&self.objective, &mut aug, chunk_rows)
        } else {
            crate::assembly::assemble_shards(&self.objective, shards, chunk_rows)
        }
    }

    /// Fits the *non-private* minimiser of the same (possibly truncated)
    /// objective — ε = ∞. For exactly-polynomial losses this is the exact
    /// optimum; for Taylor/Chebyshev surrogates it is the paper's
    /// `Truncated` baseline, isolating approximation error from privacy
    /// noise.
    ///
    /// # Errors
    /// [`FmError::Data`] on contract violation, [`FmError::Optim`] on a
    /// degenerate (rank-deficient) quadratic.
    pub fn fit_without_privacy(&self, data: &Dataset) -> Result<O::Model> {
        let work: &Dataset = if self.config.fit_intercept {
            data.augmented_for_intercept_cached()
        } else {
            data
        };
        self.objective.validate(work)?;
        let q = self.objective.assemble(work);
        let omega_raw =
            fm_optim::quadratic::minimize_quadratic(q.m(), q.alpha()).map_err(FmError::from)?;
        Ok(self.finish(omega_raw, None))
    }

    /// Wraps released weights in the family's model type, undoing the
    /// intercept augmentation when one was fitted.
    fn finish(&self, omega_raw: Vec<f64>, epsilon: Option<f64>) -> O::Model {
        if self.config.fit_intercept {
            let (omega, b) = crate::model::split_augmented_weights(omega_raw);
            O::Model::from_parts(omega, b, epsilon)
        } else {
            O::Model::from_parts(omega_raw, 0.0, epsilon)
        }
    }
}

/// An in-progress shard-at-a-time fit (see [`FmEstimator::partial_fit`]):
/// owns the streaming [`CoefficientAccumulator`] plus the estimator's
/// configuration, applies the footnote-2 intercept augmentation to every
/// incoming block when configured, and draws the mechanism's noise exactly
/// once at [`PartialFit::finalize`].
pub struct PartialFit<'a, O: RegressionObjective> {
    estimator: &'a FmEstimator<O>,
    acc: Option<CoefficientAccumulator<'a, O>>,
    chunk_rows: usize,
    reservation: Option<u64>,
}

impl<'a, O: RegressionObjective> PartialFit<'a, O> {
    /// Overrides the accumulation chunk size — the out-of-core **memory
    /// cap**: peak staged memory is one `chunk_rows × d` block whatever
    /// the stream length. Must be set before any data is absorbed
    /// (silently ignored afterwards — the chunking of already-absorbed
    /// rows cannot be rewritten).
    ///
    /// At the default size the release is bit-identical to
    /// [`FmEstimator::fit`]; a different size regroups floating-point
    /// sums exactly as
    /// [`crate::assembly::assemble_with_chunk_rows`] at that size would
    /// (~1e-15 relative on the clean coefficients).
    #[must_use]
    pub fn chunk_rows(mut self, chunk_rows: usize) -> Self {
        debug_assert!(
            self.acc.is_none(),
            "set the chunk size before absorbing data"
        );
        if self.acc.is_none() {
            self.chunk_rows = chunk_rows.max(1);
        }
        self
    }

    /// The accumulator at working dimensionality `work_d` (the raw `d`,
    /// plus one under the intercept augmentation), created lazily from the
    /// first shard.
    fn accumulator(&mut self, work_d: usize) -> Result<&mut CoefficientAccumulator<'a, O>> {
        let estimator: &'a FmEstimator<O> = self.estimator;
        let chunk_rows = self.chunk_rows;
        let acc = self.acc.get_or_insert_with(|| {
            CoefficientAccumulator::with_chunk_rows(&estimator.objective, work_d, chunk_rows)
        });
        if acc.dim() != work_d {
            return Err(FmError::Data(DataError::InvalidParameter {
                name: "shard",
                reason: format!(
                    "shard has working dimensionality {work_d}, earlier shards had {}",
                    acc.dim()
                ),
            }));
        }
        Ok(acc)
    }

    /// Absorbs one shard (drains `source`); returns its row count.
    ///
    /// # Errors
    /// [`FmError::Data`] for dimensionality mismatches across shards,
    /// contract violations, or transport errors.
    pub fn absorb(&mut self, source: &mut (impl RowSource + ?Sized)) -> Result<usize> {
        if self.estimator.config.fit_intercept {
            let mut aug = InterceptAugmentSource::new(source);
            let work_d = aug.dim();
            self.accumulator(work_d)?.absorb(&mut aug)
        } else {
            let work_d = source.dim();
            self.accumulator(work_d)?.absorb(source)
        }
    }

    /// Absorbs a single [`RowBlock`].
    ///
    /// # Errors
    /// As [`PartialFit::absorb`].
    pub fn push_block(&mut self, block: &RowBlock) -> Result<()> {
        if self.estimator.config.fit_intercept {
            let aug = block.augment_for_intercept();
            self.accumulator(aug.d())?.push_block(&aug)
        } else {
            self.accumulator(block.d())?.push_block(block)
        }
    }

    /// Total rows absorbed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.acc.as_ref().map_or(0, CoefficientAccumulator::rows)
    }

    /// Tags this fit with the durable-ledger reservation id it runs under
    /// (see [`crate::session::FitPermit::id`]). The id rides along in
    /// every [`PartialFit::checkpoint`] snapshot, so a resumed fit can
    /// re-attach to its already-debited budget instead of re-debiting.
    #[must_use]
    pub fn with_reservation(mut self, id: u64) -> Self {
        self.reservation = Some(id);
        self
    }

    /// The durable-ledger reservation id this fit carries, if any — set
    /// by [`PartialFit::with_reservation`] or restored from a checkpoint
    /// by [`FmEstimator::resume_partial_fit`].
    #[must_use]
    pub fn reservation(&self) -> Option<u64> {
        self.reservation
    }

    /// Serializes the fit's complete accumulation state (chunk grid
    /// position, staged rows, merge-counter stack, reservation tag) to
    /// the versioned, checksummed `fm-checkpoint v1` text format.
    /// Restoring via [`FmEstimator::resume_partial_fit`] and absorbing
    /// the remaining rows releases a model **bit-identical** to the
    /// uninterrupted fit.
    ///
    /// # Errors
    /// [`FmError::Checkpoint`] when nothing has been absorbed yet — there
    /// is no accumulation state to snapshot (resume with a fresh
    /// [`FmEstimator::partial_fit`] instead).
    pub fn checkpoint(&self) -> Result<String> {
        match &self.acc {
            Some(acc) => Ok(acc.checkpoint(self.reservation)),
            None => Err(FmError::Checkpoint {
                reason: "nothing absorbed yet: no accumulation state to snapshot".into(),
            }),
        }
    }

    /// Runs the mechanism over the accumulated coefficients and wraps the
    /// released weights — the one privacy-spending step of the two-phase
    /// fit.
    ///
    /// # Errors
    /// [`FmError::Data`] ([`DataError::EmptyDataset`]) when nothing was
    /// absorbed; otherwise as [`FmEstimator::fit`].
    pub fn finalize(self, rng: &mut impl Rng) -> Result<O::Model> {
        let PartialFit { estimator, acc, .. } = self;
        let clean = acc
            .filter(|a| a.rows() > 0)
            .and_then(CoefficientAccumulator::finish)
            .ok_or(FmError::Data(DataError::EmptyDataset))?;
        let config = &estimator.config;
        let omega_raw = release_assembled(
            &clean,
            &estimator.objective,
            config.epsilon,
            config.bound,
            config.noise,
            config.strategy,
            rng,
        )?;
        Ok(estimator.finish(omega_raw, Some(config.epsilon)))
    }
}

impl<O: RegressionObjective> FitProgress for PartialFit<'_, O> {
    fn rows(&self) -> usize {
        PartialFit::rows(self)
    }

    fn reservation(&self) -> Option<u64> {
        PartialFit::reservation(self)
    }

    fn checkpoint(&self) -> Result<String> {
        PartialFit::checkpoint(self)
    }
}

impl<O: RegressionObjective> DpEstimator for FmEstimator<O> {
    type Model = O::Model;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<O::Model> {
        FmEstimator::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<O::Model> {
        FmEstimator::fit_stream(self, source, &mut rng)
    }

    fn fit_sharded(
        &self,
        shards: &mut [&mut (dyn RowSource + Send)],
        mut rng: &mut dyn RngCore,
    ) -> Result<O::Model> {
        FmEstimator::fit_sharded(self, shards, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        <O::Model as PersistableModel>::KIND
    }
}

/// The builder shared by every estimator front-end: the five common knobs
/// live here exactly once; each family adds its own (`approximation`,
/// `y_max`, `build`) in an `impl` on its concrete instantiation.
#[derive(Debug, Clone, Default)]
pub struct EstimatorBuilder<F> {
    pub(crate) config: FitConfig,
    pub(crate) family: F,
}

impl<F> EstimatorBuilder<F> {
    /// Sets the privacy budget ε (default 1.0).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the sensitivity bound (default [`SensitivityBound::Paper`]).
    #[must_use]
    pub fn sensitivity_bound(mut self, bound: SensitivityBound) -> Self {
        self.config.bound = bound;
        self
    }

    /// Sets the unboundedness strategy (default
    /// [`Strategy::RegularizeThenTrim`]).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Also fits an intercept term `b` (default `false`), via the paper's
    /// footnote-2 generalisation: the data is mapped to `(x/√2, 1/√2)` —
    /// which preserves the `‖x‖₂ ≤ 1` contract — and a `d+1`-dimensional
    /// model is fitted, so the sensitivity (hence the noise) is the
    /// standard bound at dimension `d+1`.
    #[must_use]
    pub fn fit_intercept(mut self, yes: bool) -> Self {
        self.config.fit_intercept = yes;
        self
    }

    /// Chooses the noise distribution (default
    /// [`NoiseDistribution::Laplace`], strict ε-DP).
    /// [`NoiseDistribution::Gaussian`] switches to the relaxed (ε, δ)
    /// guarantee with L2-calibrated noise; incompatible with
    /// [`Strategy::Resample`].
    #[must_use]
    pub fn noise(mut self, noise: NoiseDistribution) -> Self {
        self.config.noise = noise;
        self
    }

    /// Replaces the whole shared configuration at once.
    #[must_use]
    pub fn config(mut self, config: FitConfig) -> Self {
        self.config = config;
        self
    }
}

/// Shared fit pipeline for all regression types: validate, assemble once,
/// then run Algorithm 1 with the chosen noise distribution and resolve
/// unboundedness per `strategy`.
pub(crate) fn fit_with_mechanism_noise(
    data: &Dataset,
    objective: &impl PolynomialObjective,
    epsilon: f64,
    bound: SensitivityBound,
    noise: NoiseDistribution,
    strategy: Strategy,
    rng: &mut impl Rng,
) -> Result<Vec<f64>> {
    objective.validate(data)?;
    let clean = objective.assemble(data);
    release_assembled(&clean, objective, epsilon, bound, noise, strategy, rng)
}

/// The post-assembly half of the fit pipeline, shared by the in-memory
/// and streaming entry points: perturb the already-assembled (and
/// already-validated) coefficients, then resolve unboundedness per
/// `strategy`. The Lemma-5 resample loop re-perturbs the *same* clean
/// coefficients per attempt — assembly is deterministic, so this draws
/// the exact noise stream the pre-refactor per-attempt re-assembly drew,
/// without re-scanning the data.
pub(crate) fn release_assembled(
    clean: &QuadraticForm,
    objective: &impl PolynomialObjective,
    epsilon: f64,
    bound: SensitivityBound,
    noise: NoiseDistribution,
    strategy: Strategy,
    rng: &mut impl Rng,
) -> Result<Vec<f64>> {
    match strategy {
        Strategy::Resample { max_attempts } => {
            if max_attempts == 0 {
                return Err(FmError::InvalidConfig {
                    name: "max_attempts",
                    reason: "must be at least 1".to_string(),
                });
            }
            if !matches!(noise, NoiseDistribution::Laplace) {
                // Lemma 5's conditioning argument is specific to pure ε-DP;
                // re-running an (ε, δ) mechanism until success does not
                // compose to a clean (2ε, δ') guarantee, so we refuse rather
                // than advertise an unsound budget.
                return Err(FmError::InvalidConfig {
                    name: "strategy",
                    reason: "Resample (Lemma 5) is only sound with Laplace noise".to_string(),
                });
            }
            // Lemma 5: repetition costs 2× the per-run budget, so run each
            // attempt at ε/2 to honour the advertised total.
            let fm = FunctionalMechanism::with_bound(epsilon / 2.0, bound)?;
            for _ in 0..max_attempts {
                let noisy = fm.perturb_assembled(clean, objective, rng)?;
                match postprocess::minimize(&noisy) {
                    Ok(omega) => return Ok(omega),
                    Err(FmError::Optim(fm_optim::OptimError::UnboundedObjective)) => continue,
                    Err(e) => return Err(e),
                }
            }
            Err(FmError::ResampleExhausted {
                attempts: max_attempts,
            })
        }
        other => {
            let fm = FunctionalMechanism::with_config(epsilon, bound, noise)?;
            let noisy = fm.perturb_assembled(clean, objective, rng)?;
            postprocess::solve(noisy, other)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearObjective;
    use crate::model::Model;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(90_210)
    }

    #[test]
    fn config_defaults_match_the_old_builders() {
        let c = FitConfig::default();
        assert_eq!(c.epsilon, 1.0);
        assert_eq!(c.bound, SensitivityBound::Paper);
        assert!(!c.fit_intercept);
        assert_eq!(c.noise, NoiseDistribution::Laplace);
        assert_eq!(c.delta(), None);
        assert_eq!(
            FitConfig::new()
                .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
                .delta(),
            Some(1e-6)
        );
    }

    #[test]
    fn generic_estimator_fits_and_reports_metadata() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 5_000, 3, 0.1);
        let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(0.8));
        assert_eq!(DpEstimator::epsilon(&est), Some(0.8));
        assert_eq!(est.task(), ModelKind::Linear);
        assert_eq!(est.delta(), None);
        let model = est.fit(&data, &mut r).unwrap();
        assert_eq!(model.dim(), 3);
        assert_eq!(Model::epsilon(&model), Some(0.8));
    }

    #[test]
    fn fit_stream_is_bit_identical_to_fit() {
        use fm_data::stream::InMemorySource;
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 5_000, 3, 0.1);
        for intercept in [false, true] {
            let est = FmEstimator::new(
                LinearObjective,
                FitConfig::new().epsilon(1.0).fit_intercept(intercept),
            );
            let mut r1 = rand::rngs::StdRng::seed_from_u64(11);
            let in_memory = est.fit(&data, &mut r1).unwrap();
            let mut r2 = rand::rngs::StdRng::seed_from_u64(11);
            let streamed = est
                .fit_stream(&mut InMemorySource::new(&data), &mut r2)
                .unwrap();
            assert_eq!(in_memory, streamed, "intercept={intercept}");
        }
    }

    #[test]
    fn partial_fit_across_shards_matches_single_fit() {
        use fm_data::stream::InMemorySource;
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 3_000, 2, 0.1);
        let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));

        let mut r1 = rand::rngs::StdRng::seed_from_u64(23);
        let whole = est.fit(&data, &mut r1).unwrap();

        // Three unequal shards, one absorb each.
        let idx: Vec<usize> = (0..data.n()).collect();
        let shards = [
            data.subset(&idx[..700]).unwrap(),
            data.subset(&idx[700..2_500]).unwrap(),
            data.subset(&idx[2_500..]).unwrap(),
        ];
        let mut partial = est.partial_fit();
        for shard in &shards {
            partial.absorb(&mut InMemorySource::new(shard)).unwrap();
        }
        assert_eq!(partial.rows(), data.n());
        let mut r2 = rand::rngs::StdRng::seed_from_u64(23);
        let sharded = partial.finalize(&mut r2).unwrap();
        assert_eq!(whole, sharded);
    }

    #[test]
    fn partial_fit_refuses_empty_and_mismatched_shards() {
        use fm_data::stream::InMemorySource;
        let mut r = rng();
        let est = FmEstimator::new(LinearObjective, FitConfig::new());
        // Finalizing with no data is a data error, not a release.
        let empty = est.partial_fit();
        assert!(matches!(
            empty.finalize(&mut r),
            Err(FmError::Data(DataError::EmptyDataset))
        ));
        // Shards must agree on dimensionality.
        let d2 = fm_data::synth::linear_dataset(&mut r, 50, 2, 0.1);
        let d3 = fm_data::synth::linear_dataset(&mut r, 50, 3, 0.1);
        let mut partial = est.partial_fit();
        partial.absorb(&mut InMemorySource::new(&d2)).unwrap();
        assert!(partial.absorb(&mut InMemorySource::new(&d3)).is_err());
    }

    #[test]
    fn default_trait_fit_stream_materializes_for_baseline_style_estimators() {
        use fm_data::stream::InMemorySource;
        // An estimator with no native streaming: the trait default must
        // materialize the stream and produce the same model as fit.
        struct Mean;
        impl DpEstimator for Mean {
            type Model = f64;
            fn fit(&self, data: &Dataset, _: &mut dyn RngCore) -> Result<f64> {
                Ok(data.y().iter().sum::<f64>() / data.n() as f64)
            }
            fn epsilon(&self) -> Option<f64> {
                None
            }
            fn task(&self) -> ModelKind {
                ModelKind::Linear
            }
        }
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 200, 2, 0.1);
        let direct = Mean.fit(&data, &mut r).unwrap();
        let streamed = Mean
            .fit_stream(&mut InMemorySource::new(&data), &mut r)
            .unwrap();
        assert_eq!(direct, streamed);
    }

    #[test]
    fn dyn_estimator_fit_matches_inherent_fit() {
        // The dyn-compatible trait fit and the typed inherent fit must draw
        // the same noise stream and release the same weights.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_000, 2, 0.1);
        let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));

        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let typed = est.fit(&data, &mut r1).unwrap();

        let dyn_est: &dyn DpEstimator<Model = crate::model::LinearModel> = &est;
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        let boxed = dyn_est.fit(&data, &mut r2).unwrap();
        assert_eq!(typed, boxed);
    }
}
