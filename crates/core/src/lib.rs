//! # fm-core — the Functional Mechanism
//!
//! The primary contribution of *Functional Mechanism: Regression Analysis
//! under Differential Privacy* (Zhang, Zhang, Xiao, Yang, Winslett — PVLDB
//! 5(11), 2012), implemented in full:
//!
//! * [`estimator`] — the **generic estimator core**: one
//!   [`estimator::FmEstimator`] runs the shared fit pipeline (augment →
//!   Algorithm 1 → §6 post-processing → model wrapping) for every
//!   [`estimator::RegressionObjective`]; the dyn-compatible
//!   [`estimator::DpEstimator`] trait is the uniform face private
//!   estimators and `fm-baselines` comparators share, configured by one
//!   [`estimator::FitConfig`] instead of per-family builder clones.
//! * [`session`] — [`session::PrivacySession`]: budget-aware fitting that
//!   debits every `fit` against a `fm_privacy` ledger and reports the
//!   honest composed (ε, δ) — basic and advanced composition — for
//!   multi-fit workloads (CV repeats, ε-sweeps, model selection).
//! * [`assembly`] — the **batched coefficient-assembly hot path**: chunked
//!   map-reduce over the dataset's rows with blocked Gram kernels
//!   (`yᵀy` / `Xᵀy` / `XᵀX`) and a deterministic pairwise tree reduction;
//!   data-parallel behind the `parallel` cargo feature with bit-identical
//!   results for every worker count.
//! * [`mechanism`] — **Algorithm 1**: express the objective function
//!   `f_D(ω) = Σ_i f(t_i, ω)` in its polynomial representation, compute the
//!   coefficient sensitivity `Δ` (Lemma 1), inject i.i.d. `Lap(Δ/ε)` noise
//!   into every coefficient (Theorem 1 ⇒ ε-DP), and hand back a
//!   [`mechanism::NoisyQuadratic`]. The noisy-coefficient object is a
//!   distinct *type* from the clean objective, so post-processing provably
//!   touches only already-private data.
//! * [`linreg`] — **Section 4.2**: ε-DP linear regression. The objective is
//!   exactly quadratic; sensitivity `Δ = 2(d+1)²`.
//! * [`logreg`] — **Section 5 / Algorithm 2**: ε-DP logistic regression via
//!   degree-2 Taylor truncation of the loss (constants `log 2, ½, ¼`);
//!   sensitivity `Δ = d²/4 + 3d`. The truncation error is bounded by a
//!   constant independent of the data (Lemmas 3–4). A Chebyshev surrogate
//!   ([`logreg::Approximation::Chebyshev`]) implements the §8-future-work
//!   alternative with ~8× lower worst-case approximation error.
//! * [`poisson`] — **§8 extension**: ε-DP Poisson (count) regression via the
//!   same Algorithm-2 pipeline applied to `f(t,ω) = exp(xᵀω) − y·xᵀω`,
//!   with the bounded-count contract `y ∈ [0, y_max]` and sensitivity
//!   `Δ = 2((1 + y_max)d + d²/2)`.
//! * [`robust`] — **robust regression objectives**: ε-DP median
//!   regression (smoothed pinball loss after Chen et al. 2020) and Huber
//!   regression as first-class [`estimator::RegressionObjective`]s with
//!   weighted Gram batch/columnar kernels; saturating influence functions
//!   make them resistant to label outliers where least squares is not.
//! * [`generic`] — **Algorithm 1 at arbitrary degree**: the literal
//!   Equation-2/3 mechanism over sparse polynomials, perturbing every
//!   monomial in `Φ_0 ∪ … ∪ Φ_J` (structural zeros included), with a
//!   worked quartic-loss objective showing the framework beyond degree 2.
//! * [`sparse`] — the [`sparse::SparseFmEstimator`] front-end running the
//!   general-degree mechanism through the same `FitConfig → Algorithm 1 →
//!   §6-style post-processing → Model` pipeline, `DpEstimator` surface,
//!   session accounting and persistence as the degree-2 families.
//! * [`persist`] — a dependency-free, bit-exact text format for shipping
//!   released models (parameters + privacy metadata) out of the silo;
//!   post-processing keeps the guarantee intact.
//! * [`postprocess`] — **Section 6**: the noisy quadratic may be unbounded
//!   below. Remedies, all free of additional privacy cost:
//!   ridge **regularization** with `λ = 4·stddev(Lap(Δ/ε))` (§6.1),
//!   **spectral trimming** of non-positive eigenvalues (§6.2), and the
//!   **Lemma-5 resample** loop (implemented at `ε/2` per attempt so the
//!   advertised total budget is honoured).
//! * [`model`] — the released artefacts: [`model::LinearModel`] and
//!   [`model::LogisticModel`], plain parameter vectors with prediction
//!   helpers. Everything derivable from them is post-processing and stays
//!   ε-DP.
//!
//! ## Privacy argument, mapped to code
//!
//! | Paper | Code |
//! |-------|------|
//! | Lemma 1 (sensitivity of coefficient vector) | `mechanism::FunctionalMechanism::perturb` uses the per-objective `Δ` from [`linreg::sensitivity_paper`]-style fns; property tests in each module verify per-tuple coefficient L1 ≤ Δ/2 over the normalized domain |
//! | Theorem 1 (Algorithm 1 is ε-DP) | all data-dependent values flow through exactly one `LaplaceMechanism::privatize*` call |
//! | Theorem 2 (consistency) | integration test `convergence_theorem2` (facade `tests/`) |
//! | Lemma 5 (resampling costs 2ε) | `postprocess::Strategy::Resample` halves ε per attempt |
//!
//! ## Example
//!
//! ```
//! use fm_core::linreg::DpLinearRegression;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let data = fm_data::synth::linear_dataset(&mut rng, 5_000, 4, 0.05);
//!
//! let model = DpLinearRegression::builder()
//!     .epsilon(1.0)
//!     .build()
//!     .fit(&data, &mut rng)
//!     .unwrap();
//! assert_eq!(model.weights().len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assembly;
pub mod checkpoint;
pub mod estimator;
pub mod generic;
pub mod linreg;
pub mod logreg;
pub mod mechanism;
pub mod model;
pub mod persist;
pub mod poisson;
pub mod postprocess;
pub mod robust;
pub mod session;
pub mod sparse;

mod error;

pub use assembly::CoefficientAccumulator;
pub use error::FmError;
pub use estimator::{
    DpEstimator, EstimatorBuilder, FitConfig, FitProgress, FmEstimator, PartialFit,
    RegressionObjective,
};
pub use mechanism::{
    FunctionalMechanism, NoiseDistribution, NoisyQuadratic, PolynomialObjective, SensitivityBound,
};
pub use model::{Model, ModelKind, PersistableModel};
pub use postprocess::Strategy;
pub use robust::{
    DpHuberRegression, DpMedianRegression, DpQuantileRegression, HuberObjective, MedianObjective,
    QuantileObjective,
};
pub use session::PrivacySession;
pub use sparse::{SparseFmEstimator, SparseRegressionObjective};

/// Result alias for fallible functional-mechanism operations.
pub type Result<T> = std::result::Result<T, FmError>;
