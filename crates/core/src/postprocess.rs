//! Section 6 of the paper: making the noisy objective bounded.
//!
//! Algorithm 1 can return `f̄_D(ω) = ωᵀM*ω + α*ᵀω + β*` whose `M*` has a
//! non-positive eigenvalue, in which case no minimiser exists. All the
//! remedies below consume only the *already-noised* coefficients (plus the
//! data-independent noise scale), so by the post-processing property of
//! differential privacy none of them costs additional ε:
//!
//! * [`regularize`] (§6.1) — add `λ·I` to `M*` with
//!   `λ = 4 × stddev(Lap(Δ/ε))`, the multiplier the paper found to work
//!   well. The noise stddev is a function of `(Δ, ε)` only, never of the
//!   data.
//! * [`spectral_trim_minimize`] (§6.2) — eigendecompose
//!   `M* = QᵀΛQ`, drop the non-positive eigenvalues (rows of `Q`),
//!   minimise `ḡ(Q'ω) = (Q'ω)ᵀΛ'(Q'ω) + α*ᵀQ'ᵀ(Q'ω) + β*` in the reduced
//!   space, and map back via the minimum-norm solution `ω = Q'ᵀV`.
//! * The **Lemma-5 resample** loop lives in the regression front-ends
//!   (`linreg`/`logreg`), because it needs to re-run the mechanism itself;
//!   it is exposed through [`Strategy::Resample`].

use fm_linalg::{Matrix, SymmetricEigen, TridiagonalEigen};
use fm_optim::quadratic::minimize_quadratic;

use crate::mechanism::NoisyQuadratic;
use crate::{FmError, Result};

/// The paper's §6.1 regularization multiplier: `λ = 4 × noise stddev`.
pub const REGULARIZATION_MULTIPLIER: f64 = 4.0;

/// Eigenvalues at or below this are treated as non-positive by spectral
/// trimming (guards floating-point zeros from the eigensolver).
const EIGEN_POSITIVE_TOL: f64 = 1e-12;

/// Above this dimensionality the trimming step switches from cyclic Jacobi
/// to the Householder + implicit-QL eigensolver — Jacobi is simpler and
/// plenty fast in the paper's `d ≤ 14` regime, but its per-sweep `O(d³)`
/// loses decisively by `d ≈ 32` (see the `eigen_scaling` bench).
const TRIDIAGONAL_DISPATCH_DIM: usize = 32;

/// The symmetric eigendecomposition backing §6.2, dispatched by dimension.
/// Returns `(descending eigenvalues, eigenvector columns)`.
fn symmetric_eigen(m: &Matrix) -> Result<(Vec<f64>, Matrix)> {
    if m.rows() > TRIDIAGONAL_DISPATCH_DIM {
        let e = TridiagonalEigen::new(m)?;
        Ok((e.values().to_vec(), e.vectors().clone()))
    } else {
        let e = SymmetricEigen::new(m)?;
        Ok((e.values().to_vec(), e.vectors().clone()))
    }
}

/// How a fitted regression handles a potentially unbounded noisy objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// §6.1 then §6.2 (the paper's full pipeline, and the default):
    /// regularize; if the objective is still unbounded, spectrally trim.
    #[default]
    RegularizeThenTrim,
    /// §6.1 only; fitting fails if regularization does not restore
    /// boundedness.
    RegularizeOnly,
    /// No post-processing: fitting fails on an unbounded draw. Useful for
    /// measuring how often unboundedness actually occurs (ablation).
    FailIfUnbounded,
    /// Lemma 5: re-run Algorithm 1 until the draw is bounded, with at most
    /// this many attempts. Each attempt runs at `ε/2` so the *advertised*
    /// budget equals the actual `2·(ε/2)` guarantee of Lemma 5.
    Resample {
        /// Maximum number of mechanism re-runs before giving up.
        max_attempts: usize,
    },
}

/// Applies §6.1 ridge regularization in place with the paper's multiplier.
/// Returns the `λ` that was added.
pub fn regularize(noisy: &mut NoisyQuadratic) -> f64 {
    regularize_with(noisy, REGULARIZATION_MULTIPLIER)
}

/// Applies §6.1 regularization with an explicit multiplier
/// (`λ = multiplier × noise stddev`) — exposed for the ablation benchmarks.
/// Returns the `λ` that was added.
pub fn regularize_with(noisy: &mut NoisyQuadratic, multiplier: f64) -> f64 {
    let lambda = multiplier * noisy.noise_std_dev();
    noisy.objective_mut().regularize(lambda);
    lambda
}

/// Minimises the noisy quadratic directly (Algorithm 1, line 8).
///
/// # Errors
/// [`FmError::Optim`] wrapping [`fm_optim::OptimError::UnboundedObjective`] when `M*`
/// is not positive definite — the §6 trigger.
pub fn minimize(noisy: &NoisyQuadratic) -> Result<Vec<f64>> {
    let q = noisy.objective();
    Ok(minimize_quadratic(q.m(), q.alpha())?)
}

/// §6.2 spectral trimming with the literal "non-positive" threshold.
/// Returns the minimiser together with the number of eigenvalues removed.
///
/// Prefer [`spectral_trim_minimize_with_floor`] after §6.1 regularization:
/// eigenvalues that are positive but *below the added `λ`* correspond to
/// directions of `M*` whose un-regularized eigenvalue was non-positive —
/// pure noise directions whose tiny reciprocals would blow up the
/// minimiser. This literal variant (floor ≈ 0) is kept for the ablation
/// benchmarks.
///
/// # Errors
/// * [`FmError::EmptySpectrum`] when no positive eigenvalue remains.
/// * [`FmError::Linalg`] if eigendecomposition fails.
pub fn spectral_trim_minimize(noisy: &NoisyQuadratic) -> Result<(Vec<f64>, usize)> {
    spectral_trim_minimize_with_floor(noisy, EIGEN_POSITIVE_TOL)
}

/// §6.2 spectral trimming, keeping only eigenvalues strictly above `floor`.
///
/// After §6.1 added `λ` to the diagonal, passing `floor = λ` trims exactly
/// the directions whose *pre-regularization* eigenvalue was non-positive
/// ("mostly due to noise", as the paper puts it), and guarantees the kept
/// reduced problem is `λ`-strongly convex — so the reconstructed `ω` is
/// bounded by `‖α*‖/(2λ)` regardless of how unlucky the noise draw was.
///
/// # Errors
/// * [`FmError::EmptySpectrum`] when nothing survives the floor.
/// * [`FmError::Linalg`] if eigendecomposition fails.
pub fn spectral_trim_minimize_with_floor(
    noisy: &NoisyQuadratic,
    floor: f64,
) -> Result<(Vec<f64>, usize)> {
    let q = noisy.objective();
    let d = q.dim();
    let (values, vectors) = symmetric_eigen(q.m())?;

    // Keep eigenvalues strictly above the floor (sorted descending).
    let threshold = floor.max(EIGEN_POSITIVE_TOL);
    let kept = values.iter().filter(|&&v| v > threshold).count();
    let trimmed = d - kept;
    if kept == 0 {
        return Err(FmError::EmptySpectrum);
    }

    // In the reduced coordinates V = Q'ω (Q' rows = kept eigenvectors):
    //   ḡ(V) = VᵀΛ'V + (Q'α)ᵀV + β*  ⇒  V_k = −(Q'α)_k / (2λ_k).
    let alpha = q.alpha();
    let mut v = vec![0.0; kept];
    for (k, vk) in v.iter_mut().enumerate() {
        // Stream the eigenvector column — no per-k buffer allocation.
        let proj: f64 = vectors.col(k).zip(alpha).map(|(e, &a)| e * a).sum();
        *vk = -proj / (2.0 * values[k]);
    }

    // Minimum-norm pre-image: ω = Q'ᵀV = Σ_k V_k · eigvec_k.
    let mut omega = vec![0.0; d];
    for (k, &vk) in v.iter().enumerate() {
        for (o, e) in omega.iter_mut().zip(vectors.col(k)) {
            *o += vk * e;
        }
    }
    Ok((omega, trimmed))
}

/// Runs the full in-place pipeline for the given strategy (except
/// [`Strategy::Resample`], which the regression front-ends drive because it
/// must re-invoke the mechanism).
///
/// # Errors
/// * [`FmError::Optim`] (unbounded) under
///   [`Strategy::FailIfUnbounded`]/[`Strategy::RegularizeOnly`] when the
///   objective stays unbounded.
/// * [`FmError::InvalidConfig`] if called with [`Strategy::Resample`].
/// * [`FmError::EmptySpectrum`] if trimming removes everything.
pub fn solve(mut noisy: NoisyQuadratic, strategy: Strategy) -> Result<Vec<f64>> {
    match strategy {
        Strategy::FailIfUnbounded => minimize(&noisy),
        Strategy::RegularizeOnly => {
            regularize(&mut noisy);
            minimize(&noisy)
        }
        Strategy::RegularizeThenTrim => {
            let lambda = regularize(&mut noisy);
            // Solve in the floored eigenbasis: directions whose pre-λ
            // eigenvalue was non-positive (eigenvalue ≤ λ after the shift)
            // are noise (§6.2) and are trimmed even when the shifted matrix
            // is technically positive definite — a barely-positive noise
            // direction would otherwise blow up the minimiser. When every
            // eigenvalue clears the floor this is exactly the direct solve.
            Ok(spectral_trim_minimize_with_floor(&noisy, lambda)?.0)
        }
        Strategy::Resample { .. } => Err(FmError::InvalidConfig {
            name: "strategy",
            reason: "Resample must be handled by the regression front-end".to_string(),
        }),
    }
}

/// How many times [`solve_polynomial`] escalates the ridge under
/// [`Strategy::RegularizeThenTrim`] before giving up (multiplier ×4 per
/// round). Spectral trimming has no general-degree analogue — a noisy
/// quartic has no eigendecomposition to trim — so the "then trim" rescue
/// becomes "then regularize harder", which is likewise pure
/// post-processing (the escalation schedule depends only on the
/// data-independent noise scale and the draw already released).
const POLY_RIDGE_ESCALATIONS: usize = 3;

/// The §6 pipeline for **general-degree** noisy releases
/// ([`crate::generic::NoisyPolynomial`]): the exact analogue of [`solve`]
/// with ridge regularization in place of the quadratic-specific machinery.
///
/// * [`Strategy::FailIfUnbounded`] — minimise the raw release from
///   `start`; iterates escaping `‖ω‖ > radius` report the objective as
///   unbounded.
/// * [`Strategy::RegularizeOnly`] — add the §6.1 ridge
///   `λ·Σ_j ω_j²` with `λ = 4 × noise stddev`, then minimise.
/// * [`Strategy::RegularizeThenTrim`] — as above, but on an unbounded
///   draw escalate `λ` (×4, up to `POLY_RIDGE_ESCALATIONS` = 3 rounds)
///   before giving up — the general-degree stand-in for §6.2's trim.
/// * [`Strategy::Resample`] — rejected here; the sparse estimator drives
///   it because it must re-run the mechanism.
///
/// All branches consume only already-noised coefficients plus the
/// data-independent noise scale: no additional privacy cost.
///
/// # Errors
/// * [`FmError::Optim`] (unbounded/divergent) when the chosen strategy
///   cannot restore boundedness.
/// * [`FmError::InvalidConfig`] if called with [`Strategy::Resample`].
pub fn solve_polynomial(
    noisy: crate::generic::NoisyPolynomial,
    strategy: Strategy,
    start: &[f64],
    radius: f64,
) -> Result<Vec<f64>> {
    match strategy {
        Strategy::FailIfUnbounded => noisy.minimize(start, radius),
        Strategy::RegularizeOnly => {
            let mut noisy = noisy;
            let lambda = REGULARIZATION_MULTIPLIER * noisy.noise_std_dev();
            noisy.polynomial_mut().regularize(lambda);
            noisy.minimize(start, radius)
        }
        Strategy::RegularizeThenTrim => {
            let mut noisy = noisy;
            let base = REGULARIZATION_MULTIPLIER * noisy.noise_std_dev();
            let mut added = 0.0;
            for round in 0..=POLY_RIDGE_ESCALATIONS {
                // Total ridge this round: base · 4^round (add the delta on
                // top of what previous rounds already contributed).
                let target = base * 4.0_f64.powi(round as i32);
                noisy.polynomial_mut().regularize(target - added);
                added = target;
                match noisy.minimize(start, radius) {
                    Ok(omega) => return Ok(omega),
                    Err(FmError::Optim(
                        fm_optim::OptimError::UnboundedObjective
                        | fm_optim::OptimError::NonFiniteObjective,
                    )) if round < POLY_RIDGE_ESCALATIONS => continue,
                    Err(e) => return Err(e),
                }
            }
            unreachable!("loop always returns on its final round")
        }
        Strategy::Resample { .. } => Err(FmError::InvalidConfig {
            name: "strategy",
            reason: "Resample must be handled by the sparse estimator front-end".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::{vecops, Matrix};
    use fm_optim::OptimError;
    use fm_poly::QuadraticForm;

    fn noisy_from(m: Matrix, alpha: Vec<f64>, epsilon: f64, delta: f64) -> NoisyQuadratic {
        NoisyQuadratic::from_parts_for_tests(QuadraticForm::new(m, alpha, 0.0), epsilon, delta)
    }

    #[test]
    fn regularize_uses_paper_multiplier() {
        // Δ/ε = 2 ⇒ stddev = 2√2 ⇒ λ = 8√2.
        let mut noisy = noisy_from(Matrix::zeros(2, 2), vec![0.0; 2], 1.0, 2.0);
        let lambda = regularize(&mut noisy);
        let expected = 4.0 * 2.0 * std::f64::consts::SQRT_2;
        assert!((lambda - expected).abs() < 1e-12);
        assert!((noisy.objective().m()[(0, 0)] - lambda).abs() < 1e-12);
        assert!((noisy.objective().m()[(1, 1)] - lambda).abs() < 1e-12);
        assert_eq!(noisy.objective().m()[(0, 1)], 0.0);
    }

    #[test]
    fn custom_multiplier() {
        let mut noisy = noisy_from(Matrix::zeros(1, 1), vec![0.0], 1.0, 1.0);
        let lambda = regularize_with(&mut noisy, 10.0);
        assert!((lambda - 10.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn minimize_bounded_quadratic() {
        // f = 2ω² − 4ω: minimum at ω = 1.
        let noisy = noisy_from(Matrix::from_diagonal(&[2.0]), vec![-4.0], 1.0, 1.0);
        let omega = minimize(&noisy).unwrap();
        assert!((omega[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minimize_unbounded_reports_error() {
        let noisy = noisy_from(Matrix::from_diagonal(&[-1.0]), vec![1.0], 1.0, 1.0);
        assert!(matches!(
            minimize(&noisy),
            Err(FmError::Optim(OptimError::UnboundedObjective))
        ));
    }

    #[test]
    fn trimming_drops_negative_eigenvalues() {
        // M = diag(2, −1): one positive eigenvalue survives. α = (−4, 6).
        // Reduced problem: 2v² − 4v (v along e1) ⇒ v = 1 ⇒ ω = (1, 0).
        let noisy = noisy_from(
            Matrix::from_diagonal(&[2.0, -1.0]),
            vec![-4.0, 6.0],
            1.0,
            1.0,
        );
        let (omega, trimmed) = spectral_trim_minimize(&noisy).unwrap();
        assert_eq!(trimmed, 1);
        assert!((omega[0] - 1.0).abs() < 1e-10, "{omega:?}");
        assert!(omega[1].abs() < 1e-10, "{omega:?}");
    }

    #[test]
    fn trimming_on_pd_matrix_matches_direct_solve() {
        let m = Matrix::from_rows(&[&[3.0, 0.5], &[0.5, 2.0]]).unwrap();
        let noisy = noisy_from(m, vec![1.0, -2.0], 1.0, 1.0);
        let direct = minimize(&noisy).unwrap();
        let (trimmed_omega, trimmed) = spectral_trim_minimize(&noisy).unwrap();
        assert_eq!(trimmed, 0);
        assert!(vecops::approx_eq(&direct, &trimmed_omega, 1e-9));
    }

    #[test]
    fn trimming_everything_is_an_error() {
        let noisy = noisy_from(
            Matrix::from_diagonal(&[-1.0, -2.0]),
            vec![0.0, 0.0],
            1.0,
            1.0,
        );
        assert!(matches!(
            spectral_trim_minimize(&noisy),
            Err(FmError::EmptySpectrum)
        ));
    }

    #[test]
    fn trimmed_solution_is_minimum_norm() {
        // With M = diag(1, 0−ish→negative) and α only in the kept direction,
        // the trimmed coordinate of ω must be exactly zero.
        let noisy = noisy_from(
            Matrix::from_diagonal(&[1.0, -0.5]),
            vec![-2.0, 0.0],
            1.0,
            1.0,
        );
        let (omega, _) = spectral_trim_minimize(&noisy).unwrap();
        assert!((omega[0] - 1.0).abs() < 1e-10);
        assert_eq!(omega[1], 0.0);
    }

    #[test]
    fn solve_strategies() {
        let unbounded = || noisy_from(Matrix::from_diagonal(&[-5.0]), vec![1.0], 1.0, 0.001);
        // FailIfUnbounded propagates the error.
        assert!(solve(unbounded(), Strategy::FailIfUnbounded).is_err());
        // RegularizeOnly: λ = 4·√2·0.001 is too small to fix −5 ⇒ error.
        assert!(solve(unbounded(), Strategy::RegularizeOnly).is_err());
        // RegularizeThenTrim falls back to trimming… which empties the
        // spectrum here, so it reports EmptySpectrum.
        assert!(matches!(
            solve(unbounded(), Strategy::RegularizeThenTrim),
            Err(FmError::EmptySpectrum)
        ));
        // A mixed-signature draw is rescued by trimming.
        let mixed = noisy_from(
            Matrix::from_diagonal(&[3.0, -5.0]),
            vec![-6.0, 1.0],
            1.0,
            0.001,
        );
        let omega = solve(mixed, Strategy::RegularizeThenTrim).unwrap();
        assert!((omega[0] - 1.0).abs() < 1e-2); // ≈ 6/(2·(3+λ))
                                                // Resample is rejected here (regression front-ends own it).
        assert!(matches!(
            solve(unbounded(), Strategy::Resample { max_attempts: 3 }),
            Err(FmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn floored_trimming_discards_noise_scale_eigenvalues() {
        // Eigenvalues 5 and 0.1 with a floor of 1: only the 5-direction
        // survives, so the second coordinate of ω must be zero rather than
        // the exploded −α/(2·0.1).
        let noisy = noisy_from(
            Matrix::from_diagonal(&[5.0, 0.1]),
            vec![-10.0, -10.0],
            1.0,
            1.0,
        );
        let (omega, trimmed) = spectral_trim_minimize_with_floor(&noisy, 1.0).unwrap();
        assert_eq!(trimmed, 1);
        assert!((omega[0] - 1.0).abs() < 1e-10);
        assert_eq!(omega[1], 0.0);
        // The literal variant would have kept it and produced ω₁ = 50.
        let (literal, t0) = spectral_trim_minimize(&noisy).unwrap();
        assert_eq!(t0, 0);
        assert!((literal[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn floored_trimming_bounds_the_solution_norm() {
        // ‖ω‖ ≤ ‖α‖/(2·floor) for any draw.
        let noisy = noisy_from(
            Matrix::from_diagonal(&[2.0, 1.5, 0.01]),
            vec![3.0, -7.0, 100.0],
            1.0,
            1.0,
        );
        let floor = 1.0;
        let (omega, _) = spectral_trim_minimize_with_floor(&noisy, floor).unwrap();
        let bound = vecops::norm2(noisy.objective().alpha()) / (2.0 * floor);
        assert!(vecops::norm2(&omega) <= bound + 1e-9);
    }

    #[test]
    fn regularization_can_rescue_mildly_indefinite() {
        // Noise scale 1 ⇒ λ = 4√2 ≈ 5.66 > 5: regularization alone fixes it.
        let noisy = noisy_from(
            Matrix::from_diagonal(&[-5.0, 2.0]),
            vec![1.0, 1.0],
            1.0,
            1.0,
        );
        let omega = solve(noisy, Strategy::RegularizeOnly).unwrap();
        assert_eq!(omega.len(), 2);
    }

    #[test]
    fn high_dimensional_trimming_uses_ql_path_and_agrees() {
        // d = 40 exceeds the tridiagonal dispatch threshold; the result
        // must match the ≤-threshold computation done with Jacobi directly.
        let d = 40;
        let mut m = Matrix::from_fn(d, d, |r, c| (((r * 5 + c * 11) % 17) as f64 - 8.0) / 8.0);
        m.symmetrize().unwrap();
        m.add_diagonal(6.0); // mostly positive spectrum, some trims likely
        let alpha: Vec<f64> = (0..d).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
        let noisy = noisy_from(m.clone(), alpha.clone(), 1.0, 1.0);
        let (omega, _) = spectral_trim_minimize_with_floor(&noisy, 0.5).unwrap();

        // Reference: the same trimming arithmetic on the Jacobi basis.
        let eig = fm_linalg::SymmetricEigen::new(&m).unwrap();
        let kept = eig.count_above(0.5);
        let mut expected = vec![0.0; d];
        for k in 0..kept {
            let v: Vec<f64> = eig.vectors().col(k).collect();
            let coeff = -vecops::dot(&v, &alpha) / (2.0 * eig.values()[k]);
            vecops::axpy(coeff, &v, &mut expected);
        }
        assert!(
            vecops::approx_eq(&omega, &expected, 1e-7),
            "QL and Jacobi trimming disagree"
        );
    }
}
