//! Algorithm 1 in its full generality: objectives whose per-tuple cost is a
//! polynomial of **any finite degree `J`**, not just the degree-2 forms the
//! paper's two case studies reduce to.
//!
//! The paper states Algorithm 1 over the complete monomial sets
//! `Φ_0 … Φ_J` (Equation 2): line 4 draws one Laplace variate for *every*
//! `φ ∈ Φ_j` — including monomials whose clean coefficient happens to be
//! zero. (Skipping structural zeros would leak which coefficients are
//! zero, exactly the kind of side channel Theorem 1's proof excludes.)
//! The dense [`QuadraticForm`](fm_poly::QuadraticForm) path in
//! [`crate::mechanism`] does this implicitly for `J = 2`; this module does
//! it explicitly for arbitrary `J` over the sparse
//! [`Polynomial`] representation.
//!
//! Two honest caveats, both inherited from the paper:
//!
//! * `|Φ_j| = C(d+j−1, j)` grows quickly; the mechanism refuses degree/
//!   dimension combinations whose coefficient count exceeds a sanity cap
//!   rather than silently allocating gigabytes.
//! * §6's post-processing is quadratic-specific. A noisy odd-degree
//!   polynomial is *always* unbounded below; even-degree ones can still
//!   lose coercivity to noise. [`NoisyPolynomial::minimize`] therefore
//!   performs a bounded gradient-descent search and reports
//!   [`fm_optim::OptimError::UnboundedObjective`] when the iterates
//!   diverge, leaving retry policy to the caller (Lemma 5 applies
//!   unchanged).
//!
//! This module is the **mechanism level** of the general-degree story.
//! Estimator-level code should use [`crate::sparse::SparseFmEstimator`],
//! which runs [`GenericFunctionalMechanism`] through the same
//! `FitConfig → Algorithm 1 → §6-style post-processing → Model` pipeline,
//! `DpEstimator` surface and `PrivacySession` accounting as the degree-2
//! families — driving `perturb`/`minimize` by hand (as the quartic example
//! used to) is a deprecated pattern kept only for tests that pin the two
//! paths equal.

use rand::Rng;

use fm_data::Dataset;
use fm_poly::monomial::{monomials_up_to_degree, Monomial};
use fm_poly::Polynomial;
use fm_privacy::mechanism::{GaussianMechanism, LaplaceMechanism};

use crate::mechanism::NoiseDistribution;
use crate::{FmError, Result};

/// Refuse objectives with more perturbable coefficients than this — at
/// `d = 14, J = 4` the count is already 3,060; the cap guards runaway
/// degree/dimension combinations, not legitimate workloads.
pub const MAX_COEFFICIENTS: usize = 200_000;

/// An objective in the general Equation-3 form: each tuple contributes a
/// polynomial of degree ≤ [`GeneralObjective::max_degree`].
///
/// Like [`crate::PolynomialObjective`], implementations own the Lemma-1
/// contract, and it covers **every coefficient the mechanism releases** —
/// [`GenericFunctionalMechanism::perturb`] draws noise for the whole of
/// `Φ_0 ∪ … ∪ Φ_J`, the degree-0 monomial included. For any two tuples in
/// the domain [`GeneralObjective::validate`] accepts, the L1 distance
/// between their [`GeneralObjective::tuple_polynomial`] coefficient
/// vectors must be at most `sensitivity(d)`; the usual sufficient
/// per-tuple form is full coefficient L1 norm (constant included) at most
/// `sensitivity(d) / 2`, though a data-*independent* constant cancels
/// between neighbours and needs no Δ share.
/// `Sync` is a supertrait for the same reason as on
/// [`crate::PolynomialObjective`]: [`GeneralObjective::assemble`] fans the
/// accumulation out across row chunks.
pub trait GeneralObjective: Sync {
    /// The per-tuple cost `f(t, ω)` as a polynomial in ω.
    fn tuple_polynomial(&self, x: &[f64], y: f64, d: usize) -> Polynomial;

    /// Accumulates a whole row chunk (`xs` row-major `k × d`, `ys` the
    /// matching labels) into the partial objective `f`. The default sums
    /// [`GeneralObjective::tuple_polynomial`] row by row; objectives whose
    /// per-tuple polynomial has Gram structure (e.g.
    /// [`GeneralLinearObjective`]) override it with batched kernels.
    fn accumulate_chunk(&self, xs: &[f64], ys: &[f64], d: usize, f: &mut Polynomial) {
        debug_assert_eq!(xs.len(), ys.len() * d, "accumulate_chunk: shape mismatch");
        for (x, &y) in xs.chunks_exact(d).zip(ys) {
            f.add_assign(&self.tuple_polynomial(x, y, d));
        }
    }

    /// The maximum degree `J` any tuple's polynomial can reach.
    fn max_degree(&self, d: usize) -> u32;

    /// The coefficient-vector L1 sensitivity `Δ` (Lemma 1).
    fn sensitivity(&self, d: usize) -> f64;

    /// The coefficient-vector **L2** sensitivity Δ₂, when one has been
    /// derived — what calibrates Gaussian noise for the (ε, δ) release
    /// path. The same Lemma-1-style contract applies, in the L2 norm
    /// and covering every released coefficient. The default is `None`:
    /// objectives without a derived Δ₂ stay Laplace-only, and
    /// [`GenericFunctionalMechanism::perturb`] refuses Gaussian noise
    /// for them rather than guessing a bound.
    fn sensitivity_l2(&self, d: usize) -> Option<f64> {
        let _ = d;
        None
    }

    /// Validates the dataset against the domain this objective's
    /// sensitivity analysis assumes.
    ///
    /// # Errors
    /// A [`fm_data::DataError`] describing the violation.
    fn validate(&self, data: &Dataset) -> fm_data::Result<()>;

    /// Validates one streamed row-major block against the same contract —
    /// the general-degree counterpart of
    /// [`crate::PolynomialObjective::validate_rows`], consumed by
    /// [`PolynomialAccumulator`]. The default materializes the block and
    /// delegates; the built-ins override with the allocation-free row
    /// checks.
    ///
    /// # Errors
    /// A [`fm_data::DataError`] describing the violation (tuple indices
    /// are block-local).
    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        if ys.is_empty() {
            return Ok(());
        }
        let x = fm_linalg::Matrix::from_vec(ys.len(), d, xs.to_vec()).map_err(|_| {
            fm_data::DataError::LengthMismatch {
                rows: xs.len() / d.max(1),
                labels: ys.len(),
            }
        })?;
        self.validate(&Dataset::new(x, ys.to_vec())?)
    }

    /// Assembles the exact objective `f_D(ω) = Σ_i f(t_i, ω)` through the
    /// same chunked map-reduce as the degree-2 path (data-parallel with
    /// the `parallel` feature; deterministic merge order).
    fn assemble(&self, data: &Dataset) -> Polynomial {
        let d = data.d();
        let xs = data.x().as_slice();
        let ys = data.y();
        crate::assembly::map_reduce_chunks(
            data.n(),
            crate::assembly::DEFAULT_CHUNK_ROWS,
            |lo, hi| {
                let mut f = Polynomial::zero(d);
                self.accumulate_chunk(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut f);
                f
            },
            |acc, part| acc.add_assign(&part),
        )
        .unwrap_or_else(|| Polynomial::zero(d))
    }
}

/// A general-degree noisy objective released by
/// [`GenericFunctionalMechanism::perturb`].
#[derive(Debug, Clone)]
pub struct NoisyPolynomial {
    polynomial: Polynomial,
    epsilon: f64,
    /// `Some(δ)` for a Gaussian release, `None` for pure-DP Laplace.
    delta: Option<f64>,
    sensitivity: f64,
    noise_scale: f64,
    noise_std: f64,
}

impl NoisyPolynomial {
    /// The perturbed polynomial objective `f̄_D(ω)`.
    #[must_use]
    pub fn polynomial(&self) -> &Polynomial {
        &self.polynomial
    }

    /// The privacy budget ε spent producing this object.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Gaussian failure probability δ of this release (`None` for a
    /// pure-DP Laplace release).
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        self.delta
    }

    /// The sensitivity used for calibration: Δ₁ for Laplace, Δ₂ for
    /// Gaussian.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The per-coefficient noise scale: Laplace `b = Δ₁/ε`, or Gaussian
    /// `σ = Δ₂·√(2 ln(1.25/δ))/ε`.
    #[must_use]
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Standard deviation of the injected per-coefficient noise (`√2·b`
    /// for Laplace, `σ` for Gaussian) — the §6.1-style regularization
    /// constant for the general-degree path is four times this, exactly
    /// as for [`crate::mechanism::NoisyQuadratic`].
    #[must_use]
    pub fn noise_std_dev(&self) -> f64 {
        self.noise_std
    }

    /// Mutable access for the §6-style post-processors (ridge shifts).
    /// `pub(crate)` so only code operating on already-noised coefficients
    /// can modify them.
    pub(crate) fn polynomial_mut(&mut self) -> &mut Polynomial {
        &mut self.polynomial
    }

    /// Minimises `f̄_D` by gradient descent from `start`, with divergence
    /// detection: iterates escaping `‖ω‖ > radius` report the objective as
    /// unbounded (the general-degree analogue of §6's failure mode).
    ///
    /// # Errors
    /// * [`FmError::Optim`] with `UnboundedObjective` on divergence, or the
    ///   solver's own failure modes.
    pub fn minimize(&self, start: &[f64], radius: f64) -> Result<Vec<f64>> {
        minimize_polynomial(&self.polynomial, start, radius)
    }
}

/// Minimises an arbitrary-degree polynomial by gradient descent from
/// `start`, with divergence detection past `radius` — the one solve shared
/// by [`NoisyPolynomial::minimize`] and the sparse estimator's non-private
/// reference fit, so the private and clean paths can never drift apart.
///
/// # Errors
/// * [`FmError::Optim`] with `UnboundedObjective` on divergence, or the
///   solver's own failure modes.
pub(crate) fn minimize_polynomial(p: &Polynomial, start: &[f64], radius: f64) -> Result<Vec<f64>> {
    struct PolyObjective<'a> {
        p: &'a Polynomial,
    }
    impl fm_optim::Objective for PolyObjective<'_> {
        fn dim(&self) -> usize {
            self.p.num_vars()
        }
        fn value(&self, omega: &[f64]) -> f64 {
            self.p.eval(omega)
        }
        fn gradient(&self, omega: &[f64]) -> Vec<f64> {
            self.p.gradient(omega)
        }
    }

    let gd = fm_optim::gd::GradientDescent::default();
    let result = gd
        .minimize_within(&PolyObjective { p }, start, radius)
        .map_err(FmError::from)?;
    Ok(result.omega)
}

/// Algorithm 1 over arbitrary-degree polynomial objectives.
#[derive(Debug, Clone, Copy)]
pub struct GenericFunctionalMechanism {
    epsilon: f64,
    noise: NoiseDistribution,
}

impl GenericFunctionalMechanism {
    /// Creates a mechanism with privacy budget `epsilon` (Laplace noise).
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for non-positive or non-finite ε.
    pub fn new(epsilon: f64) -> Result<Self> {
        Self::with_noise(epsilon, NoiseDistribution::Laplace)
    }

    /// Creates a mechanism with an explicit noise distribution — the
    /// general-degree counterpart of
    /// [`crate::FunctionalMechanism::with_config`]. Gaussian noise
    /// requires the objective to provide an L2 sensitivity
    /// ([`GeneralObjective::sensitivity_l2`]); `perturb` refuses
    /// objectives that do not.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for non-positive or non-finite ε.
    pub fn with_noise(epsilon: f64, noise: NoiseDistribution) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "epsilon",
                reason: format!("{epsilon} must be finite and > 0"),
            });
        }
        Ok(GenericFunctionalMechanism { epsilon, noise })
    }

    /// The configured privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured noise distribution.
    #[must_use]
    pub fn noise(&self) -> NoiseDistribution {
        self.noise
    }

    /// Runs Algorithm 1 literally: assembles `f_D`, then perturbs the
    /// coefficient of **every** monomial in `Φ_0 ∪ … ∪ Φ_J` — structural
    /// zeros included — with i.i.d. `Lap(Δ/ε)` noise.
    ///
    /// # Errors
    /// * Contract violations from [`GeneralObjective::validate`].
    /// * [`FmError::InvalidConfig`] when `|Φ_0 ∪ … ∪ Φ_J|` exceeds
    ///   [`MAX_COEFFICIENTS`].
    /// * [`FmError::Privacy`] for degenerate noise parameters.
    pub fn perturb(
        &self,
        data: &Dataset,
        objective: &impl GeneralObjective,
        rng: &mut impl Rng,
    ) -> Result<NoisyPolynomial> {
        objective.validate(data)?;
        let clean = objective.assemble(data);
        self.perturb_assembled(&clean, objective, rng)
    }

    /// Algorithm 1's noise step over a **pre-assembled** clean polynomial
    /// — the general-degree counterpart of
    /// [`crate::FunctionalMechanism::perturb_assembled`], used by the
    /// streaming sparse-estimator pipeline (the data was validated block
    /// by block while a [`PolynomialAccumulator`] assembled it) and by
    /// the Lemma-5 resample loop to re-draw noise without re-scanning the
    /// data. The caller owns the precondition that `clean` really is the
    /// coefficient sum of a contract-satisfying dataset.
    ///
    /// # Errors
    /// * [`FmError::InvalidConfig`] when `|Φ_0 ∪ … ∪ Φ_J|` exceeds
    ///   [`MAX_COEFFICIENTS`] or the assembled degree exceeds the
    ///   declared [`GeneralObjective::max_degree`].
    /// * [`FmError::Privacy`] for degenerate noise parameters.
    pub fn perturb_assembled(
        &self,
        clean: &Polynomial,
        objective: &impl GeneralObjective,
        rng: &mut impl Rng,
    ) -> Result<NoisyPolynomial> {
        let d = clean.num_vars();
        let j_max = objective.max_degree(d);

        // Enumerating Φ_0..Φ_J up front both sizes the release and defines
        // the exact coefficient set line 4 iterates over.
        let monomials: Vec<Monomial> = monomials_up_to_degree(d, j_max);
        if monomials.len() > MAX_COEFFICIENTS {
            return Err(FmError::InvalidConfig {
                name: "degree/dimension",
                reason: format!(
                    "{} monomials of degree ≤ {j_max} over d = {d} exceeds the {MAX_COEFFICIENTS} cap",
                    monomials.len()
                ),
            });
        }

        // A mis-declared max_degree would silently drop the out-of-range
        // coefficients from the release *and* void the sensitivity
        // analysis — refuse loudly instead.
        if clean.degree() > j_max {
            return Err(FmError::InvalidConfig {
                name: "max_degree",
                reason: format!(
                    "objective assembled to degree {} but declared max_degree {j_max}",
                    clean.degree()
                ),
            });
        }

        enum Sampler {
            Laplace(LaplaceMechanism),
            Gaussian(GaussianMechanism),
        }
        let (sampler, delta_out, sensitivity, noise_scale, noise_std) = match self.noise {
            NoiseDistribution::Laplace => {
                let delta1 = objective.sensitivity(d);
                let mech = LaplaceMechanism::new(delta1, self.epsilon)?;
                let scale = delta1 / self.epsilon;
                (
                    Sampler::Laplace(mech),
                    None,
                    delta1,
                    scale,
                    scale * std::f64::consts::SQRT_2,
                )
            }
            NoiseDistribution::Gaussian { delta } => {
                let Some(delta2) = objective.sensitivity_l2(d) else {
                    return Err(FmError::InvalidConfig {
                        name: "noise",
                        reason: "Gaussian noise needs an L2 sensitivity, and this objective \
                                 derives none (GeneralObjective::sensitivity_l2 is None); \
                                 use Laplace noise or derive Δ₂"
                            .to_string(),
                    });
                };
                let mech = GaussianMechanism::new(delta2, self.epsilon, delta)?;
                let sigma = mech.noise_std_dev();
                (Sampler::Gaussian(mech), Some(delta), delta2, sigma, sigma)
            }
        };
        let mut noisy = Polynomial::zero(d);
        for phi in monomials {
            let lambda = clean.coefficient(&phi);
            let released = match &sampler {
                Sampler::Laplace(m) => m.privatize_scalar(lambda, rng),
                Sampler::Gaussian(m) => m.privatize_scalar(lambda, rng),
            };
            noisy.add_term(phi, released);
        }

        Ok(NoisyPolynomial {
            polynomial: noisy,
            epsilon: self.epsilon,
            delta: delta_out,
            sensitivity,
            noise_scale,
            noise_std,
        })
    }
}

/// The streaming counterpart of [`GeneralObjective::assemble`]: feed
/// blocks, finish once — the general-degree sibling of
/// [`crate::assembly::CoefficientAccumulator`], sharing its re-chunking
/// stage and binary-counter merger, so a streamed sparse-polynomial
/// objective is **bit-identical** to the in-memory chunked assembly for
/// any block sizing or shard split.
pub struct PolynomialAccumulator<'a, O: GeneralObjective + ?Sized> {
    objective: &'a O,
    core: crate::assembly::StreamCore<Polynomial>,
}

/// The same coefficient-wise merge [`GeneralObjective::assemble`] uses.
fn merge_polynomial(acc: &mut Polynomial, part: Polynomial) {
    acc.add_assign(&part);
}

impl<'a, O: GeneralObjective + ?Sized> PolynomialAccumulator<'a, O> {
    /// An empty accumulator over `d` features at the default chunk size
    /// (matching [`GeneralObjective::assemble`]'s chunking).
    #[must_use]
    pub fn new(objective: &'a O, d: usize) -> Self {
        Self::with_chunk_rows(objective, d, crate::assembly::DEFAULT_CHUNK_ROWS)
    }

    /// An empty accumulator with an explicit chunk size — the out-of-core
    /// memory cap; must match the in-memory path's chunking for
    /// bit-identical results.
    #[must_use]
    pub fn with_chunk_rows(objective: &'a O, d: usize, chunk_rows: usize) -> Self {
        PolynomialAccumulator {
            objective,
            core: crate::assembly::StreamCore::new(d, chunk_rows),
        }
    }

    /// The feature dimensionality this accumulator expects.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.core.dim()
    }

    /// Total rows absorbed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.core.rows()
    }

    /// The fixed chunk size this accumulator re-chunks to.
    #[must_use]
    pub fn chunk_rows(&self) -> usize {
        self.core.chunk_rows()
    }

    /// Validates and absorbs a row-major block.
    ///
    /// # Errors
    /// [`FmError::Data`] for shape mismatches or contract violations.
    pub fn push_rows(&mut self, xs: &[f64], ys: &[f64]) -> Result<()> {
        let objective = self.objective;
        self.core
            .push_rows(
                xs,
                ys,
                |xs, ys, d| objective.validate_rows(xs, ys, d),
                |cx, cy, d| {
                    let mut f = Polynomial::zero(d);
                    objective.accumulate_chunk(cx, cy, d, &mut f);
                    f
                },
                &merge_polynomial,
            )
            .map_err(crate::FmError::Data)
    }

    /// Validates and absorbs one [`fm_data::stream::RowBlock`].
    ///
    /// # Errors
    /// As [`PolynomialAccumulator::push_rows`], plus [`FmError::Data`]
    /// when the block's dimensionality differs from the accumulator's.
    pub fn push_block(&mut self, block: &fm_data::stream::RowBlock) -> Result<()> {
        self.core.check_dim("block", block.d())?;
        self.push_rows(block.xs(), block.ys())
    }

    /// Chunks fully absorbed so far on the fixed grid (staged partial
    /// chunk excluded) — see `CoefficientAccumulator::chunks`.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.core.chunks()
    }

    /// The merge counter's run stack, bottom → top — the general-degree
    /// twin of `CoefficientAccumulator::partial_runs`.
    #[must_use]
    pub fn partial_runs(&self) -> &[(u32, Polynomial)] {
        self.core.partials()
    }

    /// The staged rows of the current partial chunk `(xs, ys)`.
    #[must_use]
    pub fn staged(&self) -> (&[f64], &[f64]) {
        self.core.staged()
    }

    /// Merges a pre-assembled partial covering a run of `2^rank`
    /// consecutive chunks at the current grid position — the
    /// general-degree twin of `CoefficientAccumulator::push_run`, with
    /// the same alignment guarantees and refusals.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a variable-count mismatch, a run
    /// pushed while rows are staged mid-chunk, an unaligned run, or
    /// rank/row overflow.
    pub fn push_run(&mut self, rank: u32, part: Polynomial) -> Result<()> {
        if part.num_vars() != self.core.dim() {
            return Err(crate::FmError::InvalidConfig {
                name: "run",
                reason: format!(
                    "run partial has {} variables, accumulator expects {}",
                    part.num_vars(),
                    self.core.dim()
                ),
            });
        }
        self.core.push_run(rank, part, &merge_polynomial)
    }

    /// Drains `source`, absorbing every block; returns the rows absorbed.
    /// Like the degree-2 accumulator, the bulk of the drain runs through
    /// the borrowed-block visitor, so zero-copy sources feed the chunk
    /// accumulation without per-block allocations.
    ///
    /// # Errors
    /// [`FmError::Data`] for a dimensionality mismatch, transport errors,
    /// or contract violations.
    pub fn absorb(
        &mut self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
    ) -> Result<usize> {
        let objective = self.objective;
        // No columnar kernels at general degree: an in-memory handoff
        // still chunks the dataset's row-major block in place.
        type ColumnarChunk = fn(&fm_linalg::Matrix, &[f64], usize, usize) -> Polynomial;
        let no_cols: Option<ColumnarChunk> = None;
        self.core.absorb_source(
            source,
            |xs, ys, d| objective.validate_rows(xs, ys, d),
            |cx, cy, d| {
                let mut f = Polynomial::zero(d);
                objective.accumulate_chunk(cx, cy, d, &mut f);
                f
            },
            no_cols,
            &merge_polynomial,
        )
    }

    /// Serializes the accumulator's complete streaming state to the
    /// versioned, checksummed `fm-checkpoint v1` text format (kind
    /// `polynomial`), optionally tagged with a WAL reservation id — the
    /// general-degree sibling of
    /// [`crate::assembly::CoefficientAccumulator::checkpoint`], with the
    /// same bit-identical-resume guarantee.
    #[must_use]
    pub fn checkpoint(&self, reservation: Option<u64>) -> String {
        crate::checkpoint::write_core(&self.core, reservation)
    }

    /// Restores an accumulator (and the WAL reservation id it carried, if
    /// any) from a [`PolynomialAccumulator::checkpoint`] snapshot.
    ///
    /// # Errors
    /// [`FmError::Checkpoint`] for corruption/truncation, version or kind
    /// mismatches, and structural violations.
    pub fn resume(objective: &'a O, text: &str) -> Result<(Self, Option<u64>)> {
        let (core, reservation) = crate::checkpoint::parse_core(text)?;
        Ok((PolynomialAccumulator { objective, core }, reservation))
    }

    /// Flushes the final ragged chunk and merges all partials; `None` if
    /// no rows were absorbed.
    #[must_use]
    pub fn finish(self) -> Option<Polynomial> {
        let PolynomialAccumulator { objective, core } = self;
        core.finish(
            |cx, cy, d| {
                let mut f = Polynomial::zero(d);
                objective.accumulate_chunk(cx, cy, d, &mut f);
                f
            },
            &merge_polynomial,
        )
    }
}

/// Per-shard streaming assembly of a general-degree objective — the
/// sibling of [`crate::assembly::assemble_shards`] over sparse
/// polynomials: one [`PolynomialAccumulator`] per shard, run concurrently
/// under the `parallel` cargo feature, results returned in shard order
/// (`None` for an empty shard). Per-shard accumulations are independent,
/// so the serial and parallel builds are bit-identical.
///
/// # Errors
/// The first shard error in shard order ([`FmError::Data`] for contract
/// violations or transport errors).
pub fn assemble_polynomial_shards<O, S>(
    objective: &O,
    shards: &mut [S],
    chunk_rows: usize,
) -> Result<Vec<(usize, Option<Polynomial>)>>
where
    O: GeneralObjective + ?Sized,
    S: fm_data::stream::RowSource + Send,
{
    crate::assembly::run_shards(shards, |shard| {
        let mut acc = PolynomialAccumulator::with_chunk_rows(objective, shard.dim(), chunk_rows);
        let rows = acc.absorb(shard)?;
        Ok((rows, acc.finish()))
    })
}

/// The paper's linear regression expressed in the general form — used to
/// validate the generic path against the specialised degree-2 pipeline,
/// and exported for callers who want the polynomial representation.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralLinearObjective;

impl GeneralObjective for GeneralLinearObjective {
    fn tuple_polynomial(&self, x: &[f64], y: f64, d: usize) -> Polynomial {
        // (y − xᵀω)² = y² − 2yΣx_jω_j + ΣΣ x_jx_l ω_jω_l.
        let mut p = Polynomial::zero(d);
        p.add_term(Monomial::constant(d), y * y);
        for (j, &xj) in x.iter().enumerate() {
            p.add_term(Monomial::linear(d, j), -2.0 * y * xj);
            for (l, &xl) in x.iter().enumerate().skip(j) {
                let c = if j == l { xj * xj } else { 2.0 * xj * xl };
                p.add_term(Monomial::quadratic(d, j, l), c);
            }
        }
        p
    }

    fn accumulate_chunk(&self, xs: &[f64], ys: &[f64], d: usize, f: &mut Polynomial) {
        // Gram-kernel fast path: assemble the chunk densely (yᵀy, Xᵀy,
        // XᵀX — same kernels as the degree-2 pipeline), then convert once.
        // `to_polynomial` splits each off-diagonal M entry across (i,j) and
        // (j,i), which add onto the same monomial, matching the per-tuple
        // expansion's single 2·x_j·x_l term.
        use crate::mechanism::PolynomialObjective;
        let mut q = fm_poly::QuadraticForm::zero(d);
        crate::linreg::LinearObjective.accumulate_batch(xs, ys, d, &mut q);
        f.add_assign(&q.to_polynomial());
    }

    fn max_degree(&self, _d: usize) -> u32 {
        2
    }

    fn sensitivity(&self, d: usize) -> f64 {
        crate::linreg::sensitivity_paper(d)
    }

    fn sensitivity_l2(&self, _d: usize) -> Option<f64> {
        // Identical coefficient vector to the degree-2 pipeline, so the
        // same dimension-independent 2√6 bound applies.
        Some(crate::linreg::sensitivity_l2())
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_linear()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_linear(xs, ys, d)
    }
}

/// A **quartic** regression objective `f(t, ω) = (y − xᵀω)⁴` — a loss the
/// degree-2 machinery cannot express, demonstrating that Algorithm 1
/// really does cover "a large class of optimization-based analyses"
/// (paper abstract). The quartic loss penalises outliers harder than
/// squared error; its even degree keeps the clean objective bounded below.
///
/// Sensitivity: expanding `(y − xᵀω)⁴ = Σ_{k=0}^{4} C(4,k) y^{4−k}
/// (−xᵀω)^k`, the degree-`k` coefficients have total L1 mass at most
/// `C(4,k)·|y|^{4−k}·(Σ|x_j|)^k ≤ C(4,k)·d^k` on the normalized domain.
/// The `k = 0` term is the released constant `y⁴` — data-dependent, so it
/// takes its own Δ share (like linear regression's `+1` for `y²`) — giving
/// `Δ = 2·Σ_{k=0}^{4} C(4,k)·d^k = 2(1+d)⁴`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuarticObjective;

impl GeneralObjective for QuarticObjective {
    fn tuple_polynomial(&self, x: &[f64], y: f64, d: usize) -> Polynomial {
        // Build s(ω) = (y − xᵀω) as a degree-1 polynomial, then square twice.
        let mut s = Polynomial::zero(d);
        s.add_term(Monomial::constant(d), y);
        for (j, &xj) in x.iter().enumerate() {
            s.add_term(Monomial::linear(d, j), -xj);
        }
        let s2 = s.mul(&s);
        s2.mul(&s2)
    }

    fn max_degree(&self, _d: usize) -> u32 {
        4
    }

    fn sensitivity(&self, d: usize) -> f64 {
        let dp1 = 1.0 + d as f64;
        2.0 * dp1.powi(4)
    }

    fn sensitivity_l2(&self, d: usize) -> Option<f64> {
        // Per degree-k block, ‖block‖₂ ≤ ‖block‖₁ ≤ C(4,k)·(Σ|x_j|)^k,
        // and on the normalized domain Cauchy–Schwarz gives
        // Σ|x_j| ≤ √d·‖x‖₂ ≤ √d. Summing block norms (≥ the full-vector
        // L2 norm): Σ_k C(4,k)·(√d)^k = (1+√d)⁴ per tuple, doubled for
        // the two-tuple neighbour difference — strictly below the L1
        // bound 2(1+d)⁴ for d ≥ 2.
        let sqrt_dp1 = 1.0 + (d as f64).sqrt();
        Some(2.0 * sqrt_dp1.powi(4))
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_linear()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_linear(xs, ys, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearObjective;
    use crate::mechanism::PolynomialObjective;
    use fm_linalg::vecops;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2_024)
    }

    #[test]
    fn general_linear_assembly_matches_quadratic_path() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 200, 3, 0.1);
        let generic = GeneralLinearObjective.assemble(&data);
        let dense = LinearObjective.assemble(&data);
        for _ in 0..20 {
            let omega = fm_data::synth::sample_in_ball(&mut r, 3, 2.0);
            assert!(
                (generic.eval(&omega) - dense.eval(&omega)).abs() < 1e-8,
                "objectives disagree at {omega:?}"
            );
        }
        // And the polynomial ↔ quadratic conversions agree coefficient-wise.
        let roundtrip = generic.to_quadratic_form().expect("degree 2");
        assert!(roundtrip.m().approx_eq(dense.m(), 1e-12));
    }

    #[test]
    fn structural_zeros_are_noised_too() {
        // A dataset whose x₂ column is identically zero: the clean
        // coefficient of ω₂ is exactly 0, but Algorithm 1 line 4 must still
        // release a noisy value for it.
        let x = fm_linalg::Matrix::from_rows(&[&[0.5, 0.0], &[-0.3, 0.0]]).unwrap();
        let data = Dataset::new(x, vec![0.2, -0.1]).unwrap();
        let fm = GenericFunctionalMechanism::new(1.0).unwrap();
        let mut r = rng();
        let noisy = fm.perturb(&data, &GeneralLinearObjective, &mut r).unwrap();
        let coeff = noisy.polynomial().coefficient(&Monomial::linear(2, 1));
        assert_ne!(coeff, 0.0, "structural zero must be perturbed");
        // Every monomial of degree ≤ 2 over d = 2 is present: |Φ_0..2| = 6.
        assert_eq!(noisy.polynomial().num_terms(), 6);
    }

    #[test]
    fn generic_minimize_matches_closed_form_at_high_epsilon() {
        let mut r = rng();
        let w = vec![0.4, -0.2];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 5_000, &w, 0.02);
        let fm = GenericFunctionalMechanism::new(1e7).unwrap(); // ~no noise
        let noisy = fm.perturb(&data, &GeneralLinearObjective, &mut r).unwrap();
        let omega = noisy.minimize(&[0.0, 0.0], 100.0).unwrap();
        assert!(
            vecops::dist2(&omega, &w) < 0.05,
            "generic minimiser {omega:?} far from {w:?}"
        );
    }

    #[test]
    fn quartic_expansion_is_exact() {
        let x = [0.3, -0.5];
        let y = 0.7;
        let p = QuarticObjective.tuple_polynomial(&x, y, 2);
        assert_eq!(p.degree(), 4);
        for omega in [[0.0, 0.0], [1.0, -1.0], [0.4, 0.9]] {
            let direct = (y - (x[0] * omega[0] + x[1] * omega[1])).powi(4);
            assert!(
                (p.eval(&omega) - direct).abs() < 1e-12,
                "expansion wrong at {omega:?}"
            );
        }
    }

    #[test]
    fn quartic_sensitivity_contract() {
        // Lemma-1 contract for the quartic loss, fuzzed over the domain.
        let mut r = rng();
        for d in [1usize, 2, 4] {
            let delta = QuarticObjective.sensitivity(d);
            for _ in 0..200 {
                let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                let y = rand::Rng::gen_range(&mut r, -1.0..=1.0);
                let p = QuarticObjective.tuple_polynomial(&x, y, d);
                // Constant included: the mechanism releases the Φ_0
                // coefficient and its clean value y⁴ is data-dependent.
                assert!(
                    p.coefficient_l1_norm_with_constant() <= delta / 2.0 + 1e-9,
                    "d={d}: L1 {} > Δ/2 {}",
                    p.coefficient_l1_norm_with_constant(),
                    delta / 2.0
                );
            }
        }
    }

    #[test]
    fn quartic_private_fit_recovers_direction_at_generous_budget() {
        let mut r = rng();
        let w = vec![0.5, -0.3];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 40_000, &w, 0.02);
        let fm = GenericFunctionalMechanism::new(100.0).unwrap();
        let noisy = fm.perturb(&data, &QuarticObjective, &mut r).unwrap();
        let omega = noisy.minimize(&[0.0, 0.0], 50.0).unwrap();
        let cos = vecops::dot(&omega, &w) / (vecops::norm2(&omega) * vecops::norm2(&w));
        assert!(cos > 0.9, "cosine {cos}, ω = {omega:?}");
    }

    #[test]
    fn unbounded_noisy_polynomial_reports_cleanly() {
        // At tiny ε the quartic's leading coefficients go negative on many
        // draws; minimize must report unboundedness, not diverge silently.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 50, 2, 0.05);
        let fm = GenericFunctionalMechanism::new(0.01).unwrap();
        let mut saw_unbounded = false;
        for _ in 0..20 {
            let noisy = fm.perturb(&data, &QuarticObjective, &mut r).unwrap();
            match noisy.minimize(&[0.0, 0.0], 1e3) {
                Ok(omega) => assert!(omega.iter().all(|v| v.is_finite())),
                Err(FmError::Optim(fm_optim::OptimError::UnboundedObjective)) => {
                    saw_unbounded = true;
                }
                Err(FmError::Optim(_)) => {} // line-search breakdown: also clean
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_unbounded, "tiny ε should produce unbounded draws");
    }

    #[test]
    fn coefficient_cap_enforced() {
        // d = 60, J = 4 ⇒ C(63,4) ≈ 595k > cap.
        let mut r = rng();
        let x = fm_linalg::Matrix::from_fn(3, 60, |_, _| 0.01);
        let data = Dataset::new(x, vec![0.0, 0.1, -0.1]).unwrap();
        let fm = GenericFunctionalMechanism::new(1.0).unwrap();
        let err = fm.perturb(&data, &QuarticObjective, &mut r).unwrap_err();
        assert!(matches!(err, FmError::InvalidConfig { .. }));
    }

    #[test]
    fn epsilon_validation() {
        assert!(GenericFunctionalMechanism::new(0.0).is_err());
        assert!(GenericFunctionalMechanism::new(f64::NAN).is_err());
        assert!(GenericFunctionalMechanism::new(0.5).is_ok());
    }

    #[test]
    fn mis_declared_degree_is_refused() {
        // An objective that lies about its degree must be rejected loudly —
        // silently dropping coefficients would void the privacy analysis.
        struct Liar;
        impl GeneralObjective for Liar {
            fn tuple_polynomial(&self, x: &[f64], y: f64, d: usize) -> Polynomial {
                QuarticObjective.tuple_polynomial(x, y, d) // degree 4…
            }
            fn max_degree(&self, _d: usize) -> u32 {
                2 // …declared as 2
            }
            fn sensitivity(&self, d: usize) -> f64 {
                QuarticObjective.sensitivity(d)
            }
            fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
                data.check_normalized_linear()
            }
        }
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 20, 2, 0.05);
        let fm = GenericFunctionalMechanism::new(1.0).unwrap();
        assert!(matches!(
            fm.perturb(&data, &Liar, &mut r),
            Err(FmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn noise_scale_is_cardinality_independent() {
        let mut r = rng();
        let small = fm_data::synth::linear_dataset(&mut r, 50, 3, 0.1);
        let large = fm_data::synth::linear_dataset(&mut r, 5_000, 3, 0.1);
        let fm = GenericFunctionalMechanism::new(1.0).unwrap();
        let a = fm.perturb(&small, &QuarticObjective, &mut r).unwrap();
        let b = fm.perturb(&large, &QuarticObjective, &mut r).unwrap();
        assert_eq!(a.noise_scale(), b.noise_scale());
        // Δ = 2(1+3)⁴ = 512.
        assert_eq!(a.sensitivity(), 512.0);
    }
}
