//! ε-differentially private **Poisson regression** — the §8-future-work
//! extension of Algorithm 2 to a third regression family.
//!
//! The Poisson negative log-likelihood of a count `y_i ∈ {0, 1, 2, …}` with
//! log-linear rate `λ(x) = exp(xᵀω)` is (dropping the `log y_i!` term,
//! which does not depend on ω and therefore does not move the minimiser):
//!
//! ```text
//! f(t_i, ω) = exp(x_iᵀω) − y_i·x_iᵀω
//! ```
//!
//! This has exactly the shape Section 5 assumes — `f = f₁(g₁) + f₂(g₂)`
//! with `f₁(z) = eᶻ`, `g₁ = x_iᵀω`, `f₂(z) = z`, `g₂ = −y_i x_iᵀω` — so
//! the whole Algorithm-2 pipeline applies: expand `f₁` at 0
//! (`f₁ = f₁' = f₁'' = 1`), truncate at degree 2, perturb, post-process.
//!
//! **Sensitivity.** Per tuple, the degree-≥1 coefficients are
//! `(a₁ − y)·x` (degree 1) and `a₂·x xᵀ` (degree 2), where `(a₁, a₂) =
//! (1, ½)` for Taylor. Bounding each part separately as in §5.3, with
//! `Σ_j |x_(j)| ≤ S` (`S = d` paper-style, `√d` under Cauchy–Schwarz) and
//! the **bounded-count contract** `y ∈ [0, y_max]`:
//!
//! ```text
//! Δ = 2·max_t (a₁Σ|x| + a₂(Σ|x|)² + yΣ|x|) ≤ 2·((a₁ + y_max)·S + a₂·S²)
//! ```
//!
//! Unlike linear/logistic regression — whose label ranges are fixed by
//! Definitions 1–2 — the count cap `y_max` is a modelling choice; it enters
//! Δ linearly, which the ablation benchmarks quantify. As everywhere in the
//! paper, Δ is independent of the dataset cardinality.
//!
//! **Truncation error.** `f₁''' = eᶻ ∈ [1/e, e]` on `[−1, 1]`, so the
//! Lemma-4 remainder width is `(e − 1/e)/6 ≈ 0.392` per tuple — larger
//! than the logistic ≈0.030 but still a data-independent constant. The
//! Chebyshev surrogate (`Approximation::Chebyshev`) roughly quarters the
//! sup-error on the same interval.

use rand::{Rng, RngCore};

use fm_data::Dataset;
use fm_poly::chebyshev::ChebyshevQuadratic;
use fm_poly::taylor::{identity_component, poisson_exp_component, TaylorComponent};
use fm_poly::QuadraticForm;

use crate::estimator::{
    DpEstimator, EstimatorBuilder, FitConfig, FmEstimator, RegressionObjective,
};
use crate::logreg::Approximation;
use crate::mechanism::{PolynomialObjective, SensitivityBound};
use crate::model::ModelKind;
use crate::{FmError, Result};

pub use crate::model::PoissonModel;

/// Default count cap: covers IPUMS-style count attributes (children,
/// automobiles) and clips essentially nothing when rates stay in `[1/e, e]`.
pub const DEFAULT_Y_MAX: f64 = 8.0;

/// The paper-style Poisson sensitivity `Δ = 2((1 + y_max)·d + d²/2)`
/// (Taylor surrogate; see the module docs for the derivation).
#[must_use]
pub fn sensitivity_paper(d: usize, y_max: f64) -> f64 {
    let d = d as f64;
    2.0 * ((1.0 + y_max) * d + 0.5 * d * d)
}

/// Cauchy–Schwarz-tightened Poisson sensitivity
/// `Δ = 2((1 + y_max)·√d + d/2)`.
#[must_use]
pub fn sensitivity_tight(d: usize, y_max: f64) -> f64 {
    let d = d as f64;
    2.0 * ((1.0 + y_max) * d.sqrt() + 0.5 * d)
}

/// The **L2** sensitivity of the Poisson coefficient vector for a generic
/// surrogate `(a₁, a₂)` and count cap `y_max`: the degree-1 block is
/// `(a₁ − y)·x` with `y ∈ [0, y_max]` (worst case `max(|a₁|, |y_max − a₁|)`),
/// the degree-2 block `a₂·x xᵀ`; the constant cancels between neighbours.
/// `Δ₂ = 2√(max(|a₁|, |y_max − a₁|)² + a₂²)` — independent of `d`.
#[must_use]
pub fn sensitivity_l2_for(a1: f64, a2: f64, y_max: f64) -> f64 {
    let lin = a1.abs().max((y_max - a1).abs());
    2.0 * (lin * lin + a2 * a2).sqrt()
}

/// The L2 sensitivity under the Taylor surrogate (`a₁ = 1`, `a₂ = ½`).
#[must_use]
pub fn sensitivity_l2(y_max: f64) -> f64 {
    sensitivity_l2_for(1.0, 0.5, y_max)
}

/// The truncated Poisson objective in Algorithm-1 form.
#[derive(Debug, Clone, Copy)]
pub struct PoissonObjective {
    component: TaylorComponent,
    a1_abs: f64,
    a2_abs: f64,
    y_max: f64,
}

impl PoissonObjective {
    /// The Taylor surrogate (`1 + z + z²/2`) with count cap `y_max`.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a non-finite or non-positive cap.
    pub fn taylor(y_max: f64) -> Result<Self> {
        Self::validate_cap(y_max)?;
        Ok(PoissonObjective {
            component: poisson_exp_component(),
            a1_abs: 1.0,
            a2_abs: 0.5,
            y_max,
        })
    }

    /// The Chebyshev surrogate of `eᶻ` over `[−half_width, half_width]`
    /// with count cap `y_max`.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for bad `y_max` or `half_width`.
    pub fn chebyshev(y_max: f64, half_width: f64) -> Result<Self> {
        Self::validate_cap(y_max)?;
        if !half_width.is_finite() || half_width <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "half_width",
                reason: format!("{half_width} must be finite and > 0"),
            });
        }
        let cheb = ChebyshevQuadratic::fit(f64::exp, half_width);
        let [_, a1, a2] = cheb.coefficients();
        Ok(PoissonObjective {
            component: cheb.as_component(),
            a1_abs: a1.abs(),
            a2_abs: a2.abs(),
            y_max,
        })
    }

    /// Builds from an [`Approximation`] choice (shared with logistic).
    ///
    /// # Errors
    /// As [`PoissonObjective::taylor`] / [`PoissonObjective::chebyshev`].
    pub fn from_approximation(y_max: f64, approximation: Approximation) -> Result<Self> {
        match approximation {
            Approximation::Taylor => Self::taylor(y_max),
            Approximation::Chebyshev { half_width } => Self::chebyshev(y_max, half_width),
        }
    }

    fn validate_cap(y_max: f64) -> Result<()> {
        if !y_max.is_finite() || y_max <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "y_max",
                reason: format!("{y_max} must be finite and > 0"),
            });
        }
        Ok(())
    }

    /// The configured count cap.
    #[must_use]
    pub fn y_max(&self) -> f64 {
        self.y_max
    }

    /// Assembles the noise-free truncated objective (the Poisson analogue
    /// of [`crate::logreg::truncated_objective`]).
    #[must_use]
    pub fn assemble_objective(&self, data: &Dataset) -> QuadraticForm {
        self.assemble(data)
    }
}

impl PolynomialObjective for PoissonObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        // Surrogate eᶻ part: β += a₀, α += a₁x, M += a₂xxᵀ.
        self.component.accumulate_into(x, q);
        // Exact −y·xᵀω part.
        if y != 0.0 {
            let neg_yx: Vec<f64> = x.iter().map(|&v| -y * v).collect();
            identity_component().accumulate_into(&neg_yx, q);
        }
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        // Surrogate batched: β += k·a₀, α += a₁·Σx, M += a₂·XᵀX.
        self.component.accumulate_batch_into(xs, q);
        // Exact −y·xᵀω part batched: α += −Xᵀy.
        fm_linalg::vecops::gemv_t_acc(-1.0, xs, d, ys, q.alpha_mut());
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        self.component.accumulate_cols_into(xt, lo, hi, q);
        let yr = &ys[lo..hi];
        for (j, out) in q.alpha_mut().iter_mut().enumerate() {
            fm_linalg::vecops::dot_blocked_acc(-1.0, &xt.row(j)[lo..hi], yr, out);
        }
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        let s = match bound {
            SensitivityBound::Paper => d as f64,
            SensitivityBound::Tight => (d as f64).sqrt(),
        };
        2.0 * ((self.a1_abs + self.y_max) * s + self.a2_abs * s * s)
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        sensitivity_l2_for(self.a1_abs, self.a2_abs, self.y_max)
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_counts(self.y_max)
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_counts(xs, ys, d, self.y_max)
    }
}

impl RegressionObjective for PoissonObjective {
    type Model = PoissonModel;
}

/// The Poisson-specific builder knobs carried next to the shared
/// [`FitConfig`]: the surrogate choice and the count cap.
#[derive(Debug, Clone, Copy)]
pub struct PoissonSettings {
    approximation: Approximation,
    y_max: f64,
}

impl Default for PoissonSettings {
    fn default() -> Self {
        PoissonSettings {
            approximation: Approximation::Taylor,
            y_max: DEFAULT_Y_MAX,
        }
    }
}

/// Builder for [`DpPoissonRegression`]: the shared [`EstimatorBuilder`]
/// knobs plus the surrogate choice and count cap.
pub type DpPoissonRegressionBuilder = EstimatorBuilder<PoissonSettings>;

impl DpPoissonRegressionBuilder {
    /// Chooses the degree-2 surrogate of `eᶻ` (default Taylor).
    #[must_use]
    pub fn approximation(mut self, approximation: Approximation) -> Self {
        self.family.approximation = approximation;
        self
    }

    /// Sets the count cap `y_max` (default [`DEFAULT_Y_MAX`]). Labels above
    /// the cap are a contract violation — clip counts when preparing the
    /// data. A larger cap admits larger counts but scales Δ linearly.
    #[must_use]
    pub fn y_max(mut self, y_max: f64) -> Self {
        self.family.y_max = y_max;
        self
    }

    /// Finalises the configuration.
    #[must_use]
    pub fn build(self) -> DpPoissonRegression {
        DpPoissonRegression {
            config: self.config,
            settings: self.family,
        }
    }
}

/// ε-differentially private Poisson regression via the Functional
/// Mechanism — a thin wrapper that builds a [`PoissonObjective`] from its
/// configured surrogate and count cap and delegates the entire fit
/// pipeline to the generic [`FmEstimator`] core. (A two-field struct
/// rather than a type alias only because objective construction validates
/// `y_max`/`half_width`, and those errors are reported at `fit` time.)
///
/// ```
/// use fm_core::poisson::DpPoissonRegression;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let data = fm_data::synth::poisson_dataset(&mut rng, 20_000, 3, 8.0);
/// let model = DpPoissonRegression::builder()
///     .epsilon(1.0)
///     .build()
///     .fit(&data, &mut rng)
///     .unwrap();
/// assert!(model.rate(data.x().row(0)) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DpPoissonRegression {
    config: FitConfig,
    settings: PoissonSettings,
}

impl DpPoissonRegression {
    /// Starts a builder with defaults (ε = 1, paper sensitivity,
    /// regularize-then-trim, no intercept, Taylor, `y_max = 8`).
    #[must_use]
    pub fn builder() -> DpPoissonRegressionBuilder {
        DpPoissonRegressionBuilder::default()
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// The configured count cap.
    #[must_use]
    pub fn y_max(&self) -> f64 {
        self.settings.y_max
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// Instantiates the generic core for the configured surrogate and cap.
    fn estimator(&self) -> Result<FmEstimator<PoissonObjective>> {
        Ok(FmEstimator::new(
            PoissonObjective::from_approximation(self.settings.y_max, self.settings.approximation)?,
            self.config,
        ))
    }

    /// Fits an ε-DP Poisson model on `data`, which must satisfy the count
    /// contract (`‖x‖₂ ≤ 1`, `y ∈ [0, y_max]`).
    ///
    /// # Errors
    /// As [`FmEstimator::fit`], plus [`FmError::InvalidConfig`] for a bad
    /// cap or Chebyshev interval.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<PoissonModel> {
        self.estimator()?.fit(data, rng)
    }

    /// Fits an ε-DP Poisson model from a streaming
    /// [`fm_data::stream::RowSource`] — see [`FmEstimator::fit_stream`].
    ///
    /// # Errors
    /// As [`DpPoissonRegression::fit`], plus transport errors from the
    /// source.
    pub fn fit_stream(
        &self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<PoissonModel> {
        self.estimator()?.fit_stream(source, rng)
    }

    /// Fits the *non-private* minimiser of the truncated objective
    /// (the Poisson analogue of the `Truncated` baseline).
    ///
    /// # Errors
    /// [`FmError::Data`] / [`FmError::Optim`] on contract violation or a
    /// degenerate Hessian.
    pub fn fit_truncated_without_privacy(&self, data: &Dataset) -> Result<PoissonModel> {
        self.estimator()?.fit_without_privacy(data)
    }
}

impl DpEstimator for DpPoissonRegression {
    type Model = PoissonModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<PoissonModel> {
        DpPoissonRegression::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn fm_data::stream::RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<PoissonModel> {
        DpPoissonRegression::fit_stream(self, source, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        ModelKind::Poisson
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::vecops;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4242)
    }

    #[test]
    fn sensitivity_formulas() {
        // Δ = 2((1 + y_max)d + d²/2).
        assert_eq!(sensitivity_paper(2, 8.0), 2.0 * (9.0 * 2.0 + 2.0));
        assert_eq!(sensitivity_paper(4, 1.0), 2.0 * (2.0 * 4.0 + 8.0));
        for d in 2..16 {
            assert!(sensitivity_tight(d, 8.0) < sensitivity_paper(d, 8.0));
        }
        // The objective agrees with the free functions for Taylor.
        let obj = PoissonObjective::taylor(8.0).unwrap();
        for d in [1usize, 3, 14] {
            assert!(
                (obj.sensitivity(d, SensitivityBound::Paper) - sensitivity_paper(d, 8.0)).abs()
                    < 1e-12
            );
            assert!(
                (obj.sensitivity(d, SensitivityBound::Tight) - sensitivity_tight(d, 8.0)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn lemma1_contract_per_tuple_l1_below_half_delta() {
        let mut r = rng();
        let y_max = 5.0;
        for approx in [
            Approximation::Taylor,
            Approximation::Chebyshev { half_width: 1.0 },
        ] {
            let obj = PoissonObjective::from_approximation(y_max, approx).unwrap();
            for d in [1usize, 3, 7] {
                let delta = obj.sensitivity(d, SensitivityBound::Paper);
                let tight = obj.sensitivity(d, SensitivityBound::Tight);
                for _ in 0..150 {
                    let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                    let y = rand::Rng::gen_range(&mut r, 0..=(y_max as u64)) as f64;
                    let mut q = QuadraticForm::zero(d);
                    obj.accumulate_tuple(&x, y, &mut q);
                    let l1 = q.coefficient_l1_norm();
                    assert!(l1 <= delta / 2.0 + 1e-9, "{approx:?} d={d}: {l1}");
                    assert!(l1 <= tight / 2.0 + 1e-9, "{approx:?} d={d}: {l1} (tight)");
                }
            }
        }
    }

    #[test]
    fn truncated_objective_matches_loss_at_origin() {
        // At ω = 0: exp(0) − y·0 = 1 per tuple ⇒ f̂_D(0) = n (Taylor a₀ = 1).
        let mut r = rng();
        let data = fm_data::synth::poisson_dataset(&mut r, 300, 3, 8.0);
        let obj = PoissonObjective::taylor(8.0).unwrap();
        let q = obj.assemble_objective(&data);
        assert!((q.eval(&[0.0, 0.0, 0.0]) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn truncation_error_within_lemma4_bound() {
        let mut r = rng();
        let data = fm_data::synth::poisson_dataset(&mut r, 400, 2, 8.0);
        let obj = PoissonObjective::taylor(8.0).unwrap();
        let q = obj.assemble_objective(&data);
        let omega = [0.4, -0.3];
        let exact: f64 = data
            .tuples()
            .map(|(x, y)| {
                let z = vecops::dot(x, &omega);
                z.exp() - y * z
            })
            .sum();
        // Per-tuple remainder ≤ max|f'''|/6 = e/6 over |z| ≤ 1.
        let bound = std::f64::consts::E / 6.0 * data.n() as f64;
        assert!((q.eval(&omega) - exact).abs() <= bound);
    }

    #[test]
    fn non_private_fit_recovers_rate_direction() {
        let mut r = rng();
        let w = vec![0.5, -0.3];
        let data = fm_data::synth::poisson_dataset_with_weights(&mut r, 50_000, &w, 10.0);
        let model = DpPoissonRegression::builder()
            .y_max(10.0)
            .build()
            .fit_truncated_without_privacy(&data)
            .unwrap();
        let cos =
            vecops::dot(model.weights(), &w) / (vecops::norm2(model.weights()) * vecops::norm2(&w));
        assert!(cos > 0.95, "cosine {cos}, weights {:?}", model.weights());
    }

    #[test]
    fn private_fit_close_on_large_data() {
        let mut r = rng();
        let w = vec![0.4, 0.2];
        let data = fm_data::synth::poisson_dataset_with_weights(&mut r, 80_000, &w, 8.0);
        let model = DpPoissonRegression::builder()
            .epsilon(2.0)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        // Predictions correlate with ground-truth rates: higher true rate ⇒
        // higher predicted rate on average.
        let truth = PoissonModel::new(w.clone(), None);
        let (mut hi, mut lo, mut nh, mut nl) = (0.0, 0.0, 0usize, 0usize);
        for (x, _) in data.tuples() {
            let pred = model.rate(x);
            if truth.rate(x) > 1.2 {
                hi += pred;
                nh += 1;
            } else if truth.rate(x) < 0.8 {
                lo += pred;
                nl += 1;
            }
        }
        assert!(hi / nh as f64 > lo / nl as f64, "rates not ordered");
    }

    #[test]
    fn more_budget_means_less_error() {
        let mut r = rng();
        let w = vec![0.5, 0.1];
        let data = fm_data::synth::poisson_dataset_with_weights(&mut r, 10_000, &w, 8.0);
        let reps = 12;
        let mean_err = |eps: f64, r: &mut rand::rngs::StdRng| -> f64 {
            (0..reps)
                .map(|_| {
                    let m = DpPoissonRegression::builder()
                        .epsilon(eps)
                        .build()
                        .fit(&data, r)
                        .unwrap();
                    vecops::dist2(m.weights(), &w)
                })
                .sum::<f64>()
                / reps as f64
        };
        let hi = mean_err(20.0, &mut r);
        let lo = mean_err(0.05, &mut r);
        assert!(hi < lo, "ε=20 err {hi} should beat ε=0.05 err {lo}");
    }

    #[test]
    fn intercept_fit_captures_base_rate() {
        // Counts with a global base rate: y ~ Poisson(2) independent of x.
        let mut r = rng();
        let n = 30_000;
        let x = fm_linalg::Matrix::from_fn(n, 2, |i, j| {
            (((i * 13 + j * 7) % 100) as f64 / 100.0 - 0.5) / 2.0
        });
        let y: Vec<f64> = (0..n)
            .map(|_| (fm_data::synth::sample_poisson(&mut r, 2.0) as f64).min(8.0))
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let model = DpPoissonRegression::builder()
            .fit_intercept(true)
            .build()
            .fit_truncated_without_privacy(&data)
            .unwrap();
        // The truncated surrogate is biased for rates this far from 1, but
        // the intercept must capture most of the log-rate (log 2 ≈ 0.69).
        assert!(model.intercept() > 0.3, "b = {}", model.intercept());
        assert!(
            model.rate(&[0.0, 0.0]) > 1.3,
            "rate {}",
            model.rate(&[0.0, 0.0])
        );
    }

    #[test]
    fn rejects_out_of_contract_labels() {
        let x = fm_linalg::Matrix::from_rows(&[&[0.1, 0.1]]).unwrap();
        let over_cap = Dataset::new(x.clone(), vec![100.0]).unwrap();
        let mut r = rng();
        assert!(matches!(
            DpPoissonRegression::builder()
                .build()
                .fit(&over_cap, &mut r),
            Err(FmError::Data(_))
        ));
        let negative = Dataset::new(x, vec![-2.0]).unwrap();
        assert!(matches!(
            DpPoissonRegression::builder()
                .build()
                .fit(&negative, &mut r),
            Err(FmError::Data(_))
        ));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(PoissonObjective::taylor(0.0).is_err());
        assert!(PoissonObjective::taylor(f64::NAN).is_err());
        assert!(PoissonObjective::chebyshev(8.0, -1.0).is_err());
        let mut r = rng();
        let data = fm_data::synth::poisson_dataset(&mut r, 100, 2, 8.0);
        assert!(DpPoissonRegression::builder()
            .y_max(-5.0)
            .build()
            .fit(&data, &mut r)
            .is_err());
    }

    #[test]
    fn noise_independent_of_cardinality() {
        let mut r = rng();
        let small = fm_data::synth::poisson_dataset(&mut r, 100, 4, 8.0);
        let large = fm_data::synth::poisson_dataset(&mut r, 10_000, 4, 8.0);
        let fm = crate::mechanism::FunctionalMechanism::new(1.0).unwrap();
        let obj = PoissonObjective::taylor(8.0).unwrap();
        let ns = fm.perturb(&small, &obj, &mut r).unwrap();
        let nl = fm.perturb(&large, &obj, &mut r).unwrap();
        assert_eq!(ns.sensitivity(), nl.sensitivity());
        assert_eq!(ns.noise_scale(), nl.noise_scale());
    }

    #[test]
    fn larger_cap_means_more_noise() {
        let a = PoissonObjective::taylor(2.0).unwrap();
        let b = PoissonObjective::taylor(20.0).unwrap();
        assert!(
            a.sensitivity(5, SensitivityBound::Paper) < b.sensitivity(5, SensitivityBound::Paper)
        );
    }

    #[test]
    fn model_accessors() {
        let m = PoissonModel::with_intercept(vec![0.5], 0.2, Some(1.0));
        assert_eq!(m.dim(), 1);
        assert_eq!(m.epsilon(), Some(1.0));
        assert!((m.log_rate(&[1.0]) - 0.7).abs() < 1e-15);
        assert!((m.rate(&[1.0]) - 0.7f64.exp()).abs() < 1e-12);
        let x = fm_linalg::Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let rates = m.rates_batch(&x);
        assert!((rates[1] - 0.2f64.exp()).abs() < 1e-12);
    }
}
