//! Batched, data-parallel coefficient assembly — the hot path of
//! Algorithm 1.
//!
//! Assembling `λ_φ = Σ_i λ_{φ t_i}` over the full dataset is the dominant
//! cost of every experiment in the paper (`O(n·d²)` at `n = 370,000`,
//! 5-fold × 50 repeats). This module replaces the tuple-at-a-time
//! accumulation loop with a chunked map-reduce:
//!
//! 1. the dataset's row-major feature block is split into fixed-size row
//!    chunks ([`DEFAULT_CHUNK_ROWS`] rows each);
//! 2. each chunk is accumulated into its own partial
//!    [`QuadraticForm`] through
//!    [`PolynomialObjective::accumulate_batch`] — which the built-in
//!    objectives override with blocked Gram kernels (`yᵀy`, `Xᵀy`, `XᵀX`;
//!    see `fm_linalg::vecops::sum_squares`/`gemv_t_acc` and
//!    `fm_linalg::Matrix::syrk_acc`) instead of per-tuple rank-1 updates;
//! 3. the partials are combined by a **deterministic pairwise tree
//!    reduction** in chunk order ([`QuadraticForm::merge`]).
//!
//! With the `parallel` cargo feature the chunk map runs on rayon.
//! Determinism is by construction, not by luck: the chunk boundaries are a
//! pure function of `(n, chunk_rows)` and the reduction order is a pure
//! function of the chunk count, so the assembled coefficients are
//! **bit-identical** for any worker count — including the sequential
//! build. (Changing `chunk_rows` regroups floating-point sums and may
//! perturb coefficients at the ~1e-15 relative level; the chunk size is
//! therefore fixed by default and an explicit parameter everywhere else.)

use fm_data::stream::{RowBlock, RowSource};
use fm_data::{DataError, Dataset};
use fm_poly::QuadraticForm;

use crate::mechanism::PolynomialObjective;
use crate::{FmError, Result};

/// Rows per assembly chunk. Large enough that per-chunk bookkeeping
/// (one partial `QuadraticForm` + one merge) is noise, small enough that
/// a census-scale dataset (`n = 370k`) still splits into ~90 chunks —
/// plenty of parallel slack for any realistic core count.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Splits `n` items into `⌈n / chunk_rows⌉` chunk bounds, maps every chunk
/// to a partial result (in parallel when the `parallel` feature is on),
/// and combines the partials with a pairwise tree reduction in chunk
/// order. Returns `None` for `n = 0`.
///
/// The reduction merges neighbours `(0,1), (2,3), …` per round, so the
/// grouping — and hence the floating-point result — depends only on the
/// chunk count, never on scheduling.
pub fn map_reduce_chunks<T, M>(
    n: usize,
    chunk_rows: usize,
    map: M,
    merge: impl Fn(&mut T, T),
) -> Option<T>
where
    T: Send,
    M: Fn(usize, usize) -> T + Sync,
{
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = n.div_ceil(chunk_rows);
    let bounds = move |c: usize| (c * chunk_rows, ((c + 1) * chunk_rows).min(n));

    #[cfg(feature = "parallel")]
    let partials: Vec<T> = {
        use rayon::prelude::*;
        (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let (lo, hi) = bounds(c);
                map(lo, hi)
            })
            .collect()
    };
    #[cfg(not(feature = "parallel"))]
    let partials: Vec<T> = (0..n_chunks)
        .map(|c| {
            let (lo, hi) = bounds(c);
            map(lo, hi)
        })
        .collect();

    tree_reduce(partials, merge)
}

/// Incremental pairwise merger: pushing chunk partials one at a time
/// produces **exactly** the merge tree of [`tree_reduce`] over the full
/// partial list, while holding only `O(log n_chunks)` partials at once —
/// what lets the streaming accumulator run out-of-core without giving up
/// bit-identity with the batched in-memory path.
///
/// Invariant: the stack holds runs of `2^rank` consecutive chunks, ranks
/// strictly decreasing from the bottom. Pushing a new chunk carries like
/// binary addition (equal ranks merge, left operand first); finishing
/// merges the leftover runs right-to-left. Both orders reproduce the
/// round-based neighbour pairing of [`tree_reduce`]: each round there
/// merges runs covering index ranges `[i·2^r, (i+1)·2^r)` and pairs the
/// trailing odd run with its left neighbour one round later — the same
/// `(run, carry)` pairs, in the same left-to-right order, that the counter
/// produces ([`tests::counter_merge_is_bit_identical_to_tree_reduce`]
/// machine-checks the equivalence for every chunk count up to 260).
pub(crate) struct TreeCounter<T> {
    /// `(rank, partial)`, ranks strictly decreasing bottom → top.
    stack: Vec<(u32, T)>,
}

impl<T> TreeCounter<T> {
    pub(crate) fn new() -> Self {
        TreeCounter { stack: Vec::new() }
    }

    /// Pushes the next chunk partial (chunks must arrive in order).
    pub(crate) fn push(&mut self, item: T, merge: &impl Fn(&mut T, T)) {
        self.push_run(0, item, merge);
    }

    /// Pushes a partial covering a **run of `2^rank` consecutive chunks**
    /// — the generalized binary-addition carry. Pushing at rank 0 is the
    /// ordinary chunk push; pushing at rank `r` is what lets a
    /// coordinator replay another process's pre-merged run of chunks and
    /// still land on **exactly** the merge tree a single machine would
    /// have built.
    ///
    /// Precondition (checked by callers, `debug_assert`ed here): the
    /// number of chunks already absorbed must be divisible by `2^rank` —
    /// equivalently, the stack's top rank is `≥ rank` (or the stack is
    /// empty). A run pushed at an unaligned position would have merged
    /// chunk pairs the single-machine counter never merges, so the
    /// invariant is load-bearing for bit-identity, not just for shape.
    pub(crate) fn push_run(&mut self, mut rank: u32, mut item: T, merge: &impl Fn(&mut T, T)) {
        debug_assert!(
            self.stack.last().map_or(true, |&(r, _)| r >= rank),
            "run of rank {rank} pushed onto a finer-grained stack top"
        );
        while matches!(self.stack.last(), Some(&(r, _)) if r == rank) {
            let (_, mut left) = self.stack.pop().expect("matched above");
            merge(&mut left, item);
            item = left;
            rank += 1;
        }
        self.stack.push((rank, item));
    }

    /// Merges the leftover runs (smallest spans first, each folding into
    /// its left neighbour) and returns the total; `None` if nothing was
    /// pushed.
    pub(crate) fn finish(mut self, merge: &impl Fn(&mut T, T)) -> Option<T> {
        let mut total = self.stack.pop()?.1;
        while let Some((_, mut left)) = self.stack.pop() {
            merge(&mut left, total);
            total = left;
        }
        Some(total)
    }

    /// The counter's run stack, bottom → top, for checkpointing.
    pub(crate) fn stack(&self) -> &[(u32, T)] {
        &self.stack
    }

    /// Rebuilds a counter from a checkpointed stack. The caller (the
    /// checkpoint parser) must have verified the structural invariant:
    /// ranks strictly decreasing bottom → top.
    pub(crate) fn restore(stack: Vec<(u32, T)>) -> Self {
        debug_assert!(
            stack.windows(2).all(|w| w[0].0 > w[1].0),
            "tree counter ranks must be strictly decreasing"
        );
        TreeCounter { stack }
    }
}

/// Fixed-size re-chunking stage: whatever block sizes a stream delivers,
/// `flush` sees exactly the `chunk_rows`-row chunks (plus one final
/// ragged chunk) that [`assemble_with_chunk_rows`] would form over the
/// materialized concatenation — the other half of the streaming path's
/// bit-identity guarantee. Peak memory is one staged chunk; blocks that
/// arrive chunk-aligned are flushed straight from the caller's slice
/// without copying, and the staging buffers persist across chunks
/// (cleared after each flush, never reallocated), so a steady stream
/// costs no per-chunk allocation.
pub(crate) struct ChunkStage {
    d: usize,
    chunk_rows: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl ChunkStage {
    pub(crate) fn new(d: usize, chunk_rows: usize) -> Self {
        ChunkStage {
            d,
            chunk_rows: chunk_rows.max(1),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Rows that would complete the staged chunk — the natural block size
    /// to request from a source so full blocks skip the staging copy.
    pub(crate) fn rows_to_boundary(&self) -> usize {
        self.chunk_rows - self.ys.len()
    }

    /// Rows currently staged (0 = the stage sits on a chunk boundary, so
    /// aligned blocks flush straight from the caller's slice).
    pub(crate) fn staged_rows(&self) -> usize {
        self.ys.len()
    }

    /// The fixed chunk size this stage re-chunks to.
    pub(crate) fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Feeds a row-major block, invoking `flush(xs, ys)` once per
    /// completed chunk.
    pub(crate) fn push(
        &mut self,
        mut xs: &[f64],
        mut ys: &[f64],
        flush: &mut impl FnMut(&[f64], &[f64]),
    ) {
        debug_assert_eq!(xs.len(), ys.len() * self.d, "chunk stage: shape mismatch");
        loop {
            if self.ys.is_empty() {
                // Chunk-aligned fast path: no staging copy.
                while ys.len() >= self.chunk_rows {
                    let (cy, ry) = ys.split_at(self.chunk_rows);
                    let (cx, rx) = xs.split_at(self.chunk_rows * self.d);
                    flush(cx, cy);
                    xs = rx;
                    ys = ry;
                }
            }
            if ys.is_empty() {
                return;
            }
            let take = self.rows_to_boundary().min(ys.len());
            self.xs.extend_from_slice(&xs[..take * self.d]);
            self.ys.extend_from_slice(&ys[..take]);
            xs = &xs[take * self.d..];
            ys = &ys[take..];
            if self.ys.len() == self.chunk_rows {
                flush(&self.xs, &self.ys);
                self.xs.clear();
                self.ys.clear();
            } else {
                return; // input exhausted mid-chunk
            }
        }
    }

    /// Flushes the final ragged chunk, if any.
    pub(crate) fn finish(self, flush: &mut impl FnMut(&[f64], &[f64])) {
        if !self.ys.is_empty() {
            flush(&self.xs, &self.ys);
        }
    }

    /// The staged (not yet flushed) rows, for checkpointing.
    pub(crate) fn staged(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Rebuilds a stage mid-chunk from checkpointed staged rows. The
    /// caller (the checkpoint parser) must have verified the shape:
    /// `xs.len() == ys.len() * d` and `ys.len() < chunk_rows`.
    pub(crate) fn restore(d: usize, chunk_rows: usize, xs: Vec<f64>, ys: Vec<f64>) -> Self {
        let chunk_rows = chunk_rows.max(1);
        debug_assert_eq!(xs.len(), ys.len() * d, "staged rows: shape mismatch");
        debug_assert!(ys.len() < chunk_rows, "staged rows must not fill a chunk");
        ChunkStage {
            d,
            chunk_rows,
            xs,
            ys,
        }
    }
}

/// A **resumable** coefficient accumulator: Algorithm 1's data pass as a
/// feed-blocks-then-finish state machine, so the exact objective
/// `f_D(ω) = Σ_i f(t_i, ω)` can be assembled out-of-core, shard at a
/// time, or from any [`RowSource`] — with released coefficients
/// **bit-identical** to [`assemble_with_chunk_rows`] on the materialized
/// concatenation at the same `chunk_rows`, for *any* incoming block sizes
/// or shard boundaries.
///
/// Three ingredients make that guarantee hold by construction rather than
/// by luck:
///
/// 1. every incoming block is validated against the objective's
///    normalized-domain contract
///    ([`PolynomialObjective::validate_rows`]) and re-chunked by a
///    fixed-size staging buffer (`ChunkStage`), so per-chunk kernel calls
///    see exactly the row ranges the in-memory path forms;
/// 2. each chunk is accumulated by the same
///    [`PolynomialObjective::accumulate_batch`] Gram kernels;
/// 3. partials merge through a binary-counter merger (`TreeCounter`),
///    whose merge tree is provably identical to the in-memory pairwise
///    tree reduction while holding only `O(log n_chunks)` partials.
///
/// Memory is bounded by one staged chunk (`chunk_rows × d`) plus the
/// counter stack — independent of the stream length.
pub struct CoefficientAccumulator<'a, O: PolynomialObjective + ?Sized> {
    objective: &'a O,
    core: StreamCore<QuadraticForm>,
}

/// The one merge the accumulator ever performs — identical to the merge
/// closure of [`assemble_with_chunk_rows`].
fn merge_quadratic(acc: &mut QuadraticForm, part: QuadraticForm) {
    acc.merge(part);
}

impl<'a, O: PolynomialObjective + ?Sized> CoefficientAccumulator<'a, O> {
    /// An empty accumulator over `d` features at the default chunk size.
    #[must_use]
    pub fn new(objective: &'a O, d: usize) -> Self {
        Self::with_chunk_rows(objective, d, DEFAULT_CHUNK_ROWS)
    }

    /// An empty accumulator with an explicit chunk size (must match the
    /// in-memory path's `chunk_rows` for bit-identical results).
    #[must_use]
    pub fn with_chunk_rows(objective: &'a O, d: usize, chunk_rows: usize) -> Self {
        CoefficientAccumulator {
            objective,
            core: StreamCore::new(d, chunk_rows),
        }
    }

    /// The feature dimensionality this accumulator expects.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.core.dim()
    }

    /// Total rows absorbed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.core.rows()
    }

    /// The fixed chunk size this accumulator re-chunks to.
    #[must_use]
    pub fn chunk_rows(&self) -> usize {
        self.core.chunk_rows()
    }

    /// Validates and absorbs a row-major block.
    ///
    /// # Errors
    /// * [`FmError::Data`] for a shape mismatch or a normalized-domain
    ///   contract violation (tuple indices in the error are block-local).
    pub fn push_rows(&mut self, xs: &[f64], ys: &[f64]) -> Result<()> {
        let objective = self.objective;
        self.core
            .push_rows(
                xs,
                ys,
                |xs, ys, d| objective.validate_rows(xs, ys, d),
                |cx, cy, d| {
                    let mut q = QuadraticForm::zero(d);
                    objective.accumulate_batch(cx, cy, d, &mut q);
                    q
                },
                &merge_quadratic,
            )
            .map_err(FmError::Data)
    }

    /// Validates and absorbs one [`RowBlock`].
    ///
    /// # Errors
    /// As [`CoefficientAccumulator::push_rows`], plus [`FmError::Data`]
    /// when the block's dimensionality differs from the accumulator's.
    pub fn push_block(&mut self, block: &RowBlock) -> Result<()> {
        self.core.check_dim("block", block.d())?;
        self.push_rows(block.xs(), block.ys())
    }

    /// Chunks fully absorbed so far on the fixed grid (the partial chunk
    /// held by the staging buffer, if any, excluded) — the accumulator's
    /// position on the shared chunk grid that federated merging aligns to.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.core.chunks()
    }

    /// The merge counter's run stack, bottom → top: each entry is a
    /// partial covering `2^rank` consecutive chunks, ranks strictly
    /// decreasing. Together with [`CoefficientAccumulator::staged`] this
    /// is the accumulator's complete floating-point state — what a
    /// federated client ships to a coordinator.
    #[must_use]
    pub fn partial_runs(&self) -> &[(u32, QuadraticForm)] {
        self.core.partials()
    }

    /// The staged rows of the current partial chunk `(xs, ys)` — empty
    /// when the accumulator sits on a chunk boundary.
    #[must_use]
    pub fn staged(&self) -> (&[f64], &[f64]) {
        self.core.staged()
    }

    /// Merges a pre-assembled partial covering a run of `2^rank`
    /// consecutive chunks at the accumulator's current grid position —
    /// the coordinator half of federated fitting. Replaying another
    /// process's runs in global chunk order through this entry produces
    /// **exactly** the merge tree (and therefore bit-identical
    /// coefficients) of a single accumulator fed every row in order.
    ///
    /// The caller owns the claim that `part` really is the chunk-kernel
    /// sum over those `2^rank` chunks of the shared grid (it is
    /// floating-point state, not re-validatable rows); everything
    /// structural is checked here.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a dimension mismatch, a run pushed
    /// while rows are staged mid-chunk, an unaligned run (current chunk
    /// count not divisible by `2^rank`), or rank/row overflow.
    pub fn push_run(&mut self, rank: u32, part: QuadraticForm) -> Result<()> {
        if part.dim() != self.core.dim() {
            return Err(FmError::InvalidConfig {
                name: "run",
                reason: format!(
                    "run partial has d = {}, accumulator expects {}",
                    part.dim(),
                    self.core.dim()
                ),
            });
        }
        self.core.push_run(rank, part, &merge_quadratic)
    }

    /// Drains `source`, absorbing every block it yields; returns the
    /// number of rows absorbed. A fully-in-memory source hands its
    /// backing [`fm_data::Dataset`] over whole
    /// ([`RowSource::take_dataset`]) and is chunked in place — reusing
    /// the dataset's cached columnar transpose when the objective has
    /// columnar kernels — while genuinely streaming sources drain through
    /// the **borrowed-block visitor** ([`RowSource::for_each_block`]) at
    /// the chunk size: no block copy, no per-block allocation on either
    /// path, so streamed in-memory assembly runs at batched speed.
    ///
    /// # Errors
    /// [`FmError::Data`] for a dimensionality mismatch, transport errors
    /// from the source, or contract violations.
    pub fn absorb(&mut self, source: &mut (impl RowSource + ?Sized)) -> Result<usize> {
        let objective = self.objective;
        let make_chunk_cols = objective.supports_columnar().then_some(
            move |xt: &fm_linalg::Matrix, ys: &[f64], lo: usize, hi: usize| {
                let mut q = QuadraticForm::zero(xt.rows());
                objective.accumulate_batch_columnar(xt, ys, lo, hi, &mut q);
                q
            },
        );
        self.core.absorb_source(
            source,
            |xs, ys, d| objective.validate_rows(xs, ys, d),
            |cx, cy, d| {
                let mut q = QuadraticForm::zero(d);
                objective.accumulate_batch(cx, cy, d, &mut q);
                q
            },
            make_chunk_cols,
            &merge_quadratic,
        )
    }

    /// Serializes the accumulator's complete streaming state — chunk grid
    /// position, staged rows, merge-counter stack, row count — to the
    /// versioned, checksummed `fm-checkpoint v1` text format, optionally
    /// tagging it with the WAL reservation id of the in-flight fit so a
    /// resumed fit re-attaches to its already-debited budget instead of
    /// re-debiting. Floats are written shortest-round-trip, so a restored
    /// accumulator continues **bit-identical** to the uninterrupted run.
    #[must_use]
    pub fn checkpoint(&self, reservation: Option<u64>) -> String {
        crate::checkpoint::write_core(&self.core, reservation)
    }

    /// Restores an accumulator (and the WAL reservation id it carried, if
    /// any) from a [`CoefficientAccumulator::checkpoint`] snapshot.
    ///
    /// # Errors
    /// [`FmError::Checkpoint`] for corruption/truncation (the whole-file
    /// checksum fails), version or kind mismatches, and structural
    /// violations (shapes, counter rank ordering, row accounting).
    pub fn resume(objective: &'a O, text: &str) -> Result<(Self, Option<u64>)> {
        let (core, reservation) = crate::checkpoint::parse_core(text)?;
        Ok((CoefficientAccumulator { objective, core }, reservation))
    }

    /// Flushes the final ragged chunk and merges all partials into the
    /// assembled objective; `None` if no rows were absorbed.
    #[must_use]
    pub fn finish(self) -> Option<QuadraticForm> {
        let CoefficientAccumulator { objective, core } = self;
        core.finish(
            |cx, cy, d| {
                let mut q = QuadraticForm::zero(d);
                objective.accumulate_batch(cx, cy, d, &mut q);
                q
            },
            &merge_quadratic,
        )
    }
}

/// The shared body of the streaming accumulators — staging, shape
/// checking, counter merging, row accounting — generic over the partial
/// type, so the degree-2 ([`CoefficientAccumulator`]) and general-degree
/// (`fm_core::generic::PolynomialAccumulator`) paths can never drift on
/// the chunking/merging logic their bit-identity guarantees rest on.
pub(crate) struct StreamCore<T> {
    d: usize,
    stage: ChunkStage,
    counter: TreeCounter<T>,
    rows: usize,
}

impl<T> StreamCore<T> {
    pub(crate) fn new(d: usize, chunk_rows: usize) -> Self {
        StreamCore {
            d,
            stage: ChunkStage::new(d, chunk_rows),
            counter: TreeCounter::new(),
            rows: 0,
        }
    }

    pub(crate) fn dim(&self) -> usize {
        self.d
    }

    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Refuses inputs whose dimensionality differs from the accumulator's.
    pub(crate) fn check_dim(&self, what: &'static str, d: usize) -> Result<()> {
        if d != self.d {
            return Err(FmError::Data(DataError::InvalidParameter {
                name: what,
                reason: format!("{what} has d = {d}, accumulator expects {}", self.d),
            }));
        }
        Ok(())
    }

    /// Shape-checks, validates, stages, and accumulates one row-major
    /// block; `make_chunk(xs, ys, d)` builds a chunk partial from exactly
    /// the row ranges the in-memory chunking would form. `DataError`-typed
    /// so the borrowed-block visitor ([`RowSource::for_each_block`]) can
    /// drive it directly; the public accumulator wrappers lift the error
    /// into [`FmError::Data`].
    pub(crate) fn push_rows(
        &mut self,
        xs: &[f64],
        ys: &[f64],
        validate: impl Fn(&[f64], &[f64], usize) -> fm_data::Result<()>,
        make_chunk: impl Fn(&[f64], &[f64], usize) -> T,
        merge: &impl Fn(&mut T, T),
    ) -> fm_data::Result<()> {
        if xs.len() != ys.len() * self.d {
            return Err(DataError::LengthMismatch {
                rows: xs.len() / self.d.max(1),
                labels: ys.len(),
            });
        }
        validate(xs, ys, self.d)?;
        let d = self.d;
        let counter = &mut self.counter;
        self.stage.push(xs, ys, &mut |cx, cy| {
            counter.push(make_chunk(cx, cy, d), merge);
        });
        self.rows += ys.len();
        Ok(())
    }

    /// Drains `source`, staging and accumulating every remaining row;
    /// returns the number of rows absorbed. The drain has three phases:
    ///
    /// 1. a source that is a fully-unconsumed **materialized dataset**
    ///    ([`RowSource::take_dataset`]) hands it over whole (only when the
    ///    stage sits on a chunk boundary): the dataset is validated in one
    ///    pass and chunked **on exactly the grid the stream would have
    ///    been re-chunked to**, each chunk partial pushed into the merge
    ///    counter in order — and when the objective has columnar kernels
    ///    and the dataset a cached transpose
    ///    ([`fm_data::Dataset::columnar_on_reuse`]), the chunks read it,
    ///    so repeat in-memory fits through the streaming entry points
    ///    reach the batched path's steady-state rate;
    /// 2. while the stage holds a partial chunk (a previous shard ended
    ///    mid-chunk), owned blocks are pulled at the staging boundary so a
    ///    well-behaved source re-aligns the stage in one block;
    /// 3. the aligned bulk goes through the **borrowed-block visitor**
    ///    ([`RowSource::for_each_block`]) at exactly `chunk_rows` per
    ///    block — sources with a zero-copy fast path (in-memory data,
    ///    reused CSV buffers) feed the kernels without a single block
    ///    copy, and chunk-aligned blocks skip the staging copy too.
    ///
    /// All phases produce identical chunk boundaries and an identical
    /// merge tree (and the columnar kernels are bit-identical to the
    /// row-major ones), so which path a source takes can never perturb
    /// the assembled coefficients.
    pub(crate) fn absorb_source<C>(
        &mut self,
        source: &mut (impl RowSource + ?Sized),
        validate: impl Fn(&[f64], &[f64], usize) -> fm_data::Result<()>,
        make_chunk: impl Fn(&[f64], &[f64], usize) -> T,
        make_chunk_cols: Option<C>,
        merge: &impl Fn(&mut T, T),
    ) -> Result<usize>
    where
        C: Fn(&fm_linalg::Matrix, &[f64], usize, usize) -> T,
    {
        self.check_dim("source", source.dim())?;
        let before = self.rows;
        if self.stage.staged_rows() == 0 {
            if let Some(data) = source.take_dataset() {
                let d = self.d;
                debug_assert_eq!(data.d(), d, "take_dataset arity drifted from dim()");
                validate(data.x().as_slice(), data.y(), d).map_err(FmError::Data)?;
                let n = data.n();
                let chunk_rows = self.stage.chunk_rows();
                let ys = data.y();
                let xt = make_chunk_cols
                    .as_ref()
                    .and_then(|_| data.columnar_on_reuse());
                let xs = data.x().as_slice();
                // Only the *full* chunks may enter the counter here: a
                // later absorb must be able to keep filling the final
                // ragged chunk (continuation chunking is what makes a
                // shard split invisible), so the tail goes through the
                // ordinary stage exactly as a streamed block would.
                let full_chunks = n / chunk_rows;
                for c in 0..full_chunks {
                    let lo = c * chunk_rows;
                    let hi = lo + chunk_rows;
                    let part = match (&make_chunk_cols, xt) {
                        (Some(cols), Some(xt)) => cols(xt, ys, lo, hi),
                        _ => make_chunk(&xs[lo * d..hi * d], &ys[lo..hi], d),
                    };
                    self.counter.push(part, merge);
                }
                let lo = full_chunks * chunk_rows;
                if lo < n {
                    let counter = &mut self.counter;
                    self.stage.push(&xs[lo * d..], &ys[lo..], &mut |cx, cy| {
                        counter.push(make_chunk(cx, cy, d), merge);
                    });
                }
                self.rows += n;
                return Ok(self.rows - before);
            }
        }
        while self.stage.staged_rows() > 0 {
            match source
                .next_block(self.stage.rows_to_boundary())
                .map_err(FmError::Data)?
            {
                Some(block) => {
                    self.check_dim("block", block.d())?;
                    self.push_rows(block.xs(), block.ys(), &validate, &make_chunk, merge)
                        .map_err(FmError::Data)?;
                }
                None => return Ok(self.rows - before),
            }
        }
        let chunk_rows = self.stage.chunk_rows();
        source
            .for_each_block(chunk_rows, &mut |block| {
                self.push_rows(block.xs(), block.ys(), &validate, &make_chunk, merge)
            })
            .map_err(FmError::Data)?;
        Ok(self.rows - before)
    }

    /// The fixed chunk size this core re-chunks to.
    pub(crate) fn chunk_rows(&self) -> usize {
        self.stage.chunk_rows()
    }

    /// The staged (not yet flushed) rows, for checkpointing.
    pub(crate) fn staged(&self) -> (&[f64], &[f64]) {
        self.stage.staged()
    }

    /// The merge counter's run stack, bottom → top, for checkpointing.
    pub(crate) fn partials(&self) -> &[(u32, T)] {
        self.counter.stack()
    }

    /// Chunks fully absorbed so far (the stage's partial chunk excluded).
    pub(crate) fn chunks(&self) -> usize {
        (self.rows - self.stage.staged_rows()) / self.stage.chunk_rows()
    }

    /// Absorbs a pre-merged partial covering a run of `2^rank` consecutive
    /// chunks — the merge-at-rank entry behind the public accumulator
    /// `push_run`s. Refuses unaligned runs (the chunk count so far must be
    /// divisible by `2^rank`), runs pushed while rows are staged mid-chunk,
    /// and rank/row overflow — each a structural violation that would
    /// silently break bit-identity if let through.
    pub(crate) fn push_run(
        &mut self,
        rank: u32,
        part: T,
        merge: &impl Fn(&mut T, T),
    ) -> Result<()> {
        let invalid = |reason: String| FmError::InvalidConfig {
            name: "run",
            reason,
        };
        if self.stage.staged_rows() != 0 {
            return Err(invalid(format!(
                "cannot merge a chunk run while {} rows are staged mid-chunk",
                self.stage.staged_rows()
            )));
        }
        if rank >= usize::BITS {
            return Err(invalid(format!("run rank {rank} overflows the chunk grid")));
        }
        let run_chunks = 1usize << rank;
        let chunks = self.chunks();
        if chunks % run_chunks != 0 {
            return Err(invalid(format!(
                "run of 2^{rank} chunks is not aligned at chunk {chunks}: \
                 merging it would regroup sums the single-machine tree never groups"
            )));
        }
        let run_rows = run_chunks
            .checked_mul(self.stage.chunk_rows())
            .and_then(|r| r.checked_add(self.rows))
            .ok_or_else(|| invalid("run row count overflows".to_string()))?;
        self.counter.push_run(rank, part, merge);
        self.rows = run_rows;
        Ok(())
    }

    /// Rebuilds a core from checkpointed state. Structural invariants
    /// (shapes, rank ordering) must already be verified by the caller —
    /// the checkpoint parser, which turns violations into typed errors.
    pub(crate) fn restore(
        d: usize,
        chunk_rows: usize,
        rows: usize,
        staged_xs: Vec<f64>,
        staged_ys: Vec<f64>,
        stack: Vec<(u32, T)>,
    ) -> Self {
        StreamCore {
            d,
            stage: ChunkStage::restore(d, chunk_rows, staged_xs, staged_ys),
            counter: TreeCounter::restore(stack),
            rows,
        }
    }

    /// Flushes the final ragged chunk and merges all partials; `None` if
    /// nothing was pushed.
    pub(crate) fn finish(
        self,
        make_chunk: impl Fn(&[f64], &[f64], usize) -> T,
        merge: &impl Fn(&mut T, T),
    ) -> Option<T> {
        let StreamCore {
            d,
            stage,
            mut counter,
            ..
        } = self;
        stage.finish(&mut |cx, cy| {
            counter.push(make_chunk(cx, cy, d), merge);
        });
        counter.finish(merge)
    }
}

/// Pairwise in-order tree reduction; `None` on empty input.
fn tree_reduce<T>(mut parts: Vec<T>, merge: impl Fn(&mut T, T)) -> Option<T> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                merge(&mut left, right);
            }
            next.push(left);
        }
        parts = next;
    }
    parts.pop()
}

/// Assembles the exact objective `f_D(ω) = Σ_i f(t_i, ω)` through the
/// batched chunk pipeline at the default chunk size. This is what
/// [`PolynomialObjective::assemble`] calls.
#[must_use]
pub fn assemble<O>(objective: &O, data: &Dataset) -> QuadraticForm
where
    O: PolynomialObjective + ?Sized,
{
    assemble_with_chunk_rows(objective, data, DEFAULT_CHUNK_ROWS)
}

/// [`assemble`] with an explicit chunk size (equivalence/property tests
/// and tuning hooks; results for different chunk sizes agree to
/// floating-point regrouping, ~1e-15 relative).
#[must_use]
pub fn assemble_with_chunk_rows<O>(
    objective: &O,
    data: &Dataset,
    chunk_rows: usize,
) -> QuadraticForm
where
    O: PolynomialObjective + ?Sized,
{
    let d = data.d();
    let ys = data.y();
    if objective.supports_columnar() {
        // Column-major fast path: read the dataset's cached `d × n`
        // transpose instead of re-packing each row chunk into column
        // panels. `columnar_on_reuse` only materialises the transpose
        // from a dataset's second assembly pass onward, so one-shot fits
        // (fresh CV folds, intercept-augmented copies) skip the `n·d`
        // allocation while repeat workloads amortize it. The columnar
        // kernels replicate the row-major kernels' floating-point
        // grouping, so both branches are bit-identical and the choice
        // can never perturb coefficients.
        if let Some(xt) = data.columnar_on_reuse() {
            return map_reduce_chunks(
                data.n(),
                chunk_rows,
                |lo, hi| {
                    let mut q = QuadraticForm::zero(d);
                    objective.accumulate_batch_columnar(xt, ys, lo, hi, &mut q);
                    q
                },
                |acc, part| acc.merge(part),
            )
            .unwrap_or_else(|| QuadraticForm::zero(d));
        }
    }
    let xs = data.x().as_slice();
    map_reduce_chunks(
        data.n(),
        chunk_rows,
        |lo, hi| {
            let mut q = QuadraticForm::zero(d);
            objective.accumulate_batch(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut q);
            q
        },
        |acc, part| acc.merge(part),
    )
    .unwrap_or_else(|| QuadraticForm::zero(d))
}

/// Assembles each shard's exact objective **independently** — one
/// [`CoefficientAccumulator`] per shard, run concurrently under the
/// `parallel` cargo feature — returning `(rows, coefficients)` per shard,
/// in shard order (`None` coefficients for an empty shard).
///
/// Each shard is validated and re-chunked from its own first row, so the
/// per-shard results are exactly what a serial
/// `CoefficientAccumulator::absorb` + `finish` per shard produces — the
/// parallel and sequential builds are **bit-identical** by construction
/// (per-shard merge trees touch only their own chunks; nothing crosses a
/// shard boundary until the caller merges the returned partials, in
/// whatever order it chooses — shard order, for the built-in callers).
///
/// Shards may have different dimensionalities (each is its own
/// accumulation); callers that merge the partials enforce equal dims
/// themselves.
///
/// # Errors
/// The first shard error in shard order — [`FmError::Data`] for contract
/// violations or transport errors (under `parallel` every shard is still
/// assembled; error selection stays deterministic).
pub fn assemble_shards<O, S>(
    objective: &O,
    shards: &mut [S],
    chunk_rows: usize,
) -> Result<Vec<(usize, Option<QuadraticForm>)>>
where
    O: PolynomialObjective + ?Sized,
    S: RowSource + Send,
{
    run_shards(shards, |shard| {
        let mut acc = CoefficientAccumulator::with_chunk_rows(objective, shard.dim(), chunk_rows);
        let rows = acc.absorb(shard)?;
        Ok((rows, acc.finish()))
    })
}

/// The one shard fan-out: maps `run` over every shard — concurrently
/// under the `parallel` cargo feature, serially otherwise — returning the
/// results in shard order, with the **first error in shard order**
/// propagated either way (under `parallel` every shard still runs; error
/// selection stays deterministic). Shared by the degree-2
/// ([`assemble_shards`]) and general-degree
/// (`fm_core::generic::assemble_polynomial_shards`) shard assemblies so
/// the scheduling/error semantics can never drift between them.
pub(crate) fn run_shards<S, T, F>(shards: &mut [S], run: F) -> Result<Vec<T>>
where
    S: Send,
    T: Send,
    F: Fn(&mut S) -> Result<T> + Sync + Send,
{
    #[cfg(feature = "parallel")]
    let results: Vec<Result<T>> = {
        use rayon::prelude::*;
        let handles: Vec<&mut S> = shards.iter_mut().collect();
        handles.into_par_iter().map(run).collect()
    };
    #[cfg(not(feature = "parallel"))]
    let results: Vec<Result<T>> = shards.iter_mut().map(run).collect();

    results.into_iter().collect()
}

/// Refuses shard lists whose members disagree on dimensionality — the
/// shared pre-check of every caller that merges per-shard partials.
pub(crate) fn check_shard_dims<S: RowSource>(shards: &[S]) -> Result<()> {
    if let Some(first) = shards.first() {
        let d = first.dim();
        if let Some(bad) = shards.iter().position(|s| s.dim() != d) {
            return Err(FmError::Data(DataError::InvalidParameter {
                name: "shards",
                reason: format!(
                    "shard {bad} has dimensionality {}, shard 0 has {d}",
                    shards[bad].dim()
                ),
            }));
        }
    }
    Ok(())
}

/// The pre-batching reference path: one [`PolynomialObjective::accumulate_tuple`]
/// call per row into a single accumulator. Kept for equivalence tests and
/// as the benchmark baseline; real callers go through [`assemble`].
#[must_use]
pub fn assemble_per_tuple<O>(objective: &O, data: &Dataset) -> QuadraticForm
where
    O: PolynomialObjective + ?Sized,
{
    let mut q = QuadraticForm::zero(data.d());
    for (x, y) in data.tuples() {
        objective.accumulate_tuple(x, y, &mut q);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_handles_all_sizes() {
        for n in 0usize..20 {
            let parts: Vec<usize> = (0..n).collect();
            let total = tree_reduce(parts, |a, b| *a += b);
            match n {
                0 => assert!(total.is_none()),
                _ => assert_eq!(total.unwrap(), n * (n - 1) / 2),
            }
        }
    }

    #[test]
    fn map_reduce_covers_every_row_exactly_once() {
        for n in [1usize, 5, 4096, 4097, 10_000] {
            for chunk in [1usize, 7, 4096] {
                let got = map_reduce_chunks(
                    n,
                    chunk,
                    |lo, hi| (hi - lo, lo * 2 + 1), // (count, witness)
                    |a, b| *a = (a.0 + b.0, a.1.min(b.1)),
                )
                .unwrap();
                assert_eq!(got.0, n, "n={n} chunk={chunk}");
                assert_eq!(got.1, 1, "first chunk must start at row 0");
            }
        }
    }

    #[test]
    fn zero_chunk_rows_is_clamped() {
        let got = map_reduce_chunks(3, 0, |lo, hi| hi - lo, |a, b| *a += b).unwrap();
        assert_eq!(got, 3);
    }

    #[test]
    fn counter_merge_is_bit_identical_to_tree_reduce() {
        // The load-bearing equivalence behind streaming bit-identity: for
        // every chunk count, the incremental binary-counter merge must
        // reproduce the round-based pairwise reduction's floating-point
        // grouping exactly.
        let merge = |a: &mut f64, b: f64| *a += b;
        for m in 0usize..=260 {
            let parts: Vec<f64> = (0..m).map(|i| (i as f64 * 0.7).sin() / 3.0).collect();
            let reference = tree_reduce(parts.clone(), merge);
            let mut counter = TreeCounter::new();
            for p in parts {
                counter.push(p, &merge);
            }
            let streamed = counter.finish(&merge);
            match (streamed, reference) {
                (None, None) => assert_eq!(m, 0),
                (Some(a), Some(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "m={m}: {a} vs {b}");
                }
                other => panic!("m={m}: {other:?}"),
            }
        }
    }

    /// Greedy aligned-dyadic segmentation of the chunk range `[c, c+m)`:
    /// each segment's length is the largest power of two that both
    /// divides its start chunk and fits the remaining range — the
    /// decomposition a federated client uses so its pre-merged runs
    /// replay onto the global counter without regrouping any sum.
    fn dyadic_segments(mut c: usize, mut m: usize) -> Vec<(usize, u32)> {
        let mut segs = Vec::new();
        while m > 0 {
            let align = if c == 0 {
                usize::MAX
            } else {
                1usize << c.trailing_zeros()
            };
            let mut len = 1usize;
            while len * 2 <= m && len * 2 <= align {
                len *= 2;
            }
            segs.push((c, len.trailing_zeros()));
            c += len;
            m -= len;
        }
        segs
    }

    #[test]
    fn run_replay_is_bit_identical_to_sequential_counter() {
        // The load-bearing federated equivalence: splitting the chunk
        // stream at arbitrary chunk boundaries, pre-merging each side's
        // aligned dyadic segments locally, and replaying the runs through
        // push_run reproduces the sequential counter's floating-point
        // grouping exactly — for every chunk count and every split point.
        let merge = |a: &mut f64, b: f64| *a += b;
        for m in 1usize..=80 {
            let parts: Vec<f64> = (0..m).map(|i| (i as f64 * 0.7).sin() / 3.0).collect();
            let mut seq = TreeCounter::new();
            for &p in &parts {
                seq.push(p, &merge);
            }
            let reference = seq.finish(&merge).unwrap();
            for split in 0..=m {
                let mut replay = TreeCounter::new();
                for (range_lo, range_hi) in [(0usize, split), (split, m)] {
                    for (c, rank) in dyadic_segments(range_lo, range_hi - range_lo) {
                        // A client pre-merges the segment with its own
                        // local counter; a 2^rank-chunk segment collapses
                        // to exactly one stack entry at that rank.
                        let mut seg = TreeCounter::new();
                        for &p in &parts[c..c + (1usize << rank)] {
                            seg.push(p, &merge);
                        }
                        assert_eq!(seg.stack.len(), 1);
                        let (r, part) = seg.stack.pop().unwrap();
                        assert_eq!(r, rank);
                        replay.push_run(rank, part, &merge);
                    }
                }
                let replayed = replay.finish(&merge).unwrap();
                assert_eq!(
                    replayed.to_bits(),
                    reference.to_bits(),
                    "m={m} split={split}"
                );
            }
        }
    }

    #[test]
    fn accumulator_push_run_refuses_structural_violations() {
        use crate::linreg::LinearObjective;
        let d = 2;
        let chunk = 4;
        let rows_for = |n: usize| {
            let xs: Vec<f64> = (0..n * d).map(|i| ((i as f64) * 0.3).sin() * 0.1).collect();
            let ys: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.2).cos() * 0.5).collect();
            (xs, ys)
        };
        let part = QuadraticForm::zero(d);

        // Dimension mismatch.
        let mut acc = CoefficientAccumulator::with_chunk_rows(&LinearObjective, d, chunk);
        assert!(acc.push_run(0, QuadraticForm::zero(d + 1)).is_err());

        // Mid-chunk staged rows refuse any run.
        let (xs, ys) = rows_for(3);
        acc.push_rows(&xs, &ys).unwrap();
        assert!(acc.push_run(0, part.clone()).is_err());

        // Unaligned run: one chunk absorbed, then a rank-1 (2-chunk) run
        // would merge across a grouping boundary.
        let mut acc = CoefficientAccumulator::with_chunk_rows(&LinearObjective, d, chunk);
        let (xs, ys) = rows_for(chunk);
        acc.push_rows(&xs, &ys).unwrap();
        assert_eq!(acc.chunks(), 1);
        assert!(acc.push_run(1, part.clone()).is_err());
        // An aligned rank-0 run at the same position is fine.
        acc.push_run(0, part.clone()).unwrap();
        assert_eq!(acc.chunks(), 2);
        assert_eq!(acc.rows(), 2 * chunk);

        // Rank overflow.
        let mut acc = CoefficientAccumulator::with_chunk_rows(&LinearObjective, d, chunk);
        assert!(acc.push_run(usize::BITS, part).is_err());
    }

    #[test]
    fn accumulator_run_replay_matches_single_machine_assembly() {
        use crate::linreg::LinearObjective;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(406);
        let chunk = 8;
        // 13 full chunks plus a ragged tail — the case where greedy
        // balanced splits go wrong and dyadic segmentation is required.
        let n = 13 * chunk + 5;
        let data = fm_data::synth::linear_dataset(&mut rng, n, 3, 0.1);
        let d = data.d();
        let xs = data.x().as_slice();
        let ys = data.y();
        let reference = assemble_with_chunk_rows(&LinearObjective, &data, chunk);

        for split_chunk in [0usize, 1, 5, 8, 13] {
            // Each "client" accumulates its contiguous chunk range as
            // aligned dyadic segments; the final client also stages the
            // ragged tail rows.
            let mut coord = CoefficientAccumulator::with_chunk_rows(&LinearObjective, d, chunk);
            let ranges = [(0usize, split_chunk), (split_chunk, 13)];
            for (i, &(lo_c, hi_c)) in ranges.iter().enumerate() {
                for (c, rank) in dyadic_segments(lo_c, hi_c - lo_c) {
                    let seg_rows = (1usize << rank) * chunk;
                    let lo = c * chunk;
                    let mut seg =
                        CoefficientAccumulator::with_chunk_rows(&LinearObjective, d, chunk);
                    seg.push_rows(&xs[lo * d..(lo + seg_rows) * d], &ys[lo..lo + seg_rows])
                        .unwrap();
                    let mut runs = seg.partial_runs().to_vec();
                    assert_eq!(runs.len(), 1, "2^{rank} chunks collapse to one run");
                    let (r, part) = runs.pop().unwrap();
                    assert_eq!(r, rank);
                    coord.push_run(r, part).unwrap();
                }
                if i == 1 {
                    // Ragged tail rows travel as raw staged rows.
                    coord
                        .push_rows(&xs[13 * chunk * d..], &ys[13 * chunk..])
                        .unwrap();
                }
            }
            assert_eq!(coord.rows(), n);
            let merged = coord.finish().unwrap();
            assert_eq!(merged, reference, "split at chunk {split_chunk}");
        }
    }

    #[test]
    fn chunk_stage_reproduces_fixed_chunk_boundaries() {
        // Whatever block split feeds the stage, flushed chunks must be the
        // [c·chunk, (c+1)·chunk) ranges of the concatenation.
        let d = 2;
        let n = 23;
        let xs: Vec<f64> = (0..n * d).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
        for chunk in [1usize, 4, 7, 23, 64] {
            for split in [vec![n], vec![1; n], vec![5, 1, 9, 8], vec![10, 13]] {
                let mut stage = ChunkStage::new(d, chunk);
                let mut got: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
                let mut pos = 0usize;
                for take in split {
                    let hi = (pos + take).min(n);
                    stage.push(&xs[pos * d..hi * d], &ys[pos..hi], &mut |cx, cy| {
                        got.push((cx.to_vec(), cy.to_vec()));
                    });
                    pos = hi;
                }
                stage.finish(&mut |cx, cy| got.push((cx.to_vec(), cy.to_vec())));
                let expected: Vec<(Vec<f64>, Vec<f64>)> = (0..n.div_ceil(chunk))
                    .map(|c| {
                        let lo = c * chunk;
                        let hi = ((c + 1) * chunk).min(n);
                        (xs[lo * d..hi * d].to_vec(), ys[lo..hi].to_vec())
                    })
                    .collect();
                assert_eq!(got, expected, "chunk={chunk}");
            }
        }
    }

    #[test]
    fn accumulator_is_bit_identical_to_batched_assembly() {
        use crate::linreg::LinearObjective;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(404);
        let data = fm_data::synth::linear_dataset(&mut rng, 1_500, 3, 0.1);
        let d = data.d();
        let xs = data.x().as_slice();
        let ys = data.y();
        for chunk in [64usize, 257, 4096] {
            let reference = assemble_with_chunk_rows(&LinearObjective, &data, chunk);
            // Feed the same rows in awkward block sizes.
            for block in [1usize, 37, 64, 500, 1_500] {
                let mut acc = CoefficientAccumulator::with_chunk_rows(&LinearObjective, d, chunk);
                let mut pos = 0usize;
                while pos < data.n() {
                    let hi = (pos + block).min(data.n());
                    acc.push_rows(&xs[pos * d..hi * d], &ys[pos..hi]).unwrap();
                    pos = hi;
                }
                assert_eq!(acc.rows(), data.n());
                let streamed = acc.finish().expect("rows were absorbed");
                assert_eq!(streamed, reference, "chunk={chunk} block={block}");
            }
        }
        // Empty accumulator yields nothing.
        assert!(CoefficientAccumulator::new(&LinearObjective, d)
            .finish()
            .is_none());
    }

    #[test]
    fn accumulator_absorbs_sources_and_validates() {
        use crate::linreg::LinearObjective;
        use fm_data::stream::InMemorySource;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(405);
        let data = fm_data::synth::linear_dataset(&mut rng, 300, 2, 0.1);
        let mut acc = CoefficientAccumulator::new(&LinearObjective, 2);
        let absorbed = acc.absorb(&mut InMemorySource::new(&data)).unwrap();
        assert_eq!(absorbed, 300);
        let streamed = acc.finish().unwrap();
        assert_eq!(streamed, assemble(&LinearObjective, &data));

        // Contract violations surface as data errors.
        let bad = fm_data::Dataset::new(
            fm_linalg::Matrix::from_rows(&[&[3.0, 0.0]]).unwrap(),
            vec![0.5],
        )
        .unwrap();
        let mut acc = CoefficientAccumulator::new(&LinearObjective, 2);
        assert!(matches!(
            acc.absorb(&mut InMemorySource::new(&bad)),
            Err(FmError::Data(_))
        ));

        // Arity mismatches are refused up front.
        let mut acc = CoefficientAccumulator::new(&LinearObjective, 3);
        assert!(acc.absorb(&mut InMemorySource::new(&data)).is_err());
        assert!(acc.push_rows(&[0.1, 0.2], &[0.5]).is_err());
    }
}
