//! Batched, data-parallel coefficient assembly — the hot path of
//! Algorithm 1.
//!
//! Assembling `λ_φ = Σ_i λ_{φ t_i}` over the full dataset is the dominant
//! cost of every experiment in the paper (`O(n·d²)` at `n = 370,000`,
//! 5-fold × 50 repeats). This module replaces the tuple-at-a-time
//! accumulation loop with a chunked map-reduce:
//!
//! 1. the dataset's row-major feature block is split into fixed-size row
//!    chunks ([`DEFAULT_CHUNK_ROWS`] rows each);
//! 2. each chunk is accumulated into its own partial
//!    [`QuadraticForm`] through
//!    [`PolynomialObjective::accumulate_batch`] — which the built-in
//!    objectives override with blocked Gram kernels (`yᵀy`, `Xᵀy`, `XᵀX`;
//!    see `fm_linalg::vecops::sum_squares`/`gemv_t_acc` and
//!    `fm_linalg::Matrix::syrk_acc`) instead of per-tuple rank-1 updates;
//! 3. the partials are combined by a **deterministic pairwise tree
//!    reduction** in chunk order ([`QuadraticForm::merge`]).
//!
//! With the `parallel` cargo feature the chunk map runs on rayon.
//! Determinism is by construction, not by luck: the chunk boundaries are a
//! pure function of `(n, chunk_rows)` and the reduction order is a pure
//! function of the chunk count, so the assembled coefficients are
//! **bit-identical** for any worker count — including the sequential
//! build. (Changing `chunk_rows` regroups floating-point sums and may
//! perturb coefficients at the ~1e-15 relative level; the chunk size is
//! therefore fixed by default and an explicit parameter everywhere else.)

use fm_data::Dataset;
use fm_poly::QuadraticForm;

use crate::mechanism::PolynomialObjective;

/// Rows per assembly chunk. Large enough that per-chunk bookkeeping
/// (one partial `QuadraticForm` + one merge) is noise, small enough that
/// a census-scale dataset (`n = 370k`) still splits into ~90 chunks —
/// plenty of parallel slack for any realistic core count.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Splits `n` items into `⌈n / chunk_rows⌉` chunk bounds, maps every chunk
/// to a partial result (in parallel when the `parallel` feature is on),
/// and combines the partials with a pairwise tree reduction in chunk
/// order. Returns `None` for `n = 0`.
///
/// The reduction merges neighbours `(0,1), (2,3), …` per round, so the
/// grouping — and hence the floating-point result — depends only on the
/// chunk count, never on scheduling.
pub fn map_reduce_chunks<T, M>(
    n: usize,
    chunk_rows: usize,
    map: M,
    merge: impl Fn(&mut T, T),
) -> Option<T>
where
    T: Send,
    M: Fn(usize, usize) -> T + Sync,
{
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = n.div_ceil(chunk_rows);
    let bounds = move |c: usize| (c * chunk_rows, ((c + 1) * chunk_rows).min(n));

    #[cfg(feature = "parallel")]
    let partials: Vec<T> = {
        use rayon::prelude::*;
        (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let (lo, hi) = bounds(c);
                map(lo, hi)
            })
            .collect()
    };
    #[cfg(not(feature = "parallel"))]
    let partials: Vec<T> = (0..n_chunks)
        .map(|c| {
            let (lo, hi) = bounds(c);
            map(lo, hi)
        })
        .collect();

    tree_reduce(partials, merge)
}

/// Pairwise in-order tree reduction; `None` on empty input.
fn tree_reduce<T>(mut parts: Vec<T>, merge: impl Fn(&mut T, T)) -> Option<T> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                merge(&mut left, right);
            }
            next.push(left);
        }
        parts = next;
    }
    parts.pop()
}

/// Assembles the exact objective `f_D(ω) = Σ_i f(t_i, ω)` through the
/// batched chunk pipeline at the default chunk size. This is what
/// [`PolynomialObjective::assemble`] calls.
#[must_use]
pub fn assemble<O>(objective: &O, data: &Dataset) -> QuadraticForm
where
    O: PolynomialObjective + ?Sized,
{
    assemble_with_chunk_rows(objective, data, DEFAULT_CHUNK_ROWS)
}

/// [`assemble`] with an explicit chunk size (equivalence/property tests
/// and tuning hooks; results for different chunk sizes agree to
/// floating-point regrouping, ~1e-15 relative).
#[must_use]
pub fn assemble_with_chunk_rows<O>(
    objective: &O,
    data: &Dataset,
    chunk_rows: usize,
) -> QuadraticForm
where
    O: PolynomialObjective + ?Sized,
{
    let d = data.d();
    let ys = data.y();
    if objective.supports_columnar() {
        // Column-major fast path: read the dataset's cached `d × n`
        // transpose instead of re-packing each row chunk into column
        // panels. `columnar_on_reuse` only materialises the transpose
        // from a dataset's second assembly pass onward, so one-shot fits
        // (fresh CV folds, intercept-augmented copies) skip the `n·d`
        // allocation while repeat workloads amortize it. The columnar
        // kernels replicate the row-major kernels' floating-point
        // grouping, so both branches are bit-identical and the choice
        // can never perturb coefficients.
        if let Some(xt) = data.columnar_on_reuse() {
            return map_reduce_chunks(
                data.n(),
                chunk_rows,
                |lo, hi| {
                    let mut q = QuadraticForm::zero(d);
                    objective.accumulate_batch_columnar(xt, ys, lo, hi, &mut q);
                    q
                },
                |acc, part| acc.merge(part),
            )
            .unwrap_or_else(|| QuadraticForm::zero(d));
        }
    }
    let xs = data.x().as_slice();
    map_reduce_chunks(
        data.n(),
        chunk_rows,
        |lo, hi| {
            let mut q = QuadraticForm::zero(d);
            objective.accumulate_batch(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut q);
            q
        },
        |acc, part| acc.merge(part),
    )
    .unwrap_or_else(|| QuadraticForm::zero(d))
}

/// The pre-batching reference path: one [`PolynomialObjective::accumulate_tuple`]
/// call per row into a single accumulator. Kept for equivalence tests and
/// as the benchmark baseline; real callers go through [`assemble`].
#[must_use]
pub fn assemble_per_tuple<O>(objective: &O, data: &Dataset) -> QuadraticForm
where
    O: PolynomialObjective + ?Sized,
{
    let mut q = QuadraticForm::zero(data.d());
    for (x, y) in data.tuples() {
        objective.accumulate_tuple(x, y, &mut q);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_handles_all_sizes() {
        for n in 0usize..20 {
            let parts: Vec<usize> = (0..n).collect();
            let total = tree_reduce(parts, |a, b| *a += b);
            match n {
                0 => assert!(total.is_none()),
                _ => assert_eq!(total.unwrap(), n * (n - 1) / 2),
            }
        }
    }

    #[test]
    fn map_reduce_covers_every_row_exactly_once() {
        for n in [1usize, 5, 4096, 4097, 10_000] {
            for chunk in [1usize, 7, 4096] {
                let got = map_reduce_chunks(
                    n,
                    chunk,
                    |lo, hi| (hi - lo, lo * 2 + 1), // (count, witness)
                    |a, b| *a = (a.0 + b.0, a.1.min(b.1)),
                )
                .unwrap();
                assert_eq!(got.0, n, "n={n} chunk={chunk}");
                assert_eq!(got.1, 1, "first chunk must start at row 0");
            }
        }
    }

    #[test]
    fn zero_chunk_rows_is_clamped() {
        let got = map_reduce_chunks(3, 0, |lo, hi| hi - lo, |a, b| *a += b).unwrap();
        assert_eq!(got, 3);
    }
}
