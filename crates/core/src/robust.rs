//! ε-differentially private **robust regression**: median (smoothed
//! pinball/check loss, after Chen et al. 2020, "Median regression with
//! differential privacy") and **Huber** regression, both as first-class
//! [`RegressionObjective`]s on the generic [`FmEstimator`] core.
//!
//! ## The §5 scheme for residual losses
//!
//! Both losses have the residual form `f(t, ω) = ρ(y − xᵀω)` with a scalar
//! loss `ρ`. Writing `v = xᵀω` (linear in ω, Equation 6's shape) and
//! Taylor-expanding `v ↦ ρ(y − v)` at `v = 0` — the same centre as the
//! paper's logistic expansion — gives the per-tuple degree-2 contribution
//!
//! ```text
//! ρ(y − v) ≈ ρ(y) − ρ'(y)·v + ½ρ''(y)·v²
//!          = ρ(y)  +  [−ρ'(y)·x]ᵀω  +  ωᵀ[½ρ''(y)·xxᵀ]ω .
//! ```
//!
//! Unlike logistic regression — where the expansion constants are the same
//! for every tuple — the derivative values here depend on the tuple's
//! label, so the batched kernels are *weighted* Gram products:
//! `α += Xᵀw₁` with `w₁ᵢ = −ρ'(yᵢ)` and `M += ½·Xᵀdiag(w₂)X` with
//! `w₂ᵢ = ρ''(yᵢ)` (`fm_linalg`'s `gemv_t_acc` / `syrk_weighted_acc`, plus
//! bit-identical columnar twins reading the cached `Dataset::columnar()`
//! transpose).
//!
//! ## Why this is robust
//!
//! The linear pull `|ρ'(y)|` **saturates** for both losses (at 1 for the
//! smoothed median loss, at δ for Huber) where squared error's grows
//! linearly in the residual, and the curvature weight `ρ''(y)` *vanishes*
//! for extreme labels — an outlier tuple contributes a bounded tug and
//! almost no say in the Gram matrix. The regression-utility tests pin the
//! consequence: under injected label outliers the private median fit beats
//! private least squares at equal ε.
//!
//! ## Sensitivities (Lemma-1 contract)
//!
//! Algorithm 1 perturbs and releases **every** coefficient of the
//! truncated objective — the degree-0 term `β = Σρ(yᵢ)` included — so Δ
//! must cover the constant. With `ρ_max = max_{|y|≤1} ρ(y)`,
//! `c₁ = max_{|y|≤1} |ρ'(y)|` and `c₂ = max_{|y|≤1} ρ''(y)`, the full
//! per-tuple coefficient L1 norm is at most
//! `ρ_max + c₁·Σ|x_j| + ½c₂·(Σ|x_j|)²`, so
//! `Δ = 2(ρ_max + c₁·S + ½c₂·S²)` with `S = d` (paper-style) or `√d`
//! (Cauchy–Schwarz) — the `ρ_max` term mirrors linear regression's `+1`
//! for its `y²` constant. Both are `O(1)` in the data — the paper's
//! headline property — and the property tests machine-check the contract
//! (constant included) on random in-domain tuples. For the L2
//! (Gaussian-variant) sensitivity the per-tuple blocks are bounded
//! through `‖x‖₂ ≤ 1` directly, giving the dimension-independent
//! `Δ₂ = 2√(ρ_max² + c₁² + ¼c₂²)`.

use rand::{Rng, RngCore};

use fm_data::Dataset;
use fm_poly::taylor::{
    huber_derivs, pseudo_huber_derivs, pseudo_huber_third_derivative_bound, smoothed_pinball_derivs,
};
use fm_poly::QuadraticForm;

use crate::estimator::{
    DpEstimator, EstimatorBuilder, FitConfig, FmEstimator, RegressionObjective,
};
use crate::mechanism::{PolynomialObjective, SensitivityBound};
use crate::model::{LinearModel, ModelKind};
use crate::{FmError, Result};

/// Default pinball smoothing half-width γ for [`MedianObjective`]: sharp
/// enough that the surrogate's linear pull saturates well inside the label
/// range (`|ρ'| > 0.97` at `|y| = 1`), wide enough that the curvature
/// bound `1/γ = 4` keeps the sensitivity within a small factor of linear
/// regression's.
pub const DEFAULT_SMOOTHING: f64 = 0.25;

/// Default Huber threshold δ for [`HuberObjective`]: residuals beyond half
/// the label range get linear (bounded-influence) treatment.
pub const DEFAULT_HUBER_DELTA: f64 = 0.5;

/// The paper-style L1 sensitivity shared by every residual loss with
/// value bound `ρ_max` and derivative bounds `(c₁, c₂)`:
/// `Δ = 2(ρ_max + c₁·S + ½c₂·S²)`, `S` as per the bound choice (see the
/// module docs). The `ρ_max` term covers the released degree-0
/// coefficient `β = Σρ(yᵢ)`, which changes by up to `ρ_max` under a
/// one-tuple replacement.
fn residual_sensitivity(d: usize, bound: SensitivityBound, rho_max: f64, c1: f64, c2: f64) -> f64 {
    let s = match bound {
        SensitivityBound::Paper => d as f64,
        SensitivityBound::Tight => (d as f64).sqrt(),
    };
    2.0 * (rho_max + c1 * s + 0.5 * c2 * s * s)
}

/// The dimension-independent L2 sensitivity of a residual loss with value
/// bound `ρ_max` and derivative bounds `(c₁, c₂)` on the label range.
fn residual_sensitivity_l2(rho_max: f64, c1: f64, c2: f64) -> f64 {
    2.0 * (rho_max * rho_max + c1 * c1 + 0.25 * c2 * c2).sqrt()
}

/// Shared batched accumulation for residual losses: one pass computing the
/// per-row expansion weights in row order, then the three Gram kernels.
/// The columnar twin below computes the weights from the *same* slice in
/// the *same* order and calls the bit-identical columnar kernels, so the
/// two layouts can never disagree.
fn accumulate_residual_batch(
    derivs: impl Fn(f64) -> [f64; 3],
    xs: &[f64],
    ys: &[f64],
    d: usize,
    q: &mut QuadraticForm,
) {
    debug_assert_eq!(xs.len(), ys.len() * d, "residual batch: shape mismatch");
    let (beta, w1, w2) = residual_weights(derivs, ys);
    *q.beta_mut() += beta;
    fm_linalg::vecops::gemv_t_acc(1.0, xs, d, &w1, q.alpha_mut());
    q.m_mut()
        .syrk_weighted_acc(0.5, xs, d, &w2)
        .expect("dataset row arity matches objective dimension");
}

/// Columnar counterpart of [`accumulate_residual_batch`] over tuples
/// `[lo, hi)` of the cached transpose.
fn accumulate_residual_cols(
    derivs: impl Fn(f64) -> [f64; 3],
    xt: &fm_linalg::Matrix,
    ys: &[f64],
    lo: usize,
    hi: usize,
    q: &mut QuadraticForm,
) {
    debug_assert_eq!(xt.rows(), q.dim(), "residual columnar: arity");
    debug_assert!(lo <= hi && hi <= ys.len() && ys.len() == xt.cols());
    let (beta, w1, w2) = residual_weights(derivs, &ys[lo..hi]);
    *q.beta_mut() += beta;
    for (j, out) in q.alpha_mut().iter_mut().enumerate() {
        fm_linalg::vecops::dot_blocked_acc(1.0, &xt.row(j)[lo..hi], &w1, out);
    }
    q.m_mut()
        .syrk_weighted_cols_acc(0.5, xt, lo, hi, &w2)
        .expect("columnar view arity matches objective dimension");
}

/// The per-tuple expansion of `v ↦ ρ(y − v)` at `v = 0` accumulated
/// directly: `β += ρ(y)`, `α += −ρ'(y)·x`, `M += ½ρ''(y)·xxᵀ` — the
/// scalar reference the batched kernels above are tested against. (Not
/// routed through [`fm_poly::taylor::TaylorComponent`]: its
/// `third_deriv_range` field contracts a finite `f'''` bound, which the
/// Huber loss — `C¹`, curvature jumps at the knots — does not have;
/// the truncation-error story lives on the objectives instead.)
fn accumulate_residual_tuple([f0, f1, f2]: [f64; 3], x: &[f64], q: &mut QuadraticForm) {
    *q.beta_mut() += f0;
    fm_linalg::vecops::axpy(-f1, x, q.alpha_mut());
    if f2 != 0.0 {
        q.m_mut()
            .rank1_update(0.5 * f2, x)
            .expect("dataset row arity matches objective dimension");
    }
}

/// The per-row expansion weights `(Σρ(yᵢ), w₁ = −ρ'(yᵢ), w₂ = ρ''(yᵢ))`,
/// accumulated strictly in row order (one shared implementation so the
/// row-major and columnar paths sum β with identical grouping).
fn residual_weights(derivs: impl Fn(f64) -> [f64; 3], ys: &[f64]) -> (f64, Vec<f64>, Vec<f64>) {
    let mut beta = 0.0;
    let mut w1 = Vec::with_capacity(ys.len());
    let mut w2 = Vec::with_capacity(ys.len());
    for &y in ys {
        let [f0, f1, f2] = derivs(y);
        beta += f0;
        w1.push(-f1);
        w2.push(f2);
    }
    (beta, w1, w2)
}

// ------------------------------------------------------------------ median

/// The smoothed-median (pseudo-Huber check loss) objective in
/// Algorithm-1 form: `ρ_γ(u) = √(u² + γ²) − γ`, the standard smoothing of
/// the median-regression loss `|u|` (τ = ½ pinball), Taylor-truncated per
/// the module docs.
#[derive(Debug, Clone, Copy)]
pub struct MedianObjective {
    gamma: f64,
    /// `max ρ` on the label range (= `√(1+γ²) − γ`, attained at `|y|=1`).
    rho_max: f64,
    /// `max |ρ'|` on the label range (= `1/√(1+γ²)`, attained at `|y|=1`).
    c1: f64,
    /// `max ρ''` on the label range (= `1/γ`, attained at `y = 0`).
    c2: f64,
}

impl MedianObjective {
    /// A smoothed-median objective with smoothing half-width `gamma`.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a non-finite or non-positive γ.
    pub fn new(gamma: f64) -> Result<Self> {
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "gamma",
                reason: format!("{gamma} must be finite and > 0"),
            });
        }
        Ok(MedianObjective {
            gamma,
            rho_max: (1.0 + gamma * gamma).sqrt() - gamma,
            c1: 1.0 / (1.0 + gamma * gamma).sqrt(),
            c2: 1.0 / gamma,
        })
    }

    /// The configured smoothing half-width γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The scalar loss's value and first two derivatives at residual `u`.
    #[must_use]
    pub fn derivs(&self, u: f64) -> [f64; 3] {
        pseudo_huber_derivs(u, self.gamma)
    }

    /// Data-independent per-tuple truncation-remainder bound (the Lemma-4
    /// analogue): `max|ρ'''|/6` over the `|xᵀω| ≤ 1` window, `O(1/γ²)`.
    #[must_use]
    pub fn remainder_bound(&self) -> f64 {
        pseudo_huber_third_derivative_bound(self.gamma) / 6.0
    }

    /// Assembles the noise-free truncated objective (the median analogue
    /// of [`crate::logreg::truncated_objective`]).
    #[must_use]
    pub fn assemble_objective(&self, data: &Dataset) -> QuadraticForm {
        self.assemble(data)
    }
}

impl PolynomialObjective for MedianObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        accumulate_residual_tuple(self.derivs(y), x, q);
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        accumulate_residual_batch(|y| self.derivs(y), xs, ys, d, q);
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        accumulate_residual_cols(|y| self.derivs(y), xt, ys, lo, hi, q);
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        residual_sensitivity(d, bound, self.rho_max, self.c1, self.c2)
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        residual_sensitivity_l2(self.rho_max, self.c1, self.c2)
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_linear()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_linear(xs, ys, d)
    }
}

impl RegressionObjective for MedianObjective {
    type Model = LinearModel;
}

// ---------------------------------------------------------------- quantile

/// The smoothed-pinball **quantile** objective at general `τ ∈ (0, 1)` in
/// Algorithm-1 form — the generalization of [`MedianObjective`] (τ = ½)
/// to arbitrary conditional quantiles:
///
/// ```text
/// ρ_τγ(u) = (2τ − 1)·u + √(u² + γ²) − γ
/// ```
///
/// twice the γ-smoothed check loss `u·(τ − 1[u<0])` (see
/// [`smoothed_pinball_derivs`]; the factor 2 makes τ = ½ coincide with
/// the median loss exactly, smoothing constant included). Taylor
/// truncation, weighted Gram kernels and the §5 residual scheme are all
/// shared with the other residual losses.
///
/// ## Sensitivity (Lemma-1 contract, asymmetric slopes)
///
/// The added `(2τ−1)·u` term is linear in the residual, so only the value
/// and slope bounds change relative to the median:
/// `ρ_max = |2τ−1| + √(1+γ²) − γ`, `c₁ = |2τ−1| + 1/√(1+γ²)` — the
/// asymmetric-slope bound: the loss pulls with slope approaching `2τ` on
/// one side and `2(τ−1)` on the other, and `c₁` is the larger magnitude —
/// while the curvature bound `c₂ = 1/γ` is τ-independent. The usual
/// `Δ = 2(ρ_max + c₁·S + ½c₂·S²)` and dimension-independent
/// `Δ₂ = 2√(ρ_max² + c₁² + ¼c₂²)` follow; the proptest suite
/// machine-checks both on random in-domain tuples across τ.
#[derive(Debug, Clone, Copy)]
pub struct QuantileObjective {
    tau: f64,
    gamma: f64,
    /// `max |ρ|` on the label range (= `|2τ−1| + √(1+γ²) − γ`).
    rho_max: f64,
    /// `max |ρ'|` on the label range (= `|2τ−1| + 1/√(1+γ²)`).
    c1: f64,
    /// `max ρ''` on the label range (= `1/γ`, τ-independent).
    c2: f64,
}

impl QuantileObjective {
    /// A smoothed-pinball objective at quantile level `tau` with smoothing
    /// half-width `gamma`.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] unless `τ ∈ (0, 1)` and γ is finite
    /// and positive.
    pub fn new(tau: f64, gamma: f64) -> Result<Self> {
        if !tau.is_finite() || tau <= 0.0 || tau >= 1.0 {
            return Err(FmError::InvalidConfig {
                name: "tau",
                reason: format!("{tau} must be in (0, 1)"),
            });
        }
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "gamma",
                reason: format!("{gamma} must be finite and > 0"),
            });
        }
        let slope = (2.0 * tau - 1.0).abs();
        Ok(QuantileObjective {
            tau,
            gamma,
            rho_max: slope + (1.0 + gamma * gamma).sqrt() - gamma,
            c1: slope + 1.0 / (1.0 + gamma * gamma).sqrt(),
            c2: 1.0 / gamma,
        })
    }

    /// The configured quantile level τ.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The configured smoothing half-width γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The scalar loss's value and first two derivatives at residual `u`.
    #[must_use]
    pub fn derivs(&self, u: f64) -> [f64; 3] {
        smoothed_pinball_derivs(u, self.tau, self.gamma)
    }

    /// Data-independent per-tuple truncation-remainder bound: the
    /// `(2τ−1)·u` term is linear (zero remainder), so the bound is the
    /// median loss's `O(1/γ²)` constant unchanged.
    #[must_use]
    pub fn remainder_bound(&self) -> f64 {
        pseudo_huber_third_derivative_bound(self.gamma) / 6.0
    }

    /// Assembles the noise-free truncated objective.
    #[must_use]
    pub fn assemble_objective(&self, data: &Dataset) -> QuadraticForm {
        self.assemble(data)
    }
}

impl PolynomialObjective for QuantileObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        accumulate_residual_tuple(self.derivs(y), x, q);
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        accumulate_residual_batch(|y| self.derivs(y), xs, ys, d, q);
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        accumulate_residual_cols(|y| self.derivs(y), xt, ys, lo, hi, q);
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        residual_sensitivity(d, bound, self.rho_max, self.c1, self.c2)
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        residual_sensitivity_l2(self.rho_max, self.c1, self.c2)
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_linear()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_linear(xs, ys, d)
    }
}

impl RegressionObjective for QuantileObjective {
    type Model = LinearModel;
}

// ------------------------------------------------------------------- huber

/// The Huber objective in Algorithm-1 form: `ρ_δ(u) = u²/2` inside
/// `|u| ≤ δ`, linear with slope δ outside, Taylor-truncated per the module
/// docs. At `δ ≥ 1` every in-contract label sits in the quadratic region
/// and the surrogate coincides with (half) least squares; robustness comes
/// from `δ < 1`, where extreme labels get the bounded linear treatment.
#[derive(Debug, Clone, Copy)]
pub struct HuberObjective {
    delta: f64,
    /// `max ρ` on the label range: `½` for δ ≥ 1, else `δ(1 − δ/2)`.
    rho_max: f64,
    /// `max |ρ'|` on the label range: `min(1, δ)`.
    c1: f64,
}

impl HuberObjective {
    /// A Huber objective with threshold `delta`.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a non-finite or non-positive δ.
    pub fn new(delta: f64) -> Result<Self> {
        if !delta.is_finite() || delta <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "delta",
                reason: format!("{delta} must be finite and > 0"),
            });
        }
        Ok(HuberObjective {
            delta,
            rho_max: if delta >= 1.0 {
                0.5
            } else {
                delta * (1.0 - 0.5 * delta)
            },
            c1: delta.min(1.0),
        })
    }

    /// The configured threshold δ.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The scalar loss's value and first two derivatives at residual `u`.
    #[must_use]
    pub fn derivs(&self, u: f64) -> [f64; 3] {
        huber_derivs(u, self.delta)
    }

    /// Assembles the noise-free truncated objective.
    #[must_use]
    pub fn assemble_objective(&self, data: &Dataset) -> QuadraticForm {
        self.assemble(data)
    }
}

impl PolynomialObjective for HuberObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        accumulate_residual_tuple(self.derivs(y), x, q);
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        accumulate_residual_batch(|y| self.derivs(y), xs, ys, d, q);
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        accumulate_residual_cols(|y| self.derivs(y), xt, ys, lo, hi, q);
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        residual_sensitivity(d, bound, self.rho_max, self.c1, 1.0)
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        residual_sensitivity_l2(self.rho_max, self.c1, 1.0)
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_linear()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_linear(xs, ys, d)
    }
}

impl RegressionObjective for HuberObjective {
    type Model = LinearModel;
}

// -------------------------------------------------- estimator front-ends

/// The median-specific builder knob: the smoothing half-width.
#[derive(Debug, Clone, Copy)]
pub struct MedianSettings {
    smoothing: f64,
}

impl Default for MedianSettings {
    fn default() -> Self {
        MedianSettings {
            smoothing: DEFAULT_SMOOTHING,
        }
    }
}

/// Builder for [`DpMedianRegression`]: the shared [`EstimatorBuilder`]
/// knobs plus the smoothing half-width.
pub type DpMedianRegressionBuilder = EstimatorBuilder<MedianSettings>;

impl DpMedianRegressionBuilder {
    /// Sets the pinball smoothing half-width γ (default
    /// [`DEFAULT_SMOOTHING`]). Smaller γ tracks the true median loss more
    /// closely but scales the curvature term of Δ as `1/γ`.
    #[must_use]
    pub fn smoothing(mut self, gamma: f64) -> Self {
        self.family.smoothing = gamma;
        self
    }

    /// Finalises the configuration.
    #[must_use]
    pub fn build(self) -> DpMedianRegression {
        DpMedianRegression {
            config: self.config,
            settings: self.family,
        }
    }
}

/// ε-differentially private **median regression** via the Functional
/// Mechanism — a thin wrapper that builds a [`MedianObjective`] from its
/// configured smoothing and delegates the entire fit pipeline to the
/// generic [`FmEstimator`] core. (A two-field struct rather than a type
/// alias only because γ is validated at objective construction, and that
/// error is reported at `fit` time.)
///
/// ```
/// use fm_core::robust::DpMedianRegression;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(21);
/// let data = fm_data::synth::linear_dataset(&mut rng, 20_000, 3, 0.1);
/// let model = DpMedianRegression::builder()
///     .epsilon(1.0)
///     .build()
///     .fit(&data, &mut rng)
///     .unwrap();
/// assert_eq!(model.dim(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DpMedianRegression {
    config: FitConfig,
    settings: MedianSettings,
}

impl DpMedianRegression {
    /// Starts a builder with defaults (ε = 1, paper sensitivity,
    /// regularize-then-trim, no intercept, γ = [`DEFAULT_SMOOTHING`]).
    #[must_use]
    pub fn builder() -> DpMedianRegressionBuilder {
        DpMedianRegressionBuilder::default()
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// The configured smoothing half-width.
    #[must_use]
    pub fn smoothing(&self) -> f64 {
        self.settings.smoothing
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// Instantiates the generic core for the configured smoothing.
    fn estimator(&self) -> Result<FmEstimator<MedianObjective>> {
        Ok(FmEstimator::new(
            MedianObjective::new(self.settings.smoothing)?,
            self.config,
        ))
    }

    /// Fits an ε-DP median-regression model on `data` (`‖x‖₂ ≤ 1`,
    /// `y ∈ [−1, 1]`).
    ///
    /// # Errors
    /// As [`FmEstimator::fit`], plus [`FmError::InvalidConfig`] for a bad γ.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LinearModel> {
        self.estimator()?.fit(data, rng)
    }

    /// Fits an ε-DP median-regression model from a streaming
    /// [`fm_data::stream::RowSource`] — see
    /// [`FmEstimator::fit_stream`]: bounded memory, bit-identical to
    /// [`DpMedianRegression::fit`] on the materialized data at the same
    /// seed.
    ///
    /// # Errors
    /// As [`DpMedianRegression::fit`], plus transport errors from the
    /// source.
    pub fn fit_stream(
        &self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<LinearModel> {
        self.estimator()?.fit_stream(source, rng)
    }

    /// Fits the *non-private* minimiser of the truncated objective (the
    /// median analogue of the `Truncated` baseline) — isolates surrogate
    /// bias from privacy noise.
    ///
    /// # Errors
    /// [`FmError::Data`] / [`FmError::Optim`] on contract violation or a
    /// degenerate surrogate Hessian.
    pub fn fit_truncated_without_privacy(&self, data: &Dataset) -> Result<LinearModel> {
        self.estimator()?.fit_without_privacy(data)
    }

    /// Fits the *exact* (non-truncated, non-private) smoothed-median loss
    /// `Σᵢ ρ_γ(yᵢ − xᵢᵀω)` by gradient descent — the reference the
    /// robustness tests compare the surrogate against.
    ///
    /// # Errors
    /// [`FmError::Data`] on contract violation, [`FmError::Optim`] on
    /// solver breakdown.
    pub fn fit_exact_without_privacy(&self, data: &Dataset) -> Result<LinearModel> {
        let objective = MedianObjective::new(self.settings.smoothing)?;
        fit_exact_residual(data, self.config.fit_intercept, |u| objective.derivs(u))
    }
}

impl DpEstimator for DpMedianRegression {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<LinearModel> {
        DpMedianRegression::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn fm_data::stream::RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<LinearModel> {
        DpMedianRegression::fit_stream(self, source, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        ModelKind::Linear
    }
}

/// The quantile-specific builder knobs: the level τ and the smoothing
/// half-width.
#[derive(Debug, Clone, Copy)]
pub struct QuantileSettings {
    tau: f64,
    smoothing: f64,
}

impl Default for QuantileSettings {
    fn default() -> Self {
        QuantileSettings {
            tau: 0.5,
            smoothing: DEFAULT_SMOOTHING,
        }
    }
}

/// Builder for [`DpQuantileRegression`]: the shared [`EstimatorBuilder`]
/// knobs plus τ and the smoothing half-width.
pub type DpQuantileRegressionBuilder = EstimatorBuilder<QuantileSettings>;

impl DpQuantileRegressionBuilder {
    /// Sets the quantile level τ ∈ (0, 1) (default ½, the median).
    #[must_use]
    pub fn tau(mut self, tau: f64) -> Self {
        self.family.tau = tau;
        self
    }

    /// Sets the pinball smoothing half-width γ (default
    /// [`DEFAULT_SMOOTHING`]); same trade-off as for the median.
    #[must_use]
    pub fn smoothing(mut self, gamma: f64) -> Self {
        self.family.smoothing = gamma;
        self
    }

    /// Finalises the configuration.
    #[must_use]
    pub fn build(self) -> DpQuantileRegression {
        DpQuantileRegression {
            config: self.config,
            settings: self.family,
        }
    }
}

/// ε-differentially private **quantile regression** at general τ via the
/// Functional Mechanism — the τ-generalization of [`DpMedianRegression`],
/// over a [`QuantileObjective`]. At τ = ½ it releases exactly what the
/// median estimator releases (same loss, same sensitivity, same noise
/// stream).
///
/// ```
/// use fm_core::robust::DpQuantileRegression;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(23);
/// let data = fm_data::synth::linear_dataset(&mut rng, 20_000, 2, 0.1);
/// let model = DpQuantileRegression::builder()
///     .epsilon(1.0)
///     .tau(0.9)
///     .build()
///     .fit(&data, &mut rng)
///     .unwrap();
/// assert_eq!(model.dim(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DpQuantileRegression {
    config: FitConfig,
    settings: QuantileSettings,
}

impl DpQuantileRegression {
    /// Starts a builder with defaults (ε = 1, paper sensitivity,
    /// regularize-then-trim, no intercept, τ = ½,
    /// γ = [`DEFAULT_SMOOTHING`]).
    #[must_use]
    pub fn builder() -> DpQuantileRegressionBuilder {
        DpQuantileRegressionBuilder::default()
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// The configured quantile level.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.settings.tau
    }

    /// The configured smoothing half-width.
    #[must_use]
    pub fn smoothing(&self) -> f64 {
        self.settings.smoothing
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// Instantiates the generic core for the configured τ and smoothing.
    fn estimator(&self) -> Result<FmEstimator<QuantileObjective>> {
        Ok(FmEstimator::new(
            QuantileObjective::new(self.settings.tau, self.settings.smoothing)?,
            self.config,
        ))
    }

    /// Fits an ε-DP quantile-regression model on `data` (`‖x‖₂ ≤ 1`,
    /// `y ∈ [−1, 1]`).
    ///
    /// # Errors
    /// As [`FmEstimator::fit`], plus [`FmError::InvalidConfig`] for a bad
    /// τ or γ.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LinearModel> {
        self.estimator()?.fit(data, rng)
    }

    /// Fits an ε-DP quantile-regression model from a streaming
    /// [`fm_data::stream::RowSource`] — see [`FmEstimator::fit_stream`].
    ///
    /// # Errors
    /// As [`DpQuantileRegression::fit`], plus transport errors from the
    /// source.
    pub fn fit_stream(
        &self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<LinearModel> {
        self.estimator()?.fit_stream(source, rng)
    }

    /// Fits the *non-private* minimiser of the truncated objective.
    ///
    /// # Errors
    /// [`FmError::Data`] / [`FmError::Optim`] on contract violation or a
    /// degenerate surrogate Hessian.
    pub fn fit_truncated_without_privacy(&self, data: &Dataset) -> Result<LinearModel> {
        self.estimator()?.fit_without_privacy(data)
    }

    /// Fits the *exact* (non-truncated, non-private) smoothed-pinball loss
    /// by gradient descent — the reference the asymmetry tests compare
    /// the surrogate against.
    ///
    /// # Errors
    /// [`FmError::Data`] on contract violation, [`FmError::Optim`] on
    /// solver breakdown.
    pub fn fit_exact_without_privacy(&self, data: &Dataset) -> Result<LinearModel> {
        let objective = QuantileObjective::new(self.settings.tau, self.settings.smoothing)?;
        fit_exact_residual(data, self.config.fit_intercept, |u| objective.derivs(u))
    }
}

impl DpEstimator for DpQuantileRegression {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<LinearModel> {
        DpQuantileRegression::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn fm_data::stream::RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<LinearModel> {
        DpQuantileRegression::fit_stream(self, source, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        ModelKind::Linear
    }
}

/// The Huber-specific builder knob: the threshold δ.
#[derive(Debug, Clone, Copy)]
pub struct HuberSettings {
    threshold: f64,
}

impl Default for HuberSettings {
    fn default() -> Self {
        HuberSettings {
            threshold: DEFAULT_HUBER_DELTA,
        }
    }
}

/// Builder for [`DpHuberRegression`]: the shared [`EstimatorBuilder`]
/// knobs plus the Huber threshold.
pub type DpHuberRegressionBuilder = EstimatorBuilder<HuberSettings>;

impl DpHuberRegressionBuilder {
    /// Sets the Huber threshold δ (default [`DEFAULT_HUBER_DELTA`]).
    /// Residuals beyond δ get linear, bounded-influence treatment; δ ≥ 1
    /// degenerates to (half) least squares on the normalized label range.
    #[must_use]
    pub fn threshold(mut self, delta: f64) -> Self {
        self.family.threshold = delta;
        self
    }

    /// Finalises the configuration.
    #[must_use]
    pub fn build(self) -> DpHuberRegression {
        DpHuberRegression {
            config: self.config,
            settings: self.family,
        }
    }
}

/// ε-differentially private **Huber regression** via the Functional
/// Mechanism — the same thin-wrapper shape as [`DpMedianRegression`], over
/// a [`HuberObjective`].
///
/// ```
/// use fm_core::robust::DpHuberRegression;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(22);
/// let data = fm_data::synth::linear_dataset(&mut rng, 20_000, 2, 0.1);
/// let model = DpHuberRegression::builder()
///     .epsilon(1.0)
///     .threshold(0.4)
///     .build()
///     .fit(&data, &mut rng)
///     .unwrap();
/// assert_eq!(model.dim(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DpHuberRegression {
    config: FitConfig,
    settings: HuberSettings,
}

impl DpHuberRegression {
    /// Starts a builder with defaults (ε = 1, paper sensitivity,
    /// regularize-then-trim, no intercept, δ = [`DEFAULT_HUBER_DELTA`]).
    #[must_use]
    pub fn builder() -> DpHuberRegressionBuilder {
        DpHuberRegressionBuilder::default()
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// The configured Huber threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.settings.threshold
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// Instantiates the generic core for the configured threshold.
    fn estimator(&self) -> Result<FmEstimator<HuberObjective>> {
        Ok(FmEstimator::new(
            HuberObjective::new(self.settings.threshold)?,
            self.config,
        ))
    }

    /// Fits an ε-DP Huber-regression model on `data` (`‖x‖₂ ≤ 1`,
    /// `y ∈ [−1, 1]`).
    ///
    /// # Errors
    /// As [`FmEstimator::fit`], plus [`FmError::InvalidConfig`] for a bad δ.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LinearModel> {
        self.estimator()?.fit(data, rng)
    }

    /// Fits an ε-DP Huber-regression model from a streaming
    /// [`fm_data::stream::RowSource`] — see [`FmEstimator::fit_stream`].
    ///
    /// # Errors
    /// As [`DpHuberRegression::fit`], plus transport errors from the
    /// source.
    pub fn fit_stream(
        &self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<LinearModel> {
        self.estimator()?.fit_stream(source, rng)
    }

    /// Fits the *non-private* minimiser of the truncated objective.
    ///
    /// # Errors
    /// [`FmError::Data`] / [`FmError::Optim`] on contract violation or a
    /// degenerate surrogate Hessian.
    pub fn fit_truncated_without_privacy(&self, data: &Dataset) -> Result<LinearModel> {
        self.estimator()?.fit_without_privacy(data)
    }

    /// Fits the *exact* (non-truncated, non-private) Huber loss by
    /// gradient descent.
    ///
    /// # Errors
    /// [`FmError::Data`] on contract violation, [`FmError::Optim`] on
    /// solver breakdown.
    pub fn fit_exact_without_privacy(&self, data: &Dataset) -> Result<LinearModel> {
        let objective = HuberObjective::new(self.settings.threshold)?;
        fit_exact_residual(data, self.config.fit_intercept, |u| objective.derivs(u))
    }
}

impl DpEstimator for DpHuberRegression {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<LinearModel> {
        DpHuberRegression::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn fm_data::stream::RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<LinearModel> {
        DpHuberRegression::fit_stream(self, source, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        ModelKind::Linear
    }
}

/// The shared `fit_exact_*` pipeline: validate the contract, honour the
/// footnote-2 intercept augmentation exactly as the private fit path does,
/// minimise the exact residual loss, and wrap/split the weights — so the
/// non-private reference is comparable to `fit()` under every
/// [`FitConfig`], intercept included.
fn fit_exact_residual(
    data: &Dataset,
    fit_intercept: bool,
    derivs: impl Fn(f64) -> [f64; 3] + Copy,
) -> Result<LinearModel> {
    data.check_normalized_linear().map_err(FmError::Data)?;
    let aug;
    let work: &Dataset = if fit_intercept {
        aug = data.augment_for_intercept();
        &aug
    } else {
        data
    };
    let omega_raw = minimize_residual_loss(work, derivs)?;
    if fit_intercept {
        let (omega, b) = crate::model::split_augmented_weights(omega_raw);
        Ok(LinearModel::with_intercept(omega, b, None))
    } else {
        Ok(LinearModel::new(omega_raw, None))
    }
}

/// Minimises the exact residual loss `Σᵢ ρ(yᵢ − xᵢᵀω)` by bounded gradient
/// descent — the non-quadratic solve backing the `fit_exact_*` reference
/// fits (and a worked example of `fm_optim` beyond quadratics).
fn minimize_residual_loss(data: &Dataset, derivs: impl Fn(f64) -> [f64; 3]) -> Result<Vec<f64>> {
    struct Loss<'a, F> {
        data: &'a Dataset,
        derivs: F,
    }
    impl<F: Fn(f64) -> [f64; 3]> fm_optim::Objective for Loss<'_, F> {
        fn dim(&self) -> usize {
            self.data.d()
        }
        fn value(&self, omega: &[f64]) -> f64 {
            self.data
                .tuples()
                .map(|(x, y)| (self.derivs)(y - fm_linalg::vecops::dot(x, omega))[0])
                .sum()
        }
        fn gradient(&self, omega: &[f64]) -> Vec<f64> {
            let mut g = vec![0.0; self.data.d()];
            for (x, y) in self.data.tuples() {
                let slope = (self.derivs)(y - fm_linalg::vecops::dot(x, omega))[1];
                fm_linalg::vecops::axpy(-slope, x, &mut g);
            }
            g
        }
    }
    let loss = Loss { data, derivs };
    let gd = fm_optim::gd::GradientDescent::default();
    let result = gd
        .minimize_within(&loss, &vec![0.0; data.d()], 1e6)
        .map_err(FmError::from)?;
    Ok(result.omega)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::DpLinearRegression;
    use fm_linalg::vecops;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(777)
    }

    /// A linear dataset with a fraction of labels replaced by one-sided
    /// outliers at the label-range ceiling.
    fn outlier_data(rng: &mut impl rand::Rng, n: usize, w: &[f64], frac: f64) -> Dataset {
        let base = fm_data::synth::linear_dataset_with_weights(rng, n, w, 0.05);
        fm_data::synth::inject_label_outliers(rng, &base, frac, 1.0)
    }

    #[test]
    fn sensitivity_formulas() {
        // Median: Δ = 2(ρ_max + c₁·d + d²/(2γ)) with c₁ = 1/√(1+γ²) and
        // ρ_max = √(1+γ²) − γ — the constant term is part of the release.
        let m = MedianObjective::new(0.25).unwrap();
        let c1 = 1.0 / 1.0625_f64.sqrt();
        let rho_max = 1.0625_f64.sqrt() - 0.25;
        for d in [1usize, 3, 13] {
            let expect = 2.0 * (rho_max + c1 * d as f64 + (d * d) as f64 / 0.5);
            assert!((m.sensitivity(d, SensitivityBound::Paper) - expect).abs() < 1e-12);
            assert!(m.sensitivity(d, SensitivityBound::Tight) <= expect);
            if d > 1 {
                assert!(m.sensitivity(d, SensitivityBound::Tight) < expect);
            }
        }
        // Huber: Δ = 2(ρ_max + min(1,δ)·d + d²/2) with ρ_max = δ(1−δ/2)
        // below δ = 1 and ½ beyond (the quadratic cap on |y| ≤ 1).
        let h = HuberObjective::new(0.5).unwrap();
        assert_eq!(
            h.sensitivity(2, SensitivityBound::Paper),
            2.0 * (0.375 + 1.0 + 2.0)
        );
        let wide = HuberObjective::new(3.0).unwrap();
        assert_eq!(
            wide.sensitivity(2, SensitivityBound::Paper),
            2.0 * (0.5 + 2.0 + 2.0)
        );
        // L2 sensitivities are dimension-independent.
        assert_eq!(m.sensitivity_l2(2), m.sensitivity_l2(14));
        assert_eq!(h.sensitivity_l2(2), h.sensitivity_l2(14));
    }

    #[test]
    fn lemma1_contract_per_tuple_l1_below_half_delta() {
        let mut r = rng();
        let median = MedianObjective::new(0.25).unwrap();
        let huber = HuberObjective::new(0.5).unwrap();
        for d in [1usize, 3, 7, 13] {
            for _ in 0..200 {
                let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                let y = rand::Rng::gen_range(&mut r, -1.0..=1.0);
                for (name, obj) in [
                    ("median", &median as &dyn PolynomialObjective),
                    ("huber", &huber as &dyn PolynomialObjective),
                ] {
                    let mut q = QuadraticForm::zero(d);
                    obj.accumulate_tuple(&x, y, &mut q);
                    // Every released coefficient counts, β included: the
                    // mechanism perturbs the degree-0 term at the same
                    // scale as the rest.
                    let l1 = q.coefficient_l1_norm_with_constant();
                    let delta = obj.sensitivity(d, SensitivityBound::Paper);
                    let tight = obj.sensitivity(d, SensitivityBound::Tight);
                    assert!(l1 <= delta / 2.0 + 1e-9, "{name} d={d}: {l1} > Δ/2");
                    assert!(l1 <= tight / 2.0 + 1e-9, "{name} d={d}: {l1} (tight)");
                    // L2 contract, constant included.
                    let l2 = (q.beta() * q.beta()
                        + vecops::dot(q.alpha(), q.alpha())
                        + q.m().frobenius_norm().powi(2))
                    .sqrt();
                    assert!(l2 <= obj.sensitivity_l2(d) / 2.0 + 1e-9, "{name} d={d}: L2");
                }
            }
        }
    }

    #[test]
    fn batch_kernels_match_per_tuple_accumulation() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 5, 0.1);
        for obj in [
            &MedianObjective::new(0.25).unwrap() as &dyn PolynomialObjective,
            &HuberObjective::new(0.5).unwrap(),
        ] {
            let batched = crate::assembly::assemble(obj, &data);
            let reference = crate::assembly::assemble_per_tuple(obj, &data);
            assert!((batched.beta() - reference.beta()).abs() < 1e-10);
            assert!(vecops::approx_eq(batched.alpha(), reference.alpha(), 1e-10));
            assert!(batched.m().approx_eq(reference.m(), 1e-10));
        }
    }

    #[test]
    fn truncated_surrogate_matches_loss_at_origin() {
        // At ω = 0 the surrogate equals Σ ρ(yᵢ) exactly (zero-order term).
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 300, 3, 0.1);
        let m = MedianObjective::new(0.25).unwrap();
        let q = m.assemble_objective(&data);
        let direct: f64 = data.y().iter().map(|&y| m.derivs(y)[0]).sum();
        assert!((q.eval(&[0.0, 0.0, 0.0]) - direct).abs() < 1e-9);
    }

    #[test]
    fn quantile_at_half_is_the_median_objective_bitwise() {
        // τ = ½: same loss, same bounds, same coefficients — the released
        // noise stream cannot tell the two estimators apart.
        let q = QuantileObjective::new(0.5, 0.25).unwrap();
        let m = MedianObjective::new(0.25).unwrap();
        for d in [1usize, 4] {
            assert_eq!(
                q.sensitivity(d, SensitivityBound::Paper),
                m.sensitivity(d, SensitivityBound::Paper)
            );
            assert_eq!(q.sensitivity_l2(d), m.sensitivity_l2(d));
        }
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 3, 0.1);
        let qq = q.assemble_objective(&data);
        let mq = m.assemble_objective(&data);
        assert_eq!(qq, mq);
        // Full estimator parity under the same seed.
        let mut r1 = rand::rngs::StdRng::seed_from_u64(91);
        let quant = DpQuantileRegression::builder()
            .epsilon(2.0)
            .build()
            .fit(&data, &mut r1)
            .unwrap();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(91);
        let med = DpMedianRegression::builder()
            .epsilon(2.0)
            .build()
            .fit(&data, &mut r2)
            .unwrap();
        assert_eq!(quant, med);
    }

    #[test]
    fn quantile_sensitivity_is_asymmetric_in_tau() {
        // Moving τ off ½ raises both the value and slope bounds — more
        // asymmetric pull, more noise — symmetrically in τ ↔ 1−τ.
        let mid = QuantileObjective::new(0.5, 0.25).unwrap();
        let hi = QuantileObjective::new(0.9, 0.25).unwrap();
        let lo = QuantileObjective::new(0.1, 0.25).unwrap();
        for d in [1usize, 5] {
            let s_mid = mid.sensitivity(d, SensitivityBound::Paper);
            let s_hi = hi.sensitivity(d, SensitivityBound::Paper);
            assert!(s_hi > s_mid, "τ=0.9 must out-noise τ=0.5");
            assert_eq!(s_hi, lo.sensitivity(d, SensitivityBound::Paper));
        }
        // Closed form: ρ_max and c₁ gain exactly |2τ−1|.
        let gamma: f64 = 0.25;
        let expect = 2.0
            * ((0.8 + (1.0 + gamma * gamma).sqrt() - gamma)
                + (0.8 + 1.0 / (1.0 + gamma * gamma).sqrt()) * 3.0
                + 0.5 * (1.0 / gamma) * 9.0);
        assert!((hi.sensitivity(3, SensitivityBound::Paper) - expect).abs() < 1e-12);
    }

    #[test]
    fn exact_quantile_fit_recovers_the_noise_quantile() {
        // y = xᵀw + e with e ~ U[−0.2, 0.2]: with an intercept, the exact
        // τ-pinball minimiser's offset estimates the τ-quantile of e,
        // −0.2 + 0.4τ. This is the asymmetry working end-to-end: τ = 0.75
        // must sit above τ = 0.25 by ≈ 0.2.
        let w = [0.2];
        let n = 6_000;
        let x = fm_linalg::Matrix::from_fn(n, 1, |i, _| ((i % 100) as f64 / 100.0 - 0.5) / 2.0);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let e = ((i * 37) % 101) as f64 / 100.0 * 0.4 - 0.2; // deterministic ~uniform
                x[(i, 0)] * w[0] + e
            })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let fit_at = |tau: f64| {
            DpQuantileRegression::builder()
                .tau(tau)
                .smoothing(0.02)
                .fit_intercept(true)
                .build()
                .fit_exact_without_privacy(&data)
                .unwrap()
        };
        let hi = fit_at(0.75);
        let lo = fit_at(0.25);
        assert!(
            (hi.intercept() - 0.1).abs() < 0.04,
            "τ=0.75 intercept {} should be ≈ +0.1",
            hi.intercept()
        );
        assert!(
            (lo.intercept() + 0.1).abs() < 0.04,
            "τ=0.25 intercept {} should be ≈ −0.1",
            lo.intercept()
        );
    }

    #[test]
    fn quantile_batch_kernels_and_private_fits_work() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 4, 0.1);
        let obj = QuantileObjective::new(0.8, 0.25).unwrap();
        let batched = crate::assembly::assemble(&obj, &data);
        let reference = crate::assembly::assemble_per_tuple(&obj, &data);
        assert!((batched.beta() - reference.beta()).abs() < 1e-10);
        assert!(vecops::approx_eq(batched.alpha(), reference.alpha(), 1e-10));
        assert!(batched.m().approx_eq(reference.m(), 1e-10));

        let big = fm_data::synth::linear_dataset(&mut r, 20_000, 2, 0.1);
        let model = DpQuantileRegression::builder()
            .epsilon(2.0)
            .tau(0.8)
            .build()
            .fit(&big, &mut r)
            .unwrap();
        assert_eq!(model.dim(), 2);
        assert_eq!(model.epsilon(), Some(2.0));

        // Streaming parity.
        let mut r1 = rand::rngs::StdRng::seed_from_u64(55);
        let in_memory = DpQuantileRegression::builder()
            .tau(0.8)
            .build()
            .fit(&big, &mut r1)
            .unwrap();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(55);
        let streamed = DpQuantileRegression::builder()
            .tau(0.8)
            .build()
            .fit_stream(&mut fm_data::stream::InMemorySource::new(&big), &mut r2)
            .unwrap();
        assert_eq!(in_memory, streamed);
    }

    #[test]
    fn quantile_bad_parameters_rejected() {
        for tau in [0.0, 1.0, -0.2, f64::NAN] {
            assert!(QuantileObjective::new(tau, 0.25).is_err(), "τ = {tau}");
        }
        for gamma in [0.0, -1.0, f64::INFINITY] {
            assert!(QuantileObjective::new(0.3, gamma).is_err(), "γ = {gamma}");
        }
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.1);
        assert!(matches!(
            DpQuantileRegression::builder()
                .tau(1.5)
                .build()
                .fit(&data, &mut r),
            Err(FmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn exact_median_fit_tracks_conditional_median_not_mean() {
        // One-sided outliers shift the conditional mean but barely move
        // the median: the exact smoothed-median minimiser must stay close
        // to the true weights while OLS drifts.
        let mut r = rng();
        let w = vec![0.3, -0.2];
        let data = outlier_data(&mut r, 30_000, &w, 0.25);
        let median = DpMedianRegression::builder()
            .smoothing(0.1)
            .build()
            .fit_exact_without_privacy(&data)
            .unwrap();
        let ols = DpLinearRegression::builder()
            .build()
            .fit_without_privacy(&data)
            .unwrap();
        let em = vecops::dist2(median.weights(), &w);
        let eo = vecops::dist2(ols.weights(), &w);
        assert!(em < eo, "median err {em} should beat OLS err {eo}");
    }

    #[test]
    fn exact_fits_honour_the_intercept_config() {
        // y = xᵀw + 0.2: the exact non-private reference must recover the
        // offset when fit_intercept is on, exactly as the private path
        // does — otherwise "surrogate bias" comparisons absorb the offset.
        let w = [0.2];
        let n = 4_000;
        let x = fm_linalg::Matrix::from_fn(n, 1, |i, _| ((i % 100) as f64 / 100.0 - 0.5) / 2.0);
        let y: Vec<f64> = (0..n).map(|i| x[(i, 0)] * w[0] + 0.2).collect();
        let data = Dataset::new(x, y).unwrap();
        for model in [
            DpMedianRegression::builder()
                .fit_intercept(true)
                .build()
                .fit_exact_without_privacy(&data)
                .unwrap(),
            DpHuberRegression::builder()
                .fit_intercept(true)
                .build()
                .fit_exact_without_privacy(&data)
                .unwrap(),
        ] {
            assert!(
                (model.intercept() - 0.2).abs() < 1e-2,
                "b = {}",
                model.intercept()
            );
            assert!((model.weights()[0] - 0.2).abs() < 1e-2);
        }
    }

    #[test]
    fn truncated_fits_recover_direction_on_clean_data() {
        let mut r = rng();
        let w = vec![0.4, -0.3];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 40_000, &w, 0.05);
        for model in [
            DpMedianRegression::builder()
                .build()
                .fit_truncated_without_privacy(&data)
                .unwrap(),
            DpHuberRegression::builder()
                .build()
                .fit_truncated_without_privacy(&data)
                .unwrap(),
        ] {
            let cos = vecops::dot(model.weights(), &w)
                / (vecops::norm2(model.weights()) * vecops::norm2(&w));
            assert!(cos > 0.95, "cosine {cos}, weights {:?}", model.weights());
        }
    }

    #[test]
    fn private_fits_run_and_record_metadata() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 30_000, 3, 0.1);
        let m = DpMedianRegression::builder()
            .epsilon(2.0)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.epsilon(), Some(2.0));
        let h = DpHuberRegression::builder()
            .epsilon(2.0)
            .fit_intercept(true)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert_eq!(h.dim(), 3);
        assert!(h.intercept().is_finite());
    }

    #[test]
    fn dyn_estimator_surface() {
        let med = DpMedianRegression::builder().epsilon(0.7).build();
        let hub = DpHuberRegression::builder().epsilon(0.9).build();
        let lineup: Vec<&dyn DpEstimator<Model = LinearModel>> = vec![&med, &hub];
        for est in &lineup {
            assert_eq!(est.task(), ModelKind::Linear);
            assert_eq!(est.delta(), None);
        }
        assert_eq!(lineup[0].epsilon(), Some(0.7));
        assert_eq!(lineup[1].epsilon(), Some(0.9));
    }

    #[test]
    fn bad_parameters_rejected_at_fit() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.1);
        for gamma in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                DpMedianRegression::builder()
                    .smoothing(gamma)
                    .build()
                    .fit(&data, &mut r),
                Err(FmError::InvalidConfig { .. })
            ));
        }
        for delta in [0.0, -0.5, f64::INFINITY] {
            assert!(matches!(
                DpHuberRegression::builder()
                    .threshold(delta)
                    .build()
                    .fit(&data, &mut r),
                Err(FmError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn noise_independent_of_cardinality() {
        let mut r = rng();
        let small = fm_data::synth::linear_dataset(&mut r, 50, 4, 0.1);
        let large = fm_data::synth::linear_dataset(&mut r, 20_000, 4, 0.1);
        let fm = crate::mechanism::FunctionalMechanism::new(1.0).unwrap();
        let obj = MedianObjective::new(0.25).unwrap();
        let a = fm.perturb(&small, &obj, &mut r).unwrap();
        let b = fm.perturb(&large, &obj, &mut r).unwrap();
        assert_eq!(a.sensitivity(), b.sensitivity());
        assert_eq!(a.noise_scale(), b.noise_scale());
    }

    #[test]
    fn sharper_smoothing_means_more_noise() {
        let sharp = MedianObjective::new(0.05).unwrap();
        let smooth = MedianObjective::new(0.5).unwrap();
        assert!(
            sharp.sensitivity(5, SensitivityBound::Paper)
                > smooth.sensitivity(5, SensitivityBound::Paper)
        );
    }
}
