use std::fmt;

/// Errors produced by the functional mechanism.
#[derive(Debug)]
pub enum FmError {
    /// The input dataset violates the normalized-domain contract the
    /// sensitivity analysis requires (`‖x‖₂ ≤ 1`, labels in range).
    Data(fm_data::DataError),
    /// A privacy-parameter or budget failure.
    Privacy(fm_privacy::PrivacyError),
    /// Optimisation failure (unbounded noisy objective that post-processing
    /// was disabled from fixing, or solver breakdown).
    Optim(fm_optim::OptimError),
    /// Linear-algebra failure (eigendecomposition, solves).
    Linalg(fm_linalg::LinalgError),
    /// The Lemma-5 resample loop exhausted its attempt budget without
    /// producing a bounded objective.
    ResampleExhausted {
        /// Attempts made.
        attempts: usize,
    },
    /// Spectral trimming removed every eigenvalue — the noisy Hessian had no
    /// positive spectrum at all, so no informative model exists at this ε.
    EmptySpectrum,
    /// Invalid configuration (ε ≤ 0, zero attempts, …).
    InvalidConfig {
        /// Which parameter.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A streaming-fit checkpoint could not be produced or restored
    /// (corrupt/truncated file, version mismatch, structural violation).
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for FmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmError::Data(e) => write!(f, "data error: {e}"),
            FmError::Privacy(e) => write!(f, "privacy error: {e}"),
            FmError::Optim(e) => write!(f, "optimisation error: {e}"),
            FmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            FmError::ResampleExhausted { attempts } => {
                write!(
                    f,
                    "noisy objective unbounded after {attempts} resampling attempts"
                )
            }
            FmError::EmptySpectrum => {
                write!(
                    f,
                    "spectral trimming removed all eigenvalues; ε is too small for this data"
                )
            }
            FmError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            FmError::Checkpoint { reason } => {
                write!(f, "checkpoint error: {reason}")
            }
        }
    }
}

impl std::error::Error for FmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FmError::Data(e) => Some(e),
            FmError::Privacy(e) => Some(e),
            FmError::Optim(e) => Some(e),
            FmError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fm_data::DataError> for FmError {
    fn from(e: fm_data::DataError) -> Self {
        FmError::Data(e)
    }
}

impl From<fm_privacy::PrivacyError> for FmError {
    fn from(e: fm_privacy::PrivacyError) -> Self {
        FmError::Privacy(e)
    }
}

impl From<fm_optim::OptimError> for FmError {
    fn from(e: fm_optim::OptimError) -> Self {
        FmError::Optim(e)
    }
}

impl From<fm_linalg::LinalgError> for FmError {
    fn from(e: fm_linalg::LinalgError) -> Self {
        FmError::Linalg(e)
    }
}
