//! Section 4.2: ε-differentially private **linear regression**.
//!
//! The cost `f(t_i, ω) = (y_i − x_iᵀω)²` is already a degree-2 polynomial
//! in ω:
//!
//! ```text
//! f_D(ω) = Σ y_i²  −  Σ_j (2 Σ_i y_i x_ij) ω_j  +  Σ_{j,l} (Σ_i x_ij x_il) ω_j ω_l
//!        =  β      +           αᵀω            +        ωᵀMω
//! ```
//!
//! with `M = Σ x_i x_iᵀ`, `α = −2Σ y_i x_i`, `β = Σ y_i²`. Under the
//! normalized domain (`‖x‖₂ ≤ 1`, `y ∈ [−1,1]`) the paper bounds the
//! coefficient sensitivity by `Δ = 2(1 + 2d + d²) = 2(d+1)²`.

use fm_data::Dataset;
use fm_poly::QuadraticForm;

use crate::estimator::{EstimatorBuilder, FmEstimator, RegressionObjective};
use crate::mechanism::{PolynomialObjective, SensitivityBound};
use crate::model::LinearModel;

/// The paper's linear-regression sensitivity: `Δ = 2(d+1)²` (Section 4.2).
#[must_use]
pub fn sensitivity_paper(d: usize) -> f64 {
    let dp1 = (d + 1) as f64;
    2.0 * dp1 * dp1
}

/// Cauchy–Schwarz-tightened sensitivity: with `‖x‖₂ ≤ 1`,
/// `Σ|x_j| ≤ √d`, so `Δ = 2(1 + 2√d + d) = 2(1+√d)²`. Still a valid upper
/// bound ⇒ still ε-DP; used by the ablation experiments.
#[must_use]
pub fn sensitivity_tight(d: usize) -> f64 {
    let s = 1.0 + (d as f64).sqrt();
    2.0 * s * s
}

/// The **L2** sensitivity of the linear-regression coefficient vector,
/// used by the (ε, δ) Gaussian variant: per tuple the blocks are
/// `(y², −2y·x, x xᵀ)` with `‖x‖₂ ≤ 1`, `|y| ≤ 1`, so
/// `‖λ_t‖₂² ≤ y⁴ + 4y²‖x‖² + ‖x xᵀ‖_F² ≤ 1 + 4 + 1 = 6` and
/// `Δ₂ = 2√6 ≈ 4.9` — **independent of `d`**, in contrast to the L1 bound
/// `2(d+1)²`.
#[must_use]
pub fn sensitivity_l2() -> f64 {
    2.0 * 6.0_f64.sqrt()
}

/// The linear-regression objective in Algorithm-1 form.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearObjective;

impl PolynomialObjective for LinearObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        // β += y²; α += −2y·x; M += x xᵀ.
        *q.beta_mut() += y * y;
        fm_linalg::vecops::axpy(-2.0 * y, x, q.alpha_mut());
        q.m_mut()
            .rank1_update(1.0, x)
            .expect("dataset row arity matches objective dimension");
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        // The three Gram products of the expanded objective: β += yᵀy
        // (reads only the labels), then α += −2·Xᵀy fused into the XᵀX
        // pack pass — the syrk kernel transposes each panel of tuples into
        // column-major scratch anyway, so the Xᵀy dots read that pack
        // instead of streaming the row-major block a second time. The
        // per-column four-row grouping matches `gemv_t_acc` exactly and
        // panels break on multiples of eight, so the fusion is
        // bit-identical to the two-pass path (and to the columnar twin
        // below; pinned by `tests/batched_assembly.rs`).
        *q.beta_mut() += fm_linalg::vecops::sum_squares(ys);
        let (_, alpha, m) = q.parts_mut();
        let mut pos = 0usize;
        m.syrk_acc_visit(1.0, xs, d, &mut |panel, pk| {
            for (j, out) in alpha.iter_mut().enumerate() {
                fm_linalg::vecops::dot_blocked_acc(
                    -2.0,
                    &panel[j * pk..(j + 1) * pk],
                    &ys[pos..pos + pk],
                    out,
                );
            }
            pos += pk;
        })
        .expect("dataset row arity matches objective dimension");
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        // Same three Gram products read from the cached transpose;
        // bit-identical grouping to the row-major kernels above.
        let yr = &ys[lo..hi];
        *q.beta_mut() += fm_linalg::vecops::sum_squares(yr);
        for (j, out) in q.alpha_mut().iter_mut().enumerate() {
            fm_linalg::vecops::dot_blocked_acc(-2.0, &xt.row(j)[lo..hi], yr, out);
        }
        q.m_mut()
            .syrk_cols_acc(1.0, xt, lo, hi)
            .expect("columnar view arity matches objective dimension");
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        match bound {
            SensitivityBound::Paper => sensitivity_paper(d),
            SensitivityBound::Tight => sensitivity_tight(d),
        }
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        sensitivity_l2()
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_linear()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_linear(xs, ys, d)
    }
}

impl RegressionObjective for LinearObjective {
    type Model = LinearModel;
}

/// ε-differentially private linear regression via the Functional
/// Mechanism — the generic [`FmEstimator`] core instantiated at
/// [`LinearObjective`] (fit pipeline, intercept handling and model
/// wrapping all live in [`crate::estimator`]).
///
/// ```
/// use fm_core::linreg::DpLinearRegression;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let data = fm_data::synth::linear_dataset(&mut rng, 10_000, 3, 0.1);
/// let model = DpLinearRegression::builder()
///     .epsilon(0.8)
///     .build()
///     .fit(&data, &mut rng)
///     .unwrap();
/// assert_eq!(model.epsilon(), Some(0.8));
/// ```
pub type DpLinearRegression = FmEstimator<LinearObjective>;

/// Builder for [`DpLinearRegression`] — the shared
/// [`EstimatorBuilder`] with no family-specific knobs.
pub type DpLinearRegressionBuilder = EstimatorBuilder<LinearObjective>;

impl DpLinearRegressionBuilder {
    /// Finalises the configuration.
    #[must_use]
    pub fn build(self) -> DpLinearRegression {
        FmEstimator::new(self.family, self.config)
    }
}

impl DpLinearRegression {
    /// Starts a builder with defaults (ε = 1, paper sensitivity,
    /// regularize-then-trim, no intercept).
    #[must_use]
    pub fn builder() -> DpLinearRegressionBuilder {
        DpLinearRegressionBuilder::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FmError, NoiseDistribution, Strategy};
    use fm_linalg::{vecops, Matrix};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(271828)
    }

    #[test]
    fn sensitivities_match_paper() {
        assert_eq!(sensitivity_paper(1), 8.0); // the worked example's Δ = 8
        assert_eq!(sensitivity_paper(3), 32.0);
        assert_eq!(sensitivity_paper(13), 392.0);
        // Tight bound is strictly smaller for d > 1 and equal at d = 1.
        assert_eq!(sensitivity_tight(1), 8.0);
        for d in 2..20 {
            assert!(sensitivity_tight(d) < sensitivity_paper(d));
        }
    }

    #[test]
    fn paper_worked_example_coefficients() {
        // D = {(1, 0.4), (0.9, 0.3), (−0.5, −1)} ⇒ f_D = 2.06ω² − 2.34ω + 1.25.
        let x = Matrix::from_rows(&[&[1.0], &[0.9], &[-0.5]]).unwrap();
        let data = Dataset::new(x, vec![0.4, 0.3, -1.0]).unwrap();
        let q = LinearObjective.assemble(&data);
        assert!((q.m()[(0, 0)] - 2.06).abs() < 1e-12);
        assert!((q.alpha()[0] + 2.34).abs() < 1e-12);
        assert!((q.beta() - 1.25).abs() < 1e-12);
        // ω* = 117/206.
        let model = DpLinearRegression::builder()
            .build()
            .fit_without_privacy(&data)
            .unwrap();
        assert!((model.weights()[0] - 117.0 / 206.0).abs() < 1e-12);
    }

    #[test]
    fn lemma1_contract_per_tuple_l1_below_half_delta() {
        // Machine-check the sensitivity contract on random in-domain
        // tuples: per-tuple coefficient L1 — β = y² included, since the
        // mechanism releases it and Δ's +1 is its share — ≤ Δ/2.
        let mut r = rng();
        for d in [1usize, 3, 7, 13] {
            let delta = LinearObjective.sensitivity(d, SensitivityBound::Paper);
            let tight = LinearObjective.sensitivity(d, SensitivityBound::Tight);
            for _ in 0..200 {
                let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                let y = rand::Rng::gen_range(&mut r, -1.0..=1.0);
                let mut q = QuadraticForm::zero(d);
                LinearObjective.accumulate_tuple(&x, y, &mut q);
                let l1 = q.coefficient_l1_norm_with_constant();
                assert!(
                    l1 <= delta / 2.0 + 1e-9,
                    "d={d}: L1 {l1} > Δ/2 {}",
                    delta / 2.0
                );
                assert!(l1 <= tight / 2.0 + 1e-9, "d={d}: L1 {l1} > tight Δ/2");
            }
        }
    }

    #[test]
    fn non_private_fit_recovers_ground_truth() {
        let mut r = rng();
        let w = vec![0.3, -0.2, 0.1];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 20_000, &w, 0.01);
        let model = DpLinearRegression::builder()
            .build()
            .fit_without_privacy(&data)
            .unwrap();
        assert!(
            vecops::dist2(model.weights(), &w) < 0.02,
            "weights {:?}",
            model.weights()
        );
    }

    #[test]
    fn private_fit_close_to_truth_on_large_data() {
        // Theorem 2 in action: with n large the DP estimate approaches ω*.
        let mut r = rng();
        let w = vec![0.4, -0.3];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 60_000, &w, 0.02);
        let model = DpLinearRegression::builder()
            .epsilon(1.0)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert!(
            vecops::dist2(model.weights(), &w) < 0.1,
            "weights {:?}",
            model.weights()
        );
    }

    #[test]
    fn more_budget_means_less_error() {
        // Average over repeats: ε = 10 must beat ε = 0.05 on the same data.
        let mut r = rng();
        let w = vec![0.5, 0.2];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 5_000, &w, 0.05);
        let reps = 15;
        let mean_err = |eps: f64, r: &mut rand::rngs::StdRng| -> f64 {
            (0..reps)
                .map(|_| {
                    let m = DpLinearRegression::builder()
                        .epsilon(eps)
                        .build()
                        .fit(&data, r)
                        .unwrap();
                    vecops::dist2(m.weights(), &w)
                })
                .sum::<f64>()
                / reps as f64
        };
        let hi = mean_err(10.0, &mut r);
        let lo = mean_err(0.05, &mut r);
        assert!(hi < lo, "ε=10 err {hi} should beat ε=0.05 err {lo}");
    }

    #[test]
    fn strategies_all_fit_on_friendly_data() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 20_000, 3, 0.05);
        for strategy in [
            Strategy::RegularizeThenTrim,
            Strategy::RegularizeOnly,
            Strategy::Resample { max_attempts: 50 },
        ] {
            let model = DpLinearRegression::builder()
                .epsilon(2.0)
                .strategy(strategy)
                .build()
                .fit(&data, &mut r)
                .unwrap();
            assert_eq!(model.dim(), 3);
        }
    }

    #[test]
    fn resample_zero_attempts_rejected() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.05);
        let err = DpLinearRegression::builder()
            .strategy(Strategy::Resample { max_attempts: 0 })
            .build()
            .fit(&data, &mut r)
            .unwrap_err();
        assert!(matches!(err, FmError::InvalidConfig { .. }));
    }

    #[test]
    fn invalid_epsilon_rejected_at_fit() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.05);
        let err = DpLinearRegression::builder()
            .epsilon(-1.0)
            .build()
            .fit(&data, &mut r)
            .unwrap_err();
        assert!(matches!(err, FmError::InvalidConfig { .. }));
    }

    #[test]
    fn unnormalized_data_rejected() {
        let x = Matrix::from_rows(&[&[3.0, 0.0]]).unwrap();
        let data = Dataset::new(x, vec![0.5]).unwrap();
        let mut r = rng();
        assert!(matches!(
            DpLinearRegression::builder().build().fit(&data, &mut r),
            Err(FmError::Data(_))
        ));
    }

    #[test]
    fn intercept_fit_recovers_offset() {
        // y = xᵀw + 0.3: the plain model can't express the offset; the
        // footnote-2 model must recover both w and b (non-privately, exact).
        let w = [0.3, -0.2];
        let n = 5_000;
        let x = Matrix::from_fn(n, 2, |i, j| {
            // Deterministic in-ball features.
            let t = (i * 13 + j * 7) % 100;
            (t as f64 / 100.0 - 0.5) / 2.0
        });
        let y: Vec<f64> = (0..n).map(|i| vecops::dot(x.row(i), &w) + 0.3).collect();
        let data = Dataset::new(x, y).unwrap();
        let model = DpLinearRegression::builder()
            .fit_intercept(true)
            .build()
            .fit_without_privacy(&data)
            .unwrap();
        assert!(
            vecops::approx_eq(model.weights(), &w, 1e-9),
            "{:?}",
            model.weights()
        );
        assert!(
            (model.intercept() - 0.3).abs() < 1e-9,
            "b = {}",
            model.intercept()
        );
        // Predictions include the offset.
        assert!((model.predict(&[0.0, 0.0]) - 0.3).abs() < 1e-9);

        // The plain model is strictly worse on this data.
        let flat = DpLinearRegression::builder()
            .build()
            .fit_without_privacy(&data)
            .unwrap();
        let mse = |m: &LinearModel| fm_data::metrics::mse(&m.predict_batch(data.x()), data.y());
        assert!(mse(&model) < mse(&flat), "intercept must help");
    }

    #[test]
    fn private_intercept_fit_close_to_truth_on_large_data() {
        let mut r = rng();
        let w = vec![0.4, -0.3];
        // Build offset data inside the contract: y = xᵀw + 0.2 ∈ [−1, 1].
        let base = fm_data::synth::linear_dataset_with_weights(&mut r, 80_000, &w, 0.02);
        let y: Vec<f64> = base
            .y()
            .iter()
            .map(|y| (y + 0.2).clamp(-1.0, 1.0))
            .collect();
        let data = Dataset::new(base.x().clone(), y).unwrap();
        let model = DpLinearRegression::builder()
            .epsilon(2.0)
            .fit_intercept(true)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert!(
            vecops::dist2(model.weights(), &w) < 0.15,
            "weights {:?}",
            model.weights()
        );
        assert!(
            (model.intercept() - 0.2).abs() < 0.15,
            "b = {}",
            model.intercept()
        );
    }

    #[test]
    fn l2_sensitivity_is_dimension_independent() {
        assert!((sensitivity_l2() - 2.0 * 6.0_f64.sqrt()).abs() < 1e-15);
        // Per-tuple L2 (including β) never exceeds Δ₂/2, for any d.
        let mut r = rng();
        for d in [1usize, 3, 8, 14] {
            for _ in 0..200 {
                let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                let y = rand::Rng::gen_range(&mut r, -1.0..=1.0);
                let mut q = QuadraticForm::zero(d);
                LinearObjective.accumulate_tuple(&x, y, &mut q);
                let l2 = (q.beta() * q.beta()
                    + vecops::dot(q.alpha(), q.alpha())
                    + q.m().frobenius_norm().powi(2))
                .sqrt();
                assert!(l2 <= sensitivity_l2() / 2.0 + 1e-9, "d={d}: {l2}");
            }
        }
    }

    #[test]
    fn gaussian_variant_fits_and_records_delta() {
        let mut r = rng();
        let w = vec![0.4, -0.3];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 30_000, &w, 0.02);
        let model = DpLinearRegression::builder()
            .epsilon(0.8)
            .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert_eq!(model.dim(), 2);
        assert!(
            vecops::dist2(model.weights(), &w) < 0.2,
            "{:?}",
            model.weights()
        );
    }

    #[test]
    fn gaussian_variant_beats_laplace_at_high_dimension() {
        // The whole point of the (ε, δ) relaxation: at d = 10 the Laplace
        // noise scale is 2(d+1)²/ε = 242/ε per coefficient, the Gaussian σ
        // is 2√6·√(2 ln 1.25e6)/ε ≈ 26/ε — expect much lower error.
        let mut r = rng();
        let d = 10;
        let data = fm_data::synth::linear_dataset(&mut r, 5_000, d, 0.05);
        let clean = DpLinearRegression::builder()
            .build()
            .fit_without_privacy(&data)
            .unwrap();
        let reps = 10;
        let mean_err = |noise: NoiseDistribution, r: &mut rand::rngs::StdRng| -> f64 {
            (0..reps)
                .map(|_| {
                    let m = DpLinearRegression::builder()
                        .epsilon(0.8)
                        .noise(noise)
                        .build()
                        .fit(&data, r)
                        .unwrap();
                    vecops::dist2(m.weights(), clean.weights())
                })
                .sum::<f64>()
                / reps as f64
        };
        let laplace = mean_err(NoiseDistribution::Laplace, &mut r);
        let gaussian = mean_err(NoiseDistribution::Gaussian { delta: 1e-6 }, &mut r);
        assert!(
            gaussian < laplace,
            "gaussian {gaussian} should beat laplace {laplace} at d={d}"
        );
    }

    #[test]
    fn gaussian_variant_rejects_bad_config() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 100, 2, 0.05);
        // δ outside (0, 1).
        for delta in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(matches!(
                DpLinearRegression::builder()
                    .noise(NoiseDistribution::Gaussian { delta })
                    .build()
                    .fit(&data, &mut r),
                Err(FmError::InvalidConfig { .. })
            ));
        }
        // ε ≥ 1 invalid for the classical mechanism.
        assert!(DpLinearRegression::builder()
            .epsilon(1.5)
            .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
            .build()
            .fit(&data, &mut r)
            .is_err());
        // Resample + Gaussian is refused (Lemma 5 is Laplace-specific).
        assert!(matches!(
            DpLinearRegression::builder()
                .epsilon(0.5)
                .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
                .strategy(Strategy::Resample { max_attempts: 5 })
                .build()
                .fit(&data, &mut r),
            Err(FmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn tight_bound_gives_lower_error_on_average() {
        let mut r = rng();
        let w = vec![0.4, -0.1, 0.2];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 3_000, &w, 0.05);
        let reps = 20;
        let mean_err = |bound: SensitivityBound, r: &mut rand::rngs::StdRng| -> f64 {
            (0..reps)
                .map(|_| {
                    let m = DpLinearRegression::builder()
                        .epsilon(0.5)
                        .sensitivity_bound(bound)
                        .build()
                        .fit(&data, r)
                        .unwrap();
                    vecops::dist2(m.weights(), &w)
                })
                .sum::<f64>()
                / reps as f64
        };
        let paper = mean_err(SensitivityBound::Paper, &mut r);
        let tight = mean_err(SensitivityBound::Tight, &mut r);
        assert!(tight < paper, "tight {tight} should beat paper {paper}");
    }
}
