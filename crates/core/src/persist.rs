//! Model persistence: a small, dependency-free text format for shipping
//! fitted models out of the data silo.
//!
//! The released artefact of a DP fit is the parameter vector plus its
//! privacy metadata — by the post-processing property, writing it to disk
//! and loading it elsewhere preserves the (ε[, δ]) guarantee. The format
//! is line-oriented `key value` pairs:
//!
//! ```text
//! fm-model v1
//! kind linear
//! epsilon 0.8
//! intercept 0.25
//! weights 0.5 -0.25 0.125
//! ```
//!
//! Floats are serialised with `f64::to_string`'s shortest-roundtrip
//! representation, so a write → read cycle is **bit-exact**. `epsilon
//! none` marks non-private baselines. Unknown keys are rejected (a model
//! file is a security-relevant artefact; silent tolerance invites
//! mix-ups), as are NaN/infinite parameters.

use std::fmt::Write as _;
use std::path::Path;

use crate::model::{LinearModel, LogisticModel, Model, PersistableModel, PoissonModel};
use crate::{FmError, Result};

pub use crate::model::ModelKind;

/// Format magic + version line.
const HEADER: &str = "fm-model v1";

fn parse_kind(s: &str) -> Result<ModelKind> {
    match s {
        "linear" => Ok(ModelKind::Linear),
        "logistic" => Ok(ModelKind::Logistic),
        "poisson" => Ok(ModelKind::Poisson),
        other => Err(parse_error(format!("unknown model kind `{other}`"))),
    }
}

/// The family-agnostic payload of a serialised model.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedModel {
    /// The model family.
    pub kind: ModelKind,
    /// The parameter vector ω.
    pub weights: Vec<f64>,
    /// The intercept `b` (0 when fitted without one).
    pub intercept: f64,
    /// The privacy budget recorded at fit time, if any.
    pub epsilon: Option<f64>,
}

impl SavedModel {
    /// Serialises to the `fm-model v1` text format.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] if any parameter is non-finite (a
    /// non-finite model must never be shipped).
    pub fn to_text(&self) -> Result<String> {
        if !self.intercept.is_finite()
            || self.weights.iter().any(|w| !w.is_finite())
            || self.epsilon.is_some_and(|e| !e.is_finite())
        {
            return Err(FmError::InvalidConfig {
                name: "model",
                reason: "refusing to serialise non-finite parameters".to_string(),
            });
        }
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "kind {}", self.kind.as_str());
        match self.epsilon {
            Some(e) => {
                let _ = writeln!(out, "epsilon {e}");
            }
            None => {
                let _ = writeln!(out, "epsilon none");
            }
        }
        let _ = writeln!(out, "intercept {}", self.intercept);
        let _ = write!(out, "weights");
        for w in &self.weights {
            let _ = write!(out, " {w}");
        }
        out.push('\n');
        Ok(out)
    }

    /// Parses the `fm-model v1` text format.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] describing the first malformed line;
    /// non-finite values, duplicate or missing keys, and unknown keys are
    /// all rejected.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(parse_error(format!("missing `{HEADER}` header")));
        }
        let mut kind = None;
        let mut epsilon: Option<Option<f64>> = None;
        let mut intercept = None;
        let mut weights = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| parse_error(format!("malformed line `{line}`")))?;
            match key {
                "kind" => set_once(&mut kind, parse_kind(value)?, "kind")?,
                "epsilon" => {
                    let v = if value == "none" {
                        None
                    } else {
                        Some(parse_finite(value, "epsilon")?)
                    };
                    set_once(&mut epsilon, v, "epsilon")?;
                }
                "intercept" => {
                    set_once(
                        &mut intercept,
                        parse_finite(value, "intercept")?,
                        "intercept",
                    )?;
                }
                "weights" => {
                    let ws: Vec<f64> = value
                        .split_whitespace()
                        .map(|t| parse_finite(t, "weights"))
                        .collect::<Result<_>>()?;
                    if ws.is_empty() {
                        return Err(parse_error("empty weight vector".to_string()));
                    }
                    set_once(&mut weights, ws, "weights")?;
                }
                other => return Err(parse_error(format!("unknown key `{other}`"))),
            }
        }
        Ok(SavedModel {
            kind: kind.ok_or_else(|| parse_error("missing `kind`".to_string()))?,
            weights: weights.ok_or_else(|| parse_error("missing `weights`".to_string()))?,
            intercept: intercept.ok_or_else(|| parse_error("missing `intercept`".to_string()))?,
            epsilon: epsilon.ok_or_else(|| parse_error("missing `epsilon`".to_string()))?,
        })
    }

    /// Writes the model to `path`.
    ///
    /// # Errors
    /// Serialisation failures ([`SavedModel::to_text`]) or I/O errors
    /// wrapped as [`FmError::InvalidConfig`].
    pub fn save(&self, path: &Path) -> Result<()> {
        let text = self.to_text()?;
        std::fs::write(path, text).map_err(|e| FmError::InvalidConfig {
            name: "model file",
            reason: format!("write {}: {e}", path.display()),
        })
    }

    /// Reads a model from `path`.
    ///
    /// # Errors
    /// I/O errors or parse failures, as [`SavedModel::from_text`].
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| FmError::InvalidConfig {
            name: "model file",
            reason: format!("read {}: {e}", path.display()),
        })?;
        Self::from_text(&text)
    }

    /// Captures any [`Model`] (including a `dyn Model`) as a serialisable
    /// payload — the generic form of the `From<&M>` conversions.
    pub fn from_model<M: Model + ?Sized>(m: &M) -> Self {
        SavedModel {
            kind: m.kind(),
            weights: m.weights().to_vec(),
            intercept: m.intercept(),
            epsilon: m.epsilon(),
        }
    }

    /// Converts into any [`PersistableModel`] family, checking the stored
    /// kind tag against the requested type's `KIND` — the one generic
    /// round-trip the per-family `into_*` helpers forward to.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] when the file holds a different family.
    pub fn into_model<M: PersistableModel>(self) -> Result<M> {
        self.expect_kind(M::KIND)?;
        Ok(M::from_parts(self.weights, self.intercept, self.epsilon))
    }

    /// Converts into a [`LinearModel`].
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] when the file holds a different family.
    pub fn into_linear(self) -> Result<LinearModel> {
        self.into_model()
    }

    /// Converts into a [`LogisticModel`].
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] when the file holds a different family.
    pub fn into_logistic(self) -> Result<LogisticModel> {
        self.into_model()
    }

    /// Converts into a [`PoissonModel`].
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] when the file holds a different family.
    pub fn into_poisson(self) -> Result<PoissonModel> {
        self.into_model()
    }

    fn expect_kind(&self, want: ModelKind) -> Result<()> {
        if self.kind == want {
            Ok(())
        } else {
            Err(FmError::InvalidConfig {
                name: "model kind",
                reason: format!(
                    "file holds a {} model, expected {}",
                    self.kind.as_str(),
                    want.as_str()
                ),
            })
        }
    }
}

impl<M: Model> From<&M> for SavedModel {
    fn from(m: &M) -> Self {
        SavedModel::from_model(m)
    }
}

fn parse_error(reason: String) -> FmError {
    FmError::InvalidConfig {
        name: "model file",
        reason,
    }
}

fn parse_finite(token: &str, field: &str) -> Result<f64> {
    let v: f64 = token
        .parse()
        .map_err(|e| parse_error(format!("{field}: `{token}`: {e}")))?;
    if !v.is_finite() {
        return Err(parse_error(format!("{field}: `{token}` is not finite")));
    }
    Ok(v)
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str) -> Result<()> {
    if slot.is_some() {
        return Err(parse_error(format!("duplicate key `{key}`")));
    }
    *slot = Some(value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> LinearModel {
        LinearModel::with_intercept(vec![0.5, -0.25, 0.1], 0.125, Some(0.8))
    }

    #[test]
    fn linear_roundtrip_is_bit_exact() {
        let m = linear();
        let saved = SavedModel::from(&m);
        let text = saved.to_text().unwrap();
        let back = SavedModel::from_text(&text).unwrap().into_linear().unwrap();
        assert_eq!(back, m); // PartialEq on f64 ⇒ bit-exact round trip
    }

    #[test]
    fn roundtrip_preserves_awkward_floats() {
        // Shortest-roundtrip float formatting must survive non-dyadic
        // values and extremes.
        let m = LinearModel::with_intercept(
            vec![0.1 + 0.2, 1e-300, -1e300, f64::MIN_POSITIVE],
            std::f64::consts::PI,
            Some(0.1),
        );
        let text = SavedModel::from(&m).to_text().unwrap();
        let back = SavedModel::from_text(&text).unwrap().into_linear().unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn logistic_and_poisson_roundtrip() {
        let lm = LogisticModel::with_intercept(vec![1.0, 2.0], -0.5, None);
        let text = SavedModel::from(&lm).to_text().unwrap();
        assert!(text.contains("epsilon none"));
        let back = SavedModel::from_text(&text)
            .unwrap()
            .into_logistic()
            .unwrap();
        assert_eq!(back, lm);

        let pm = PoissonModel::with_intercept(vec![0.3], 0.7, Some(1.6));
        let text = SavedModel::from(&pm).to_text().unwrap();
        let back = SavedModel::from_text(&text)
            .unwrap()
            .into_poisson()
            .unwrap();
        assert_eq!(back, pm);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let text = SavedModel::from(&linear()).to_text().unwrap();
        let saved = SavedModel::from_text(&text).unwrap();
        assert!(saved.clone().into_logistic().is_err());
        assert!(saved.clone().into_poisson().is_err());
        assert!(saved.into_linear().is_ok());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",                         // no header
            "fm-model v2\nkind linear", // wrong version
            "fm-model v1\nkind martian\nepsilon none\nintercept 0\nweights 1",
            "fm-model v1\nepsilon none\nintercept 0\nweights 1", // missing kind
            "fm-model v1\nkind linear\nepsilon none\nintercept 0\nweights", // malformed line
            "fm-model v1\nkind linear\nepsilon none\nintercept 0\nweights 1 nan",
            "fm-model v1\nkind linear\nepsilon inf\nintercept 0\nweights 1",
            "fm-model v1\nkind linear\nkind linear\nepsilon none\nintercept 0\nweights 1",
            "fm-model v1\nkind linear\nepsilon none\nintercept 0\nweights 1\nsecret 5",
        ] {
            assert!(SavedModel::from_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn non_finite_models_refuse_to_serialise() {
        let m = LinearModel::new(vec![f64::NAN], Some(0.5));
        assert!(SavedModel::from(&m).to_text().is_err());
        let m = LinearModel::with_intercept(vec![1.0], f64::INFINITY, None);
        assert!(SavedModel::from(&m).to_text().is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fm_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.fm");
        let m = linear();
        SavedModel::from(&m).save(&path).unwrap();
        let back = SavedModel::load(&path).unwrap().into_linear().unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_clean_error() {
        let err = SavedModel::load(Path::new("/nonexistent/fm-model")).unwrap_err();
        assert!(matches!(err, FmError::InvalidConfig { .. }));
    }

    #[test]
    fn blank_lines_tolerated() {
        let text = "fm-model v1\n\nkind linear\nepsilon 0.5\n\nintercept 0\nweights 1 2\n\n";
        let saved = SavedModel::from_text(text).unwrap();
        assert_eq!(saved.weights, vec![1.0, 2.0]);
        assert_eq!(saved.epsilon, Some(0.5));
    }
}
