//! [`PrivacySession`]: budget-aware fitting with automatic composition
//! accounting.
//!
//! The paper's evaluation protocol fits *many* models on the same data —
//! 50 repeats × 5-fold cross-validation per method, ε-sweeps, model
//! selection — and every one of those fits spends privacy budget on the
//! same individuals. Before this module, `fm_privacy::budget` had the
//! ledgers but nothing consulted them; a 250-fold experiment silently
//! advertised its per-fit ε as if the fits were free to compose.
//!
//! A [`PrivacySession`] wraps a [`PrivacyBudget`] (optional hard cap) and
//! an [`EpsDeltaLedger`] (always-on audit trail) around any
//! [`DpEstimator`]: every fit drawn through [`PrivacySession::fit`] first
//! debits its advertised (ε, δ) — an over-budget fit **errors before
//! touching the data** — and the session can then report the honest total
//! under basic composition `(Σεᵢ, Σδᵢ)` and the Dwork–Rothblum–Vadhan
//! advanced bound (the `√k` regime that pays off exactly in the many-
//! small-fits CV setting).
//!
//! Non-private baselines (`epsilon() == None`) pass through without a
//! debit, so one harness loop can run FM, DPME, FP *and* NoPrivacy while
//! the ledger tracks only the mechanisms that actually spend.
//!
//! ```
//! use fm_core::linreg::DpLinearRegression;
//! use fm_core::session::PrivacySession;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(4);
//! let data = fm_data::synth::linear_dataset(&mut rng, 4_000, 2, 0.1);
//! let est = DpLinearRegression::builder().epsilon(0.2).build();
//!
//! let mut session = PrivacySession::with_budget(1.0).unwrap();
//! for _ in 0..5 {
//!     session.fit(&est, &data, &mut rng).unwrap();
//! }
//! assert!((session.spent_epsilon() - 1.0).abs() < 1e-9);
//! assert!(session.fit(&est, &data, &mut rng).is_err()); // budget exhausted
//! ```

use rand::Rng;

use fm_data::cv::KFold;
use fm_data::stream::RowSource;
use fm_data::Dataset;
use fm_privacy::budget::{EpsDeltaLedger, PrivacyBudget};
use fm_privacy::rdp::{MomentsAccount, RdpLedger, RenyiMechanism};

use crate::estimator::{DpEstimator, FmEstimator, RegressionObjective};
use crate::{FmError, Result};

/// A budget-aware fitting session: every [`DpEstimator::fit`] drawn
/// through it is debited against an optional hard ε cap and recorded in an
/// (ε, δ) audit ledger.
#[derive(Debug, Clone, Default)]
pub struct PrivacySession {
    budget: Option<PrivacyBudget>,
    ledger: EpsDeltaLedger,
    rdp: RdpLedger,
    fits: usize,
}

/// The composed guarantee of everything a session has fitted, in the
/// forms an auditor asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositionReport {
    /// Number of budget-consuming fits recorded.
    pub fits: usize,
    /// Basic (sequential) composition `(Σεᵢ, Σδᵢ)`.
    pub basic: (f64, f64),
    /// The advanced-composition bound at the report's slack δ′.
    pub advanced: (f64, f64),
    /// The tighter of basic and advanced (same δ-accounting as those two).
    pub best: (f64, f64),
    /// The moments accountant's (ε, δ) at target δ = the report's slack
    /// δ′ — per-mechanism Rényi curves composed additively and converted
    /// at the optimal order. Its δ is **not** comparable to `best`'s
    /// (Gaussian calibration δs are folded into the curves, not summed),
    /// which is exactly why it is usually far tighter for many releases.
    pub rdp: MomentsAccount,
}

/// Maps a validated (ε, δ) debit onto the tightest *sound* Rényi curve
/// the session can claim without mechanism-specific metadata:
///
/// * `δ = 0` — the release is pure ε-DP; the Bun–Steinke
///   [`RenyiMechanism::PureDp`] curve holds for **any** pure mechanism
///   (Laplace vectors, Lemma-5 resample loops, exponential mechanism).
/// * `δ > 0` — every (ε, δ) release in this workspace is a classically
///   calibrated Gaussian ([`fm_privacy::mechanism::GaussianMechanism`],
///   σ = Δ·√(2 ln(1.25/δ))/ε), whose exact curve is α/(2σ̃²).
/// * `δ > 0` outside the classical calibration range (ε ≥ 1) — no curve
///   is known; the debit enters as an opaque record, composed basically.
fn record_renyi(rdp: &mut RdpLedger, epsilon: f64, delta: f64) {
    let recorded = if delta == 0.0 {
        rdp.record(RenyiMechanism::PureDp { epsilon })
    } else if let Ok(mechanism) = RenyiMechanism::gaussian_from_calibration(epsilon, delta) {
        rdp.record(mechanism)
    } else {
        rdp.record_opaque(epsilon, delta)
    };
    debug_assert!(recorded.is_ok(), "validated (ε, δ) entries always record");
}

impl PrivacySession {
    /// A session with no hard cap: fits always run, and the ledger answers
    /// *what did all of this compose to?* after the fact.
    #[must_use]
    pub fn new() -> Self {
        PrivacySession::default()
    }

    /// A session enforcing a total ε budget: a fit whose advertised ε
    /// exceeds what remains errors with
    /// [`fm_privacy::PrivacyError::BudgetExhausted`] *before* running.
    ///
    /// # Errors
    /// [`FmError::Privacy`] unless `total_epsilon` is finite and > 0.
    pub fn with_budget(total_epsilon: f64) -> Result<Self> {
        Ok(PrivacySession {
            budget: Some(PrivacyBudget::new(total_epsilon)?),
            ledger: EpsDeltaLedger::new(),
            rdp: RdpLedger::new(),
            fits: 0,
        })
    }

    /// Whether `estimator`'s advertised (ε, δ) would be accepted right
    /// now: its metadata is well-formed and the remaining budget (if any)
    /// covers its ε. A pre-flight for harnesses that want to plan a
    /// line-up before spending anything.
    #[must_use]
    pub fn can_fit<E: DpEstimator + ?Sized>(&self, estimator: &E) -> bool {
        let Some(epsilon) = estimator.epsilon() else {
            return true; // non-private: never debited
        };
        if fm_privacy::budget::EpsDeltaEntry::validated(epsilon, estimator.delta().unwrap_or(0.0))
            .is_err()
        {
            return false;
        }
        self.budget.as_ref().map_or(true, |b| b.can_spend(epsilon))
    }

    /// Fits `estimator` on `data`, debiting its advertised (ε, δ) first.
    ///
    /// The debit is atomic: the (ε, δ) metadata is validated and the cap
    /// checked before anything is committed, so the budget and the audit
    /// ledger can never diverge. Once debited, the spend is kept even if
    /// the fit subsequently fails: a mechanism run that may have touched
    /// the data must be paid for whether or not it produced a usable
    /// model (its failure mode may itself be data-dependent — this is
    /// deliberately conservative for failures that precede data access,
    /// e.g. a bad surrogate interval). Non-private estimators
    /// (`epsilon() == None`) are not debited.
    ///
    /// # Errors
    /// * [`FmError::Privacy`] for malformed (ε, δ) metadata or when the
    ///   debit would exceed the remaining budget (the fit is **not** run
    ///   and nothing is recorded).
    /// * Whatever the estimator's own `fit` returns.
    pub fn fit<E, R>(&mut self, estimator: &E, data: &Dataset, rng: &mut R) -> Result<E::Model>
    where
        E: DpEstimator + ?Sized,
        R: Rng,
    {
        self.debit(estimator)?;
        estimator.fit(data, rng)
    }

    /// Fits `estimator` from a streaming [`RowSource`], debiting exactly
    /// as [`PrivacySession::fit`] does. Estimators with a native streaming
    /// pipeline (the Functional-Mechanism family) run out-of-core; others
    /// fall back to materializing via the [`DpEstimator::fit_stream`]
    /// default.
    ///
    /// # Errors
    /// As [`PrivacySession::fit`], plus transport errors from the source.
    pub fn fit_stream<E, R>(
        &mut self,
        estimator: &E,
        source: &mut dyn RowSource,
        rng: &mut R,
    ) -> Result<E::Model>
    where
        E: DpEstimator + ?Sized,
        R: Rng,
    {
        self.debit(estimator)?;
        estimator.fit_stream(source, rng)
    }

    /// Opens an opt-in **parallel-composition** scope: a group of fits on
    /// provably **disjoint** shards of one population, debited as a single
    /// release costing `(max εᵢ, max δᵢ)` instead of the sequential
    /// `(Σεᵢ, Σδᵢ)`.
    ///
    /// Parallel composition is the natural budget model for partitioned
    /// data (Wu et al.'s privacy-first design analysis): each individual's
    /// tuple lives in exactly one shard, so only one of the k mechanisms
    /// ever touches it and the worst-case privacy loss is the *maximum*
    /// per-shard ε, not the sum. That premise is also exactly what the
    /// scope enforces as far as code can: every shard fit carries a label,
    /// and fitting the **same label twice within one scope is refused** —
    /// re-touching a shard breaks disjointness and would need sequential
    /// accounting. (Code cannot verify that differently-labelled sources
    /// really cover disjoint individuals; the caller owns that claim,
    /// which is why the mode is opt-in and labelled. Note k-fold CV
    /// *training* splits overlap — each tuple appears in k−1 of them — so
    /// [`PrivacySession::cross_validate`] deliberately stays sequential.)
    ///
    /// Budget mechanics: the scope debits the hard cap incrementally (the
    /// running max only ever grows, and each increment is checked *before*
    /// the corresponding fit runs), and records one `(max ε, max δ)`
    /// ledger entry when it closes — [`ParallelFits::finish`] or drop.
    #[must_use]
    pub fn parallel_fits(&mut self) -> ParallelFits<'_> {
        ParallelFits {
            session: self,
            max_epsilon: 0.0,
            max_delta: 0.0,
            labels: Vec::new(),
            closed: false,
        }
    }

    /// Fits one model per disjoint shard under parallel composition —
    /// the partitioned-data workhorse: `k` models for `max εᵢ = ε` total,
    /// shards auto-labelled by index. Returns the released models in
    /// shard order.
    ///
    /// # Errors
    /// As [`ParallelFits::fit_shard_stream`].
    pub fn fit_disjoint_shards<E, S, R>(
        &mut self,
        estimator: &E,
        shards: &mut [S],
        rng: &mut R,
    ) -> Result<Vec<E::Model>>
    where
        E: DpEstimator + ?Sized,
        S: RowSource,
        R: Rng,
    {
        let mut scope = self.parallel_fits();
        let mut models = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter_mut().enumerate() {
            models.push(scope.fit_shard_stream(&format!("shard-{i}"), estimator, shard, rng)?);
        }
        scope.finish();
        Ok(models)
    }

    /// [`PrivacySession::fit_disjoint_shards`] with the **assembly phase
    /// parallelised** for Functional-Mechanism estimators: every shard's
    /// clean coefficients are accumulated concurrently under the
    /// `parallel` cargo feature (one streaming accumulator per shard —
    /// assembly consumes no randomness), then the per-shard releases draw
    /// their noise serially in shard order from `rng`. The released
    /// models are therefore **bit-identical** to the serial
    /// [`PrivacySession::fit_disjoint_shards`] at the same seed, in both
    /// builds (`tests/streaming_equivalence.rs` pins this).
    ///
    /// Accounting is identical too: one parallel-composition scope,
    /// every shard debited under its auto-generated label, one
    /// `(max ε, max δ)` ledger entry. The only behavioural difference is
    /// timing — all shards are debited *before* any data is touched, so
    /// an over-budget line-up is refused up front instead of between
    /// shard fits.
    ///
    /// # Errors
    /// As [`PrivacySession::fit_disjoint_shards`].
    pub fn fit_disjoint_shards_parallel<O, S, R>(
        &mut self,
        estimator: &FmEstimator<O>,
        shards: &mut [S],
        rng: &mut R,
    ) -> Result<Vec<O::Model>>
    where
        O: RegressionObjective,
        S: RowSource + Send,
        R: Rng,
    {
        let mut scope = self.parallel_fits();
        for i in 0..shards.len() {
            scope.debit_shard(&format!("shard-{i}"), estimator)?;
        }
        let parts = estimator.assemble_shards_clean(shards)?;
        let mut models = Vec::with_capacity(parts.len());
        for (rows, clean) in parts {
            let clean = clean
                .filter(|_| rows > 0)
                .ok_or(FmError::Data(fm_data::DataError::EmptyDataset))?;
            models.push(estimator.release_clean(&clean, rng)?);
        }
        scope.finish();
        Ok(models)
    }

    /// Fits **one** model over the union of disjoint shards through
    /// [`FmEstimator::fit_sharded`] — shards assembled concurrently under
    /// the `parallel` cargo feature — debiting the estimator's (ε, δ)
    /// once. The union is a single release, so this is ordinary
    /// sequential accounting (no parallel-composition scope involved);
    /// use [`PrivacySession::fit_disjoint_shards`] /
    /// [`PrivacySession::fit_disjoint_shards_parallel`] when each shard
    /// should get its *own* model at `max ε` total.
    ///
    /// # Errors
    /// As [`PrivacySession::fit`], plus shard/transport errors from
    /// [`FmEstimator::fit_sharded`].
    pub fn fit_sharded<O, S, R>(
        &mut self,
        estimator: &FmEstimator<O>,
        shards: &mut [S],
        rng: &mut R,
    ) -> Result<O::Model>
    where
        O: RegressionObjective,
        S: RowSource + Send,
        R: Rng,
    {
        self.debit(estimator)?;
        estimator.fit_sharded(shards, rng)
    }

    /// [`PrivacySession::fit_sharded`] for **any** [`DpEstimator`] —
    /// baselines included — through the trait-level
    /// [`DpEstimator::fit_sharded`] hook: one model over the shard union,
    /// debited once. FM estimators take their native per-shard assembly
    /// path (the trait override delegates to the inherent
    /// [`FmEstimator::fit_sharded`]); estimators without a streaming
    /// pipeline materialize the union and fit — same release either way,
    /// so a mixed line-up shares this one call site.
    ///
    /// # Errors
    /// As [`PrivacySession::fit_sharded`].
    pub fn fit_sharded_dyn<E, R>(
        &mut self,
        estimator: &E,
        shards: &mut [&mut (dyn RowSource + Send)],
        rng: &mut R,
    ) -> Result<E::Model>
    where
        E: DpEstimator + ?Sized,
        R: Rng,
    {
        self.debit(estimator)?;
        estimator.fit_sharded(shards, rng)
    }

    /// The debit every fitting entry point shares: validate the advertised
    /// (ε, δ), spend against the cap, record in the ledger.
    fn debit<E: DpEstimator + ?Sized>(&mut self, estimator: &E) -> Result<()> {
        if let Some(epsilon) = estimator.epsilon() {
            let entry = fm_privacy::budget::EpsDeltaEntry::validated(
                epsilon,
                estimator.delta().unwrap_or(0.0),
            )?;
            if let Some(budget) = &mut self.budget {
                budget.spend(epsilon)?;
            }
            self.ledger.record_entry(entry);
            record_renyi(&mut self.rdp, entry.epsilon, entry.delta);
            self.fits += 1;
        }
        Ok(())
    }

    /// Runs the paper's k-fold protocol through the session: one fit per
    /// fold (each debited individually, so the session's total is the
    /// honest `k·ε` of sequential composition), scored on the held-out
    /// fold by `score`.
    ///
    /// Fold fits dispatch through the streaming entry point (an
    /// [`fm_data::stream::InMemorySource`] per training split), so FM
    /// estimators exercise their out-of-core pipeline — bit-identical
    /// released coefficients, see [`crate::estimator::FmEstimator::fit_stream`]
    /// — while baselines materialize via the trait default.
    ///
    /// Accounting stays **sequential** on purpose: the k training splits
    /// *overlap* (every tuple appears in k−1 of them), so the
    /// parallel-composition discount of
    /// [`PrivacySession::parallel_fits`] does not apply here. For
    /// shard-partitioned fitting at `max(ε)` cost, use
    /// [`PrivacySession::fit_disjoint_shards`].
    ///
    /// Generic over `dyn`/`impl` [`DpEstimator`], so the same call drives
    /// FM, the baselines, or a mixed line-up.
    ///
    /// # Errors
    /// Fold-construction errors, budget exhaustion, or fit failures.
    pub fn cross_validate<E, R>(
        &mut self,
        estimator: &E,
        data: &Dataset,
        k: usize,
        rng: &mut R,
        mut score: impl FnMut(&E::Model, &Dataset) -> f64,
    ) -> Result<Vec<f64>>
    where
        E: DpEstimator + ?Sized,
        R: Rng,
    {
        let kfold = KFold::new(data.n(), k, rng).map_err(FmError::Data)?;
        let mut scores = Vec::with_capacity(k);
        for f in 0..k {
            let (train, test) = kfold.split(data, f).map_err(FmError::Data)?;
            let model = self.fit_stream(
                estimator,
                &mut fm_data::stream::InMemorySource::new(&train),
                rng,
            )?;
            scores.push(score(&model, &test));
        }
        Ok(scores)
    }

    /// Number of budget-consuming fits recorded so far.
    #[must_use]
    pub fn num_fits(&self) -> usize {
        self.fits
    }

    /// Total ε spent under basic composition.
    #[must_use]
    pub fn spent_epsilon(&self) -> f64 {
        self.ledger.basic_composition().0
    }

    /// Total δ accumulated under basic composition.
    #[must_use]
    pub fn spent_delta(&self) -> f64 {
        self.ledger.basic_composition().1
    }

    /// ε still available under the hard cap (`None` when the session is
    /// uncapped).
    #[must_use]
    pub fn remaining_epsilon(&self) -> Option<f64> {
        self.budget.as_ref().map(PrivacyBudget::remaining)
    }

    /// The underlying (ε, δ) audit ledger.
    #[must_use]
    pub fn ledger(&self) -> &EpsDeltaLedger {
        &self.ledger
    }

    /// The composed guarantee at advanced-composition slack `delta_prime`,
    /// which doubles as the moments accountant's target δ for the
    /// report's [`CompositionReport::rdp`] column (δ = 0 debits enter as
    /// pure-DP curves, classically calibrated (ε, δ) debits as Gaussian
    /// curves, and anything else — including parallel-composition
    /// scopes — as opaque basic-composed records).
    ///
    /// # Errors
    /// [`FmError::Privacy`] unless `delta_prime ∈ (0, 1)`.
    pub fn report(&self, delta_prime: f64) -> Result<CompositionReport> {
        let basic = self.ledger.basic_composition();
        let advanced = self.ledger.advanced_composition(delta_prime)?;
        let best = self.ledger.best_composition(delta_prime)?;
        let rdp = self.rdp.convert(delta_prime)?;
        Ok(CompositionReport {
            fits: self.fits,
            basic,
            advanced,
            best,
            rdp,
        })
    }
}

/// An open parallel-composition scope (see
/// [`PrivacySession::parallel_fits`]): shard fits recorded here debit the
/// session `max(εᵢ)` in total, and shard labels enforce the only
/// disjointness property code can check — no shard is fitted twice.
///
/// The scope commits its single `(max ε, max δ)` ledger entry when it
/// closes, via [`ParallelFits::finish`] or implicitly on drop (the hard
/// cap was already debited incrementally, so early exits can never
/// under-count the budget).
pub struct ParallelFits<'s> {
    session: &'s mut PrivacySession,
    max_epsilon: f64,
    max_delta: f64,
    labels: Vec<String>,
    closed: bool,
}

impl ParallelFits<'_> {
    /// Fits `estimator` on the shard identified by `label`, debiting only
    /// the amount by which its ε raises the scope's running maximum —
    /// checked against the hard cap *before* the fit runs.
    ///
    /// # Errors
    /// * [`FmError::InvalidConfig`] when `label` was already fitted in
    ///   this scope (overlapping shards — parallel composition is
    ///   unsound; use sequential [`PrivacySession::fit`] instead).
    /// * [`FmError::Privacy`] for malformed (ε, δ) metadata or an
    ///   exhausted budget (nothing is committed and the fit is not run).
    /// * Whatever the estimator's own fit returns.
    pub fn fit_shard<E, R>(
        &mut self,
        label: &str,
        estimator: &E,
        shard: &Dataset,
        rng: &mut R,
    ) -> Result<E::Model>
    where
        E: DpEstimator + ?Sized,
        R: Rng,
    {
        self.debit_shard(label, estimator)?;
        estimator.fit(shard, rng)
    }

    /// As [`ParallelFits::fit_shard`], over a streaming [`RowSource`].
    ///
    /// # Errors
    /// As [`ParallelFits::fit_shard`], plus transport errors.
    pub fn fit_shard_stream<E, R>(
        &mut self,
        label: &str,
        estimator: &E,
        shard: &mut dyn RowSource,
        rng: &mut R,
    ) -> Result<E::Model>
    where
        E: DpEstimator + ?Sized,
        R: Rng,
    {
        self.debit_shard(label, estimator)?;
        estimator.fit_stream(shard, rng)
    }

    /// The scope's running `(max ε, max δ)` — what closing it will record.
    #[must_use]
    pub fn composed(&self) -> (f64, f64) {
        (self.max_epsilon, self.max_delta)
    }

    /// Number of shard fits recorded in this scope.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.labels.len()
    }

    /// Closes the scope, committing its `(max ε, max δ)` ledger entry
    /// (a no-op scope with no private shard fits records nothing).
    pub fn finish(mut self) {
        self.commit();
    }

    fn debit_shard<E: DpEstimator + ?Sized>(&mut self, label: &str, estimator: &E) -> Result<()> {
        let Some(epsilon) = estimator.epsilon() else {
            return Ok(()); // non-private: no debit, no disjointness claim
        };
        if self.labels.iter().any(|l| l == label) {
            return Err(FmError::InvalidConfig {
                name: "shard",
                reason: format!(
                    "shard `{label}` was already fitted in this parallel-composition scope; \
                     overlapping shards must compose sequentially"
                ),
            });
        }
        // Validate the full (ε, δ) pair before committing anywhere.
        let entry = fm_privacy::budget::EpsDeltaEntry::validated(
            epsilon,
            estimator.delta().unwrap_or(0.0),
        )?;
        // Incremental max: only the *increase* over the running maximum is
        // new spending under parallel composition.
        let increment = (epsilon - self.max_epsilon).max(0.0);
        if increment > 0.0 {
            if let Some(budget) = &mut self.session.budget {
                budget.spend(increment)?;
            }
        }
        self.max_epsilon = self.max_epsilon.max(epsilon);
        self.max_delta = self.max_delta.max(entry.delta);
        self.labels.push(label.to_string());
        Ok(())
    }

    fn commit(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if self.labels.is_empty() {
            return;
        }
        if let Ok(entry) =
            fm_privacy::budget::EpsDeltaEntry::validated(self.max_epsilon, self.max_delta)
        {
            self.session.ledger.record_entry(entry);
            // A parallel scope's joint release has no single known Rényi
            // curve once shards mix mechanism families, so it enters the
            // moments account as an opaque record (basic composition) —
            // conservative but always sound.
            let _ = self
                .session
                .rdp
                .record_opaque(self.max_epsilon, self.max_delta);
            self.session.fits += 1;
        }
    }
}

impl Drop for ParallelFits<'_> {
    fn drop(&mut self) {
        self.commit();
    }
}

// ---------------------------------------------------------------------------
// Shared (concurrent, optionally WAL-backed) sessions
// ---------------------------------------------------------------------------

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fm_privacy::budget::EpsDeltaEntry;
use fm_privacy::wal::{CompactionPolicy, RecoveryReport, WalLedger, WalStats};

/// One unit of the integer budget counter: 10⁻¹² ε. The running total is
/// kept in **whole quanta** (a plain `u64`), so reserve→abort round-trips
/// restore the exact prior value bit-for-bit — no float-addition drift,
/// no `.max(0.0)` clamp silently absorbing double-refunds, and no
/// per-admission slack for tiny reserve/abort cycles to accumulate into
/// a cap overshoot. Each individual debit is quantized once
/// (round-to-nearest, error ≤ 5·10⁻¹³ ε, far below any meaningful
/// privacy resolution); the integer arithmetic after that is exact.
const EPS_QUANTUM: f64 = 1e-12;

/// Rounds an ε to whole quanta. Validated ε is finite and ≥ 0; values so
/// large they would overflow the counter saturate (and then fail cap
/// checks / `checked_add`, refusing the admission rather than wrapping).
fn eps_to_units(epsilon: f64) -> u64 {
    let units = (epsilon / EPS_QUANTUM).round();
    if units >= 9.0e18 {
        9_000_000_000_000_000_000
    } else {
        units as u64
    }
}

/// The ε an integer quanta count represents.
fn units_to_eps(units: u64) -> f64 {
    // u64 → f64 rounds above 2⁵³ quanta (ε > ~9000); still monotone.
    #[allow(clippy::cast_precision_loss)]
    let units = units as f64;
    units * EPS_QUANTUM
}

/// A reservation the session is tracking but has not yet settled —
/// in-flight budget, counted as **spent** until committed or aborted.
#[derive(Debug, Clone)]
struct OpenReservation {
    tenant: String,
    epsilon: f64,
    delta: f64,
    /// The exact quanta this reservation debited from the running total
    /// — an abort refunds precisely this, restoring the pre-reserve
    /// counter bit-for-bit.
    units: u64,
    /// Recovered-dangling reservations are permanently spent
    /// (fail-closed): resumable and committable, never abortable.
    sealed: bool,
    /// Enters the moments account as an opaque (basic-composed) record
    /// on commit instead of a Rényi curve — parallel-scope increments
    /// (no per-increment curve is sound) and crash-recovered
    /// reservations (their provenance is gone).
    opaque_rdp: bool,
}

#[derive(Debug)]
struct SharedInner {
    ledger: EpsDeltaLedger,
    /// Rényi curves of every **committed** release (see [`record_renyi`]).
    rdp: RdpLedger,
    wal: Option<WalLedger>,
    /// Committed `(ε, δ, fits)` per tenant.
    tenants: BTreeMap<String, (f64, f64, usize)>,
    /// In-flight reservations, by id (mirrors the WAL's open set; the
    /// only store for WAL-less sessions).
    open: BTreeMap<u64, OpenReservation>,
    /// Ids currently held by a live [`FitPermit`] — refuses double-attach.
    attached: BTreeSet<u64>,
    /// Id source for WAL-less sessions (the WAL allocates its own).
    next_local_id: u64,
    fits: usize,
}

impl SharedInner {
    /// The moments account over committed history **plus** in-flight
    /// reservations (fail-closed, like the spent counter) and an
    /// optional candidate debit — what RDP admission checks against the
    /// cap. Open reservations are folded in on the fly from their
    /// (ε, δ), so an abort simply stops contributing; nothing is ever
    /// subtracted from a curve total.
    fn projected_rdp(
        &self,
        candidate: Option<(f64, f64)>,
        target_delta: f64,
    ) -> Result<MomentsAccount> {
        let mut projected = self.rdp.clone();
        for r in self.open.values() {
            if r.opaque_rdp {
                let _ = projected.record_opaque(r.epsilon, r.delta);
            } else {
                record_renyi(&mut projected, r.epsilon, r.delta);
            }
        }
        if let Some((epsilon, delta)) = candidate {
            record_renyi(&mut projected, epsilon, delta);
        }
        Ok(projected.convert(target_delta)?)
    }
}

/// A **concurrent, crash-safe** privacy session: many tenants × many
/// threads admit or refuse fits against one shared budget without a
/// global `&mut`, and (optionally) every debit is made durable through a
/// [`WalLedger`] *before* any data is scanned.
///
/// Where [`PrivacySession`] is single-threaded bookkeeping for one
/// experiment harness, `SharedPrivacySession` is the silo-side admission
/// controller:
///
/// * **Admission is lock-free and exact**: the running ε total lives in
///   an [`AtomicU64`] counting integer quanta of 10⁻¹² ε (CAS loop), so
///   concurrent [`SharedPrivacySession::begin`] calls race on a
///   compare-exchange, not a lock — the cap can never be oversubscribed
///   (strictly: admitted totals never exceed the cap's own quantization,
///   with no per-admission slack), refusal happens *before* any scan or
///   noise draw, and a reserve→abort round-trip restores the exact
///   pre-reserve total bit-for-bit.
/// * **Two-phase debits**: `begin` reserves (fsync'd to the WAL when one
///   is attached), the returned [`FitPermit`] settles — [`FitPermit::commit`]
///   after the release is published, [`FitPermit::abort`] only if the
///   fit provably never touched data. **Dropping a permit commits it**:
///   losing track of an in-flight fit must never refund budget that a
///   mechanism may have spent (fail-closed).
/// * **Crash-safe**: reopening the WAL replays history; reservations that
///   were in flight at the crash come back **sealed** — still counted
///   spent, resumable via [`SharedPrivacySession::resume_reservation`]
///   (which never re-debits), but not abortable. Recovery can therefore
///   only ever *over*-count spent ε, never under-count it.
///
/// ```
/// use fm_core::session::SharedPrivacySession;
///
/// let session = SharedPrivacySession::with_cap(1.0).unwrap();
/// let permit = session.begin("census-us", "fit-a", 0.6, 0.0).unwrap();
/// // … run the fit under `permit` …
/// permit.commit().unwrap();
/// assert!(session.begin("census-us", "fit-b", 0.6, 0.0).is_err()); // 0.4 left
/// ```
#[derive(Debug)]
pub struct SharedPrivacySession {
    cap: Option<f64>,
    /// The cap in whole quanta (pre-rounded once, so every admission
    /// compares integers).
    cap_units: Option<u64>,
    /// Admit against the moments accountant instead of the naive Σε:
    /// `Some(target δ)` checks the RDP-converted ε (committed +
    /// in-flight + candidate) against the cap under the session lock.
    rdp_admission: Option<f64>,
    /// Running ε total (committed + in-flight), in integer quanta of
    /// [`EPS_QUANTUM`].
    spent_units: AtomicU64,
    inner: Mutex<SharedInner>,
}

impl Default for SharedPrivacySession {
    fn default() -> Self {
        SharedPrivacySession::new()
    }
}

impl SharedPrivacySession {
    /// An uncapped, in-memory shared session (audit ledger only).
    #[must_use]
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A shared session enforcing a total ε cap across every tenant and
    /// thread.
    ///
    /// # Errors
    /// [`FmError::Privacy`] unless `total_epsilon` is finite and > 0.
    pub fn with_cap(total_epsilon: f64) -> Result<Self> {
        // Reuse PrivacyBudget's validation so the constraint can't drift.
        PrivacyBudget::new(total_epsilon)?;
        Ok(Self::build(Some(total_epsilon), None))
    }

    /// A shared session whose every debit is made **durable** through a
    /// write-ahead log at `path` (created if absent, replayed if present).
    /// Returns the session plus the WAL's [`RecoveryReport`]; after a
    /// crash, `report.sealed_dangling` reservations come back counted as
    /// spent and resumable via
    /// [`SharedPrivacySession::resume_reservation`].
    ///
    /// # Errors
    /// [`FmError::Privacy`] for an invalid cap or a WAL that cannot be
    /// opened/replayed ([`fm_privacy::PrivacyError::Durability`] — a
    /// corrupt log is refused, not silently reset).
    pub fn with_wal(
        path: impl AsRef<std::path::Path>,
        cap: Option<f64>,
    ) -> Result<(Self, RecoveryReport)> {
        if let Some(total) = cap {
            PrivacyBudget::new(total)?;
        }
        let (wal, report) = WalLedger::open(path)?;
        let session = Self::build(cap, Some(wal));
        Ok((session, report))
    }

    fn build(cap: Option<f64>, wal: Option<WalLedger>) -> Self {
        let mut inner = SharedInner {
            ledger: EpsDeltaLedger::new(),
            rdp: RdpLedger::new(),
            wal: None,
            tenants: BTreeMap::new(),
            open: BTreeMap::new(),
            attached: BTreeSet::new(),
            next_local_id: 1,
            fits: 0,
        };
        let mut spent_units: u64 = 0;
        if let Some(wal) = wal {
            // Preload everything the log already knows. Committed history
            // lands as one aggregate ledger entry per tenant — Σε is
            // preserved exactly, and the advanced-composition bound only
            // gets *more* conservative under aggregation ((Σε)² ≥ Σε²).
            // The moments account gets the same aggregates as opaque
            // records: the per-release curves are gone, so basic
            // composition is all the recovered history can claim.
            for (tenant, eps, delta, fits) in wal.committed_by_tenant() {
                if let Ok(entry) = EpsDeltaEntry::validated(eps, delta) {
                    inner.ledger.record_entry(entry);
                }
                let _ = inner.rdp.record_opaque(eps, delta);
                inner.tenants.insert(tenant.to_string(), (eps, delta, fits));
                inner.fits += fits;
                spent_units = spent_units.saturating_add(eps_to_units(eps));
            }
            for r in wal.open_reservations() {
                let units = eps_to_units(r.epsilon);
                spent_units = spent_units.saturating_add(units);
                inner.open.insert(
                    r.id,
                    OpenReservation {
                        tenant: r.tenant.clone(),
                        epsilon: r.epsilon,
                        delta: r.delta,
                        units,
                        sealed: r.sealed,
                        opaque_rdp: true,
                    },
                );
            }
            inner.wal = Some(wal);
        }
        SharedPrivacySession {
            cap,
            cap_units: cap.map(eps_to_units),
            rdp_admission: None,
            spent_units: AtomicU64::new(spent_units),
            inner: Mutex::new(inner),
        }
    }

    /// Switches cap admission from the naive running Σε to the **moments
    /// accountant**: a [`SharedPrivacySession::begin`] is admitted iff
    /// the RDP-converted ε at target `delta` — over committed history,
    /// in-flight reservations, and the candidate — stays within the cap.
    /// For many-release workloads this admits far more fits under the
    /// same cap (the naive sum over-counts by the full composition gap).
    /// No-op on an uncapped session. The RDP check runs under the
    /// session lock; the lock-free counter keeps tracking the naive Σε
    /// for [`SharedPrivacySession::spent_epsilon`] but no longer refuses
    /// on it.
    ///
    /// # Errors
    /// [`FmError::Privacy`] unless `delta ∈ (0, 1)`.
    pub fn admit_by_rdp(mut self, delta: f64) -> Result<Self> {
        if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
            return Err(FmError::Privacy(
                fm_privacy::PrivacyError::InvalidParameter {
                    name: "delta",
                    value: delta,
                    constraint: "RDP admission target must satisfy 0 < delta < 1",
                },
            ));
        }
        self.rdp_admission = Some(delta);
        Ok(self)
    }

    /// Lock-free cap admission: atomically raises the running total by
    /// `units` quanta, refusing (without side effects) when the integer
    /// cap would be exceeded. Under RDP admission the naive cap check is
    /// skipped — the moments-accountant check in
    /// [`SharedPrivacySession::begin`] is the admission criterion — but
    /// the counter still tracks the fail-closed Σε.
    fn try_spend(&self, units: u64) -> Result<()> {
        let mut cur = self.spent_units.load(Ordering::Acquire);
        loop {
            let exhausted = |spent_units: u64| {
                FmError::Privacy(fm_privacy::PrivacyError::BudgetExhausted {
                    requested: units_to_eps(units),
                    remaining: self
                        .cap
                        .map_or(0.0, |cap| (cap - units_to_eps(spent_units)).max(0.0)),
                })
            };
            let Some(new) = cur.checked_add(units) else {
                return Err(exhausted(cur));
            };
            if self.rdp_admission.is_none() {
                if let Some(cap_units) = self.cap_units {
                    if new > cap_units {
                        return Err(exhausted(cur));
                    }
                }
            }
            match self.spent_units.compare_exchange_weak(
                cur,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically lowers the running total by exactly the quanta a
    /// reservation debited — integer subtraction, so the pre-reserve
    /// value is restored bit-for-bit. Underflow is structurally
    /// impossible (every refund comes from settling an open reservation
    /// exactly once; double-settlement errors upstream), so it is only
    /// debug-asserted, and saturates rather than wraps in release.
    fn unspend(&self, units: u64) {
        let mut cur = self.spent_units.load(Ordering::Acquire);
        loop {
            debug_assert!(cur >= units, "refunded more quanta than were spent");
            // Saturate: a (buggy) over-refund must not wrap into an
            // astronomically large spent total and brick admission.
            let new = cur.saturating_sub(units);
            match self.spent_units.compare_exchange_weak(
                cur,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserves `(ε, δ)` for one fit by `tenant` under `label`, returning
    /// the [`FitPermit`] that must settle it. The debit is counted (and,
    /// with a WAL, fsync'd) **before** this returns — refuse-before-scan:
    /// a caller that cannot get a permit has spent nothing and must not
    /// touch the data.
    ///
    /// # Errors
    /// * [`FmError::Privacy`] for malformed (ε, δ), an exhausted cap
    ///   (nothing is committed), or a WAL append failure (the atomic
    ///   admission is rolled back — a debit that isn't durable doesn't
    ///   count as granted).
    pub fn begin(
        &self,
        tenant: &str,
        label: &str,
        epsilon: f64,
        delta: f64,
    ) -> Result<FitPermit<'_>> {
        self.begin_with(tenant, label, epsilon, delta, false)
    }

    /// [`SharedPrivacySession::begin`] plus the `opaque_rdp` marker for
    /// reservations that must enter the moments account as basic-composed
    /// records (parallel-scope increments).
    fn begin_with(
        &self,
        tenant: &str,
        label: &str,
        epsilon: f64,
        delta: f64,
        opaque_rdp: bool,
    ) -> Result<FitPermit<'_>> {
        let entry = EpsDeltaEntry::validated(epsilon, delta)?;
        let units = eps_to_units(entry.epsilon);
        self.try_spend(units)?;
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let (Some(target_delta), Some(cap)) = (self.rdp_admission, self.cap) {
            // Moments-accountant admission: the converted ε over committed
            // + in-flight + this candidate must stay within the cap.
            let projected = inner
                .projected_rdp(Some((entry.epsilon, entry.delta)), target_delta)
                .map(|account| account.epsilon);
            match projected {
                Ok(projected) if projected <= cap => {}
                Ok(_) => {
                    let current = inner
                        .projected_rdp(None, target_delta)
                        .map_or(0.0, |account| account.epsilon);
                    drop(inner);
                    self.unspend(units);
                    return Err(FmError::Privacy(
                        fm_privacy::PrivacyError::BudgetExhausted {
                            requested: entry.epsilon,
                            remaining: (cap - current).max(0.0),
                        },
                    ));
                }
                Err(e) => {
                    drop(inner);
                    self.unspend(units);
                    return Err(e);
                }
            }
        }
        let id = match &mut inner.wal {
            Some(wal) => match wal.reserve(tenant, label, entry.epsilon, entry.delta) {
                Ok(id) => id,
                Err(e) => {
                    drop(inner);
                    self.unspend(units);
                    return Err(e.into());
                }
            },
            None => {
                let id = inner.next_local_id;
                inner.next_local_id += 1;
                id
            }
        };
        inner.open.insert(
            id,
            OpenReservation {
                tenant: tenant.to_string(),
                epsilon: entry.epsilon,
                delta: entry.delta,
                units,
                sealed: false,
                opaque_rdp,
            },
        );
        inner.attached.insert(id);
        Ok(FitPermit {
            session: self,
            id,
            epsilon: entry.epsilon,
            settled: false,
        })
    }

    /// Re-attaches to a reservation that is already counted as spent —
    /// typically one recovery found dangling (sealed) after a crash, with
    /// its id carried in a [`crate::estimator::PartialFit::checkpoint`]
    /// snapshot. **Never re-debits**: the budget was spent when the
    /// original `begin` ran; the permit returned here merely lets the
    /// resumed fit settle it. Sealed reservations refuse
    /// [`FitPermit::abort`] (the interrupted fit may have touched data).
    ///
    /// # Errors
    /// [`FmError::Privacy`] ([`fm_privacy::PrivacyError::Durability`])
    /// when `id` is unknown, already settled, or already attached to a
    /// live permit.
    pub fn resume_reservation(&self, id: u64) -> Result<FitPermit<'_>> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(open) = inner.open.get(&id) else {
            return Err(FmError::Privacy(fm_privacy::PrivacyError::Durability {
                op: "resume",
                detail: format!("reservation {id} is unknown or already settled"),
            }));
        };
        let epsilon = open.epsilon;
        if !inner.attached.insert(id) {
            return Err(FmError::Privacy(fm_privacy::PrivacyError::Durability {
                op: "resume",
                detail: format!("reservation {id} is already attached to a live permit"),
            }));
        }
        Ok(FitPermit {
            session: self,
            id,
            epsilon,
            settled: false,
        })
    }

    /// Settles a permit **exactly once**. `commit = false` (abort) is
    /// refused for sealed reservations and rolls the atomic admission
    /// back by the reservation's exact debited quanta on success; a
    /// second settlement of the same id errors (the open-set entry is
    /// gone), so a double-refund cannot occur.
    fn settle(&self, id: u64, commit: bool) -> Result<()> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // The caller's permit is consumed whatever happens below, so the
        // id is no longer attached — on failure the reservation stays
        // open (still spent) and a later resume_reservation can settle it.
        inner.attached.remove(&id);
        let Some(open) = inner.open.get(&id).cloned() else {
            return Err(FmError::Privacy(fm_privacy::PrivacyError::Durability {
                op: if commit { "commit" } else { "abort" },
                detail: format!("reservation {id} is unknown or already settled"),
            }));
        };
        if commit {
            if let Some(wal) = &mut inner.wal {
                wal.commit(id)?;
            }
            inner.open.remove(&id);
            let slot = inner
                .tenants
                .entry(open.tenant.clone())
                .or_insert((0.0, 0.0, 0));
            slot.0 += open.epsilon;
            slot.1 += open.delta;
            slot.2 += 1;
            if let Ok(entry) = EpsDeltaEntry::validated(open.epsilon, open.delta) {
                inner.ledger.record_entry(entry);
            }
            if open.opaque_rdp {
                let _ = inner.rdp.record_opaque(open.epsilon, open.delta);
            } else {
                record_renyi(&mut inner.rdp, open.epsilon, open.delta);
            }
            inner.fits += 1;
        } else {
            if open.sealed {
                return Err(FmError::Privacy(fm_privacy::PrivacyError::Durability {
                    op: "abort",
                    detail: format!(
                        "reservation {id} was recovered from a crash and is sealed: \
                         the interrupted fit may have touched data, so its budget \
                         is permanently spent (commit or resume instead)"
                    ),
                }));
            }
            if let Some(wal) = &mut inner.wal {
                wal.abort(id)?;
            }
            inner.open.remove(&id);
            drop(inner);
            self.unspend(open.units);
        }
        Ok(())
    }

    /// Total ε currently counted as spent — committed releases **plus**
    /// in-flight reservations (fail-closed: budget is spent the moment it
    /// is granted, reclaimed only by an explicit, legal abort). The value
    /// is the integer quanta counter scaled back to ε: each debit was
    /// quantized to 10⁻¹² once, and everything after that is exact —
    /// reserve→abort round-trips return this to bit-for-bit the prior
    /// value.
    #[must_use]
    pub fn spent_epsilon(&self) -> f64 {
        units_to_eps(self.spent_units.load(Ordering::Acquire))
    }

    /// ε still grantable under the cap (`None` when uncapped).
    #[must_use]
    pub fn remaining_epsilon(&self) -> Option<f64> {
        self.cap.map(|c| (c - self.spent_epsilon()).max(0.0))
    }

    /// Committed fits so far (in-flight permits are not yet fits).
    #[must_use]
    pub fn committed_fits(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .fits
    }

    /// `(Σε, Σδ)` counted against `tenant`: committed history plus
    /// in-flight reservations (fail-closed, like
    /// [`SharedPrivacySession::spent_epsilon`]).
    #[must_use]
    pub fn spent_for(&self, tenant: &str) -> (f64, f64) {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (mut eps, mut delta, _) = inner.tenants.get(tenant).copied().unwrap_or((0.0, 0.0, 0));
        for open in inner.open.values() {
            if open.tenant == tenant {
                eps += open.epsilon;
                delta += open.delta;
            }
        }
        (eps, delta)
    }

    /// The composed guarantee of every **committed** release at
    /// advanced-composition slack `delta_prime`. In-flight reservations
    /// are excluded (they have not released anything yet) — use
    /// [`SharedPrivacySession::spent_epsilon`] for the fail-closed total.
    /// After a WAL recovery, pre-crash history enters as one aggregate
    /// entry per tenant: Σε is exact and the advanced bound is
    /// conservative (never tighter than the per-fit bound would be).
    ///
    /// # Errors
    /// [`FmError::Privacy`] unless `delta_prime ∈ (0, 1)`.
    pub fn report(&self, delta_prime: f64) -> Result<CompositionReport> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let basic = inner.ledger.basic_composition();
        let advanced = inner.ledger.advanced_composition(delta_prime)?;
        let best = inner.ledger.best_composition(delta_prime)?;
        let rdp = inner.rdp.convert(delta_prime)?;
        Ok(CompositionReport {
            fits: inner.fits,
            basic,
            advanced,
            best,
            rdp,
        })
    }

    /// Reconciles the session's integer spent counter against the WAL's
    /// own (float-summed) totals — the drift check that motivated the
    /// integer counter in the first place. The two are computed by
    /// different arithmetic over the same records, so they agree only up
    /// to one quantization step per record; any larger divergence means
    /// the admission counter and the durable log have genuinely come
    /// apart. Call at quiescence: an admission concurrently between its
    /// counter update and its WAL append shows up as transient drift.
    /// No-op without a WAL.
    ///
    /// # Errors
    /// [`FmError::Privacy`] ([`fm_privacy::PrivacyError::Durability`])
    /// when the totals diverge beyond per-record quantization error.
    pub fn reconcile_wal(&self) -> Result<()> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(wal) = &inner.wal else {
            return Ok(());
        };
        let wal_epsilon = wal.spent().0;
        let records = inner.fits + inner.open.len();
        drop(inner);
        let session_epsilon = self.spent_epsilon();
        #[allow(clippy::cast_precision_loss)]
        let tolerance = (records as f64 + 1.0) * EPS_QUANTUM;
        if (wal_epsilon - session_epsilon).abs() > tolerance {
            return Err(FmError::Privacy(fm_privacy::PrivacyError::Durability {
                op: "reconcile",
                detail: format!(
                    "session spent counter {session_epsilon} and WAL total {wal_epsilon} \
                     diverge beyond quantization tolerance {tolerance}"
                ),
            }));
        }
        Ok(())
    }

    /// Compacts the attached WAL (no-op without one): rewrites the log as
    /// per-tenant committed totals plus the still-open reservations, so
    /// the file stops growing with fit count.
    ///
    /// # Errors
    /// [`FmError::Privacy`] on WAL I/O failure.
    pub fn compact_wal(&self) -> Result<()> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(wal) = &mut inner.wal {
            wal.compact()?;
        }
        Ok(())
    }

    /// Size/garbage statistics of the attached WAL (`None` without one) —
    /// what a background [`CompactionPolicy`] consults.
    #[must_use]
    pub fn wal_stats(&self) -> Option<WalStats> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.wal.as_ref().map(WalLedger::stats)
    }

    /// Open reservations **not** attached to a live permit: crash-recovered
    /// (sealed) reservations awaiting [`SharedPrivacySession::resume_reservation`],
    /// plus reservations a checkpointing shutdown detached
    /// ([`FitPermit::detach`]). All still counted as spent.
    #[must_use]
    pub fn dangling_reservations(&self) -> usize {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner
            .open
            .keys()
            .filter(|id| !inner.attached.contains(id))
            .count()
    }

    /// Compacts the attached WAL **iff** `policy` says it is due *and* no
    /// reservation is dangling; returns whether a compaction ran. The call
    /// a serving loop makes after every settle: cheap when not due (one
    /// stats read under the session lock), and deliberately conservative —
    /// a dangling reservation is one some checkpoint snapshot may
    /// reference, and while compaction preserves reservation ids, a log
    /// that is about to be resumed against is left byte-for-byte alone.
    ///
    /// No-op (`Ok(false)`) without a WAL.
    ///
    /// # Errors
    /// [`FmError::Privacy`] on WAL I/O failure during the rewrite (the
    /// original log is untouched on failure).
    pub fn maybe_compact_wal(&self, policy: &CompactionPolicy) -> Result<bool> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let SharedInner {
            wal,
            open,
            attached,
            ..
        } = &mut *inner;
        let Some(wal) = wal.as_mut() else {
            return Ok(false);
        };
        if !policy.due(&wal.stats()) {
            return Ok(false);
        }
        if open.keys().any(|id| !attached.contains(id)) {
            return Ok(false);
        }
        wal.compact()?;
        Ok(true)
    }

    /// [`SharedPrivacySession::begin`] for sessions shared behind an
    /// [`Arc`](std::sync::Arc): identical admission (same lock-free CAS,
    /// same refuse-before-scan durability), but the returned
    /// [`OwnedFitPermit`] carries its own session handle instead of a
    /// borrow — what a service hands to a worker thread along with the
    /// job.
    ///
    /// # Errors
    /// As [`SharedPrivacySession::begin`].
    pub fn begin_owned(
        self: &std::sync::Arc<Self>,
        tenant: &str,
        label: &str,
        epsilon: f64,
        delta: f64,
    ) -> Result<OwnedFitPermit> {
        let permit = self.begin(tenant, label, epsilon, delta)?;
        Ok(OwnedFitPermit::adopt(std::sync::Arc::clone(self), permit))
    }

    /// [`SharedPrivacySession::resume_reservation`], owned-permit flavour
    /// (see [`SharedPrivacySession::begin_owned`]). Never re-debits.
    ///
    /// # Errors
    /// As [`SharedPrivacySession::resume_reservation`].
    pub fn resume_reservation_owned(
        self: &std::sync::Arc<Self>,
        id: u64,
    ) -> Result<OwnedFitPermit> {
        let permit = self.resume_reservation(id)?;
        Ok(OwnedFitPermit::adopt(std::sync::Arc::clone(self), permit))
    }

    /// Releases `id` from its live permit without settling it (see
    /// [`FitPermit::detach`]).
    fn detach_reservation(&self, id: u64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.attached.remove(&id);
    }

    /// Opens a **parallel-composition** scope for `tenant`: fits on
    /// provably disjoint shards admitted through it cost `max εᵢ` in
    /// total, debited incrementally (each shard pays only the amount by
    /// which it raises the running maximum, reserved through the WAL
    /// *before* the shard fit runs and committed when the scope closes).
    /// Labels enforce the code-checkable half of disjointness exactly as
    /// [`PrivacySession::parallel_fits`] does.
    #[must_use]
    pub fn parallel_scope(&self, tenant: &str) -> SharedParallelScope<'_> {
        SharedParallelScope {
            session: self,
            tenant: tenant.to_string(),
            max_epsilon: 0.0,
            max_delta: 0.0,
            labels: Vec::new(),
            increments: Vec::new(),
            closed: false,
        }
    }
}

/// A granted, unsettled budget reservation (see
/// [`SharedPrivacySession::begin`]). Exactly one of three things happens
/// to it:
///
/// * [`FitPermit::commit`] — the fit released a model; the spend becomes
///   committed history.
/// * [`FitPermit::abort`] — the fit provably never touched data (e.g. its
///   source failed before the first block); the budget is reclaimed.
///   Refused for sealed (crash-recovered) reservations.
/// * **Drop** — treated as commit. Losing a permit must never refund
///   budget a mechanism may have spent (fail-closed).
#[derive(Debug)]
#[must_use = "a dropped permit commits its debit; settle it explicitly"]
pub struct FitPermit<'s> {
    session: &'s SharedPrivacySession,
    id: u64,
    epsilon: f64,
    settled: bool,
}

impl FitPermit<'_> {
    /// The reservation id — durable across crashes when the session has a
    /// WAL; carry it in streaming-fit checkpoints
    /// ([`crate::estimator::PartialFit::with_reservation`]) so a resumed
    /// fit re-attaches instead of re-debiting.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The ε this permit reserved.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Settles the reservation as spent-and-released.
    ///
    /// # Errors
    /// [`FmError::Privacy`] on WAL I/O failure (the reservation stays
    /// open — still counted spent — and the permit is consumed; recovery
    /// or a later [`SharedPrivacySession::resume_reservation`] can settle
    /// it).
    pub fn commit(mut self) -> Result<()> {
        self.settled = true;
        self.session.settle(self.id, true)
    }

    /// Reclaims the reservation — legal **only** when the fit never
    /// touched data.
    ///
    /// # Errors
    /// [`FmError::Privacy`] when the reservation is sealed (crash-
    /// recovered: permanently spent) or on WAL I/O failure. Either way
    /// the budget stays debited.
    pub fn abort(mut self) -> Result<()> {
        self.settled = true;
        self.session.settle(self.id, false)
    }

    /// Consumes the permit **without settling**: the reservation stays
    /// open — still counted as spent, exactly as durable as `begin` made
    /// it — and immediately becomes re-attachable via
    /// [`SharedPrivacySession::resume_reservation`], in this process or
    /// (with a WAL) the next one. Returns the reservation id.
    ///
    /// This is the graceful-shutdown half of checkpointing: snapshot the
    /// partial fit (which embeds this id), detach, exit. Unlike drop,
    /// nothing is committed — a resumed fit must be able to finish and
    /// commit under the *same* reservation, debiting exactly once.
    #[must_use = "carry the returned id (or a checkpoint embedding it) to resume later"]
    pub fn detach(mut self) -> u64 {
        self.settled = true;
        let id = self.id;
        self.session.detach_reservation(id);
        id
    }
}

impl Drop for FitPermit<'_> {
    fn drop(&mut self) {
        if !self.settled {
            // Fail-closed: an abandoned permit commits. Errors are
            // swallowed — the reservation then stays open, which still
            // counts as spent.
            let _ = self.session.settle(self.id, true);
        }
    }
}

/// An owning, `'static` flavour of [`FitPermit`] for sessions shared
/// behind an [`Arc`](std::sync::Arc) (see
/// [`SharedPrivacySession::begin_owned`]): carries its session handle, so
/// a service can move the permit into a worker-thread job that outlives
/// the submitting stack frame. Settlement semantics are identical —
/// commit, abort (refused when sealed), detach-for-checkpoint, and
/// **drop commits** (fail-closed).
#[derive(Debug)]
#[must_use = "a dropped permit commits its debit; settle it explicitly"]
pub struct OwnedFitPermit {
    session: std::sync::Arc<SharedPrivacySession>,
    id: u64,
    epsilon: f64,
    settled: bool,
}

impl OwnedFitPermit {
    /// Transfers settlement duty from a borrowed permit to an owned one.
    fn adopt(session: std::sync::Arc<SharedPrivacySession>, mut permit: FitPermit<'_>) -> Self {
        // The borrowed permit's Drop must not settle: this permit now owns
        // the reservation.
        permit.settled = true;
        let (id, epsilon) = (permit.id, permit.epsilon);
        OwnedFitPermit {
            session,
            id,
            epsilon,
            settled: false,
        }
    }

    /// The reservation id (see [`FitPermit::id`]).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The ε this permit reserved.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Settles the reservation as spent-and-released (see
    /// [`FitPermit::commit`]).
    ///
    /// # Errors
    /// As [`FitPermit::commit`].
    pub fn commit(mut self) -> Result<()> {
        self.settled = true;
        self.session.settle(self.id, true)
    }

    /// Reclaims the reservation — legal **only** when the fit never
    /// touched data (see [`FitPermit::abort`]).
    ///
    /// # Errors
    /// As [`FitPermit::abort`].
    pub fn abort(mut self) -> Result<()> {
        self.settled = true;
        self.session.settle(self.id, false)
    }

    /// Consumes the permit without settling, leaving the reservation open
    /// and resumable (see [`FitPermit::detach`]).
    #[must_use = "carry the returned id (or a checkpoint embedding it) to resume later"]
    pub fn detach(mut self) -> u64 {
        self.settled = true;
        let id = self.id;
        self.session.detach_reservation(id);
        id
    }
}

impl Drop for OwnedFitPermit {
    fn drop(&mut self) {
        if !self.settled {
            // Fail-closed, exactly as FitPermit.
            let _ = self.session.settle(self.id, true);
        }
    }
}

/// An open parallel-composition scope on a [`SharedPrivacySession`] (see
/// [`SharedPrivacySession::parallel_scope`]): shard admissions debit only
/// increments of the running `max εᵢ`, each increment WAL-reserved before
/// the shard runs, all committed when the scope closes. Dropping the
/// scope commits too (fail-closed — increments are never refunded).
pub struct SharedParallelScope<'s> {
    session: &'s SharedPrivacySession,
    tenant: String,
    max_epsilon: f64,
    max_delta: f64,
    labels: Vec<String>,
    /// Open increment reservations `(id, ε)` awaiting scope close.
    increments: Vec<(u64, f64)>,
    closed: bool,
}

impl SharedParallelScope<'_> {
    /// Admits a shard fit at `(ε, δ)` under `label`, debiting (and
    /// WAL-reserving) only the increase over the scope's running maximum.
    /// Must be called — and must succeed — *before* the shard fit touches
    /// data.
    ///
    /// # Errors
    /// * [`FmError::InvalidConfig`] when `label` was already admitted in
    ///   this scope (overlapping shards compose sequentially).
    /// * [`FmError::Privacy`] for malformed (ε, δ), an exhausted cap, or
    ///   a WAL failure (the atomic admission is rolled back).
    pub fn admit(&mut self, label: &str, epsilon: f64, delta: f64) -> Result<()> {
        let entry = EpsDeltaEntry::validated(epsilon, delta)?;
        if self.labels.iter().any(|l| l == label) {
            return Err(FmError::InvalidConfig {
                name: "shard",
                reason: format!(
                    "shard `{label}` was already admitted in this parallel-composition scope; \
                     overlapping shards must compose sequentially"
                ),
            });
        }
        let increment = (entry.epsilon - self.max_epsilon).max(0.0);
        if increment > 0.0 {
            // Reserve the increment exactly as a standalone fit would —
            // atomically admitted, WAL-fsync'd, rolled back on failure.
            // Marked opaque for the moments account: increments of one
            // parallel release have no sound per-increment Rényi curve.
            let permit = self.session.begin_with(
                &self.tenant,
                &format!("{}+{label}", self.labels.len()),
                increment,
                entry.delta.max(self.max_delta) - self.max_delta,
                true,
            )?;
            self.increments.push((permit.id(), increment));
            // The scope, not the permit, owns settlement.
            std::mem::forget(permit);
        }
        self.max_epsilon = self.max_epsilon.max(entry.epsilon);
        self.max_delta = self.max_delta.max(entry.delta);
        self.labels.push(label.to_string());
        Ok(())
    }

    /// The scope's running `(max ε, max δ)`.
    #[must_use]
    pub fn composed(&self) -> (f64, f64) {
        (self.max_epsilon, self.max_delta)
    }

    /// Number of shards admitted so far.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.labels.len()
    }

    /// The shard labels admitted so far, in admission order — an audit
    /// hook for callers that must prove *who* was debited (a federated
    /// coordinator asserting that dropped clients never reached the
    /// scope, for example).
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Closes the scope, committing every increment reservation. (Σ of
    /// the committed increments = the scope's `max ε` — the one release
    /// the parallel composition theorem charges for.)
    ///
    /// # Errors
    /// [`FmError::Privacy`] on WAL I/O failure; unsettled increments stay
    /// open, which still counts as spent (fail-closed).
    pub fn finish(mut self) -> Result<()> {
        self.close()
    }

    fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        let mut first_err = None;
        for (id, _epsilon) in self.increments.drain(..) {
            if let Err(e) = self.session.settle(id, true) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for SharedParallelScope<'_> {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::DpLinearRegression;
    use fm_data::metrics;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(808)
    }

    #[test]
    fn session_debits_every_fit() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_000, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.3).build();
        let mut session = PrivacySession::new();
        for _ in 0..4 {
            session.fit(&est, &data, &mut r).unwrap();
        }
        assert_eq!(session.num_fits(), 4);
        assert!((session.spent_epsilon() - 1.2).abs() < 1e-12);
        assert_eq!(session.spent_delta(), 0.0);
        assert_eq!(session.remaining_epsilon(), None);
    }

    #[test]
    fn over_budget_fit_errors_before_running() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 1_000, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.6).build();
        let mut session = PrivacySession::with_budget(1.0).unwrap();
        session.fit(&est, &data, &mut r).unwrap();
        let err = session.fit(&est, &data, &mut r).unwrap_err();
        assert!(matches!(err, FmError::Privacy(_)), "{err}");
        // The refused fit must not be recorded.
        assert_eq!(session.num_fits(), 1);
        assert!((session.spent_epsilon() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn malformed_delta_is_refused_without_touching_budget_or_ledger() {
        // An estimator advertising an invalid δ must be rejected *before*
        // anything is committed: budget and ledger stay in lock-step.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 2, 0.1);
        let est = DpLinearRegression::builder()
            .epsilon(0.5)
            .noise(crate::NoiseDistribution::Gaussian { delta: 1.0 })
            .build();
        let mut session = PrivacySession::with_budget(1.0).unwrap();
        assert!(!session.can_fit(&est));
        let err = session.fit(&est, &data, &mut r).unwrap_err();
        assert!(matches!(err, FmError::Privacy(_)), "{err}");
        assert_eq!(session.num_fits(), 0);
        assert_eq!(session.spent_epsilon(), 0.0);
        assert_eq!(session.remaining_epsilon(), Some(1.0));
    }

    #[test]
    fn can_fit_preflight_tracks_the_budget() {
        // A non-private stand-in: never debited, always passes pre-flight.
        struct Free;
        impl DpEstimator for Free {
            type Model = ();
            fn fit(&self, _: &Dataset, _: &mut dyn rand::RngCore) -> Result<()> {
                Ok(())
            }
            fn epsilon(&self) -> Option<f64> {
                None
            }
            fn task(&self) -> crate::ModelKind {
                crate::ModelKind::Linear
            }
        }

        let est = DpLinearRegression::builder().epsilon(0.6).build();
        let mut session = PrivacySession::with_budget(1.0).unwrap();
        assert!(session.can_fit(&est));
        assert!(session.can_fit(&Free));
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 2, 0.1);
        session.fit(&est, &data, &mut r).unwrap();
        assert!(!session.can_fit(&est), "0.4 left < 0.6 asked");
        assert!(session.can_fit(&Free), "non-private is never refused");
    }

    #[test]
    fn parallel_scope_debits_max_not_sum() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 3_000, 2, 0.1);
        let idx: Vec<usize> = (0..data.n()).collect();
        let shards = [
            data.subset(&idx[..1_000]).unwrap(),
            data.subset(&idx[1_000..2_000]).unwrap(),
            data.subset(&idx[2_000..]).unwrap(),
        ];
        let small = DpLinearRegression::builder().epsilon(0.3).build();
        let large = DpLinearRegression::builder().epsilon(0.5).build();

        let mut session = PrivacySession::with_budget(1.0).unwrap();
        let mut scope = session.parallel_fits();
        scope.fit_shard("a", &small, &shards[0], &mut r).unwrap();
        scope.fit_shard("b", &large, &shards[1], &mut r).unwrap();
        scope.fit_shard("c", &small, &shards[2], &mut r).unwrap();
        assert_eq!(scope.num_shards(), 3);
        assert_eq!(scope.composed(), (0.5, 0.0));
        scope.finish();

        // One release at max(ε) = 0.5, not Σε = 1.1 (which would overdraw
        // the 1.0 cap).
        assert_eq!(session.num_fits(), 1);
        assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
        assert!((session.remaining_epsilon().unwrap() - 0.5).abs() < 1e-12);
        let report = session.report(1e-6).unwrap();
        assert!((report.basic.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_scope_refuses_overlapping_shards() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.2).build();
        let mut session = PrivacySession::new();
        let mut scope = session.parallel_fits();
        scope.fit_shard("east", &est, &data, &mut r).unwrap();
        // Touching the same shard again breaks disjointness: refused
        // before the mechanism runs, nothing additional debited.
        let err = scope.fit_shard("east", &est, &data, &mut r).unwrap_err();
        assert!(matches!(err, FmError::InvalidConfig { .. }), "{err}");
        assert_eq!(scope.num_shards(), 1);
        scope.finish();
        assert!((session.spent_epsilon() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn parallel_scope_commits_on_drop_and_respects_the_cap() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.6).build();
        let over = DpLinearRegression::builder().epsilon(0.9).build();
        let mut session = PrivacySession::with_budget(0.7).unwrap();
        {
            let mut scope = session.parallel_fits();
            scope.fit_shard("a", &est, &data, &mut r).unwrap();
            // Raising the max to 0.9 needs 0.3 more than the 0.1 left:
            // refused before running, scope keeps its 0.6 max.
            assert!(scope.fit_shard("b", &over, &data, &mut r).is_err());
            // Dropped without finish(): the ledger entry must still land.
        }
        assert_eq!(session.num_fits(), 1);
        assert!((session.spent_epsilon() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fit_disjoint_shards_releases_one_model_per_shard() {
        use fm_data::stream::InMemorySource;
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 3_000, 2, 0.1);
        let idx: Vec<usize> = (0..data.n()).collect();
        let parts = [
            data.subset(&idx[..1_500]).unwrap(),
            data.subset(&idx[1_500..]).unwrap(),
        ];
        let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
        let est = DpLinearRegression::builder().epsilon(0.4).build();
        let mut session = PrivacySession::with_budget(0.5).unwrap();
        let models = session
            .fit_disjoint_shards(&est, &mut shards, &mut r)
            .unwrap();
        assert_eq!(models.len(), 2);
        assert!((session.spent_epsilon() - 0.4).abs() < 1e-12);
        assert_eq!(session.num_fits(), 1);
    }

    #[test]
    fn session_fit_stream_debits_like_fit() {
        use fm_data::stream::InMemorySource;
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_000, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.3).build();
        let mut session = PrivacySession::with_budget(0.5).unwrap();
        session
            .fit_stream(&est, &mut InMemorySource::new(&data), &mut r)
            .unwrap();
        assert!((session.spent_epsilon() - 0.3).abs() < 1e-12);
        // Second stream fit would overdraw: refused before touching data.
        assert!(session
            .fit_stream(&est, &mut InMemorySource::new(&data), &mut r)
            .is_err());
    }

    #[test]
    fn cross_validate_composes_k_times_epsilon() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_500, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.2).build();
        let mut session = PrivacySession::new();
        let scores = session
            .cross_validate(&est, &data, 5, &mut r, |m, test| {
                metrics::mse(&m.predict_batch(test.x()), test.y())
            })
            .unwrap();
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(session.num_fits(), 5);
        assert!((session.spent_epsilon() - 1.0).abs() < 1e-12);
        let report = session.report(1e-6).unwrap();
        assert_eq!(report.fits, 5);
        assert!((report.basic.0 - 1.0).abs() < 1e-12);
        assert!(report.best.0 <= report.basic.0 + 1e-12);
    }

    #[test]
    fn shared_session_commit_abort_and_drop_semantics() {
        let session = SharedPrivacySession::with_cap(1.0).unwrap();

        // Commit: spend becomes committed history.
        let p = session.begin("t1", "a", 0.3, 0.0).unwrap();
        assert!(
            (session.spent_epsilon() - 0.3).abs() < 1e-12,
            "in-flight counts as spent"
        );
        p.commit().unwrap();
        assert!((session.spent_epsilon() - 0.3).abs() < 1e-12);
        assert_eq!(session.committed_fits(), 1);

        // Abort: budget reclaimed.
        let p = session.begin("t1", "b", 0.5, 0.0).unwrap();
        assert!((session.spent_epsilon() - 0.8).abs() < 1e-12);
        p.abort().unwrap();
        assert!((session.spent_epsilon() - 0.3).abs() < 1e-12);

        // Drop: fail-closed commit.
        {
            let _p = session.begin("t2", "c", 0.2, 0.0).unwrap();
        }
        assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
        assert_eq!(session.committed_fits(), 2);
        assert!((session.spent_for("t2").0 - 0.2).abs() < 1e-12);

        // Cap refusal happens before anything is committed.
        let err = session.begin("t3", "d", 0.6, 0.0).unwrap_err();
        assert!(matches!(err, FmError::Privacy(_)), "{err}");
        assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
        let report = session.report(1e-6).unwrap();
        assert_eq!(report.fits, 2);
        assert!((report.basic.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_session_never_oversubscribes_under_contention() {
        // 8 threads × 50 attempts at ε = 0.01 against a 0.25 cap: exactly
        // 25-ish grants can land; the committed total must never exceed
        // the cap no matter the interleaving.
        let session = SharedPrivacySession::with_cap(0.25).unwrap();
        let granted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let session = &session;
                let granted = &granted;
                s.spawn(move || {
                    for i in 0..50 {
                        match session.begin(&format!("tenant-{t}"), &format!("fit-{i}"), 0.01, 0.0)
                        {
                            Ok(p) => {
                                granted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                p.commit().unwrap();
                            }
                            Err(FmError::Privacy(fm_privacy::PrivacyError::BudgetExhausted {
                                ..
                            })) => {}
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
        });
        let n = granted.load(std::sync::atomic::Ordering::Relaxed);
        assert!(n >= 25, "cap admits 25 grants, {n} landed");
        assert!(session.spent_epsilon() <= 0.25 + 1e-9, "oversubscribed");
        assert_eq!(session.committed_fits(), n);
    }

    #[test]
    fn shared_session_wal_recovery_is_fail_closed() {
        let dir = std::env::temp_dir().join(format!("fm-shared-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.wal");
        let _ = std::fs::remove_file(&path);

        let (committed_id, dangling_id);
        {
            let (session, report) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
            assert!(report.fresh);
            let p = session.begin("census", "done", 0.4, 0.0).unwrap();
            committed_id = p.id();
            p.commit().unwrap();
            let p = session.begin("census", "in-flight", 0.3, 0.0).unwrap();
            dangling_id = p.id();
            std::mem::forget(p); // simulate a crash: never settled
        }
        assert_ne!(committed_id, dangling_id);

        let (session, report) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
        assert!(!report.fresh);
        assert_eq!(report.sealed_dangling, 1);
        // Fail-closed: the dangling reservation still counts as spent.
        assert!((session.spent_epsilon() - 0.7).abs() < 1e-12);
        assert!((session.spent_for("census").0 - 0.7).abs() < 1e-12);

        // Resume never re-debits…
        let p = session.resume_reservation(dangling_id).unwrap();
        assert!((session.spent_epsilon() - 0.7).abs() < 1e-12);
        // …double-attach is refused…
        assert!(session.resume_reservation(dangling_id).is_err());
        // …abort of a sealed reservation is refused (budget stays spent)…
        let err = p.abort().unwrap_err();
        assert!(matches!(err, FmError::Privacy(_)), "{err}");
        assert!((session.spent_epsilon() - 0.7).abs() < 1e-12);
        // …but commit settles it for good.
        let p = session.resume_reservation(dangling_id).unwrap();
        p.commit().unwrap();
        assert!((session.spent_epsilon() - 0.7).abs() < 1e-12);
        assert_eq!(session.committed_fits(), 2);
        // Unknown / settled ids are refused.
        assert!(session.resume_reservation(dangling_id).is_err());
        assert!(session.resume_reservation(999).is_err());

        // Compaction preserves the totals.
        session.compact_wal().unwrap();
        drop(session);
        let (session, _) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
        assert!((session.spent_epsilon() - 0.7).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_parallel_scope_debits_max_not_sum() {
        let session = SharedPrivacySession::with_cap(1.0).unwrap();
        let mut scope = session.parallel_scope("census");
        scope.admit("east", 0.3, 0.0).unwrap();
        scope.admit("west", 0.5, 0.0).unwrap();
        scope.admit("north", 0.2, 0.0).unwrap();
        // Duplicate labels break disjointness.
        assert!(matches!(
            scope.admit("east", 0.1, 0.0),
            Err(FmError::InvalidConfig { .. })
        ));
        assert_eq!(scope.composed(), (0.5, 0.0));
        assert_eq!(scope.num_shards(), 3);
        // Incremental debits: 0.3 + 0.2 = max ε = 0.5, not Σε = 1.0.
        assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
        scope.finish().unwrap();
        assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
        assert!((session.remaining_epsilon().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_prefers_advanced_composition_for_many_small_fits() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 500, 2, 0.1);
        let est = DpLinearRegression::builder().epsilon(0.05).build();
        let mut session = PrivacySession::new();
        for _ in 0..100 {
            // At ε = 0.05 some draws leave no positive spectrum and the fit
            // fails — but the mechanism ran, so the debit stands either way.
            let _ = session.fit(&est, &data, &mut r);
        }
        assert_eq!(session.num_fits(), 100);
        let report = session.report(1e-6).unwrap();
        assert!((report.basic.0 - 5.0).abs() < 1e-9);
        assert!(
            report.best.0 < report.basic.0,
            "√k regime: advanced ({}) must beat basic ({})",
            report.advanced.0,
            report.basic.0
        );
        assert_eq!(report.best, report.advanced);
    }
}
