//! Section 5 / Algorithm 2: ε-differentially private **logistic
//! regression** via degree-2 Taylor truncation.
//!
//! The logistic cost `f(t_i, ω) = log(1 + exp(x_iᵀω)) − y_i x_iᵀω` is not
//! a finite polynomial, so Algorithm 1 cannot be applied directly. The
//! paper decomposes it as `f₁(g₁) + f₂(g₂)` with `f₁(z) = log(1+eᶻ)`,
//! `g₁ = x_iᵀω`, `f₂(z) = z`, `g₂ = −y_i·x_iᵀω`, Taylor-expands `f₁`
//! around 0 and truncates at degree 2 (Equation 10):
//!
//! ```text
//! f̂_D(ω) = Σ_i [log 2 + ½·x_iᵀω + ⅛·(x_iᵀω)²] − (Σ_i y_i x_iᵀ) ω
//! ```
//!
//! i.e. `M = ⅛ Σ x_i x_iᵀ`, `α = ½ Σ x_i − Σ y_i x_i`, `β = n·log 2`.
//! The truncation error of the averaged objective is bounded by the
//! data-independent constant of Lemma 4 (`fm_poly::taylor`). The
//! coefficient sensitivity is `Δ = d²/4 + 3d` (Section 5.3), so — as the
//! paper stresses — the injected noise is independent of the dataset
//! cardinality.

use rand::{Rng, RngCore};

use fm_data::Dataset;
use fm_poly::chebyshev::logistic_chebyshev;
use fm_poly::taylor::{identity_component, logistic_log1pexp_component, TaylorComponent};
use fm_poly::QuadraticForm;

use crate::estimator::{
    DpEstimator, EstimatorBuilder, FitConfig, FmEstimator, RegressionObjective,
};
use crate::mechanism::{PolynomialObjective, SensitivityBound};
use crate::model::{LogisticModel, ModelKind};
use crate::{FmError, Result};

/// The paper's logistic-regression sensitivity: `Δ = d²/4 + 3d`
/// (Section 5.3).
#[must_use]
pub fn sensitivity_paper(d: usize) -> f64 {
    let d = d as f64;
    d * d / 4.0 + 3.0 * d
}

/// Cauchy–Schwarz-tightened sensitivity: with `Σ|x_j| ≤ √d`,
/// `Δ = 2(√d/2 + d/8 + √d) = 3√d + d/4`.
#[must_use]
pub fn sensitivity_tight(d: usize) -> f64 {
    let d = d as f64;
    3.0 * d.sqrt() + d / 4.0
}

/// The **L2** sensitivity of the truncated logistic coefficient vector for
/// a generic degree-2 surrogate `a₀ + a₁z + a₂z²`: per tuple the degree-≥1
/// blocks are `(a₁ − y)·x` and `a₂·x xᵀ` with `y ∈ {0, 1}` (the constant
/// `a₀` is identical for every tuple, so it cancels between neighbours),
/// giving `Δ₂ = 2√(max(|a₁|, |a₁−1|)² + a₂²)` — independent of `d`. For
/// the paper's Taylor constants `(½, ⅛)` this is `2√(¼ + 1/64) ≈ 1.03`.
#[must_use]
pub fn sensitivity_l2_for(a1: f64, a2: f64) -> f64 {
    let lin = a1.abs().max((a1 - 1.0).abs());
    2.0 * (lin * lin + a2 * a2).sqrt()
}

/// The L2 sensitivity under the paper's Taylor surrogate
/// (`a₁ = ½`, `a₂ = ⅛`).
#[must_use]
pub fn sensitivity_l2() -> f64 {
    sensitivity_l2_for(0.5, 0.125)
}

/// The truncated logistic objective in Algorithm-1 form.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogisticObjective;

impl PolynomialObjective for LogisticObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        // f₁(x ᵀω): β += log 2, α += ½x, M += ⅛xxᵀ.
        logistic_log1pexp_component().accumulate_into(x, q);
        // f₂(−y·xᵀω): α += −y·x (degree-1, exact).
        if y != 0.0 {
            let neg_yx: Vec<f64> = x.iter().map(|&v| -y * v).collect();
            identity_component().accumulate_into(&neg_yx, q);
        }
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        // f₁ batched: β += k·log 2, α += ½·Σx, M += ⅛·XᵀX (Gram kernels).
        logistic_log1pexp_component().accumulate_batch_into(xs, q);
        // f₂ batched: α += −Xᵀy (y = 0 rows contribute exactly zero, as in
        // the per-tuple skip).
        fm_linalg::vecops::gemv_t_acc(-1.0, xs, d, ys, q.alpha_mut());
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        // Same kernels read from the cached transpose (bit-identical).
        logistic_log1pexp_component().accumulate_cols_into(xt, lo, hi, q);
        let yr = &ys[lo..hi];
        for (j, out) in q.alpha_mut().iter_mut().enumerate() {
            fm_linalg::vecops::dot_blocked_acc(-1.0, &xt.row(j)[lo..hi], yr, out);
        }
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        match bound {
            SensitivityBound::Paper => sensitivity_paper(d),
            SensitivityBound::Tight => sensitivity_tight(d),
        }
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        sensitivity_l2()
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_logistic()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_logistic(xs, ys, d)
    }
}

/// Assembles the noise-free truncated objective `f̂_D(ω)` — shared with the
/// `Truncated` baseline, which minimises exactly this function without any
/// perturbation.
#[must_use]
pub fn truncated_objective(data: &Dataset) -> QuadraticForm {
    LogisticObjective.assemble(data)
}

/// Which degree-2 approximation of the logistic loss Algorithm 2 runs on.
///
/// The paper (§5) uses the Taylor truncation at 0; its future-work section
/// (§8) asks whether "alternative analytical tools can lead to more
/// accurate regression results" — [`Approximation::Chebyshev`] is one
/// answer: a near-minimax degree-2 fit over `[−R, R]` whose worst-case
/// error on the same interval is ~8× below Taylor's, at an essentially
/// identical sensitivity (the fitted `a₁` is exactly `½`; only the
/// curvature `a₂ ≤ ⅛` changes, *lowering* Δ slightly).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Approximation {
    /// §5: degree-2 Taylor expansion at `z = 0` with the paper's constants
    /// `(log 2, ½, ¼)`.
    #[default]
    Taylor,
    /// §8 alternative: degree-2 Chebyshev truncation of `log(1 + eᶻ)` over
    /// `[−half_width, half_width]`.
    Chebyshev {
        /// The approximation interval's half-width `R > 0`. `R = 1` matches
        /// the window of the paper's Lemma-4 analysis; larger values keep
        /// the surrogate faithful for larger `|xᵀω|`.
        half_width: f64,
    },
}

/// The Chebyshev-approximated logistic objective in Algorithm-1 form
/// (see [`Approximation::Chebyshev`]).
#[derive(Debug, Clone, Copy)]
pub struct ChebyshevLogisticObjective {
    component: TaylorComponent,
    /// `|a₁|` of the fitted polynomial (= ½ for the symmetric logistic loss).
    a1_abs: f64,
    /// `|a₂|` of the fitted polynomial (≤ ⅛, shrinking with the interval).
    a2_abs: f64,
    /// Measured sup-error of the fit on its interval.
    sup_error: f64,
}

impl ChebyshevLogisticObjective {
    /// Fits the degree-2 Chebyshev surrogate of `log(1 + eᶻ)` on
    /// `[−half_width, half_width]`.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a non-finite or non-positive width.
    pub fn new(half_width: f64) -> Result<Self> {
        if !half_width.is_finite() || half_width <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "half_width",
                reason: format!("{half_width} must be finite and > 0"),
            });
        }
        let cheb = logistic_chebyshev(half_width);
        let [_, a1, a2] = cheb.coefficients();
        Ok(ChebyshevLogisticObjective {
            component: cheb.as_component(),
            a1_abs: a1.abs(),
            a2_abs: a2.abs(),
            sup_error: cheb.max_error(),
        })
    }

    /// Sup-error of the scalar surrogate on its fitting interval — the
    /// per-tuple analogue of the paper's ≈0.015 Taylor constant.
    #[must_use]
    pub fn sup_error(&self) -> f64 {
        self.sup_error
    }

    /// Assembles the noise-free Chebyshev-truncated objective (the
    /// Chebyshev analogue of [`truncated_objective`]).
    #[must_use]
    pub fn assemble_objective(&self, data: &Dataset) -> QuadraticForm {
        self.assemble(data)
    }
}

impl PolynomialObjective for ChebyshevLogisticObjective {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        // Surrogate f₁ part: β += a₀, α += a₁x, M += a₂xxᵀ.
        self.component.accumulate_into(x, q);
        // Exact f₂ part: α += −y·x.
        if y != 0.0 {
            let neg_yx: Vec<f64> = x.iter().map(|&v| -y * v).collect();
            identity_component().accumulate_into(&neg_yx, q);
        }
    }

    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        // Surrogate batched: β += k·a₀', α += a₁·Σx, M += ½a₂''·XᵀX.
        self.component.accumulate_batch_into(xs, q);
        // Exact f₂ batched: α += −Xᵀy.
        fm_linalg::vecops::gemv_t_acc(-1.0, xs, d, ys, q.alpha_mut());
    }

    fn supports_columnar(&self) -> bool {
        true
    }

    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        self.component.accumulate_cols_into(xt, lo, hi, q);
        let yr = &ys[lo..hi];
        for (j, out) in q.alpha_mut().iter_mut().enumerate() {
            fm_linalg::vecops::dot_blocked_acc(-1.0, &xt.row(j)[lo..hi], yr, out);
        }
    }

    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        // Same derivation as §5.3 with (a₁, a₂) in place of (½, ⅛):
        // Δ = 2·max_t (a₁Σ|x| + a₂(Σ|x|)² + yΣ|x|) ≤ 2((a₁+1)S + a₂S²)
        // where S bounds Σ|x_j| — d for the paper-style bound, √d under
        // Cauchy–Schwarz.
        let s = match bound {
            SensitivityBound::Paper => d as f64,
            SensitivityBound::Tight => (d as f64).sqrt(),
        };
        2.0 * ((self.a1_abs + 1.0) * s + self.a2_abs * s * s)
    }

    fn sensitivity_l2(&self, _d: usize) -> f64 {
        sensitivity_l2_for(self.a1_abs, self.a2_abs)
    }

    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        data.check_normalized_logistic()
    }

    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        fm_data::dataset::check_rows_normalized_logistic(xs, ys, d)
    }
}

impl RegressionObjective for LogisticObjective {
    type Model = LogisticModel;
}

impl RegressionObjective for ChebyshevLogisticObjective {
    type Model = LogisticModel;
}

/// Either degree-2 surrogate of the logistic loss, as one
/// [`RegressionObjective`] the generic [`FmEstimator`] core can hold —
/// what [`DpLogisticRegression`] instantiates from its configured
/// [`Approximation`].
#[derive(Debug, Clone, Copy)]
pub enum LogisticSurrogate {
    /// The §5 Taylor truncation.
    Taylor(LogisticObjective),
    /// The §8-alternative Chebyshev fit.
    Chebyshev(ChebyshevLogisticObjective),
}

impl LogisticSurrogate {
    /// Builds the surrogate for an [`Approximation`] choice.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a bad Chebyshev interval.
    pub fn new(approximation: Approximation) -> Result<Self> {
        Ok(match approximation {
            Approximation::Taylor => LogisticSurrogate::Taylor(LogisticObjective),
            Approximation::Chebyshev { half_width } => {
                LogisticSurrogate::Chebyshev(ChebyshevLogisticObjective::new(half_width)?)
            }
        })
    }

    fn inner(&self) -> &dyn PolynomialObjective {
        match self {
            LogisticSurrogate::Taylor(o) => o,
            LogisticSurrogate::Chebyshev(o) => o,
        }
    }
}

impl PolynomialObjective for LogisticSurrogate {
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
        self.inner().accumulate_tuple(x, y, q);
    }
    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        self.inner().accumulate_batch(xs, ys, d, q);
    }
    fn supports_columnar(&self) -> bool {
        true
    }
    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        self.inner().accumulate_batch_columnar(xt, ys, lo, hi, q);
    }
    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64 {
        self.inner().sensitivity(d, bound)
    }
    fn sensitivity_l2(&self, d: usize) -> f64 {
        self.inner().sensitivity_l2(d)
    }
    fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
        self.inner().validate(data)
    }
    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        self.inner().validate_rows(xs, ys, d)
    }
}

impl RegressionObjective for LogisticSurrogate {
    type Model = LogisticModel;
}

/// Builder for [`DpLogisticRegression`]: the shared [`EstimatorBuilder`]
/// knobs plus the surrogate choice.
pub type DpLogisticRegressionBuilder = EstimatorBuilder<Approximation>;

impl DpLogisticRegressionBuilder {
    /// Chooses the degree-2 surrogate of the logistic loss (default
    /// [`Approximation::Taylor`], the paper's §5 expansion).
    #[must_use]
    pub fn approximation(mut self, approximation: Approximation) -> Self {
        self.family = approximation;
        self
    }

    /// Finalises the configuration.
    #[must_use]
    pub fn build(self) -> DpLogisticRegression {
        DpLogisticRegression {
            config: self.config,
            approximation: self.family,
        }
    }
}

/// ε-differentially private logistic regression via Algorithm 2
/// (Taylor truncation + the Functional Mechanism) — a thin wrapper that
/// builds a [`LogisticSurrogate`] from its configured [`Approximation`]
/// and delegates the entire fit pipeline to the generic
/// [`FmEstimator`] core. (It is a two-field struct rather than a type
/// alias only because Chebyshev surrogate construction can fail, and that
/// error is reported at `fit` time, not `build` time.)
///
/// ```
/// use fm_core::logreg::DpLogisticRegression;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let data = fm_data::synth::logistic_dataset(&mut rng, 10_000, 3, 10.0);
/// let model = DpLogisticRegression::builder()
///     .epsilon(0.8)
///     .build()
///     .fit(&data, &mut rng)
///     .unwrap();
/// let p = model.probability(data.x().row(0));
/// assert!((0.0..=1.0).contains(&p));
/// ```
#[derive(Debug, Clone)]
pub struct DpLogisticRegression {
    config: FitConfig,
    approximation: Approximation,
}

impl DpLogisticRegression {
    /// Starts a builder with defaults (ε = 1, paper sensitivity,
    /// regularize-then-trim, no intercept, Taylor approximation).
    #[must_use]
    pub fn builder() -> DpLogisticRegressionBuilder {
        DpLogisticRegressionBuilder::default()
    }

    /// The configured privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// The shared fit configuration.
    #[must_use]
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// Instantiates the generic core for the configured surrogate.
    fn estimator(&self) -> Result<FmEstimator<LogisticSurrogate>> {
        Ok(FmEstimator::new(
            LogisticSurrogate::new(self.approximation)?,
            self.config,
        ))
    }

    /// Fits an ε-DP logistic model on `data`, which must satisfy
    /// Definition 2's contract (`‖x‖₂ ≤ 1`, `y ∈ {0, 1}`).
    ///
    /// # Errors
    /// As [`FmEstimator::fit`], plus [`FmError::InvalidConfig`] for a bad
    /// Chebyshev interval.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LogisticModel> {
        self.estimator()?.fit(data, rng)
    }

    /// Fits an ε-DP logistic model from a streaming
    /// [`fm_data::stream::RowSource`] — see [`FmEstimator::fit_stream`]:
    /// bounded memory, bit-identical released weights to
    /// [`DpLogisticRegression::fit`] on the materialized data at the same
    /// seed.
    ///
    /// # Errors
    /// As [`DpLogisticRegression::fit`], plus transport errors from the
    /// source.
    pub fn fit_stream(
        &self,
        source: &mut (impl fm_data::stream::RowSource + ?Sized),
        rng: &mut impl Rng,
    ) -> Result<LogisticModel> {
        self.estimator()?.fit_stream(source, rng)
    }

    /// Fits the *non-private* minimiser of the truncated objective — the
    /// paper's `Truncated` baseline (exposed here so `fm-baselines` and the
    /// harness share one implementation). Honours the configured
    /// [`Approximation`].
    ///
    /// # Errors
    /// [`FmError::Data`] / [`FmError::Optim`] on contract violation or a
    /// degenerate (rank-deficient) Hessian.
    pub fn fit_truncated_without_privacy(&self, data: &Dataset) -> Result<LogisticModel> {
        self.estimator()?.fit_without_privacy(data)
    }
}

impl DpEstimator for DpLogisticRegression {
    type Model = LogisticModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> Result<LogisticModel> {
        DpLogisticRegression::fit(self, data, &mut rng)
    }

    fn fit_stream(
        &self,
        source: &mut dyn fm_data::stream::RowSource,
        mut rng: &mut dyn RngCore,
    ) -> Result<LogisticModel> {
        DpLogisticRegression::fit_stream(self, source, &mut rng)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.config.epsilon)
    }

    fn delta(&self) -> Option<f64> {
        self.config.delta()
    }

    fn task(&self) -> ModelKind {
        ModelKind::Logistic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::vecops;
    use fm_poly::taylor::log1p_exp;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1618)
    }

    #[test]
    fn sensitivities_match_paper() {
        // d²/4 + 3d.
        assert_eq!(sensitivity_paper(2), 7.0);
        assert_eq!(sensitivity_paper(4), 16.0);
        assert_eq!(sensitivity_paper(13), 81.25);
        for d in 2..20 {
            assert!(sensitivity_tight(d) < sensitivity_paper(d));
        }
    }

    #[test]
    fn truncated_objective_coefficients() {
        // Two tuples, d = 2: M = ⅛Σxxᵀ, α = ½Σx − Σyx, β = n·log2.
        let x = fm_linalg::Matrix::from_rows(&[&[0.6, 0.0], &[0.0, 0.8]]).unwrap();
        let data = Dataset::new(x, vec![1.0, 0.0]).unwrap();
        let q = truncated_objective(&data);
        assert!((q.beta() - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
        // α = ½(0.6, 0.8) − (0.6, 0) = (−0.3, 0.4).
        assert!(vecops::approx_eq(q.alpha(), &[-0.3, 0.4], 1e-12));
        // M = ⅛ diag(0.36, 0.64).
        assert!((q.m()[(0, 0)] - 0.045).abs() < 1e-12);
        assert!((q.m()[(1, 1)] - 0.08).abs() < 1e-12);
        assert_eq!(q.m()[(0, 1)], 0.0);
    }

    #[test]
    fn truncated_matches_true_loss_near_origin() {
        // At ω = 0 both the exact and truncated objectives equal n·log 2.
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 200, 3, 5.0);
        let q = truncated_objective(&data);
        let zero = vec![0.0; 3];
        assert!((q.eval(&zero) - 200.0 * std::f64::consts::LN_2).abs() < 1e-9);
        // And the per-tuple truncation error is within the Lemma-4 constant.
        let omega = [0.3, -0.2, 0.1];
        let exact: f64 = data
            .tuples()
            .map(|(x, y)| {
                let z = vecops::dot(x, &omega);
                log1p_exp(z) - y * z
            })
            .sum();
        let bound = fm_poly::taylor::paper_logistic_error_constant() * data.n() as f64;
        assert!(
            (q.eval(&omega) - exact).abs() <= bound + 1e-9,
            "truncation error exceeds Lemma-4 bound"
        );
    }

    #[test]
    fn lemma1_contract_per_tuple_l1_below_half_delta() {
        let mut r = rng();
        for d in [1usize, 2, 4, 7, 13] {
            let delta = LogisticObjective.sensitivity(d, SensitivityBound::Paper);
            let tight = LogisticObjective.sensitivity(d, SensitivityBound::Tight);
            for _ in 0..200 {
                let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                let y = f64::from(rand::Rng::gen_bool(&mut r, 0.5));
                let mut q = QuadraticForm::zero(d);
                LogisticObjective.accumulate_tuple(&x, y, &mut q);
                let l1 = q.coefficient_l1_norm();
                assert!(l1 <= delta / 2.0 + 1e-9, "d={d}: L1 {l1} > Δ/2");
                assert!(l1 <= tight / 2.0 + 1e-9, "d={d}: L1 {l1} > tight Δ/2");
            }
        }
    }

    #[test]
    fn truncated_fit_agrees_with_newton_on_separable_data() {
        // The truncated minimiser is not the exact MLE, but on symmetric
        // data it should classify nearly identically.
        let mut r = rng();
        let w = vec![0.5, -0.4];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 30_000, &w, 12.0);
        let model = DpLogisticRegression::builder()
            .build()
            .fit_truncated_without_privacy(&data)
            .unwrap();
        // Direction of the weights must match the ground truth.
        let cos =
            vecops::dot(model.weights(), &w) / (vecops::norm2(model.weights()) * vecops::norm2(&w));
        assert!(cos > 0.95, "cosine {cos}");
    }

    #[test]
    fn private_fit_classifies_above_chance() {
        let mut r = rng();
        let w = vec![0.5, 0.3, -0.4];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 50_000, &w, 12.0);
        let model = DpLogisticRegression::builder()
            .epsilon(1.0)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        let probs = model.probabilities_batch(data.x());
        let err = fm_data::metrics::misclassification_rate(&probs, data.y());
        // Bayes error here is ≈ 0.28 (steepness 12, weights ‖w‖≈0.7); chance
        // is 0.5. The DP model must be clearly better than chance.
        assert!(err < 0.45, "misclassification {err}");
    }

    #[test]
    fn rejects_non_binary_labels() {
        let x = fm_linalg::Matrix::from_rows(&[&[0.1, 0.1]]).unwrap();
        let data = Dataset::new(x, vec![0.7]).unwrap();
        let mut r = rng();
        assert!(matches!(
            DpLogisticRegression::builder().build().fit(&data, &mut r),
            Err(FmError::Data(_))
        ));
    }

    #[test]
    fn intercept_fit_handles_imbalanced_classes() {
        // Data with a strong base rate: P(y=1) ≈ 0.82 regardless of x.
        // Without an intercept the truncated model predicts ~0.5 at the
        // centroid; with one it should capture the base rate's sign.
        let mut r = rng();
        let n = 20_000;
        let x = fm_linalg::Matrix::from_fn(n, 2, |i, j| {
            let t = ((i * 17 + j * 29) % 200) as f64 / 200.0 - 0.5;
            t / 2.0
        });
        let y: Vec<f64> = (0..n)
            .map(|_| f64::from(rand::Rng::gen_bool(&mut r, 0.82)))
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let model = DpLogisticRegression::builder()
            .fit_intercept(true)
            .build()
            .fit_truncated_without_privacy(&data)
            .unwrap();
        assert!(
            model.intercept() > 0.0,
            "b = {} should be positive",
            model.intercept()
        );
        assert!(
            model.probability(&[0.0, 0.0]) > 0.5,
            "base rate not captured: {}",
            model.probability(&[0.0, 0.0])
        );
        // Flat model at the centroid is exactly 0.5 — strictly worse here.
        let flat = DpLogisticRegression::builder()
            .build()
            .fit_truncated_without_privacy(&data)
            .unwrap();
        assert!((flat.probability(&[0.0, 0.0]) - 0.5).abs() < 0.1);
    }

    #[test]
    fn private_intercept_fit_runs_and_returns_d_weights() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 30_000, 3, 8.0);
        let model = DpLogisticRegression::builder()
            .epsilon(1.0)
            .fit_intercept(true)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert_eq!(model.dim(), 3);
        assert!(model.intercept().is_finite());
        assert_eq!(model.epsilon(), Some(1.0));
    }

    #[test]
    fn noise_independent_of_cardinality() {
        // Δ (hence the noise scale) must not change with n — the paper's
        // headline property (Section 5.3).
        let mut r = rng();
        let small = fm_data::synth::logistic_dataset(&mut r, 100, 4, 5.0);
        let large = fm_data::synth::logistic_dataset(&mut r, 10_000, 4, 5.0);
        let fm = crate::mechanism::FunctionalMechanism::new(1.0).unwrap();
        let ns = fm.perturb(&small, &LogisticObjective, &mut r).unwrap();
        let nl = fm.perturb(&large, &LogisticObjective, &mut r).unwrap();
        assert_eq!(ns.sensitivity(), nl.sensitivity());
        assert_eq!(ns.noise_scale(), nl.noise_scale());
    }

    #[test]
    fn chebyshev_sensitivity_close_to_taylor_at_r1() {
        // At R = 1, a₁ = ½ exactly and a₂ ≲ ⅛, so Δ_cheb ≤ Δ_taylor with
        // equality in the limit R → 0.
        let obj = ChebyshevLogisticObjective::new(1.0).unwrap();
        for d in [2usize, 5, 14] {
            let cheb = obj.sensitivity(d, SensitivityBound::Paper);
            let taylor = sensitivity_paper(d);
            assert!(cheb <= taylor + 1e-9, "d={d}: {cheb} > {taylor}");
            assert!(
                cheb > 0.9 * taylor,
                "d={d}: {cheb} unexpectedly far below {taylor}"
            );
        }
    }

    #[test]
    fn chebyshev_lemma1_contract() {
        // Same machine check as the Taylor objective: per-tuple coefficient
        // L1 ≤ Δ/2 over the normalized domain.
        let mut r = rng();
        for half_width in [0.5, 1.0, 4.0] {
            let obj = ChebyshevLogisticObjective::new(half_width).unwrap();
            for d in [1usize, 3, 7] {
                let delta = obj.sensitivity(d, SensitivityBound::Paper);
                let tight = obj.sensitivity(d, SensitivityBound::Tight);
                for _ in 0..100 {
                    let x = fm_data::synth::sample_in_ball(&mut r, d, 1.0);
                    let y = f64::from(rand::Rng::gen_bool(&mut r, 0.5));
                    let mut q = QuadraticForm::zero(d);
                    obj.accumulate_tuple(&x, y, &mut q);
                    let l1 = q.coefficient_l1_norm();
                    assert!(l1 <= delta / 2.0 + 1e-9, "R={half_width} d={d}: {l1}");
                    assert!(
                        l1 <= tight / 2.0 + 1e-9,
                        "R={half_width} d={d}: {l1} (tight)"
                    );
                }
            }
        }
    }

    #[test]
    fn chebyshev_surrogate_tracks_exact_loss_tighter_than_taylor() {
        // Sup gap of the assembled objectives against the exact loss over a
        // grid of ω with ‖ω‖ ≤ 1 (so |xᵀω| ≤ 1 = R).
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 500, 2, 5.0);
        let taylor_q = truncated_objective(&data);
        let obj = ChebyshevLogisticObjective::new(1.0).unwrap();
        let cheb_q = obj.assemble_objective(&data);
        let exact = |omega: &[f64]| -> f64 {
            data.tuples()
                .map(|(x, y)| {
                    let z = vecops::dot(x, omega);
                    log1p_exp(z) - y * z
                })
                .sum()
        };
        let mut taylor_sup = 0.0f64;
        let mut cheb_sup = 0.0f64;
        for i in 0..=20 {
            for j in 0..=20 {
                let omega = [i as f64 / 20.0 * 1.4 - 0.7, j as f64 / 20.0 * 1.4 - 0.7];
                let e = exact(&omega);
                taylor_sup = taylor_sup.max((taylor_q.eval(&omega) - e).abs());
                cheb_sup = cheb_sup.max((cheb_q.eval(&omega) - e).abs());
            }
        }
        assert!(
            cheb_sup < taylor_sup,
            "chebyshev sup {cheb_sup} should beat taylor sup {taylor_sup}"
        );
    }

    #[test]
    fn chebyshev_private_fit_classifies_above_chance() {
        let mut r = rng();
        let w = vec![0.5, 0.3, -0.4];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 50_000, &w, 12.0);
        let model = DpLogisticRegression::builder()
            .epsilon(1.0)
            .approximation(Approximation::Chebyshev { half_width: 1.0 })
            .build()
            .fit(&data, &mut r)
            .unwrap();
        let probs = model.probabilities_batch(data.x());
        let err = fm_data::metrics::misclassification_rate(&probs, data.y());
        assert!(err < 0.45, "misclassification {err}");
    }

    #[test]
    fn chebyshev_rejects_bad_interval() {
        assert!(ChebyshevLogisticObjective::new(0.0).is_err());
        assert!(ChebyshevLogisticObjective::new(-1.0).is_err());
        assert!(ChebyshevLogisticObjective::new(f64::NAN).is_err());
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 100, 2, 5.0);
        let err = DpLogisticRegression::builder()
            .approximation(Approximation::Chebyshev { half_width: -2.0 })
            .build()
            .fit(&data, &mut r)
            .unwrap_err();
        assert!(matches!(err, FmError::InvalidConfig { .. }));
    }

    #[test]
    fn chebyshev_sup_error_reported() {
        let obj = ChebyshevLogisticObjective::new(1.0).unwrap();
        // ~8× better than the Taylor sup-error ≈ 0.0049 on the same window.
        assert!(obj.sup_error() > 0.0);
        assert!(obj.sup_error() < 0.008, "sup error {}", obj.sup_error());
    }

    #[test]
    fn figure3_example_truncation_gap() {
        // §5.2's 1-D example: D = {(−0.5, 1), (0, 0), (1, 1)}. The paper's
        // Figure 3 shows f̂_D close to f_D with a visible but small gap.
        let x = fm_linalg::Matrix::from_rows(&[&[-0.5], &[0.0], &[1.0]]).unwrap();
        let data = Dataset::new(x, vec![1.0, 0.0, 1.0]).unwrap();
        let q = truncated_objective(&data);
        for w in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            let exact: f64 = data
                .tuples()
                .map(|(xi, yi)| log1p_exp(xi[0] * w) - yi * xi[0] * w)
                .sum();
            let gap = (q.eval(&[w]) - exact).abs();
            assert!(gap < 0.25, "gap {gap} too large at ω = {w}");
        }
    }
}
