//! Algorithm 1 of the paper: the generic Functional Mechanism.
//!
//! Given an objective whose per-tuple cost contributes polynomial
//! coefficients (degree ≤ 2 after the Section-5 truncation), the mechanism:
//!
//! 1. accumulates the exact coefficient sums `λ_φ = Σ_i λ_{φ t_i}` into a
//!    [`fm_poly::QuadraticForm`] (line 4's inner sums);
//! 2. takes the objective's data-independent sensitivity
//!    `Δ = 2·max_t Σ_φ |λ_{φ t}|` (line 1 / Lemma 1);
//! 3. perturbs every coefficient with i.i.d. `Lap(Δ/ε)` noise (line 4's
//!    `+ Lap(Δ/ε)`), noising the upper triangle of `M` and mirroring so the
//!    released matrix is symmetric (Section 6.1);
//! 4. returns the result as a [`NoisyQuadratic`] — a distinct type from the
//!    clean objective so the Section-6 post-processors can *only* consume
//!    already-privatized coefficients.
//!
//! Privacy (Theorem 1): the only data-dependent values ever released are
//! the coefficients, and each passes through exactly one Laplace mechanism
//! calibrated to their joint L1 sensitivity.

use rand::Rng;

use fm_data::Dataset;
use fm_poly::QuadraticForm;
use fm_privacy::mechanism::{GaussianMechanism, LaplaceMechanism};

use crate::{FmError, Result};

/// Which sensitivity bound to calibrate noise with.
///
/// The paper derives `Δ` with the conservative inequality
/// `Σ_j |x_(j)| ≤ d` (each coordinate bounded by 1). Under the actual input
/// contract `‖x‖₂ ≤ 1`, Cauchy–Schwarz gives the tighter `Σ_j |x_(j)| ≤ √d`.
/// Both are valid upper bounds on the true sensitivity, hence both satisfy
/// ε-DP; the tight variant simply adds less noise. The default is
/// [`SensitivityBound::Paper`] to reproduce the published results; the
/// ablation benchmark (`fm-bench`) quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SensitivityBound {
    /// The bound printed in the paper (`2(d+1)²` linear, `d²/4+3d` logistic).
    #[default]
    Paper,
    /// The Cauchy–Schwarz-tightened bound (`2(1+√d)²` linear,
    /// `d/4 + 3√d` logistic).
    Tight,
}

/// Which noise distribution Algorithm 1 injects into the coefficients.
///
/// The paper enforces strict ε-DP with Laplace noise calibrated to the L1
/// sensitivity (the default). Its related-work section discusses the
/// relaxed (ε, δ)-DP notion; [`NoiseDistribution::Gaussian`] implements
/// that variant, calibrating `N(0, σ²)` to the **L2** sensitivity — which
/// for regression coefficient vectors is *dimension-independent* (each
/// per-tuple block is bounded via `‖x‖₂ ≤ 1` directly, no `Σ|x_j| ≤ d`
/// inflation), so the relaxation buys dramatically less noise at high `d`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NoiseDistribution {
    /// `Lap(Δ₁/ε)` per coefficient — strict ε-DP (Theorem 1).
    #[default]
    Laplace,
    /// `N(0, σ²)` with `σ = Δ₂·√(2 ln(1.25/δ))/ε` — (ε, δ)-DP via the
    /// classical Gaussian mechanism (requires `ε < 1`).
    Gaussian {
        /// The failure probability δ ∈ (0, 1).
        delta: f64,
    },
}

/// An objective function in the form Algorithm 1 consumes: per-tuple
/// polynomial coefficients (degree ≤ 2) plus a data-independent sensitivity.
///
/// Implementations must uphold the **Lemma-1 contract**, and it covers
/// every coefficient [`FunctionalMechanism::perturb`] releases — the
/// degree-0 term β included: for any two tuples in the normalized domain
/// (`‖x‖₂ ≤ 1`, label in the model's range), the L1 (resp. L2) distance
/// between their full coefficient contributions is at most
/// `sensitivity(d, bound)` (resp. `sensitivity_l2(d)`). The usual
/// sufficient per-tuple form: degree-≥1 coefficient L1 norm plus the
/// constant's data-dependent share at most `sensitivity(d, bound) / 2` —
/// linear regression's `+1` for `y²` and the robust losses' `ρ_max` are
/// that share, while a data-*independent* constant (logistic's `log 2`,
/// Poisson's `a₀`) cancels between neighbours and needs none. The
/// property tests in `linreg`/`logreg`/`poisson`/`robust` machine-check
/// this contract on random in-domain tuples.
///
/// `Sync` is a supertrait so [`PolynomialObjective::assemble`] can fan the
/// accumulation out across row chunks (see [`crate::assembly`]); every
/// objective here is a small plain-data struct, so the bound costs nothing.
pub trait PolynomialObjective: Sync {
    /// Accumulates tuple `(x, y)`'s coefficient contribution into `q`.
    fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm);

    /// Accumulates a whole row chunk at once: `xs` is a row-major
    /// `k × d` feature block (`k = ys.len()`, `xs.len() = k·d`, `d =
    /// q.dim()`) and `ys` the matching labels.
    ///
    /// The default delegates to [`PolynomialObjective::accumulate_tuple`]
    /// row by row, so existing objectives keep working unchanged. The
    /// built-in objectives override this with blocked Gram kernels
    /// (`yᵀy` / `Xᵀy` / `XᵀX`) that are several times faster than the
    /// per-tuple loop — see the module docs of [`crate::assembly`].
    ///
    /// Overrides must produce the same coefficient sums as the per-tuple
    /// loop up to floating-point regrouping (the equivalence suite in the
    /// facade's `tests/batched_assembly.rs` machine-checks ≤ 1e-12).
    fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
        debug_assert_eq!(xs.len(), ys.len() * d, "accumulate_batch: shape mismatch");
        for (x, &y) in xs.chunks_exact(d).zip(ys) {
            self.accumulate_tuple(x, y, q);
        }
    }

    /// Whether [`PolynomialObjective::accumulate_batch_columnar`] is backed
    /// by real column-major kernels. When `true`, [`crate::assembly`] reads
    /// the dataset's cached [`fm_data::Dataset::columnar`] transpose
    /// instead of re-packing the row-major block every assemble — the
    /// ROADMAP's CV-repeat amortization. The built-in objectives all opt
    /// in; custom objectives keep the row-major path by default.
    fn supports_columnar(&self) -> bool {
        false
    }

    /// Accumulates tuples `[lo, hi)` read from `xt` — the `d × n`
    /// **transpose** of the feature block (one contiguous row per feature
    /// column, see [`fm_data::Dataset::columnar`]) — and the full label
    /// vector `ys` (length `n`).
    ///
    /// Overrides must produce **bit-identical** coefficients to
    /// [`PolynomialObjective::accumulate_batch`] over the same rows: the
    /// columnar kernels in `fm-linalg`/`fm-poly` replicate the row-major
    /// kernels' floating-point grouping exactly, so layout choice can
    /// never perturb an experiment. The default upholds that contract for
    /// *any* objective by materialising the range back into a row-major
    /// block and delegating to
    /// [`PolynomialObjective::accumulate_batch`] — correct and
    /// bit-identical even for an objective that overrides only
    /// `supports_columnar`, at the cost of a transient `(hi−lo)·d` copy.
    fn accumulate_batch_columnar(
        &self,
        xt: &fm_linalg::Matrix,
        ys: &[f64],
        lo: usize,
        hi: usize,
        q: &mut QuadraticForm,
    ) {
        debug_assert_eq!(xt.rows(), q.dim(), "accumulate_batch_columnar: arity");
        debug_assert!(lo <= hi && hi <= ys.len() && ys.len() == xt.cols());
        let d = q.dim();
        let mut rows = vec![0.0; (hi - lo) * d];
        for (offset, i) in (lo..hi).enumerate() {
            for j in 0..d {
                rows[offset * d + j] = xt[(j, i)];
            }
        }
        self.accumulate_batch(&rows, &ys[lo..hi], d, q);
    }

    /// The coefficient-vector L1 sensitivity `Δ₁` for dimension `d`.
    fn sensitivity(&self, d: usize, bound: SensitivityBound) -> f64;

    /// The coefficient-vector **L2** sensitivity `Δ₂` for dimension `d`,
    /// used by the (ε, δ) Gaussian variant. Unlike `Δ₁`, this is `O(1)` in
    /// `d` for all the paper's objectives because every per-tuple block is
    /// bounded through `‖x‖₂ ≤ 1` without a coordinate-sum inflation.
    fn sensitivity_l2(&self, d: usize) -> f64;

    /// Validates that `data` satisfies the normalized-domain contract this
    /// objective's sensitivity analysis assumes.
    ///
    /// # Errors
    /// A [`fm_data::DataError::NotNormalized`] describing the violation.
    fn validate(&self, data: &Dataset) -> fm_data::Result<()>;

    /// Validates one streamed row-major block (`xs` is `k × d`,
    /// `k = ys.len()`) against the same contract as
    /// [`PolynomialObjective::validate`] — the per-block form the
    /// streaming accumulator ([`crate::assembly::CoefficientAccumulator`])
    /// checks as data arrives, so an out-of-core fit never needs the
    /// dataset materialized just to validate it.
    ///
    /// The default materializes the block into a temporary [`Dataset`] and
    /// delegates to `validate` — correct for any objective at the cost of
    /// one block-sized copy. The built-in objectives override it with the
    /// allocation-free row checks in `fm_data::dataset`. Tuple indices in
    /// errors are block-local.
    ///
    /// # Errors
    /// A [`fm_data::DataError`] describing the violation.
    fn validate_rows(&self, xs: &[f64], ys: &[f64], d: usize) -> fm_data::Result<()> {
        if ys.is_empty() {
            return Ok(());
        }
        let x = fm_linalg::Matrix::from_vec(ys.len(), d, xs.to_vec()).map_err(|_| {
            fm_data::DataError::LengthMismatch {
                rows: xs.len() / d.max(1),
                labels: ys.len(),
            }
        })?;
        self.validate(&Dataset::new(x, ys.to_vec())?)
    }

    /// Assembles the exact (noise-free) objective `f_D(ω) = Σ_i f(t_i, ω)`
    /// through the batched chunk pipeline of [`crate::assembly`]
    /// (data-parallel with the `parallel` feature; deterministic across
    /// worker counts either way).
    fn assemble(&self, data: &Dataset) -> QuadraticForm {
        crate::assembly::assemble(self, data)
    }
}

/// The perturbed objective released by Algorithm 1, plus the calibration
/// metadata post-processing needs (`λ = 4·noise stddev` in §6.1).
///
/// This type is deliberately *not* convertible back into a clean
/// [`QuadraticForm`] by reference — consumers take it by value or shared
/// reference and can only read the already-noised coefficients.
#[derive(Debug, Clone)]
pub struct NoisyQuadratic {
    objective: QuadraticForm,
    epsilon: f64,
    delta: Option<f64>,
    sensitivity: f64,
    noise_scale: f64,
    noise_std: f64,
}

impl NoisyQuadratic {
    /// The perturbed quadratic objective `f̄_D(ω)`.
    #[must_use]
    pub fn objective(&self) -> &QuadraticForm {
        &self.objective
    }

    /// Consumes self, yielding the perturbed objective.
    #[must_use]
    pub fn into_objective(self) -> QuadraticForm {
        self.objective
    }

    /// The privacy budget ε spent producing this object.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure probability δ, when the Gaussian variant produced this
    /// object (`None` for strict ε-DP Laplace noise).
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        self.delta
    }

    /// The sensitivity Δ used for calibration (L1 for Laplace, L2 for
    /// Gaussian).
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The per-coefficient noise distribution's scale parameter: the
    /// Laplace scale `Δ₁/ε`, or the Gaussian σ.
    #[must_use]
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Standard deviation of the injected per-coefficient noise (`√2·Δ₁/ε`
    /// for Laplace, σ for Gaussian) — §6.1 sets the regularization constant
    /// to four times this.
    #[must_use]
    pub fn noise_std_dev(&self) -> f64 {
        self.noise_std
    }

    /// Mutable access to the objective for post-processing (ridge shifts,
    /// symmetrization). Kept `pub(crate)` so only the §6 post-processors —
    /// which operate solely on noised data — can modify coefficients.
    pub(crate) fn objective_mut(&mut self) -> &mut QuadraticForm {
        &mut self.objective
    }

    /// Test/bench-only constructor for crafting synthetic noisy objectives
    /// (Laplace calibration). Real code paths must go through
    /// [`FunctionalMechanism::perturb`].
    #[doc(hidden)]
    #[must_use]
    pub fn from_parts_for_tests(objective: QuadraticForm, epsilon: f64, sensitivity: f64) -> Self {
        let noise_scale = sensitivity / epsilon;
        NoisyQuadratic {
            objective,
            epsilon,
            delta: None,
            sensitivity,
            noise_scale,
            noise_std: noise_scale * std::f64::consts::SQRT_2,
        }
    }

    /// Wraps the coefficient-wise sum of `contributors` **independently
    /// perturbed** objectives — the aggregation a federated coordinator
    /// performs in local-noise mode, where each of K clients ran
    /// [`FunctionalMechanism::perturb_assembled`] on its own Δ-scaled
    /// contribution (under `mechanism`'s exact configuration) before
    /// upload. Summing already-released objects is pure post-processing,
    /// so the sum carries each contributor's per-shard (ε, δ) guarantee
    /// under parallel composition; its per-coefficient noise is the sum
    /// of K independent draws, so the recorded standard deviation —
    /// which drives §6.1's regularization constant — grows by `√K` over
    /// a single central release at the same ε. That gap is exactly the
    /// utility price of the stronger trust model.
    ///
    /// The noise statistics are derived from `mechanism` and `objective`,
    /// never taken from the network: a coordinator that knows the round's
    /// agreed configuration reports honest calibration even if a client
    /// lies about its own.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for zero contributors;
    /// [`FmError::Privacy`] for degenerate noise parameters.
    pub fn from_federated_sum(
        total: QuadraticForm,
        contributors: usize,
        mechanism: &FunctionalMechanism,
        objective: &impl PolynomialObjective,
    ) -> Result<NoisyQuadratic> {
        if contributors == 0 {
            return Err(FmError::InvalidConfig {
                name: "contributors",
                reason: "a federated sum needs at least one contribution".to_string(),
            });
        }
        let (_, sensitivity, delta, noise_scale, noise_std) =
            mechanism.calibrate(total.dim(), objective)?;
        #[allow(clippy::cast_precision_loss)]
        let spread = (contributors as f64).sqrt();
        Ok(NoisyQuadratic {
            objective: total,
            epsilon: mechanism.epsilon(),
            delta,
            sensitivity,
            noise_scale,
            noise_std: noise_std * spread,
        })
    }
}

/// Algorithm 1, parameterised by the privacy budget, sensitivity-bound
/// choice, and noise distribution.
#[derive(Debug, Clone, Copy)]
pub struct FunctionalMechanism {
    epsilon: f64,
    bound: SensitivityBound,
    noise: NoiseDistribution,
}

/// A calibrated per-coefficient noise source (internal dispatch).
enum NoiseSampler {
    Laplace(LaplaceMechanism),
    Gaussian(GaussianMechanism),
}

impl NoiseSampler {
    fn privatize_scalar(&self, value: f64, rng: &mut impl Rng) -> f64 {
        match self {
            NoiseSampler::Laplace(m) => m.privatize_scalar(value, rng),
            NoiseSampler::Gaussian(m) => m.privatize_scalar(value, rng),
        }
    }

    fn privatize_in_place(&self, values: &mut [f64], rng: &mut impl Rng) {
        match self {
            NoiseSampler::Laplace(m) => m.privatize_in_place(values, rng),
            NoiseSampler::Gaussian(m) => m.privatize_in_place(values, rng),
        }
    }
}

impl FunctionalMechanism {
    /// Creates a mechanism with privacy budget `epsilon` (Laplace noise,
    /// paper sensitivity bound).
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for non-positive or non-finite ε.
    pub fn new(epsilon: f64) -> Result<Self> {
        Self::with_config(epsilon, SensitivityBound::Paper, NoiseDistribution::Laplace)
    }

    /// Creates a mechanism with an explicit sensitivity-bound choice
    /// (Laplace noise).
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for non-positive or non-finite ε.
    pub fn with_bound(epsilon: f64, bound: SensitivityBound) -> Result<Self> {
        Self::with_config(epsilon, bound, NoiseDistribution::Laplace)
    }

    /// Creates a fully configured mechanism.
    ///
    /// # Errors
    /// [`FmError::InvalidConfig`] for a non-positive/non-finite ε, or a δ
    /// outside `(0, 1)` with Gaussian noise.
    pub fn with_config(
        epsilon: f64,
        bound: SensitivityBound,
        noise: NoiseDistribution,
    ) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(FmError::InvalidConfig {
                name: "epsilon",
                reason: format!("{epsilon} must be finite and > 0"),
            });
        }
        if let NoiseDistribution::Gaussian { delta } = noise {
            if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
                return Err(FmError::InvalidConfig {
                    name: "delta",
                    reason: format!("{delta} must be in (0, 1)"),
                });
            }
            if epsilon >= 1.0 {
                return Err(FmError::InvalidConfig {
                    name: "epsilon",
                    reason: format!("{epsilon} must be < 1 for the classical Gaussian mechanism"),
                });
            }
        }
        Ok(FunctionalMechanism {
            epsilon,
            bound,
            noise,
        })
    }

    /// The configured privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured sensitivity bound.
    #[must_use]
    pub fn bound(&self) -> SensitivityBound {
        self.bound
    }

    /// The configured noise distribution.
    #[must_use]
    pub fn noise(&self) -> NoiseDistribution {
        self.noise
    }

    /// Runs Algorithm 1: assembles the objective's coefficients over `data`
    /// and perturbs every coefficient with calibrated noise — `Lap(Δ₁/ε)`
    /// by default, or `N(0, σ²)` with `σ = Δ₂√(2 ln(1.25/δ))/ε` for the
    /// (ε, δ) variant.
    ///
    /// The returned [`NoisyQuadratic`] is ε-DP (Theorem 1) resp. (ε, δ)-DP;
    /// everything derived from it downstream (minimisation, §6
    /// post-processing, predictions) is post-processing and inherits the
    /// guarantee.
    ///
    /// # Errors
    /// * Input-contract violations from [`PolynomialObjective::validate`].
    /// * [`FmError::Privacy`] for degenerate noise parameters.
    pub fn perturb(
        &self,
        data: &Dataset,
        objective: &impl PolynomialObjective,
        rng: &mut impl Rng,
    ) -> Result<NoisyQuadratic> {
        objective.validate(data)?;
        let clean = objective.assemble(data);
        self.perturb_assembled(&clean, objective, rng)
    }

    /// Algorithm 1's noise step over a **pre-assembled** clean objective:
    /// the entry point the streaming pipeline uses once a
    /// [`crate::assembly::CoefficientAccumulator`] has finished (the data
    /// was validated block-by-block as it streamed), and what the Lemma-5
    /// resample loop re-draws from without re-scanning the data.
    ///
    /// The caller owns the precondition that `clean` really is
    /// `Σ_i λ_{φ t_i}` over a dataset satisfying the objective's contract
    /// — the sensitivity calibration is meaningless otherwise. Noise draw
    /// order (β, α, then the upper triangle of `M`) is identical to
    /// [`FunctionalMechanism::perturb`], so for the same assembled
    /// coefficients and RNG state the two release bit-identical output.
    ///
    /// # Errors
    /// [`FmError::Privacy`] for degenerate noise parameters.
    pub fn perturb_assembled(
        &self,
        clean: &QuadraticForm,
        objective: &impl PolynomialObjective,
        rng: &mut impl Rng,
    ) -> Result<NoisyQuadratic> {
        let d = clean.dim();
        let (sampler, sensitivity, delta_out, noise_scale, noise_std) =
            self.calibrate(d, objective)?;

        let mut q = clean.clone();

        // Perturb β.
        *q.beta_mut() = sampler.privatize_scalar(q.beta(), rng);
        // Perturb α.
        sampler.privatize_in_place(q.alpha_mut(), rng);
        // Perturb the upper triangle of M and mirror (Section 6.1's recipe
        // for keeping M* symmetric).
        for i in 0..d {
            for j in i..d {
                let noisy = sampler.privatize_scalar(q.m()[(i, j)], rng);
                q.m_mut()[(i, j)] = noisy;
                if i != j {
                    q.m_mut()[(j, i)] = noisy;
                }
            }
        }

        Ok(NoisyQuadratic {
            objective: q,
            epsilon: self.epsilon,
            delta: delta_out,
            sensitivity,
            noise_scale,
            noise_std,
        })
    }

    /// The calibrated sampler plus the noise statistics `perturb_assembled`
    /// records: `(sampler, Δ, δ, scale, std)` at dimensionality `d`. Shared
    /// by the perturbation path and [`NoisyQuadratic::from_federated_sum`]
    /// so federated aggregates report exactly the statistics a direct
    /// release would.
    fn calibrate(
        &self,
        d: usize,
        objective: &impl PolynomialObjective,
    ) -> Result<(NoiseSampler, f64, Option<f64>, f64, f64)> {
        Ok(match self.noise {
            NoiseDistribution::Laplace => {
                let s = objective.sensitivity(d, self.bound);
                let mech = LaplaceMechanism::new(s, self.epsilon)?;
                let scale = mech.noise_scale();
                let std = mech.noise_std_dev();
                (NoiseSampler::Laplace(mech), s, None, scale, std)
            }
            NoiseDistribution::Gaussian { delta } => {
                let s = objective.sensitivity_l2(d);
                let mech = GaussianMechanism::new(s, self.epsilon, delta)?;
                let sigma = mech.noise_std_dev();
                (NoiseSampler::Gaussian(mech), s, Some(delta), sigma, sigma)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::Matrix;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31415)
    }

    /// A toy objective: f(t, ω) = (y − xᵀω)² accumulated exactly (this is
    /// linear regression; the real impl lives in `linreg` — the duplicate
    /// here keeps the mechanism tests self-contained).
    struct Toy;

    impl PolynomialObjective for Toy {
        fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
            *q.beta_mut() += y * y;
            for (i, &xi) in x.iter().enumerate() {
                q.alpha_mut()[i] += -2.0 * y * xi;
            }
            q.m_mut().rank1_update(1.0, x).expect("arity");
        }
        fn sensitivity(&self, d: usize, _: SensitivityBound) -> f64 {
            2.0 * ((d + 1) * (d + 1)) as f64
        }
        fn sensitivity_l2(&self, _d: usize) -> f64 {
            2.0 * 6.0_f64.sqrt()
        }
        fn validate(&self, data: &Dataset) -> fm_data::Result<()> {
            data.check_normalized_linear()
        }
    }

    fn dataset() -> Dataset {
        let x = Matrix::from_rows(&[&[0.5, 0.5], &[-0.3, 0.2], &[0.1, -0.7]]).unwrap();
        Dataset::new(x, vec![0.4, -0.2, 0.9]).unwrap()
    }

    #[test]
    fn epsilon_validation() {
        assert!(FunctionalMechanism::new(0.0).is_err());
        assert!(FunctionalMechanism::new(-1.0).is_err());
        assert!(FunctionalMechanism::new(f64::NAN).is_err());
        assert!(FunctionalMechanism::new(0.8).is_ok());
    }

    #[test]
    fn assemble_is_exact_sum() {
        let data = dataset();
        let q = Toy.assemble(&data);
        // β = Σ y².
        let beta_expected: f64 = data.y().iter().map(|y| y * y).sum();
        assert!((q.beta() - beta_expected).abs() < 1e-12);
        // Objective value equals Σ (y − xᵀω)² at a probe point.
        let omega = [0.3, -0.1];
        let direct: f64 = data
            .tuples()
            .map(|(x, y)| {
                let r = y - fm_linalg::vecops::dot(x, &omega);
                r * r
            })
            .sum();
        assert!((q.eval(&omega) - direct).abs() < 1e-12);
    }

    #[test]
    fn perturbed_matrix_is_symmetric() {
        let fm = FunctionalMechanism::new(1.0).unwrap();
        let noisy = fm.perturb(&dataset(), &Toy, &mut rng()).unwrap();
        assert!(noisy.objective().m().is_symmetric(0.0));
    }

    #[test]
    fn metadata_is_calibrated() {
        let fm = FunctionalMechanism::new(0.5).unwrap();
        let noisy = fm.perturb(&dataset(), &Toy, &mut rng()).unwrap();
        // d = 2 ⇒ Δ = 2·9 = 18, scale = 36.
        assert_eq!(noisy.sensitivity(), 18.0);
        assert_eq!(noisy.epsilon(), 0.5);
        assert!((noisy.noise_scale() - 36.0).abs() < 1e-12);
        assert!((noisy.noise_std_dev() - 36.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn noise_has_the_right_magnitude() {
        // Empirical: the injected noise per coefficient should have stddev
        // ≈ √2·Δ/ε. Re-run the mechanism many times on the same data and
        // compare β (whose clean value is known) against its noisy values.
        let data = dataset();
        let fm = FunctionalMechanism::new(2.0).unwrap();
        let clean_beta = Toy.assemble(&data).beta();
        let mut r = rng();
        let n = 4_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| fm.perturb(&data, &Toy, &mut r).unwrap().objective().beta() - clean_beta)
            .collect();
        let mean = fm_linalg::vecops::mean(&samples);
        let std = fm_linalg::vecops::variance(&samples).sqrt();
        let expected_std = (18.0 / 2.0) * std::f64::consts::SQRT_2;
        assert!(mean.abs() < expected_std * 0.1, "bias {mean}");
        assert!(
            (std - expected_std).abs() < expected_std * 0.1,
            "std {std} vs {expected_std}"
        );
    }

    #[test]
    fn rejects_unnormalized_input() {
        let x = Matrix::from_rows(&[&[2.0, 2.0]]).unwrap(); // ‖x‖ > 1
        let bad = Dataset::new(x, vec![0.0]).unwrap();
        let fm = FunctionalMechanism::new(1.0).unwrap();
        assert!(matches!(
            fm.perturb(&bad, &Toy, &mut rng()),
            Err(FmError::Data(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let fm = FunctionalMechanism::new(1.0).unwrap();
        let a = fm.perturb(&dataset(), &Toy, &mut rng()).unwrap();
        let b = fm.perturb(&dataset(), &Toy, &mut rng()).unwrap();
        assert_eq!(a.objective().beta(), b.objective().beta());
        assert_eq!(a.objective().alpha(), b.objective().alpha());
    }

    #[test]
    fn different_draws_differ() {
        let fm = FunctionalMechanism::new(1.0).unwrap();
        let mut r = rng();
        let a = fm.perturb(&dataset(), &Toy, &mut r).unwrap();
        let b = fm.perturb(&dataset(), &Toy, &mut r).unwrap();
        assert_ne!(a.objective().beta(), b.objective().beta());
    }
}
